#include "util/run_control.hpp"

namespace fcad::util {

RunScope::RunScope(const RunControl& control) : control_(control) {
  if (control.deadline_s > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(control.deadline_s));
  }
}

bool RunScope::should_stop() const {
  if (control_.cancel.cancelled()) return true;
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

void RunScope::emit(const ProgressEvent& event) const {
  if (!control_.on_progress) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  control_.on_progress(event);
}

}  // namespace fcad::util
