#include "util/run_control.hpp"

#include <chrono>

namespace fcad::util {

namespace {

/// Default deadline time source: the monotonic wall clock, read as
/// microseconds since its (arbitrary) epoch.
double steady_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RunScope::RunScope(const RunControl& control) : control_(control) {
  if (control.deadline_s > 0) {
    has_deadline_ = true;
    now_us_ = control.now_us ? control.now_us : steady_now_us;
    deadline_at_us_ = now_us_() + control.deadline_s * 1e6;
  }
}

bool RunScope::should_stop() const {
  if (control_.cancel.cancelled()) return true;
  return has_deadline_ && now_us_() >= deadline_at_us_;
}

void RunScope::emit(const ProgressEvent& event) const {
  if (!control_.on_progress) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  control_.on_progress(event);
}

}  // namespace fcad::util
