// Minimal streaming JSON writer for the CLIs' --json output. Emits compact,
// valid JSON (string escaping, finite-number formatting); no parsing, no
// dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fcad {

/// JSON-escaped, quoted string literal.
std::string json_quote(const std::string& text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or begin_*.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);  ///< non-finite values emit null
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);

  const std::string& str() const { return out_; }

  /// Writes the document (plus a trailing newline) to `path`; false on any
  /// I/O error. The CsvWriter::write_file counterpart for --json outputs.
  bool write_file(const std::string& path) const;

 private:
  void element();  ///< comma bookkeeping before a value/container opener

  std::string out_;
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace fcad
