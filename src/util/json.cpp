#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace fcad {

std::string json_quote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::element() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  element();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  element();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
  out_ += json_quote(name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  element();
  out_ += json_quote(text);
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(double number) {
  element();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  element();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  element();
  out_ += flag ? "true" : "false";
  return *this;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << out_ << "\n";
  return out.good();
}

}  // namespace fcad
