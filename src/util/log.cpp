#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace fcad {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[fcad:%s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace detail
}  // namespace fcad
