#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace fcad {
namespace {

/// Initial level: FCAD_LOG_LEVEL when set and parsable, else kWarn.
LogLevel initial_level() {
  const char* env = std::getenv("FCAD_LOG_LEVEL");
  return env == nullptr ? LogLevel::kWarn : log_level_from_name(env);
}

std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "T";
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "-";
  }
  return "?";
}

/// Seconds since the logger first emitted; monotonic, so log lines carry a
/// cheap relative timeline without any wall-clock dependence.
double elapsed_s() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::mutex& emit_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }
LogLevel log_level() { return level_ref().load(); }

LogLevel log_level_from_name(const std::string& name, LogLevel fallback) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  const double t = elapsed_s();
  const std::lock_guard<std::mutex> lock(emit_mutex());
  std::fprintf(stderr, "[fcad:%s +%.3fs] %s\n", level_tag(level), t,
               msg.c_str());
}

}  // namespace detail
}  // namespace fcad
