// Leveled, thread-safe structured logger.
//
// Five severities (trace < debug < info < warn < error) plus kOff; the DSE
// engine logs search progress at Info, the obs layer reports anomalies
// (histogram bucket overflow, dropped trace events) at Warn, and benches
// leave the default Warn so table output stays clean. The initial level
// comes from the FCAD_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off); set_log_level() overrides it at
// runtime. Emission is serialized behind a mutex, so concurrent FCAD_LOG
// lines from pool workers never interleave mid-line.
//
//   FCAD_LOG(kInfo) << "search round " << round;
//   FCAD_LOG(kWarn).field("bucket", 12) << "histogram overflow";
#pragma once

#include <sstream>
#include <string>

namespace fcad {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5
};

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current minimum level. The first call reads FCAD_LOG_LEVEL; unset or
/// unparsable values fall back to kWarn.
LogLevel log_level();

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-insensitive); anything else returns `fallback`.
LogLevel log_level_from_name(const std::string& name,
                             LogLevel fallback = LogLevel::kWarn);

const char* to_string(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    os_ << fields_.str();
    log_emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

  /// Structured `key=value` pair, rendered space-separated after the free
  /// text regardless of call order: message words first, fields last.
  template <typename T>
  LogLine& field(const std::string& key, const T& value) {
    fields_ << ' ' << key << '=' << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
  std::ostringstream fields_;
};

}  // namespace detail

#define FCAD_LOG(level)                                \
  if (::fcad::LogLevel::level < ::fcad::log_level()) { \
  } else                                               \
    ::fcad::detail::LogLine(::fcad::LogLevel::level)

}  // namespace fcad
