// Minimal leveled logger. The DSE engine logs search progress at Info level;
// benches lower the level to Warn to keep table output clean.
#pragma once

#include <sstream>
#include <string>

namespace fcad {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

#define FCAD_LOG(level)                                     \
  if (::fcad::LogLevel::level < ::fcad::log_level()) {      \
  } else                                                    \
    ::fcad::detail::LogLine(::fcad::LogLevel::level)

}  // namespace fcad
