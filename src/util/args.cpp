#include "util/args.hpp"

#include <sstream>

namespace fcad {

StatusOr<ArgParser> ArgParser::parse(int argc, const char* const* argv) {
  ArgParser parser;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      parser.positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (body.empty()) {
      return Status::invalid_argument("bare '--' is not a flag");
    }
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      parser.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      parser.flags_[body] = argv[++i];
    } else {
      parser.flags_[body] = "true";  // bare boolean
    }
  }
  return parser;
}

bool ArgParser::has(const std::string& flag) const {
  return flags_.count(flag) > 0;
}

std::string ArgParser::get(const std::string& flag,
                           const std::string& fallback) const {
  auto it = flags_.find(flag);
  return it == flags_.end() ? fallback : it->second;
}

StatusOr<std::int64_t> ArgParser::get_int(const std::string& flag,
                                          std::int64_t fallback) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    return Status::invalid_argument("--" + flag + " expects an integer, got '" +
                                    it->second + "'");
  }
}

StatusOr<double> ArgParser::get_double(const std::string& flag,
                                       double fallback) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    return Status::invalid_argument("--" + flag + " expects a number, got '" +
                                    it->second + "'");
  }
}

namespace {

template <typename T, typename Convert>
StatusOr<std::vector<T>> split_list(const std::string& flag,
                                    const std::string& value,
                                    Convert convert) {
  std::vector<T> out;
  std::istringstream is(value);
  std::string part;
  while (std::getline(is, part, ',')) {
    try {
      std::size_t pos = 0;
      out.push_back(convert(part, &pos));
      if (pos != part.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      return Status::invalid_argument("--" + flag + ": bad list element '" +
                                      part + "'");
    }
  }
  if (out.empty()) {
    return Status::invalid_argument("--" + flag + ": empty list");
  }
  return out;
}

}  // namespace

StatusOr<std::vector<int>> ArgParser::get_int_list(
    const std::string& flag) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return std::vector<int>{};
  return split_list<int>(flag, it->second, [](const std::string& s,
                                              std::size_t* pos) {
    return std::stoi(s, pos);
  });
}

StatusOr<std::vector<double>> ArgParser::get_double_list(
    const std::string& flag) const {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return std::vector<double>{};
  return split_list<double>(flag, it->second, [](const std::string& s,
                                                 std::size_t* pos) {
    return std::stod(s, pos);
  });
}

}  // namespace fcad
