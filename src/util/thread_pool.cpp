#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "obs/trace.hpp"

namespace fcad::util {
namespace {

/// Depth of parallel regions on this thread; > 0 makes nested loops inline.
thread_local int t_parallel_depth = 0;

/// Creation index of this pool worker (0 = not a worker). Worker lanes in
/// the trace key off it, so lane identity never depends on thread ids.
thread_local int t_worker_index = 0;

int normalized_threads(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(threads, 1);
}

}  // namespace

/// One parallel_for invocation: indices are claimed via `next`; completion is
/// tracked under `mutex` so the issuing thread can block on `done_cv`.
struct ThreadPool::Batch {
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::int64_t n = 0;
  std::atomic<std::int64_t> next{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::int64_t completed = 0;          // guarded by mutex
  std::exception_ptr error;            // guarded by mutex; first one wins
};

ThreadPool::ThreadPool(int threads) {
  const int n = normalized_threads(threads);
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i < n - 1; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_index = i + 1;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Abandoned tickets are safe: the thread that issued a batch always
    // drains it to completion itself.
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::in_parallel_region() { return t_parallel_depth > 0; }

int ThreadPool::current_worker() { return t_worker_index; }

void ThreadPool::run_batch(Batch& batch) {
  ++t_parallel_depth;
  // Resolved once per batch: a disabled tracer costs one atomic load here
  // and nothing per index.
  obs::Tracer* const tracer = obs::tracer();
  const obs::LaneId lane{obs::kPoolPid, t_worker_index};
  if (tracer != nullptr) {
    tracer->name_lane(lane, "thread pool (wall clock)",
                      t_worker_index == 0
                          ? "caller"
                          : "worker " + std::to_string(t_worker_index));
  }
  for (;;) {
    const std::int64_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) break;
    std::exception_ptr error;
    const double span_start_us =
        tracer != nullptr ? tracer->wall_now_us() : 0;
    try {
      (*batch.fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    if (tracer != nullptr) {
      tracer->complete(lane, "task " + std::to_string(i), "pool",
                       span_start_us, tracer->wall_now_us() - span_start_us);
    }
    std::lock_guard<std::mutex> lock(batch.mutex);
    if (error && !batch.error) batch.error = error;
    if (++batch.completed == batch.n) batch.done_cv.notify_all();
  }
  --t_parallel_depth;
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty() || n == 1 || in_parallel_region()) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto tickets =
        std::min<std::int64_t>(static_cast<std::int64_t>(workers_.size()), n);
    for (std::int64_t i = 0; i < tickets; ++i) queue_.push_back(batch);
  }
  work_cv_.notify_all();

  // The caller participates, then waits out any indices still running on
  // workers. Because the caller drains `next` itself, completion never
  // depends on a worker picking the ticket up.
  run_batch(*batch);
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done_cv.wait(lock, [&] { return batch->completed == batch->n; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      batch = std::move(queue_.front());
      queue_.pop_front();
    }
    run_batch(*batch);
  }
}

ThreadPool& ThreadPool::shared(int threads) {
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(mutex);
  if (!pool) {
    pool = std::make_unique<ThreadPool>(threads);
  } else if (threads > 0 && pool->size() != normalized_threads(threads) &&
             !in_parallel_region()) {
    pool = std::make_unique<ThreadPool>(threads);
  }
  return *pool;
}

}  // namespace fcad::util
