// Minimal command-line flag parser for the fcad_cli driver.
// Supports --flag=value, --flag value, and bare --flag booleans.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace fcad {

class ArgParser {
 public:
  /// Parses argv; unrecognized syntax (non --flag tokens) land in
  /// positional().
  static StatusOr<ArgParser> parse(int argc, const char* const* argv);

  bool has(const std::string& flag) const;

  /// Value of --flag, or `fallback` when absent.
  std::string get(const std::string& flag, const std::string& fallback) const;
  StatusOr<std::int64_t> get_int(const std::string& flag,
                                 std::int64_t fallback) const;
  StatusOr<double> get_double(const std::string& flag, double fallback) const;

  /// Comma-separated integer list, e.g. --batches=1,2,2.
  StatusOr<std::vector<int>> get_int_list(const std::string& flag) const;
  /// Comma-separated double list, e.g. --priorities=1,4,1.
  StatusOr<std::vector<double>> get_double_list(const std::string& flag) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fcad
