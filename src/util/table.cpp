#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/status.hpp"

namespace fcad {
namespace {

std::string rule(const std::vector<std::size_t>& widths) {
  std::string out = "+";
  for (std::size_t w : widths) {
    out.append(w + 2, '-');
    out += '+';
  }
  out += '\n';
  return out;
}

std::string line(const std::vector<std::string>& cells,
                 const std::vector<std::size_t>& widths) {
  std::ostringstream os;
  os << "|";
  for (std::size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string();
    os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
  }
  os << '\n';
  return os.str();
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FCAD_CHECK(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> row) {
  FCAD_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back({std::move(row), pending_separator_});
  pending_separator_ = false;
}

void TablePrinter::add_separator() { pending_separator_ = true; }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& r : rows_) {
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      widths[i] = std::max(widths[i], r.cells[i].size());
    }
  }
  std::string out = rule(widths);
  out += line(header_, widths);
  out += rule(widths);
  for (const Row& r : rows_) {
    if (r.separator_before) out += rule(widths);
    out += line(r.cells, widths);
  }
  out += rule(widths);
  return out;
}

}  // namespace fcad
