// 128-bit streaming hash for cache keys (fitness memoization, spec-keyed
// artifact caching). Not cryptographic — the two decorrelated 64-bit
// accumulators exist so accidental collisions are out of the picture even
// for million-entry caches. The value is stable across platforms and runs
// (no pointer or address material is ever absorbed).
#pragma once

#include <cstdint>
#include <string>

namespace fcad::util {

struct Hash128 {
  std::uint64_t lo = 0x243f6a8885a308d3ULL;
  std::uint64_t hi = 0x13198a2e03707344ULL;

  bool operator==(const Hash128& other) const {
    return lo == other.lo && hi == other.hi;
  }

  /// Absorbs one word into both accumulators (decorrelated by negation).
  void absorb(std::uint64_t value);
  void absorb_double(double value);  ///< bit pattern, so -0.0 != 0.0
  void absorb_string(const std::string& text);

  /// 32 lowercase hex digits (hi then lo) — used as cache file names.
  std::string hex() const;
};

}  // namespace fcad::util
