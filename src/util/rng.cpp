#include "util/rng.hpp"

#include <cmath>

#include "util/status.hpp"

namespace fcad {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  FCAD_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::next_range(double lo, double hi) {
  FCAD_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::vector<double> Rng::next_simplex(std::size_t n) {
  FCAD_CHECK(n > 0);
  // Exponential spacings normalized to 1 give a uniform Dirichlet(1,...,1).
  std::vector<double> w(n);
  double total = 0.0;
  for (auto& v : w) {
    v = -std::log(1.0 - next_double());
    total += v;
  }
  for (auto& v : w) v /= total;
  return w;
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t mix = next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng(splitmix64(mix));
}

}  // namespace fcad
