#include "util/status.hpp"

#include <sstream>

namespace fcad {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kInfeasible: return "INFEASIBLE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::ostringstream os;
  os << status_code_name(code_) << ": " << message_;
  return os.str();
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& extra) {
  std::ostringstream os;
  os << "FCAD_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!extra.empty()) os << " — " << extra;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace fcad
