// Fixed-size worker pool with deterministic fork/join helpers.
//
// The DSE evaluates hundreds of independent candidates per iteration; this
// pool spreads those evaluations across cores without changing results:
// `parallel_for` assigns work by index, callers write into index-addressed
// slots, and every reduction happens on the calling thread in index order.
// As long as the per-index work is a pure function of its inputs (which every
// DSE evaluation is — RNG streams are forked *before* the parallel region),
// the output is bit-identical for any worker count, including 1.
//
// Nesting: a `parallel_for` issued from inside another parallel region runs
// inline on the current thread. This keeps outer-level parallelism (sweep
// grid points, convergence runs) deadlock-free while inner searches reuse the
// same pool transparently.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fcad::util {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread always participates).
  /// `threads <= 0` means one thread per hardware core.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Effective parallelism: workers + the participating caller.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(0) .. fn(n-1)` across the pool and the calling thread; returns
  /// once all indices completed. Indices are claimed dynamically, so `fn`
  /// must not depend on which thread runs it. Exceptions propagate to the
  /// caller (first one wins; remaining indices still run).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& fn);

  /// parallel_for that collects `fn(i)` into slot `i` of the result, so the
  /// caller can reduce in deterministic index order. `T` must be default
  /// constructible.
  template <typename T>
  std::vector<T> parallel_map(std::int64_t n,
                              const std::function<T(std::int64_t)>& fn) {
    std::vector<T> out(static_cast<std::size_t>(n));
    parallel_for(n, [&](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = fn(i);
    });
    return out;
  }

  /// True while the current thread is executing inside a parallel region
  /// (worker or participating caller); such contexts run nested loops inline.
  static bool in_parallel_region();

  /// Structural index of the current thread for observability lanes: 0 for
  /// any issuing/caller thread, 1..N for pool workers. Stable across runs
  /// (it is the worker's creation index, never a runtime thread id).
  static int current_worker();

  /// Process-wide pool. `threads <= 0` keeps whatever size the pool already
  /// has (hardware concurrency on first use); a positive `threads` resizes
  /// the pool unless called from inside a parallel region (the nested caller
  /// then shares the existing pool, which its loops use inline anyway).
  /// Resizing tears the old pool down, so don't request conflicting sizes
  /// from concurrently running top-level searches — nested searches are
  /// fine, as are sequential searches with different `--threads` values.
  static ThreadPool& shared(int threads = 0);

 private:
  struct Batch;

  void worker_loop();
  static void run_batch(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
};

}  // namespace fcad::util
