#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/status.hpp"

namespace fcad {
namespace {

std::string escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void render_row(std::ostringstream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    os << escape(row[i]);
  }
  os << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FCAD_CHECK(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> row) {
  FCAD_CHECK_MSG(row.size() == header_.size(), "csv row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  render_row(os, header_);
  for (const auto& r : rows_) render_row(os, r);
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_string();
  return static_cast<bool>(out);
}

}  // namespace fcad
