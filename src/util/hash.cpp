#include "util/hash.hpp"

#include <cstdio>
#include <cstring>

namespace fcad::util {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

}  // namespace

void Hash128::absorb(std::uint64_t value) {
  lo = mix(lo, value);
  hi = mix(hi, ~value);
}

void Hash128::absorb_double(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  absorb(bits);
}

void Hash128::absorb_string(const std::string& text) {
  absorb(text.size());
  std::uint64_t word = 0;
  int filled = 0;
  for (unsigned char c : text) {
    word = (word << 8) | c;
    if (++filled == 8) {
      absorb(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) absorb(word);
}

std::string Hash128::hex() const {
  char buffer[33];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buffer;
}

}  // namespace fcad::util
