// ASCII table printer used by the bench binaries to emit paper-style tables.
#pragma once

#include <string>
#include <vector>

namespace fcad {

/// Accumulates rows of strings and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row.
  void add_separator();

  /// Renders the table ("| a | b |" style with +---+ rules).
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

}  // namespace fcad
