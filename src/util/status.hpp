// Lightweight error handling for the F-CAD library.
//
// The library reports recoverable errors (bad user input, infeasible budgets)
// through Status / StatusOr rather than exceptions, so callers embedding the
// DSE engine in larger EDA flows can handle failures without unwinding.
// Programming errors (violated invariants) still use FCAD_CHECK which throws.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace fcad {

/// Error categories surfaced by the public API.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed network / config input
  kInfeasible,        ///< no design fits the resource budget
  kNotFound,          ///< lookup miss (platform name, layer id, ...)
  kCancelled,         ///< cooperative cancellation observed mid-run
  kInternal,          ///< invariant violation escaped as status
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* status_code_name(StatusCode code);

/// Value-semantic result of an operation that can fail.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }
  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status infeasible(std::string msg) {
    return {StatusCode::kInfeasible, std::move(msg)};
  }
  static Status not_found(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Exception thrown by FCAD_CHECK on violated invariants.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& extra);
}  // namespace detail

/// Aborts (by throwing InternalError) when `expr` is false. Used for
/// invariants that indicate bugs in the library itself, never for user input.
#define FCAD_CHECK(expr)                                             \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::fcad::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
    }                                                                \
  } while (false)

#define FCAD_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::fcad::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)

/// Either a value or an error Status. Minimal analogue of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}                // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {         // NOLINT
    FCAD_CHECK_MSG(!status_.is_ok(), "StatusOr given OK status without value");
  }

  bool is_ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FCAD_CHECK_MSG(is_ok(), "StatusOr::value() on error: " + status_.message());
    return *value_;
  }
  T& value() & {
    FCAD_CHECK_MSG(is_ok(), "StatusOr::value() on error: " + status_.message());
    return *value_;
  }
  T&& value() && {
    FCAD_CHECK_MSG(is_ok(), "StatusOr::value() on error: " + status_.message());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fcad
