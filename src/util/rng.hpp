// Deterministic pseudo-random number generation for the DSE engine.
//
// The stochastic cross-branch search (Algorithm 1) must be reproducible from a
// seed so that experiments and tests are stable across platforms; we therefore
// ship our own xoshiro256** generator instead of relying on std::mt19937's
// distribution implementations (which are not bit-stable across standard
// libraries for real distributions).
#pragma once

#include <cstdint>
#include <vector>

namespace fcad {

/// xoshiro256** PRNG seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi);

  /// Returns a vector of `n` non-negative weights summing to 1.0 (a random
  /// point on the simplex), used to draw resource distribution candidates.
  std::vector<double> next_simplex(std::size_t n);

  /// Fork a stream for a sub-component; decorrelated via SplitMix64 of the
  /// parent stream's output mixed with `salt`.
  Rng fork(std::uint64_t salt);

 private:
  std::uint64_t state_[4];
};

}  // namespace fcad
