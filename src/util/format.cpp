#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace fcad {

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_count(double value, int decimals) {
  static constexpr std::array<const char*, 5> suffix = {"", "k", "M", "G", "T"};
  double mag = std::fabs(value);
  std::size_t idx = 0;
  while (mag >= 1000.0 && idx + 1 < suffix.size()) {
    mag /= 1000.0;
    value /= 1000.0;
    ++idx;
  }
  return format_fixed(value, idx == 0 ? 0 : decimals) + suffix[idx];
}

std::string format_bytes(double bytes, int decimals) {
  static constexpr std::array<const char*, 4> suffix = {"B", "KiB", "MiB",
                                                        "GiB"};
  std::size_t idx = 0;
  while (std::fabs(bytes) >= 1024.0 && idx + 1 < suffix.size()) {
    bytes /= 1024.0;
    ++idx;
  }
  return format_fixed(bytes, idx == 0 ? 0 : decimals) + suffix[idx];
}

std::string format_percent(double fraction, int decimals) {
  return format_fixed(fraction * 100.0, decimals) + "%";
}

std::string format_exact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string format_int(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (negative) out += '-';
  return {out.rbegin(), out.rend()};
}

}  // namespace fcad
