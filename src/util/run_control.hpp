// Shared execution controls for long-running engine entry points: progress
// observer callbacks, cooperative cancellation, and a wall-clock deadline.
// Honored by every dse::SearchDriver entry point, by the strategy search
// loop between rounds, and by serving::simulate_fleet between events (which
// streams partial percentile estimates as progress). Lives in util so the
// serving layer can honor the same controls without depending on dse.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace fcad::util {

/// Cooperative cancellation: copies share one flag, so the caller keeps a
/// copy, hands another to the search, and can request cancellation from any
/// thread. The search observes it at its next checkpoint (between strategy
/// rounds / probe candidates / fleet events) and returns its best-so-far
/// result.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const {
    flag_->store(true, std::memory_order_relaxed);
  }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// One progress tick from a running stage.
struct ProgressEvent {
  std::string stage;       ///< emitting stage ("search", "sweep int8@200MHz")
  int step = 0;            ///< completed units, 1-based
  int total_steps = 0;     ///< scheduled units (0 when open-ended)
  /// Emitter-scoped scalar: the best objective value so far for searches,
  /// the partial p99 latency estimate (microseconds) for fleet replays.
  double best_fitness = 0;
};

/// The run controls every driver honors. Copyable; embed one in a SearchSpec.
struct RunControl {
  /// Invoked after each completed unit of work (strategy round, sweep grid
  /// point, convergence run, traffic candidate, fleet replay chunk).
  /// Invocations are serialized by the scope but may arrive from pool worker
  /// threads; keep the callback fast — the emitting worker blocks while it
  /// runs.
  std::function<void(const ProgressEvent&)> on_progress;
  CancellationToken cancel;
  /// Time budget in seconds for the whole run (0 = unlimited), measured
  /// against `now_us` below. A wall-clock deadline makes results
  /// timing-dependent; leave it unset when bit-reproducibility matters —
  /// or inject a virtual time source, which keeps deadlines deterministic.
  double deadline_s = 0;
  /// Time source the deadline is measured on: microseconds on an arbitrary
  /// monotonic origin (e.g. serving::Clock::now_us, so virtual-time replays
  /// enforce *virtual* deadlines deterministically). Unset = the monotonic
  /// wall clock. Must be callable from any worker thread.
  std::function<double()> now_us;
  /// Thread-pool size: -1 inherits the spec's CrossBranchOptions::threads,
  /// 0 = one thread per hardware core, N = exactly N workers.
  int threads = -1;
};

/// Internal view of one run's controls: the deadline resolved to an absolute
/// clock point at run start, progress callbacks serialized. Passed by
/// pointer into long-running loops, which poll should_stop() between units
/// of work.
class RunScope {
 public:
  explicit RunScope(const RunControl& control);
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  /// True once the token was cancelled or the deadline passed.
  bool should_stop() const;
  bool cancelled() const { return control_.cancel.cancelled(); }

  void emit(const ProgressEvent& event) const;

  /// Resolved pool size: the control's override when set, else `fallback`.
  int threads(int fallback) const {
    return control_.threads >= 0 ? control_.threads : fallback;
  }

 private:
  const RunControl& control_;
  std::function<double()> now_us_;  ///< deadline time source (µs)
  double deadline_at_us_ = 0;       ///< absolute reading the run must end by
  bool has_deadline_ = false;
  mutable std::mutex mutex_;  ///< serializes on_progress invocations
};

}  // namespace fcad::util
