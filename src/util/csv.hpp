// CSV writer so bench results can be exported for plotting.
#pragma once

#include <string>
#include <vector>

namespace fcad {

/// Buffers rows and renders RFC-4180-ish CSV (quotes fields containing
/// commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  std::string to_string() const;

  /// Writes to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fcad
