// Small numeric formatting helpers shared by reports and benches.
#pragma once

#include <cstdint>
#include <string>

namespace fcad {

/// Fixed-point decimal, e.g. format_fixed(1.2345, 2) == "1.23".
std::string format_fixed(double value, int decimals);

/// Engineering-suffixed count, e.g. 13.6G, 7.2M, 1.1k. `decimals` applies to
/// the scaled mantissa.
std::string format_count(double value, int decimals = 1);

/// Bytes with binary suffix (KiB/MiB/GiB).
std::string format_bytes(double bytes, int decimals = 1);

/// Percentage with '%' sign, e.g. format_percent(0.816, 1) == "81.6%".
std::string format_percent(double fraction, int decimals = 1);

/// Thousands-separated integer, e.g. 13600 -> "13,600".
std::string format_int(std::int64_t value);

/// Shortest decimal form that round-trips the double bit-exactly (%.17g) —
/// the one formatter every text artifact/checkpoint serializer must use.
std::string format_exact(double value);

}  // namespace fcad
