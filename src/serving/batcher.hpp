// Batch aggregation (serving step 2): groups pending requests per decoder
// branch up to the *searched* per-branch batch size (the replicated pipeline
// copies of the accelerator config), with a timeout so a lone request is
// never stranded waiting for a batch to fill.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serving/clock.hpp"
#include "serving/workload.hpp"

namespace fcad::serving {

/// A formed batch ready for dispatch to an accelerator instance.
struct Batch {
  int branch = 0;
  std::vector<Request> requests;  ///< 1..capacity requests, FIFO order
  double formed_us = 0;           ///< time the batch was popped
};

/// Per-branch FIFO queues with a size cap and a wait timeout.
///
/// A branch queue is "ready" when it holds at least `capacity[branch]`
/// requests (a full pass) or its oldest request has waited `timeout_us`.
/// `close()` guarantees the tail drains even when no timeout is configured.
class BatchAggregator {
 public:
  /// `capacity[j]` is branch j's batch-size cap; every entry must be >= 1.
  /// `timeout_us <= 0` means "no timeout" (batches form only when full or
  /// after close()).
  BatchAggregator(std::vector<int> capacity, double timeout_us);

  /// Enqueues one request. The branch must be within range.
  void enqueue(const Request& request);

  /// Declares the arrival stream finished. With a timeout configured the
  /// tail drains on the timeout's schedule; without one, close() makes every
  /// non-empty queue ready immediately so nothing is stranded.
  void close() { closed_ = true; }

  /// True when some branch has a dispatchable batch at `now_us`.
  bool has_ready(double now_us) const { return ready_branch(now_us) >= 0; }

  /// Branch of the batch `pop_ready` would return, or -1 if none. Readiness
  /// is tie-broken toward the branch with the oldest waiting request, so
  /// dispatch order is fair across branches (no branch starves).
  int ready_branch(double now_us) const;

  /// Pops the ready batch with the oldest head-of-line request; capped at
  /// the branch capacity. Returns nullopt when nothing is ready.
  std::optional<Batch> pop_ready(double now_us);

  /// Earliest future time a queue becomes ready by timeout alone, or
  /// +infinity when every queue is empty (or no timeout is configured).
  double next_deadline_us() const;

  /// Arrival time of `branch`'s head-of-line request (+infinity when the
  /// queue is empty) — the cross-cell fairness key in FleetEngine.
  double head_arrival_us(int branch) const;

  /// Clock-threaded twins: timeout handling against an injected
  /// serving::Clock reading instead of a caller-supplied timestamp. Event
  /// loops that must make several decisions at one instant (ready check →
  /// pick → pop) snapshot clock.now_us() once and use the double overloads;
  /// these are for single-decision callers.
  bool has_ready(Clock& clock) const { return has_ready(clock.now_us()); }
  int ready_branch(Clock& clock) const { return ready_branch(clock.now_us()); }
  std::optional<Batch> pop_ready(Clock& clock) {
    return pop_ready(clock.now_us());
  }

  std::size_t pending() const;
  int pending_in(int branch) const;
  int num_branches() const { return static_cast<int>(queues_.size()); }
  int capacity(int branch) const {
    return capacity_[static_cast<std::size_t>(branch)];
  }

 private:
  std::vector<int> capacity_;
  double timeout_us_ = 0;
  bool closed_ = false;
  std::vector<std::deque<Request>> queues_;
};

}  // namespace fcad::serving
