#include "serving/elastic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "serving/engine.hpp"

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shortest decimal form that parses back to exactly `v` — same canonical
/// formatting as scenario strings (both feed the checkpoint fingerprint).
std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

StatusOr<double> parse_number(const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::invalid_argument("elastic: bad number '" + text + "'");
  }
  return v;
}

std::string trim(const std::string& text) {
  std::size_t lo = text.find_first_not_of(" \t");
  if (lo == std::string::npos) return "";
  std::size_t hi = text.find_last_not_of(" \t");
  return text.substr(lo, hi - lo + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(trim(text.substr(start)));
      return parts;
    }
    parts.push_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
}

/// Fair contiguous split of `total` over `bins`: floor(total/bins) each,
/// remainder to the low bins — the static fleet's instance partition.
std::vector<int> fair_split(int total, int bins) {
  std::vector<int> counts(static_cast<std::size_t>(bins));
  const int base = total / bins;
  const int extra = total % bins;
  for (int s = 0; s < bins; ++s) {
    counts[static_cast<std::size_t>(s)] = base + (s < extra ? 1 : 0);
  }
  return counts;
}

}  // namespace

Status validate_elastic(const ElasticSpec& spec) {
  if (spec.autoscale_enabled()) {
    const AutoscaleSpec& a = spec.autoscale;
    if (a.low_watermark <= 0 || a.high_watermark <= a.low_watermark ||
        a.high_watermark > 1) {
      return Status::invalid_argument(
          "elastic: watermarks need 0 < low < high <= 1");
    }
    if (a.min_instances < 1) {
      return Status::invalid_argument("elastic: min_instances must be >= 1");
    }
    if (a.min_instances > a.max_instances) {
      return Status::invalid_argument(
          "elastic: min_instances must be <= max_instances");
    }
    if (a.cooldown_us < 0) {
      return Status::invalid_argument("elastic: cooldown_us must be >= 0");
    }
  }
  if (spec.reshard_enabled()) {
    const ReshardSpec& r = spec.reshard;
    if (!std::isfinite(r.p99_fraction)) {
      return Status::invalid_argument("elastic: p99_fraction must be finite");
    }
    if (r.window < 1) {
      return Status::invalid_argument("elastic: reshard window must be >= 1");
    }
    if (r.max_cells < 2) {
      return Status::invalid_argument(
          "elastic: max_cells must be >= 2 (a one-cell cap can never split)");
    }
    if (r.cooldown_us < 0) {
      return Status::invalid_argument("elastic: cooldown_us must be >= 0");
    }
  }
  // Both layers evaluate on the autoscale window cadence.
  if (spec.enabled() &&
      (spec.autoscale.window_us <= 0 ||
       !std::isfinite(spec.autoscale.window_us))) {
    return Status::invalid_argument(
        "elastic: window_us must be positive and finite");
  }
  return Status::ok();
}

std::string elastic_to_string(const ElasticSpec& spec) {
  std::ostringstream out;
  bool first = true;
  if (spec.autoscale_enabled()) {
    const AutoscaleSpec& a = spec.autoscale;
    out << "scale:max=" << a.max_instances
        << ",high=" << format_number(a.high_watermark)
        << ",low=" << format_number(a.low_watermark)
        << ",window_us=" << format_number(a.window_us)
        << ",cooldown_us=" << format_number(a.cooldown_us)
        << ",min=" << a.min_instances;
    first = false;
  }
  if (spec.reshard_enabled()) {
    const ReshardSpec& r = spec.reshard;
    if (!first) out << ";";
    out << "reshard:frac=" << format_number(r.p99_fraction)
        << ",window=" << r.window
        << ",cooldown_us=" << format_number(r.cooldown_us)
        << ",cells=" << r.max_cells;
    first = false;
  }
  if (first) return "none";
  return out.str();
}

StatusOr<ElasticSpec> elastic_from_string(const std::string& text) {
  ElasticSpec spec;
  const std::string trimmed = trim(text);
  if (trimmed.empty() || trimmed == "none") return spec;
  for (const std::string& clause : split(trimmed, ';')) {
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status::invalid_argument(
          "elastic: clause '" + clause + "' is missing ':'");
    }
    const std::string kind = trim(clause.substr(0, colon));
    std::vector<std::pair<std::string, double>> kv;
    for (const std::string& pair : split(clause.substr(colon + 1), ',')) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::invalid_argument(
            "elastic: expected key=value, got '" + pair + "'");
      }
      auto value = parse_number(trim(pair.substr(eq + 1)));
      if (!value.is_ok()) return value.status();
      kv.emplace_back(trim(pair.substr(0, eq)), value.value());
    }
    auto take = [&](const std::string& key, double* out) -> bool {
      for (auto it = kv.begin(); it != kv.end(); ++it) {
        if (it->first == key) {
          *out = it->second;
          kv.erase(it);
          return true;
        }
      }
      return false;
    };
    if (kind == "scale") {
      AutoscaleSpec a;
      double max = 0;
      double min = a.min_instances;
      if (!take("max", &max)) {
        return Status::invalid_argument("elastic: scale needs max=");
      }
      a.max_instances = static_cast<int>(max);
      take("high", &a.high_watermark);
      take("low", &a.low_watermark);
      take("window_us", &a.window_us);
      take("cooldown_us", &a.cooldown_us);
      if (take("min", &min)) a.min_instances = static_cast<int>(min);
      spec.autoscale = a;
    } else if (kind == "reshard") {
      ReshardSpec r;
      double window = r.window;
      double cells = r.max_cells;
      if (!take("frac", &r.p99_fraction)) {
        return Status::invalid_argument("elastic: reshard needs frac=");
      }
      if (take("window", &window)) r.window = static_cast<int>(window);
      take("cooldown_us", &r.cooldown_us);
      if (take("cells", &cells)) r.max_cells = static_cast<int>(cells);
      spec.reshard = r;
    } else {
      return Status::invalid_argument(
          "elastic: unknown clause kind '" + kind + "'");
    }
    if (!kv.empty()) {
      return Status::invalid_argument("elastic: unknown key '" +
                                      kv.front().first + "' in clause '" +
                                      kind + "'");
    }
  }
  if (Status s = validate_elastic(spec); !s.is_ok()) return s;
  return spec;
}

RollingP99Window::RollingP99Window(int window)
    : ring_(static_cast<std::size_t>(std::max(1, window)), 0.0) {}

void RollingP99Window::add(double value) {
  ring_[next_] = value;
  next_ = (next_ + 1) % ring_.size();
  ++count_;
  dirty_ = true;
}

double RollingP99Window::p99() const {
  if (count_ == 0) return 0;
  if (!dirty_) return p99_;
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(count_), ring_.size());
  std::vector<double> sorted(ring_.begin(),
                             ring_.begin() + static_cast<std::ptrdiff_t>(n));
  // Exact nearest-rank p99, matching stats.cpp's percentile().
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(0.99 * static_cast<double>(n))));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(rank - 1),
                   sorted.end());
  p99_ = sorted[rank - 1];
  dirty_ = false;
  return p99_;
}

StatusOr<std::vector<ShardElasticPlan>> plan_elastic_shards(
    const ElasticSpec& spec, const std::vector<InstanceFault>& faults,
    int instances, int shards) {
  if (spec.autoscale_enabled() && spec.autoscale.max_instances < instances) {
    return Status::invalid_argument(
        "elastic: autoscale.max_instances must be >= fleet instances (the "
        "fleet's instances are the initially active pool)");
  }
  const int provisioned_total =
      spec.autoscale_enabled() ? spec.autoscale.max_instances : instances;
  const std::vector<int> provisioned = fair_split(provisioned_total, shards);
  const std::vector<int> active = fair_split(instances, shards);
  const std::vector<int> floors = fair_split(
      spec.autoscale_enabled()
          ? std::min(spec.autoscale.min_instances, instances)
          : instances,
      shards);
  std::vector<ShardElasticPlan> plans(static_cast<std::size_t>(shards));
  int start = 0;
  for (int s = 0; s < shards; ++s) {
    ShardElasticPlan& plan = plans[static_cast<std::size_t>(s)];
    plan.first_instance = start;
    plan.provisioned = provisioned[static_cast<std::size_t>(s)];
    // Fair splits are monotone in the total, so the active prefix always
    // fits inside the provisioned slice.
    plan.initial_active = active[static_cast<std::size_t>(s)];
    plan.min_active = std::max(1, floors[static_cast<std::size_t>(s)]);
    start += plan.provisioned;
  }
  for (const InstanceFault& fault : faults) {
    if (fault.instance >= provisioned_total) {
      return Status::invalid_argument(
          "scenario: fault instance " + std::to_string(fault.instance) +
          " is outside the provisioned pool of " +
          std::to_string(provisioned_total));
    }
    for (auto& plan : plans) {
      if (fault.instance < plan.first_instance ||
          fault.instance >= plan.first_instance + plan.provisioned) {
        continue;
      }
      const int local = fault.instance - plan.first_instance;
      plan.faults.push_back({fault.fail_s * 1e6, local, true});
      plan.faults.push_back({fault.recover_s * 1e6, local, false});
      break;
    }
  }
  for (auto& plan : plans) {
    // Recovers sort before fails at equal (time, instance), so a
    // back-to-back recover/fail pair never leaves the instance down.
    std::sort(plan.faults.begin(), plan.faults.end(),
              [](const LocalFaultEvent& a, const LocalFaultEvent& b) {
                if (a.t_us != b.t_us) return a.t_us < b.t_us;
                if (a.local_instance != b.local_instance) {
                  return a.local_instance < b.local_instance;
                }
                return !a.fail && b.fail;
              });
  }
  return plans;
}

ElasticController::ElasticController(const ElasticSpec& spec,
                                     const ShardElasticPlan& plan,
                                     double sla_bound_us)
    : spec_(spec),
      plan_(plan),
      sla_bound_us_(sla_bound_us),
      scaled_on_(static_cast<std::size_t>(plan.provisioned), false),
      faulted_(static_cast<std::size_t>(plan.provisioned), false),
      eval_next_us_(spec.enabled() ? spec.autoscale.window_us : kInf),
      p99_window_(spec.reshard.window) {
  for (int k = 0; k < plan.initial_active; ++k) {
    scaled_on_[static_cast<std::size_t>(k)] = true;
  }
}

void ElasticController::tick(FleetEngine& engine, double now_us) {
  while (next_fault_ < plan_.faults.size() &&
         plan_.faults[next_fault_].t_us <= now_us) {
    apply_fault(engine, plan_.faults[next_fault_]);
    ++next_fault_;
  }
  if (now_us >= eval_next_us_) {
    // One evaluation per boundary crossing: the loop may jump far past the
    // boundary in one advance (idle spans), and evaluating once with the
    // actually elapsed span keeps utilization exact and replays identical.
    if (spec_.autoscale_enabled()) evaluate_autoscale(engine, now_us);
    if (spec_.reshard_enabled()) evaluate_reshard(engine, now_us);
    last_eval_us_ = now_us;
    last_busy_us_ = engine.total_busy_us();
    eval_next_us_ = now_us + spec_.autoscale.window_us;
  }
}

double ElasticController::next_event_us(double now_us) const {
  (void)now_us;
  double next = eval_next_us_;
  if (next_fault_ < plan_.faults.size()) {
    next = std::min(next, plan_.faults[next_fault_].t_us);
  }
  return next;
}

void ElasticController::on_complete(double latency_us) {
  if (spec_.reshard_enabled()) p99_window_.add(latency_us);
}

bool ElasticController::can_scale_up() const {
  if (!spec_.autoscale_enabled()) return false;
  for (std::size_t k = 0; k < scaled_on_.size(); ++k) {
    if (!scaled_on_[k] && !faulted_[k]) return true;
  }
  return false;
}

int ElasticController::effective_active() const {
  int active = 0;
  for (std::size_t k = 0; k < scaled_on_.size(); ++k) {
    if (scaled_on_[k] && !faulted_[k]) ++active;
  }
  return active;
}

void ElasticController::apply_fault(FleetEngine& engine,
                                    const LocalFaultEvent& event) {
  const auto k = static_cast<std::size_t>(event.local_instance);
  const bool was_active = scaled_on_[k] && !faulted_[k];
  faulted_[k] = event.fail;
  const bool is_active = scaled_on_[k] && !faulted_[k];
  if (was_active != is_active) {
    engine.set_instance_active(
        event.local_instance, is_active,
        event.fail ? ElasticReason::kFault : ElasticReason::kRecover);
  }
}

void ElasticController::evaluate_autoscale(FleetEngine& engine,
                                           double now_us) {
  const double elapsed_us = now_us - last_eval_us_;
  const int active = effective_active();
  if (elapsed_us <= 0 || active <= 0 || now_us < scale_ready_us_) return;
  const double utilization = (engine.total_busy_us() - last_busy_us_) /
                             (elapsed_us * active);
  if (utilization > spec_.autoscale.high_watermark) {
    // Join the lowest-index instance that is off and healthy.
    for (std::size_t k = 0; k < scaled_on_.size(); ++k) {
      if (scaled_on_[k] || faulted_[k]) continue;
      scaled_on_[k] = true;
      engine.set_instance_active(static_cast<int>(k), true,
                                 ElasticReason::kScaleUp);
      scale_ready_us_ = now_us + spec_.autoscale.cooldown_us;
      return;
    }
  } else if (utilization < spec_.autoscale.low_watermark &&
             active > plan_.min_active) {
    // Retire the highest-index healthy instance; it finishes any batch in
    // flight and then idles.
    for (std::size_t k = scaled_on_.size(); k-- > 0;) {
      if (!scaled_on_[k] || faulted_[k]) continue;
      scaled_on_[k] = false;
      engine.set_instance_active(static_cast<int>(k), false,
                                 ElasticReason::kScaleDown);
      scale_ready_us_ = now_us + spec_.autoscale.cooldown_us;
      return;
    }
  }
}

void ElasticController::evaluate_reshard(FleetEngine& engine,
                                         double now_us) {
  if (now_us < reshard_ready_us_ || !p99_window_.full()) return;
  if (p99_window_.p99() <= spec_.reshard.p99_fraction * sla_bound_us_) {
    return;
  }
  if (engine.num_cells() >= spec_.reshard.max_cells) return;
  if (engine.try_split_cell()) {
    reshard_ready_us_ = now_us + spec_.reshard.cooldown_us;
  }
}

}  // namespace fcad::serving
