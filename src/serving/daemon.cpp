#include "serving/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hpp"
#include "serving/elastic.hpp"
#include "serving/engine.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Rolling-p99 admission gate over elastic.hpp's RollingP99Window (the same
/// window the reshard trigger uses, so the two drift detectors can never
/// diverge in percentile semantics). should_shed() is true once the window
/// is full AND its lazily recomputed p99 exceeds the bound, so steady-state
/// shedding costs O(1) per request.
class AdmissionWindow {
 public:
  AdmissionWindow(bool enabled, int window, double bound_us)
      : enabled_(enabled && window > 0),
        bound_us_(bound_us),
        window_(enabled_ ? window : 1) {}

  void record(double latency_us) {
    if (enabled_) window_.add(latency_us);
  }

  bool should_shed() const {
    return enabled_ && window_.full() && window_.p99() > bound_us_;
  }

 private:
  bool enabled_;
  double bound_us_;
  RollingP99Window window_;
};

/// One shard of the trace-driven daemon: the same event loop as fleet.cpp's
/// run_shard, except every due arrival passes through the admission window
/// before it may enqueue. With admission off the decision stream — and so
/// every record, latency, and counter — is bit-identical to run_shard's.
StatusOr<ShardStats> run_daemon_shard(const ServiceModel& service,
                                      const std::vector<Request>& requests,
                                      int shard_index,
                                      const ElasticSpec& elastic,
                                      const ShardElasticPlan& plan,
                                      const FleetOptions& options,
                                      const DaemonOptions& daemon,
                                      std::int64_t* shed_out,
                                      const util::RunScope* scope) {
  const std::unique_ptr<Clock> clock = make_clock(
      options.clock, requests.empty() ? 0 : requests.front().arrival_us);

  FleetEngineConfig config;
  config.policy = options.policy;
  config.batch_timeout_us = options.batch_timeout_us;
  config.switch_penalty_us = options.switch_penalty_us;
  config.sla_bound_us = options.sla_bound_us;
  config.progress_tail_pct = options.progress_tail_pct;
  config.keep_records = options.keep_records;
  config.shard_index = shard_index;
  config.first_instance = plan.first_instance;
  config.instances = plan.provisioned;
  config.initial_active = plan.initial_active;
  config.max_cells =
      elastic.reshard_enabled() ? elastic.reshard.max_cells : 1;
  config.expected_requests = static_cast<std::int64_t>(requests.size());
  FleetEngine engine(service, config, clock.get());

  AdmissionWindow admission(
      daemon.admission_enabled, daemon.admission_window,
      daemon.admission_headroom * options.sla_bound_us);
  engine.set_batch_hook(
      [&admission](const Batch& batch, int, double, double finish_us) {
        for (const Request& r : batch.requests) {
          admission.record(finish_us - r.arrival_us);
        }
      });

  std::optional<ElasticController> controller;
  if (elastic.enabled() || !plan.faults.empty()) {
    controller.emplace(elastic, plan, options.sla_bound_us);
    engine.set_controller(&*controller);
  }

  std::int64_t shed = 0;
  std::size_t next = 0;
  while (true) {
    if (scope != nullptr && scope->should_stop()) {
      return Status::cancelled("daemon trace cancelled after " +
                               std::to_string(engine.completed()) +
                               " completions in shard " +
                               std::to_string(shard_index));
    }
    while (next < requests.size() &&
           requests[next].arrival_us <= engine.now_us()) {
      // Grow before dropping: while scale-up headroom remains, admit and
      // let the autoscaler absorb the drift; shedding engages only once the
      // provisioned pool is exhausted (or no elastic policy exists).
      if (admission.should_shed() &&
          (!controller || !controller->can_scale_up())) {
        ++shed;
      } else {
        engine.enqueue(requests[next]);
      }
      ++next;
    }
    if (next >= requests.size()) engine.close();

    if (controller) controller->tick(engine, engine.now_us());
    engine.dispatch_ready();

    double t_us = engine.next_event_us();
    if (next < requests.size()) {
      t_us = std::min(t_us, requests[next].arrival_us);
    }
    if (controller) {
      t_us = std::min(t_us, controller->next_event_us(engine.now_us()));
    }
    // The controller's evaluation cadence stays finite after the trace is
    // done, so termination keys on drained, not on running out of events
    // (the two are equivalent without a controller).
    if ((next >= requests.size() && engine.drained()) || t_us == kInf) break;
    // Strict advance only holds for virtual time; a steady clock can
    // legitimately overtake the event schedule between readings (see the
    // matching guard in fleet.cpp run_shard).
    if (options.clock == ClockKind::kVirtual) {
      FCAD_CHECK_MSG(t_us > engine.now_us(),
                     "daemon: trace time did not advance");
    }
    engine.advance_to(t_us);
  }

  ShardStats out = engine.take_stats();
  FCAD_CHECK_MSG(out.completed == out.offered,
                 "daemon: lost requests in flight");
  *shed_out = shed;
  return out;
}

/// One parsed unit of receiver -> serving-loop traffic.
struct Incoming {
  int fd = -1;
  std::int64_t id = 0;
  int user = 0;
  int branch = 0;
  bool disconnect = false;
  bool malformed = false;
};

/// Splits complete lines out of a connection buffer and appends the parsed
/// events. Returns true when a line asked for shutdown.
bool parse_lines(int fd, std::string& buffer, std::int64_t& next_id,
                 std::vector<Incoming>& events) {
  bool shutdown = false;
  std::size_t start = 0;
  for (std::size_t nl = buffer.find('\n'); nl != std::string::npos;
       nl = buffer.find('\n', start)) {
    std::string line = buffer.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line == "shutdown") {
      shutdown = true;
      continue;
    }
    std::istringstream fields(line);
    std::string verb;
    Incoming in;
    in.fd = fd;
    fields >> verb >> in.user >> in.branch;
    if (verb != "req" || fields.fail()) {
      in.malformed = true;
    } else {
      in.id = next_id++;
    }
    events.push_back(in);
  }
  buffer.erase(0, start);
  return shutdown;
}

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

Daemon::Daemon(ServiceModel service, ServeSpec spec, DaemonOptions options)
    : service_(std::move(service)),
      spec_(std::move(spec)),
      options_(std::move(options)) {
  // The shutdown pipe exists for the daemon's whole lifetime so a signal
  // handler may call request_shutdown() at any point relative to serve().
  if (::pipe2(shutdown_pipe_, O_CLOEXEC) != 0) {
    shutdown_pipe_[0] = shutdown_pipe_[1] = -1;
    FCAD_LOG(kWarn) << "daemon: shutdown pipe unavailable: "
                    << std::strerror(errno);
  }
}

Daemon::~Daemon() {
  close_fd(shutdown_pipe_[0]);
  close_fd(shutdown_pipe_[1]);
}

void Daemon::request_shutdown() {
  if (shutdown_pipe_[1] < 0) return;
  const char byte = 's';
  // Single async-signal-safe syscall; a full pipe already means a shutdown
  // is pending, so a failed write is still a delivered request.
  [[maybe_unused]] const ssize_t n =
      ::write(shutdown_pipe_[1], &byte, 1);
}

StatusOr<DaemonResult> Daemon::run_trace(const std::vector<Request>& trace,
                                         const util::RunScope* scope) const {
  auto resolved = resolved_fleet_options(spec_);
  if (!resolved.is_ok()) return resolved.status();
  const FleetOptions& options = *resolved;
  if (options.instances < 1) {
    return Status::invalid_argument("daemon: instances must be >= 1");
  }
  if (options.shards < 1 || options.shards > options.instances) {
    return Status::invalid_argument(
        "daemon: shards must be in [1, instances], got " +
        std::to_string(options.shards));
  }
  if (service_.num_branches() < 1) {
    return Status::invalid_argument("daemon: service model has no branches");
  }
  if (Status s = validate_scenario(spec_.scenario); !s.is_ok()) return s;
  if (Status s = validate_elastic(spec_.elastic); !s.is_ok()) return s;
  for (const Request& r : trace) {
    if (r.branch < 0 || r.branch >= service_.num_branches()) {
      return Status::invalid_argument("daemon: request branch out of range");
    }
  }

  // Identical partition to simulate_fleet: stable arrival sort, user u ->
  // shard u mod S, contiguous slices of the provisioned instance pool — the
  // parity contract extends to sharded and elastic traces.
  std::vector<Request> sorted = trace;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_us < b.arrival_us;
                   });
  const int num_shards = options.shards;
  std::vector<std::vector<Request>> shard_requests(
      static_cast<std::size_t>(num_shards));
  for (const Request& r : sorted) {
    shard_requests[static_cast<std::size_t>(r.user % num_shards)].push_back(
        r);
  }
  auto plans_or = plan_elastic_shards(spec_.elastic, spec_.scenario.faults,
                                      options.instances, num_shards);
  if (!plans_or.is_ok()) return plans_or.status();
  const std::vector<ShardElasticPlan>& plans = *plans_or;
  const int provisioned_total =
      plans.back().first_instance + plans.back().provisioned;

  std::vector<ShardStats> shards(static_cast<std::size_t>(num_shards));
  std::vector<std::int64_t> shard_shed(static_cast<std::size_t>(num_shards),
                                       0);
  std::vector<Status> shard_status(static_cast<std::size_t>(num_shards),
                                   Status::ok());
  auto run_one = [&](std::int64_t s) {
    const auto index = static_cast<std::size_t>(s);
    auto result = run_daemon_shard(service_, shard_requests[index],
                                   static_cast<int>(s), spec_.elastic,
                                   plans[index], options, options_,
                                   &shard_shed[index], scope);
    if (!result.is_ok()) {
      shard_status[index] = result.status();
      return;
    }
    shards[index] = std::move(result).value();
  };
  if (num_shards == 1) {
    run_one(0);
  } else {
    util::ThreadPool& pool = util::ThreadPool::shared(
        scope != nullptr ? scope->threads(options.threads) : options.threads);
    pool.parallel_for(num_shards, run_one);
  }

  for (const Status& s : shard_status) {
    if (!s.is_ok()) return s;
  }

  DaemonResult result;
  result.stats = merge_shard_stats(std::move(shards), service_,
                                   options.sla_bound_us, provisioned_total,
                                   0);
  for (std::int64_t s : shard_shed) result.shed += s;
  obs::MetricsRegistry::global()
      .counter("serving.daemon.shed_requests")
      .add(result.shed);
  return result;
}

StatusOr<DaemonResult> Daemon::serve() {
  auto resolved = resolved_fleet_options(spec_);
  if (!resolved.is_ok()) return resolved.status();
  const FleetOptions& options = *resolved;
  if (options.clock != ClockKind::kSteady) {
    return Status::invalid_argument(
        "daemon: serve() requires ClockKind::kSteady (a virtual clock has "
        "no time source to pace an idle socket on); run_trace replays "
        "virtual time");
  }
  if (options.shards != 1) {
    return Status::invalid_argument(
        "daemon: serve() runs one shard per process; deploy one daemon per "
        "shard instead of shards=" +
        std::to_string(options.shards));
  }
  if (options.instances < 1) {
    return Status::invalid_argument("daemon: instances must be >= 1");
  }
  if (service_.num_branches() < 1) {
    return Status::invalid_argument("daemon: service model has no branches");
  }
  if (Status s = validate_scenario(spec_.scenario); !s.is_ok()) return s;
  if (Status s = validate_elastic(spec_.elastic); !s.is_ok()) return s;
  // Arrival shaping is meaningless live (the daemon serves whatever
  // arrives); the scenario's *fault schedule* does apply, in steady-clock
  // microseconds since serve() started.
  auto plans_or = plan_elastic_shards(spec_.elastic, spec_.scenario.faults,
                                      options.instances, 1);
  if (!plans_or.is_ok()) return plans_or.status();
  const ShardElasticPlan& plan = plans_or->front();
  if (options_.socket_path.empty()) {
    return Status::invalid_argument("daemon: serve() needs a socket_path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::invalid_argument("daemon: socket path too long: " +
                                    options_.socket_path);
  }
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (shutdown_pipe_[0] < 0) {
    return Status::internal("daemon: shutdown pipe unavailable");
  }

  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    return Status::internal(std::string("daemon: socket(): ") +
                            std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    const Status status = Status::internal(
        "daemon: cannot listen on " + options_.socket_path + ": " +
        std::strerror(errno));
    close_fd(listen_fd);
    return status;
  }

  SteadyClock clock(0);
  FleetEngineConfig config;
  config.policy = options.policy;
  config.batch_timeout_us = options.batch_timeout_us;
  config.switch_penalty_us = options.switch_penalty_us;
  config.sla_bound_us = options.sla_bound_us;
  config.progress_tail_pct = options.progress_tail_pct;
  config.keep_records = options.keep_records;
  config.first_instance = plan.first_instance;
  config.instances = plan.provisioned;
  config.initial_active = plan.initial_active;
  config.max_cells = spec_.elastic.reshard_enabled()
                         ? spec_.elastic.reshard.max_cells
                         : 1;
  config.expected_requests = options_.expected_requests;
  FleetEngine engine(service_, config, &clock);

  std::optional<ElasticController> controller;
  if (spec_.elastic.enabled() || !plan.faults.empty()) {
    controller.emplace(spec_.elastic, plan, options.sla_bound_us);
    engine.set_controller(&*controller);
  }

  // Receiver thread: owns poll() over the listen socket, the shutdown pipe,
  // and every connection; parses lines into `queue` and wakes the serving
  // loop. It never writes to or closes a client fd — the serving loop is
  // the sole writer, and fds stay open until the drain finishes so a late
  // reply can never race a recycled descriptor.
  std::mutex queue_mutex;
  std::vector<Incoming> queue;
  std::vector<int> accepted_fds;  // guarded by queue_mutex; closed at exit
  std::atomic<bool> stopping{false};
  std::thread receiver([&] {
    std::vector<pollfd> pfds;
    pfds.push_back({shutdown_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd, POLLIN, 0});
    std::unordered_map<int, std::string> buffers;
    std::int64_t next_id = 0;
    bool stop = false;
    while (!stop) {
      if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      std::vector<Incoming> events;
      if ((pfds[0].revents & POLLIN) != 0) stop = true;
      if ((pfds[1].revents & POLLIN) != 0) {
        const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd >= 0) {
          pfds.push_back({fd, POLLIN, 0});
          buffers.emplace(fd, std::string());
          const std::lock_guard<std::mutex> lock(queue_mutex);
          accepted_fds.push_back(fd);
        }
      }
      for (std::size_t i = pfds.size(); i-- > 2;) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const int fd = pfds[i].fd;
        char buf[4096];
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
          std::string& buffer = buffers[fd];
          buffer.append(buf, static_cast<std::size_t>(n));
          stop = parse_lines(fd, buffer, next_id, events) || stop;
        } else if (n == 0 || errno != EINTR) {
          Incoming gone;
          gone.fd = fd;
          gone.disconnect = true;
          events.push_back(gone);
          buffers.erase(fd);
          pfds.erase(pfds.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
      if (!events.empty()) {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        queue.insert(queue.end(), events.begin(), events.end());
      }
      if (stop) stopping.store(true, std::memory_order_release);
      if (!events.empty() || stop) clock.wake();
    }
    stopping.store(true, std::memory_order_release);
    clock.wake();
  });

  std::unordered_map<std::int64_t, int> reply_fd;
  std::unordered_set<int> dead_fds;
  auto reply = [&](int fd, const std::string& line) {
    // Disconnected fds stay open (and unused) until the drain finishes, so a
    // late reply can never hit a recycled descriptor number.
    if (fd < 0 || dead_fds.count(fd) != 0) return;
    // Best-effort: a peer that vanished mid-reply only loses its answer.
    (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
  };

  AdmissionWindow admission(
      options_.admission_enabled, options_.admission_window,
      options_.admission_headroom * options.sla_bound_us);
  obs::Counter& shed_counter =
      obs::MetricsRegistry::global().counter("serving.daemon.shed_requests");
  std::int64_t shed = 0;

  engine.set_batch_hook([&](const Batch& batch, int instance, double,
                            double finish_us) {
    for (const Request& r : batch.requests) {
      admission.record(finish_us - r.arrival_us);
      const auto it = reply_fd.find(r.id);
      if (it == reply_fd.end()) continue;
      reply(it->second, "ok " + std::to_string(r.id) + " " +
                            std::to_string(r.branch) + " " +
                            std::to_string(instance) + " " +
                            std::to_string(finish_us - r.arrival_us) + "\n");
      reply_fd.erase(it);
    }
  });

  bool closed = false;
  while (true) {
    std::vector<Incoming> events;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      events.swap(queue);
    }
    for (const Incoming& in : events) {
      if (in.disconnect) {
        dead_fds.insert(in.fd);
        continue;
      }
      if (in.malformed) {
        reply(in.fd, "err expected 'req <user> <branch>'\n");
        continue;
      }
      if (closed) {
        reply(in.fd, "err draining\n");
        continue;
      }
      if (in.branch < 0 || in.branch >= service_.num_branches()) {
        reply(in.fd, "err branch out of range\n");
        continue;
      }
      // Grow before dropping: with scale-up headroom left the request is
      // admitted and the autoscaler absorbs the drift at its next tick.
      if (admission.should_shed() &&
          (!controller || !controller->can_scale_up())) {
        ++shed;
        shed_counter.add(1);
        reply(in.fd, "shed " + std::to_string(in.id) + "\n");
        continue;
      }
      Request r;
      r.id = in.id;
      r.user = in.user;
      r.branch = in.branch;
      r.arrival_us = engine.now_us();
      reply_fd[r.id] = in.fd;
      engine.enqueue(r);
    }
    if (stopping.load(std::memory_order_acquire) && !closed) {
      engine.close();  // graceful drain: the batcher tail flushes on the
      closed = true;   // timeout schedule and every straggler is answered
    }
    if (controller) controller->tick(engine, engine.now_us());
    engine.dispatch_ready();
    if (closed && engine.drained()) break;
    // Sleep to the next engine or controller event (batching deadline /
    // instance free / elastic boundary); +infinity waits for the receiver's
    // wake. Early wakes just loop.
    double t_us = engine.next_event_us();
    if (controller) {
      t_us = std::min(t_us, controller->next_event_us(engine.now_us()));
    }
    engine.advance_to(t_us);
  }

  receiver.join();
  for (int fd : accepted_fds) ::close(fd);
  close_fd(listen_fd);
  ::unlink(options_.socket_path.c_str());

  DaemonResult result;
  std::vector<ShardStats> shards;
  shards.push_back(engine.take_stats());
  result.stats = merge_shard_stats(std::move(shards), service_,
                                   options.sla_bound_us, plan.provisioned,
                                   0);
  result.shed = shed;
  return result;
}

}  // namespace fcad::serving
