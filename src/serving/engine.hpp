// The event-driven serving engine shared by the offline fleet replay
// (fleet.cpp) and the online daemon (daemon.cpp): per-branch batch
// aggregation, free-instance dispatch, and exact latency/SLA accounting for
// one shard, all driven through an injected serving::Clock. Decisions are
// functions of clock readings only, so the same trace produces identical
// per-request records under VirtualClock (replay) and under the daemon —
// the parity contract pinned by tests/daemon_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "obs/trace.hpp"
#include "serving/batcher.hpp"
#include "serving/clock.hpp"
#include "serving/dispatch.hpp"
#include "serving/service.hpp"
#include "serving/sketch.hpp"
#include "serving/stats.hpp"

namespace fcad::serving {

class ElasticController;

/// Why an instance joined or left the active set — selects the counter and
/// trace-instant name recorded for the transition.
enum class ElasticReason { kScaleUp, kScaleDown, kFault, kRecover };

/// Virtual-time lanes: shard event loops sit at tid = shard index, instance
/// timelines at tid = 1000 + global instance id, so Perfetto renders shards
/// first and instances below them, in stable structural order.
obs::LaneId shard_lane(int shard_index);
obs::LaneId instance_lane(int global_instance);

/// Raw accumulation streams of one shard's event loop, merged across shards
/// in shard-index order (concatenation, sums, maxima) — the merge is a pure
/// function of the per-shard results, which is what makes the replay
/// bit-identical for any thread count and resumable from a checkpoint.
struct ShardStats {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t batches = 0;
  std::int64_t sla_violations = 0;
  int max_queue_depth = 0;
  double fill_sum = 0;
  double depth_integral_us = 0;
  double makespan_us = 0;
  /// Exact mode: the full per-request streams. Sketch mode: both vectors
  /// stay empty and the two sketches below carry the distributions in O(1)
  /// memory per shard.
  std::vector<double> latencies;
  std::vector<double> waits;
  LatencyMode latency_mode = LatencyMode::kExact;
  QuantileSketch latency_sketch;
  QuantileSketch wait_sketch;
  std::vector<std::int64_t> branch_completed;
  /// Per-instance counters with *global* instance ids; utilization is
  /// filled at merge time (it depends on the global makespan).
  std::vector<InstanceStats> instances;
  std::vector<RequestRecord> records;
  /// Elastic-policy transitions observed by this shard (all zero on a
  /// static fleet).
  std::int64_t scale_up_events = 0;
  std::int64_t scale_down_events = 0;
  std::int64_t reshard_splits = 0;
  std::int64_t fault_events = 0;
  std::int64_t recover_events = 0;
};

/// One shard's serving engine. The caller owns the event loop: it decides
/// when to enqueue arrivals, when to dispatch, and how far to advance the
/// clock — the engine keeps the aggregation/dispatch/accounting state and
/// never reads a time source other than the injected clock.
///
/// The canonical loop (run_shard in fleet.cpp, Daemon::run_trace/serve):
///   while (work remains) {
///     enqueue every arrival due by now_us();     // or shed at admission
///     close() after the last arrival;
///     dispatch_ready();
///     t = min(next arrival, next_event_us());
///     advance_to(t);                             // jumps or really sleeps
///   }
struct FleetEngineConfig {
  DispatchPolicy policy{};
  double batch_timeout_us = 4000;
  double switch_penalty_us = 0;
  double sla_bound_us = 33333.3;
  double progress_tail_pct = 99;
  bool keep_records = false;
  int shard_index = 0;     ///< obs shard lane (tid = shard index)
  int first_instance = 0;  ///< global id of this engine's first instance
  int instances = 1;       ///< provisioned slice size (active + headroom)
  /// Instances active at time 0 (< 0 means all of them). The remainder of
  /// the provisioned slice is the elastic layer's scale-up headroom.
  int initial_active = -1;
  /// Cap on the user-range cells dynamic resharding may split this shard
  /// into (1 = the classic single-aggregator shard).
  int max_cells = 1;
  /// Upper bound on requests this engine will see (TailTracker sizing and
  /// stream reservations). Live daemons pass a generous cap.
  std::int64_t expected_requests = 0;
  /// kSketch replaces the exact latency/wait streams (and the TailTracker)
  /// with bounded-memory quantile sketches seeded by `sketch_seed` — the
  /// billion-request mode. The default keeps today's exact accounting.
  LatencyMode latency_mode = LatencyMode::kExact;
  std::uint64_t sketch_seed = 0;
};

class FleetEngine {
 public:
  /// Invoked once per dispatched batch, after the engine's own accounting.
  /// The replay counts global progress here; the daemon answers clients and
  /// feeds its rolling-p99 admission window.
  using BatchHook = std::function<void(const Batch& batch, int instance,
                                       double dispatch_us, double finish_us)>;

  /// `service` must outlive the engine.
  FleetEngine(const ServiceModel& service, const FleetEngineConfig& config,
              Clock* clock);

  double now_us() { return clock_->now_us(); }
  Clock& clock() { return *clock_; }

  void set_batch_hook(BatchHook hook) { batch_hook_ = std::move(hook); }

  /// Feeds completion latencies to the elastic controller's reshard
  /// trigger; the controller must outlive the engine's event loop.
  void set_controller(ElasticController* controller) {
    controller_ = controller;
  }

  /// Moves `local_instance` in or out of the dispatchable set at the
  /// current clock reading, bumping the counter and emitting the trace
  /// instant `reason` selects. A deactivated busy instance finishes its
  /// batch in flight and then idles.
  void set_instance_active(int local_instance, bool on, ElasticReason reason);

  int active_instances() const;
  double total_busy_us() const;
  int num_cells() const { return static_cast<int>(cells_.size()); }

  /// Splits the splittable cell with the most pending work at the midpoint
  /// of its observed user-id range; future arrivals for the upper half
  /// route to the new cell (pending requests stay put — no migration, so
  /// the split is a pure function of shard state). Returns false when no
  /// cell has seen two distinct users or the max_cells cap is reached.
  bool try_split_cell();

  /// Admits one request into its branch queue at the current clock reading.
  /// `r.arrival_us` must not be in the engine's future relative to earlier
  /// events (arrivals are ingested in time order).
  void enqueue(const Request& r);

  /// Declares the arrival stream finished; the batcher then drains its tail
  /// on the timeout schedule (immediately when no timeout is configured).
  void close();
  bool closed() const { return closed_; }

  /// Dispatches every ready batch a free instance exists for, at the
  /// current clock reading.
  void dispatch_ready();

  /// Next engine-internal event: an instance freeing up when a batch is
  /// ready, else the earliest batching deadline, else +infinity. The caller
  /// merges in its own next-arrival time.
  double next_event_us();

  /// Advances the clock to `t_us` (instant under VirtualClock, a real —
  /// wake()-interruptible — sleep under SteadyClock) and accounts queue
  /// depth over the actually elapsed span.
  void advance_to(double t_us);

  /// True once the stream is closed and every admitted request dispatched.
  bool drained() const { return closed_ && pending() == 0; }

  std::size_t pending() const {
    std::size_t total = 0;
    for (const Cell& cell : cells_) total += cell.agg.pending();
    return total;
  }
  std::int64_t completed() const { return stats_.completed; }
  const TailTracker& tail() const { return tail_; }
  /// Partial progress-tail estimate over completions so far: the exact
  /// TailTracker value in exact mode, the sketch quantile in sketch mode
  /// (where the tracker is disabled to keep memory bounded).
  double partial_tail() const;
  const ShardStats& stats() const { return stats_; }

  /// Finalizes per-instance counters and the shard overview trace span,
  /// then moves the accumulated streams out. Call once, after the loop.
  ShardStats take_stats();

 private:
  /// One user-range slice of the shard: users in [lo, next cell's lo) route
  /// here. min/max_seen track the observed id range so a split lands at its
  /// midpoint.
  struct Cell {
    int lo;
    int min_seen;
    int max_seen;
    BatchAggregator agg;
  };

  Cell& route(int user);

  const ServiceModel& service_;
  FleetEngineConfig config_;
  Clock* clock_;
  obs::Tracer* tracer_;
  std::vector<Cell> cells_;
  Dispatcher dispatcher_;
  TailTracker tail_;
  ShardStats stats_;
  BatchHook batch_hook_;
  ElasticController* controller_ = nullptr;
  bool closed_ = false;
  double first_arrival_us_;
};

/// Index-ordered merge of per-shard streams into the final ServingStats:
/// concatenation and sums over shards 0..S-1, utilization filled from the
/// global makespan — a pure function of the shard results, never of thread
/// timing. Takes the shards by value: the exact-mode latency/wait/record
/// streams are appended in one pre-sized pass and each source freed as it
/// is consumed, so peak memory stays ~1x the merged streams instead of 2x.
/// In sketch mode the per-shard sketches fold instead (order-independent,
/// byte-stable). Also exports the obs metrics for the run (request/batch/
/// SLA counters always; histograms and gauges under
/// obs::metrics_collection(); sketch counters in sketch mode).
ServingStats merge_shard_stats(std::vector<ShardStats> shards,
                               const ServiceModel& service,
                               double sla_bound_us, int total_instances,
                               int resumed_shards);

}  // namespace fcad::serving
