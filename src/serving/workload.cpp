#include "serving/workload.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>

namespace fcad::serving {
namespace {

/// Exponential draw with mean `mean` (inverse-CDF on a uniform in [0,1)).
double next_exponential(Rng& rng, double mean) {
  // 1 - u is in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - rng.next_double());
}

/// Appends one user's frame-event times up to `horizon_us`.
void poisson_stream(Rng rng, double rate_hz, double horizon_us,
                    double on_mean_s, double off_mean_s, double burst_factor,
                    std::vector<double>* events) {
  UserStream stream(std::move(rng), rate_hz, on_mean_s, off_mean_s,
                    burst_factor);
  while (true) {
    const double t_us = stream.next(horizon_us);
    if (t_us >= horizon_us) return;
    events->push_back(t_us);
  }
}

}  // namespace

UserStream::UserStream(Rng rng_in, double rate_hz, double on_mean_s,
                       double off_mean_s, double factor)
    : rng(std::move(rng_in)),
      rate_hz(rate_hz),
      on_mean_s(on_mean_s),
      off_mean_s(off_mean_s),
      burst_factor(factor),
      modulated(off_mean_s > 0) {
  phase_end_us = modulated ? next_exponential(rng, on_mean_s) * 1e6
                           : std::numeric_limits<double>::infinity();
}

double UserStream::next(double horizon_us) {
  while (true) {
    const double rate = on ? rate_hz * (modulated ? burst_factor : 1.0) : 0.0;
    if (rate <= 0) {
      // Silent phase: jump straight to its end.
      t_us = phase_end_us;
    } else {
      t_us += next_exponential(rng, 1.0 / rate) * 1e6;
    }
    // The horizon check precedes the phase handling on purpose — it pins
    // the original generator's behavior, where a draw crossing the
    // horizon ends the stream even when a phase boundary lies before it.
    if (t_us >= horizon_us) return t_us;
    if (modulated && t_us >= phase_end_us) {
      // The draw crossed a phase boundary; restart it inside the new
      // phase.
      t_us = phase_end_us;
      on = !on;
      phase_end_us =
          t_us + next_exponential(rng, on ? on_mean_s : off_mean_s) * 1e6;
      continue;
    }
    return t_us;
  }
}

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kTrace: return "trace";
  }
  return "?";
}

StatusOr<ArrivalProcess> arrival_process_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "poisson") return ArrivalProcess::kPoisson;
  if (lower == "bursty") return ArrivalProcess::kBursty;
  if (lower == "trace") return ArrivalProcess::kTrace;
  return Status::not_found("unknown arrival process '" + name + "'");
}

Status validate_workload_options(const WorkloadOptions& options) {
  if (options.users < 1) {
    return Status::invalid_argument("workload: users must be >= 1");
  }
  if (options.branches < 1) {
    return Status::invalid_argument("workload: branches must be >= 1");
  }
  if (options.target_requests < 0) {
    return Status::invalid_argument("workload: target_requests must be >= 0");
  }
  if (options.process == ArrivalProcess::kTrace &&
      options.target_requests > 0) {
    return Status::invalid_argument(
        "workload: target_requests requires a generated arrival process");
  }
  if (options.process != ArrivalProcess::kTrace) {
    if (options.frame_rate_hz <= 0) {
      return Status::invalid_argument("workload: frame_rate_hz must be > 0");
    }
    if (options.target_requests == 0 && options.duration_s <= 0) {
      return Status::invalid_argument("workload: duration_s must be > 0");
    }
  }
  // Checked for every process, not only kBursty: a zero phase would be
  // silently ignored until the process flips to bursty and then hang the
  // generator, so it is rejected at the spec boundary instead.
  if (options.burst_on_s <= 0 || options.burst_off_s <= 0 ||
      options.burst_factor <= 0) {
    return Status::invalid_argument(
        "workload: burst_on_s/burst_off_s/burst_factor must be > 0");
  }
  if (options.process == ArrivalProcess::kTrace &&
      options.trace_arrivals_us.empty()) {
    return Status::invalid_argument("workload: trace arrivals are empty");
  }
  return Status::ok();
}

StatusOr<std::vector<Request>> generate_workload(
    const WorkloadOptions& options) {
  if (Status s = validate_workload_options(options); !s.is_ok()) return s;

  // Frame events as (arrival_us, user) pairs.
  std::vector<std::pair<double, int>> events;
  if (options.process == ArrivalProcess::kTrace) {
    std::vector<double> times = options.trace_arrivals_us;
    std::sort(times.begin(), times.end());
    events.reserve(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      events.emplace_back(times[i], static_cast<int>(i) % options.users);
    }
  } else if (options.target_requests > 0) {
    // Merge the per-user streams in global time order until enough frame
    // events exist to cover target_requests after the branch fan-out. Each
    // user keeps its decorrelated fork, so a user's arrivals are identical
    // to the duration-bounded generator's — just not horizon-truncated.
    const std::int64_t events_needed =
        (options.target_requests + options.branches - 1) / options.branches;
    Rng root(options.seed);
    std::vector<UserStream> streams;
    streams.reserve(static_cast<std::size_t>(options.users));
    const bool bursty = options.process == ArrivalProcess::kBursty;
    std::priority_queue<std::pair<double, int>,
                        std::vector<std::pair<double, int>>,
                        std::greater<std::pair<double, int>>>
        heap;
    for (int user = 0; user < options.users; ++user) {
      streams.emplace_back(root.fork(static_cast<std::uint64_t>(user) + 1),
                           options.frame_rate_hz,
                           bursty ? options.burst_on_s : 0.0,
                           bursty ? options.burst_off_s : 0.0,
                           options.burst_factor);
      heap.push({streams.back().next(), user});
    }
    events.reserve(static_cast<std::size_t>(events_needed));
    while (static_cast<std::int64_t>(events.size()) < events_needed) {
      const auto [t_us, user] = heap.top();
      heap.pop();
      events.emplace_back(t_us, user);
      heap.push({streams[static_cast<std::size_t>(user)].next(), user});
    }
  } else {
    Rng root(options.seed);
    const double horizon_us = options.duration_s * 1e6;
    for (int user = 0; user < options.users; ++user) {
      // Independent decorrelated stream per user so adding users never
      // perturbs the arrivals of existing ones.
      Rng rng = root.fork(static_cast<std::uint64_t>(user) + 1);
      std::vector<double> times;
      if (options.process == ArrivalProcess::kPoisson) {
        poisson_stream(rng, options.frame_rate_hz, horizon_us, 0, 0, 1,
                       &times);
      } else {
        poisson_stream(rng, options.frame_rate_hz, horizon_us,
                       options.burst_on_s, options.burst_off_s,
                       options.burst_factor, &times);
      }
      for (double t : times) events.emplace_back(t, user);
    }
    std::sort(events.begin(), events.end());
  }

  std::vector<Request> workload;
  workload.reserve(events.size() * static_cast<std::size_t>(options.branches));
  std::int64_t id = 0;
  for (const auto& [t_us, user] : events) {
    for (int branch = 0; branch < options.branches; ++branch) {
      Request r;
      r.id = id++;
      r.user = user;
      r.branch = branch;
      r.arrival_us = t_us;
      workload.push_back(r);
    }
  }
  // The last frame event may overshoot the target by a partial fan-out.
  if (options.target_requests > 0 &&
      static_cast<std::int64_t>(workload.size()) > options.target_requests) {
    workload.resize(static_cast<std::size_t>(options.target_requests));
  }
  return workload;
}

double offered_rate_rps(const std::vector<Request>& workload) {
  if (workload.empty()) return 0;
  const double span_us =
      workload.back().arrival_us - workload.front().arrival_us;
  if (span_us <= 0) return 0;
  return static_cast<double>(workload.size()) / (span_us * 1e-6);
}

}  // namespace fcad::serving
