#include "serving/workload.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "serving/stream.hpp"

namespace fcad::serving {
namespace {

/// Exponential draw with mean `mean` (inverse-CDF on a uniform in [0,1)).
double next_exponential(Rng& rng, double mean) {
  // 1 - u is in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - rng.next_double());
}

}  // namespace

UserStream::UserStream(Rng rng_in, double rate_hz, double on_mean_s,
                       double off_mean_s, double factor)
    : rng(std::move(rng_in)),
      rate_hz(rate_hz),
      on_mean_s(on_mean_s),
      off_mean_s(off_mean_s),
      burst_factor(factor),
      modulated(off_mean_s > 0) {
  phase_end_us = modulated ? next_exponential(rng, on_mean_s) * 1e6
                           : std::numeric_limits<double>::infinity();
}

double UserStream::next(double horizon_us) {
  while (true) {
    const double rate = on ? rate_hz * (modulated ? burst_factor : 1.0) : 0.0;
    if (rate <= 0) {
      // Silent phase: jump straight to its end.
      t_us = phase_end_us;
    } else {
      t_us += next_exponential(rng, 1.0 / rate) * 1e6;
    }
    // The horizon check precedes the phase handling on purpose — it pins
    // the original generator's behavior, where a draw crossing the
    // horizon ends the stream even when a phase boundary lies before it.
    if (t_us >= horizon_us) return t_us;
    if (modulated && t_us >= phase_end_us) {
      // The draw crossed a phase boundary; restart it inside the new
      // phase.
      t_us = phase_end_us;
      on = !on;
      phase_end_us =
          t_us + next_exponential(rng, on ? on_mean_s : off_mean_s) * 1e6;
      continue;
    }
    return t_us;
  }
}

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kTrace: return "trace";
  }
  return "?";
}

StatusOr<ArrivalProcess> arrival_process_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "poisson") return ArrivalProcess::kPoisson;
  if (lower == "bursty") return ArrivalProcess::kBursty;
  if (lower == "trace") return ArrivalProcess::kTrace;
  return Status::not_found("unknown arrival process '" + name + "'");
}

Status validate_workload_options(const WorkloadOptions& options) {
  if (options.users < 1) {
    return Status::invalid_argument("workload: users must be >= 1");
  }
  if (options.branches < 1) {
    return Status::invalid_argument("workload: branches must be >= 1");
  }
  if (options.target_requests < 0) {
    return Status::invalid_argument("workload: target_requests must be >= 0");
  }
  if (options.process == ArrivalProcess::kTrace &&
      options.target_requests > 0) {
    return Status::invalid_argument(
        "workload: target_requests requires a generated arrival process");
  }
  if (options.process != ArrivalProcess::kTrace) {
    if (options.frame_rate_hz <= 0) {
      return Status::invalid_argument("workload: frame_rate_hz must be > 0");
    }
    if (options.target_requests == 0 && options.duration_s <= 0) {
      return Status::invalid_argument("workload: duration_s must be > 0");
    }
  }
  // Checked for every process, not only kBursty: a zero phase would be
  // silently ignored until the process flips to bursty and then hang the
  // generator, so it is rejected at the spec boundary instead.
  if (options.burst_on_s <= 0 || options.burst_off_s <= 0 ||
      options.burst_factor <= 0) {
    return Status::invalid_argument(
        "workload: burst_on_s/burst_off_s/burst_factor must be > 0");
  }
  if (options.process == ArrivalProcess::kTrace &&
      options.trace_arrivals_us.empty()) {
    return Status::invalid_argument("workload: trace arrivals are empty");
  }
  return Status::ok();
}

StatusOr<std::vector<Request>> generate_workload(
    const WorkloadOptions& options) {
  if (Status s = validate_workload_options(options); !s.is_ok()) return s;

  if (options.process != ArrivalProcess::kTrace) {
    // The pull-based stream (stream.cpp) is the single copy of the
    // generator for every generated process; this entry point just drains
    // it into a vector.
    auto stream = make_request_stream(options);
    if (!stream.is_ok()) return stream.status();
    return drain_request_stream(**stream, options.target_requests);
  }

  // Traces stay materialized: frame events as (arrival_us, user) pairs.
  std::vector<double> times = options.trace_arrivals_us;
  std::sort(times.begin(), times.end());

  std::vector<Request> workload;
  workload.reserve(times.size() * static_cast<std::size_t>(options.branches));
  std::int64_t id = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const int user = static_cast<int>(i) % options.users;
    for (int branch = 0; branch < options.branches; ++branch) {
      Request r;
      r.id = id++;
      r.user = user;
      r.branch = branch;
      r.arrival_us = times[i];
      workload.push_back(r);
    }
  }
  return workload;
}

double offered_rate_rps(const std::vector<Request>& workload) {
  if (workload.empty()) return 0;
  const double span_us =
      workload.back().arrival_us - workload.front().arrival_us;
  if (span_us <= 0) return 0;
  return static_cast<double>(workload.size()) / (span_us * 1e-6);
}

}  // namespace fcad::serving
