#include "serving/workload.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace fcad::serving {
namespace {

/// Exponential draw with mean `mean` (inverse-CDF on a uniform in [0,1)).
double next_exponential(Rng& rng, double mean) {
  // 1 - u is in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - rng.next_double());
}

/// Appends one user's frame-event times for a (possibly modulated) Poisson
/// process. `rate_hz` applies during "on" phases; a non-positive
/// `off_mean_s` disables modulation (plain Poisson).
void poisson_stream(Rng& rng, double rate_hz, double horizon_us,
                    double on_mean_s, double off_mean_s, double burst_factor,
                    std::vector<double>* events) {
  const bool modulated = off_mean_s > 0;
  double t_us = 0;
  bool on = true;
  // Phase boundary for the modulated process; infinity when unmodulated.
  double phase_end_us = modulated
                            ? next_exponential(rng, on_mean_s) * 1e6
                            : horizon_us * 2 + 1;
  while (true) {
    const double rate = on ? rate_hz * (modulated ? burst_factor : 1.0) : 0.0;
    if (rate <= 0) {
      // Silent phase: jump straight to its end.
      t_us = phase_end_us;
    } else {
      t_us += next_exponential(rng, 1.0 / rate) * 1e6;
    }
    if (t_us >= horizon_us) return;
    if (modulated && t_us >= phase_end_us) {
      // The draw crossed a phase boundary; restart it inside the new phase.
      t_us = phase_end_us;
      on = !on;
      phase_end_us =
          t_us + next_exponential(rng, on ? on_mean_s : off_mean_s) * 1e6;
      continue;
    }
    events->push_back(t_us);
  }
}

}  // namespace

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kTrace: return "trace";
  }
  return "?";
}

StatusOr<ArrivalProcess> arrival_process_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "poisson") return ArrivalProcess::kPoisson;
  if (lower == "bursty") return ArrivalProcess::kBursty;
  if (lower == "trace") return ArrivalProcess::kTrace;
  return Status::not_found("unknown arrival process '" + name + "'");
}

StatusOr<std::vector<Request>> generate_workload(
    const WorkloadOptions& options) {
  if (options.users < 1) {
    return Status::invalid_argument("workload: users must be >= 1");
  }
  if (options.branches < 1) {
    return Status::invalid_argument("workload: branches must be >= 1");
  }
  if (options.process != ArrivalProcess::kTrace) {
    if (options.frame_rate_hz <= 0) {
      return Status::invalid_argument("workload: frame_rate_hz must be > 0");
    }
    if (options.duration_s <= 0) {
      return Status::invalid_argument("workload: duration_s must be > 0");
    }
  }
  if (options.process == ArrivalProcess::kBursty &&
      (options.burst_on_s <= 0 || options.burst_off_s <= 0 ||
       options.burst_factor <= 0)) {
    return Status::invalid_argument(
        "workload: bursty phases and factor must be > 0");
  }
  if (options.process == ArrivalProcess::kTrace &&
      options.trace_arrivals_us.empty()) {
    return Status::invalid_argument("workload: trace arrivals are empty");
  }

  // Frame events as (arrival_us, user) pairs.
  std::vector<std::pair<double, int>> events;
  if (options.process == ArrivalProcess::kTrace) {
    std::vector<double> times = options.trace_arrivals_us;
    std::sort(times.begin(), times.end());
    events.reserve(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
      events.emplace_back(times[i], static_cast<int>(i) % options.users);
    }
  } else {
    Rng root(options.seed);
    const double horizon_us = options.duration_s * 1e6;
    for (int user = 0; user < options.users; ++user) {
      // Independent decorrelated stream per user so adding users never
      // perturbs the arrivals of existing ones.
      Rng rng = root.fork(static_cast<std::uint64_t>(user) + 1);
      std::vector<double> times;
      if (options.process == ArrivalProcess::kPoisson) {
        poisson_stream(rng, options.frame_rate_hz, horizon_us, 0, 0, 1,
                       &times);
      } else {
        poisson_stream(rng, options.frame_rate_hz, horizon_us,
                       options.burst_on_s, options.burst_off_s,
                       options.burst_factor, &times);
      }
      for (double t : times) events.emplace_back(t, user);
    }
    std::sort(events.begin(), events.end());
  }

  std::vector<Request> workload;
  workload.reserve(events.size() * static_cast<std::size_t>(options.branches));
  std::int64_t id = 0;
  for (const auto& [t_us, user] : events) {
    for (int branch = 0; branch < options.branches; ++branch) {
      Request r;
      r.id = id++;
      r.user = user;
      r.branch = branch;
      r.arrival_us = t_us;
      workload.push_back(r);
    }
  }
  return workload;
}

double offered_rate_rps(const std::vector<Request>& workload) {
  if (workload.empty()) return 0;
  const double span_us =
      workload.back().arrival_us - workload.front().arrival_us;
  if (span_us <= 0) return 0;
  return static_cast<double>(workload.size()) / (span_us * 1e-6);
}

}  // namespace fcad::serving
