#include "serving/engine.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "serving/elastic.hpp"

namespace fcad::serving {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

obs::LaneId shard_lane(int shard_index) {
  return obs::LaneId{obs::kServingPid, shard_index};
}

obs::LaneId instance_lane(int global_instance) {
  return obs::LaneId{obs::kServingPid, 1000 + global_instance};
}

FleetEngine::FleetEngine(const ServiceModel& service,
                         const FleetEngineConfig& config, Clock* clock)
    : service_(service),
      config_(config),
      clock_(clock),
      tracer_(obs::tracer()),
      dispatcher_(config.policy, config.instances, service.num_branches(),
                  config.initial_active),
      // Sketch mode disables the tracker (partial_tail reads the sketch), so
      // its O(expected) tail reserve never happens on billion-request runs.
      tail_(config.latency_mode == LatencyMode::kSketch
                ? 0
                : config.expected_requests,
            config.progress_tail_pct),
      first_arrival_us_(kInf) {
  cells_.reserve(static_cast<std::size_t>(std::max(1, config.max_cells)));
  cells_.push_back(Cell{0, std::numeric_limits<int>::max(), -1,
                        BatchAggregator(service.capacities(),
                                        config.batch_timeout_us)});
  // Resolved once per engine; every span below carries clock-reading µs, so
  // a virtual-time replay's emitted timeline is identical for any thread
  // count.
  if (tracer_ != nullptr) {
    tracer_->name_lane(shard_lane(config_.shard_index),
                       "serving fleet (virtual time)",
                       "shard " + std::to_string(config_.shard_index));
    for (int k = 0; k < config_.instances; ++k) {
      tracer_->name_lane(instance_lane(config_.first_instance + k),
                         "serving fleet (virtual time)",
                         "instance " +
                             std::to_string(config_.first_instance + k));
    }
  }
  stats_.branch_completed.assign(
      static_cast<std::size_t>(service.num_branches()), 0);
  stats_.latency_mode = config.latency_mode;
  if (config.latency_mode == LatencyMode::kSketch) {
    stats_.latency_sketch = QuantileSketch(config.sketch_seed);
    stats_.wait_sketch = QuantileSketch(config.sketch_seed);
  } else {
    // A hint, not a commitment: capped so a huge expected_requests never
    // front-loads an allocation the exact streams grow into anyway.
    const auto reserve = static_cast<std::size_t>(std::min<std::int64_t>(
        config.expected_requests, std::int64_t{1} << 22));
    stats_.latencies.reserve(reserve);
    stats_.waits.reserve(reserve);
  }
}

FleetEngine::Cell& FleetEngine::route(int user) {
  // Last cell whose lower bound covers the user; cells_ stays sorted by lo
  // and small (max_cells), so the scan from the top is cheap.
  for (std::size_t i = cells_.size(); i-- > 1;) {
    if (cells_[i].lo <= user) return cells_[i];
  }
  return cells_.front();
}

void FleetEngine::enqueue(const Request& r) {
  Cell& cell = route(r.user);
  cell.agg.enqueue(r);
  cell.min_seen = std::min(cell.min_seen, r.user);
  cell.max_seen = std::max(cell.max_seen, r.user);
  ++stats_.offered;
  first_arrival_us_ = std::min(first_arrival_us_, r.arrival_us);
  const int depth = static_cast<int>(pending());
  if (depth > stats_.max_queue_depth) {
    stats_.max_queue_depth = depth;
    // Counter samples only on a new high-water mark, so the event count
    // stays bounded even on million-request replays.
    if (tracer_ != nullptr) {
      tracer_->counter(shard_lane(config_.shard_index), "queue depth",
                       clock_->now_us(), depth);
    }
  }
}

void FleetEngine::close() {
  closed_ = true;
  for (Cell& cell : cells_) cell.agg.close();
}

void FleetEngine::dispatch_ready() {
  const double now_us = clock_->now_us();
  while (true) {
    // Across cells, serve the ready batch whose head-of-line request has
    // waited longest (ties toward the lowest cell index) — the same
    // fairness rule ready_branch applies across branches within a cell.
    std::size_t cell_index = 0;
    int branch = -1;
    double oldest_us = kInf;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const int b = cells_[i].agg.ready_branch(now_us);
      if (b < 0) continue;
      const double head_us = cells_[i].agg.head_arrival_us(b);
      if (branch < 0 || head_us < oldest_us) {
        cell_index = i;
        branch = b;
        oldest_us = head_us;
      }
    }
    if (branch < 0) break;
    const int k = dispatcher_.pick(branch, now_us);
    if (k < 0) break;
    BatchAggregator& aggregator = cells_[cell_index].agg;
    Batch batch = *aggregator.pop_ready(now_us);

    const double finish_us = dispatcher_.dispatch(
        k, branch, now_us,
        service_.branches[static_cast<std::size_t>(branch)].pass_us,
        config_.switch_penalty_us,
        static_cast<std::int64_t>(batch.requests.size()));

    if (tracer_ != nullptr) {
      tracer_->complete(
          instance_lane(config_.first_instance + k),
          "batch b" + std::to_string(branch), "serving", now_us,
          finish_us - now_us,
          {{"branch", static_cast<double>(branch)},
           {"requests", static_cast<double>(batch.requests.size())}});
    }
    ++stats_.batches;
    stats_.fill_sum += static_cast<double>(batch.requests.size()) /
                       static_cast<double>(aggregator.capacity(branch));
    stats_.makespan_us = std::max(stats_.makespan_us, finish_us);
    for (const Request& r : batch.requests) {
      const double latency = finish_us - r.arrival_us;
      if (config_.latency_mode == LatencyMode::kSketch) {
        stats_.latency_sketch.add(latency);
        stats_.wait_sketch.add(now_us - r.arrival_us);
      } else {
        stats_.latencies.push_back(latency);
        stats_.waits.push_back(now_us - r.arrival_us);
        tail_.add(latency);
      }
      if (controller_ != nullptr) controller_->on_complete(latency);
      if (latency > config_.sla_bound_us) ++stats_.sla_violations;
      ++stats_.completed;
      ++stats_.branch_completed[static_cast<std::size_t>(r.branch)];
      if (config_.keep_records) {
        stats_.records.push_back({r.id, r.user, r.branch,
                                  config_.first_instance + k, r.arrival_us,
                                  now_us, finish_us});
      }
    }
    if (batch_hook_) batch_hook_(batch, k, now_us, finish_us);
  }
}

double FleetEngine::next_event_us() {
  // When a batch is ready but every instance is busy, the next event is an
  // instance freeing up; otherwise it is the earliest batching deadline.
  const double now_us = clock_->now_us();
  bool has_ready = false;
  for (const Cell& cell : cells_) {
    if (cell.agg.has_ready(now_us)) {
      has_ready = true;
      break;
    }
  }
  if (has_ready) {
    // A steady clock can cross an instance's free time between
    // dispatch_ready() and this call; the freed instance makes the ready
    // batch dispatchable *immediately*, so the next event is "now" —
    // consulting next_free_us() instead would sleep on the remaining busy
    // set (or forever, once the busy heap is empty) while holding
    // dispatchable work. Virtual time cannot hit this branch: its reading
    // is frozen between the two calls, so whatever dispatch_ready() left
    // ready found every instance busy and stays that way.
    if (dispatcher_.any_free(now_us)) return now_us;
    return dispatcher_.next_free_us(now_us);
  }
  double deadline_us = kInf;
  for (const Cell& cell : cells_) {
    if (cell.agg.pending() > 0) {
      deadline_us = std::min(deadline_us, cell.agg.next_deadline_us());
    }
  }
  return deadline_us;
}

void FleetEngine::set_instance_active(int local_instance, bool on,
                                      ElasticReason reason) {
  const double now_us = clock_->now_us();
  dispatcher_.set_active(local_instance, on, now_us);
  const char* name = "?";
  switch (reason) {
    case ElasticReason::kScaleUp:
      ++stats_.scale_up_events;
      name = "scale up";
      break;
    case ElasticReason::kScaleDown:
      ++stats_.scale_down_events;
      name = "scale down";
      break;
    case ElasticReason::kFault:
      ++stats_.fault_events;
      name = "instance fault";
      break;
    case ElasticReason::kRecover:
      ++stats_.recover_events;
      name = "instance recover";
      break;
  }
  if (tracer_ != nullptr) {
    tracer_->instant(shard_lane(config_.shard_index),
                     std::string(name) + " i" +
                         std::to_string(config_.first_instance +
                                        local_instance),
                     "serving", now_us);
  }
}

double FleetEngine::partial_tail() const {
  if (config_.latency_mode == LatencyMode::kSketch) {
    if (stats_.latency_sketch.count() == 0) return 0;
    return stats_.latency_sketch.quantile(config_.progress_tail_pct);
  }
  return tail_.partial();
}

int FleetEngine::active_instances() const {
  return dispatcher_.active_count();
}

double FleetEngine::total_busy_us() const {
  return dispatcher_.total_busy_us();
}

bool FleetEngine::try_split_cell() {
  if (static_cast<int>(cells_.size()) >= config_.max_cells) return false;
  // Hottest splittable cell: most pending requests, ties toward the lowest
  // index; a cell needs two distinct observed users to have a midpoint.
  std::size_t target = 0;
  std::size_t best_pending = 0;
  bool found = false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].min_seen >= cells_[i].max_seen) continue;
    const std::size_t cell_pending = cells_[i].agg.pending();
    if (!found || cell_pending > best_pending) {
      target = i;
      best_pending = cell_pending;
      found = true;
    }
  }
  if (!found) return false;
  Cell& old_cell = cells_[target];
  const int mid =
      old_cell.min_seen + (old_cell.max_seen - old_cell.min_seen) / 2;
  Cell fresh{mid + 1, std::numeric_limits<int>::max(), -1,
             BatchAggregator(service_.capacities(),
                             config_.batch_timeout_us)};
  if (closed_) fresh.agg.close();
  // Requests already queued stay in the old cell — only future arrivals
  // route to the new one, so a split never reorders pending work.
  old_cell.max_seen = mid;
  cells_.insert(cells_.begin() + static_cast<std::ptrdiff_t>(target) + 1,
                std::move(fresh));
  ++stats_.reshard_splits;
  if (tracer_ != nullptr) {
    tracer_->instant(shard_lane(config_.shard_index),
                     "reshard split @u" + std::to_string(mid + 1), "serving",
                     clock_->now_us());
  }
  return true;
}

void FleetEngine::advance_to(double t_us) {
  const double before_us = clock_->now_us();
  const double after_us = clock_->sleep_until_us(t_us);
  stats_.depth_integral_us +=
      static_cast<double>(pending()) * (after_us - before_us);
}

ShardStats FleetEngine::take_stats() {
  for (int k = 0; k < config_.instances; ++k) {
    const InstanceState& inst =
        dispatcher_.instances()[static_cast<std::size_t>(k)];
    InstanceStats is;
    is.instance = config_.first_instance + k;
    is.batches = inst.batches;
    is.requests = inst.requests;
    is.branch_switches = inst.switches;
    is.busy_us = inst.busy_us;
    stats_.instances.push_back(is);
  }
  if (tracer_ != nullptr && stats_.offered > 0) {
    tracer_->complete(
        shard_lane(config_.shard_index), "shard replay", "serving",
        first_arrival_us_,
        std::max(stats_.makespan_us - first_arrival_us_, 0.0),
        {{"requests", static_cast<double>(stats_.completed)},
         {"batches", static_cast<double>(stats_.batches)}});
  }
  return std::move(stats_);
}

ServingStats merge_shard_stats(std::vector<ShardStats> shards,
                               const ServiceModel& service,
                               double sla_bound_us, int total_instances,
                               int resumed_shards) {
  ServingStats stats;
  stats.sla_bound_us = sla_bound_us;
  stats.branch_completed.assign(
      static_cast<std::size_t>(service.num_branches()), 0);
  stats.resumed_shards = resumed_shards;
  const bool sketch_mode =
      !shards.empty() &&
      shards.front().latency_mode == LatencyMode::kSketch;
  stats.latency_mode =
      sketch_mode ? LatencyMode::kSketch : LatencyMode::kExact;
  std::size_t total = 0;
  std::size_t record_total = 0;
  for (const ShardStats& shard : shards) {
    total += shard.latencies.size();
    record_total += shard.records.size();
  }
  std::vector<double> latencies;
  std::vector<double> waits;
  latencies.reserve(total);
  waits.reserve(total);
  stats.records.reserve(record_total);
  QuantileSketch latency_sketch;
  QuantileSketch wait_sketch;
  // Exact-mode histograms are bound up front and fed from the same append
  // pass that builds the merged streams — no second traversal. The registry
  // snapshot is name-sorted, so binding order never shows in the export.
  obs::Histogram* latency_hist = nullptr;
  obs::Histogram* wait_hist = nullptr;
  static const std::vector<double> kLatencyBounds = {
      100,   200,   500,    1000,   2000,   5000,  10000,
      20000, 50000, 100000, 200000, 500000, 1e6};
  if (obs::metrics_collection() && !sketch_mode) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    latency_hist = &reg.histogram("serving.latency_us", kLatencyBounds);
    wait_hist = &reg.histogram("serving.queue_wait_us", kLatencyBounds);
  }
  double fill_sum = 0;
  double depth_integral_us = 0;
  double makespan_us = 0;
  bool first_sketch = true;
  for (ShardStats& shard : shards) {
    stats.offered += shard.offered;
    stats.completed += shard.completed;
    stats.batches += shard.batches;
    stats.sla_violations += shard.sla_violations;
    stats.scale_up_events += shard.scale_up_events;
    stats.scale_down_events += shard.scale_down_events;
    stats.reshard_splits += shard.reshard_splits;
    stats.fault_events += shard.fault_events;
    stats.recover_events += shard.recover_events;
    stats.max_queue_depth =
        std::max(stats.max_queue_depth, shard.max_queue_depth);
    fill_sum += shard.fill_sum;
    depth_integral_us += shard.depth_integral_us;
    makespan_us = std::max(makespan_us, shard.makespan_us);
    if (sketch_mode) {
      if (first_sketch) {
        latency_sketch = std::move(shard.latency_sketch);
        wait_sketch = std::move(shard.wait_sketch);
        first_sketch = false;
      } else {
        FCAD_CHECK_MSG(
            latency_sketch.merge(shard.latency_sketch).is_ok() &&
                wait_sketch.merge(shard.wait_sketch).is_ok(),
            "merge_shard_stats: shard sketches disagree on seed/alpha");
      }
    } else {
      for (double v : shard.latencies) {
        if (latency_hist != nullptr) latency_hist->observe(v);
        latencies.push_back(v);
      }
      for (double v : shard.waits) {
        if (wait_hist != nullptr) wait_hist->observe(v);
        waits.push_back(v);
      }
    }
    // Free each consumed stream as we go so peak memory stays ~1x the
    // merged streams rather than source + destination together.
    std::vector<double>().swap(shard.latencies);
    std::vector<double>().swap(shard.waits);
    for (std::size_t j = 0; j < shard.branch_completed.size(); ++j) {
      stats.branch_completed[j] += shard.branch_completed[j];
    }
    stats.records.insert(stats.records.end(),
                         std::make_move_iterator(shard.records.begin()),
                         std::make_move_iterator(shard.records.end()));
    std::vector<RequestRecord>().swap(shard.records);
  }

  stats.makespan_us = makespan_us;
  stats.throughput_rps =
      makespan_us > 0
          ? static_cast<double>(stats.completed) / (makespan_us * 1e-6)
          : 0;
  if (sketch_mode) {
    stats.latency = summarize(latency_sketch);
    stats.queue_wait = summarize(wait_sketch);
    stats.sketch_compactions =
        latency_sketch.compactions() + wait_sketch.compactions();
    stats.sketch_buckets = latency_sketch.buckets() + wait_sketch.buckets();
  } else {
    stats.latency = summarize(std::move(latencies));
    stats.queue_wait = summarize(std::move(waits));
  }
  stats.mean_batch_fill =
      stats.batches > 0 ? fill_sum / static_cast<double>(stats.batches) : 0;
  stats.mean_queue_depth =
      makespan_us > 0 ? depth_integral_us / makespan_us : 0;
  stats.sla_violation_rate =
      stats.completed > 0
          ? static_cast<double>(stats.sla_violations) /
                static_cast<double>(stats.completed)
          : 0;
  stats.sla_met = stats.latency.p99 <= sla_bound_us;

  double busy_sum = 0;
  for (const ShardStats& shard : shards) {
    for (const InstanceStats& shard_inst : shard.instances) {
      InstanceStats is = shard_inst;
      is.utilization = makespan_us > 0 ? is.busy_us / makespan_us : 0;
      busy_sum += is.utilization;
      stats.instances.push_back(is);
    }
  }
  stats.fleet_utilization = busy_sum / total_instances;

  // Registry export, fed exclusively from this single-threaded shard-index-
  // ordered merge so the exported numbers (histogram buckets included) are
  // bit-identical for any thread count. Totals are cheap and always on; the
  // per-request histogram fills only run under --metrics-out.
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("serving.fleet.requests").add(stats.completed);
    reg.counter("serving.fleet.batches").add(stats.batches);
    reg.counter("serving.fleet.sla_violations").add(stats.sla_violations);
    reg.counter("serving.fleet.resumed_shards").add(stats.resumed_shards);
    reg.counter("serving.elastic.scale_up_events").add(stats.scale_up_events);
    reg.counter("serving.elastic.scale_down_events")
        .add(stats.scale_down_events);
    reg.counter("serving.elastic.reshard_splits").add(stats.reshard_splits);
    reg.counter("serving.elastic.fault_events").add(stats.fault_events);
    reg.counter("serving.elastic.recover_events").add(stats.recover_events);
    if (sketch_mode) {
      // Sketch mode replaces the per-request histograms (which would defeat
      // the bounded-memory point) with sketch health counters.
      reg.counter("serving.sketch.observations")
          .add(latency_sketch.count() + wait_sketch.count());
      reg.counter("serving.sketch.compactions").add(stats.sketch_compactions);
    }
    if (obs::metrics_collection()) {
      if (sketch_mode) {
        reg.gauge("serving.sketch.buckets").set(stats.sketch_buckets);
      }
      reg.gauge("serving.fleet.throughput_rps").set(stats.throughput_rps);
      reg.gauge("serving.fleet.utilization").set(stats.fleet_utilization);
      reg.gauge("serving.fleet.mean_batch_fill").set(stats.mean_batch_fill);
    }
  }
  return stats;
}

}  // namespace fcad::serving
