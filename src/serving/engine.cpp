#include "serving/engine.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace fcad::serving {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

obs::LaneId shard_lane(int shard_index) {
  return obs::LaneId{obs::kServingPid, shard_index};
}

obs::LaneId instance_lane(int global_instance) {
  return obs::LaneId{obs::kServingPid, 1000 + global_instance};
}

FleetEngine::FleetEngine(const ServiceModel& service,
                         const FleetEngineConfig& config, Clock* clock)
    : service_(service),
      config_(config),
      clock_(clock),
      tracer_(obs::tracer()),
      aggregator_(service.capacities(), config.batch_timeout_us),
      dispatcher_(config.policy, config.instances, service.num_branches()),
      tail_(config.expected_requests, config.progress_tail_pct),
      first_arrival_us_(kInf) {
  // Resolved once per engine; every span below carries clock-reading µs, so
  // a virtual-time replay's emitted timeline is identical for any thread
  // count.
  if (tracer_ != nullptr) {
    tracer_->name_lane(shard_lane(config_.shard_index),
                       "serving fleet (virtual time)",
                       "shard " + std::to_string(config_.shard_index));
    for (int k = 0; k < config_.instances; ++k) {
      tracer_->name_lane(instance_lane(config_.first_instance + k),
                         "serving fleet (virtual time)",
                         "instance " +
                             std::to_string(config_.first_instance + k));
    }
  }
  stats_.branch_completed.assign(
      static_cast<std::size_t>(service.num_branches()), 0);
  stats_.latencies.reserve(
      static_cast<std::size_t>(config.expected_requests));
  stats_.waits.reserve(static_cast<std::size_t>(config.expected_requests));
}

void FleetEngine::enqueue(const Request& r) {
  aggregator_.enqueue(r);
  ++stats_.offered;
  first_arrival_us_ = std::min(first_arrival_us_, r.arrival_us);
  const int depth = static_cast<int>(aggregator_.pending());
  if (depth > stats_.max_queue_depth) {
    stats_.max_queue_depth = depth;
    // Counter samples only on a new high-water mark, so the event count
    // stays bounded even on million-request replays.
    if (tracer_ != nullptr) {
      tracer_->counter(shard_lane(config_.shard_index), "queue depth",
                       clock_->now_us(), depth);
    }
  }
}

void FleetEngine::close() {
  closed_ = true;
  aggregator_.close();
}

void FleetEngine::dispatch_ready() {
  const double now_us = clock_->now_us();
  while (true) {
    const int branch = aggregator_.ready_branch(now_us);
    if (branch < 0) break;
    const int k = dispatcher_.pick(branch, now_us);
    if (k < 0) break;
    Batch batch = *aggregator_.pop_ready(now_us);

    const double finish_us = dispatcher_.dispatch(
        k, branch, now_us,
        service_.branches[static_cast<std::size_t>(branch)].pass_us,
        config_.switch_penalty_us,
        static_cast<std::int64_t>(batch.requests.size()));

    if (tracer_ != nullptr) {
      tracer_->complete(
          instance_lane(config_.first_instance + k),
          "batch b" + std::to_string(branch), "serving", now_us,
          finish_us - now_us,
          {{"branch", static_cast<double>(branch)},
           {"requests", static_cast<double>(batch.requests.size())}});
    }
    ++stats_.batches;
    stats_.fill_sum += static_cast<double>(batch.requests.size()) /
                       static_cast<double>(aggregator_.capacity(branch));
    stats_.makespan_us = std::max(stats_.makespan_us, finish_us);
    for (const Request& r : batch.requests) {
      const double latency = finish_us - r.arrival_us;
      stats_.latencies.push_back(latency);
      stats_.waits.push_back(now_us - r.arrival_us);
      tail_.add(latency);
      if (latency > config_.sla_bound_us) ++stats_.sla_violations;
      ++stats_.completed;
      ++stats_.branch_completed[static_cast<std::size_t>(r.branch)];
      if (config_.keep_records) {
        stats_.records.push_back({r.id, r.user, r.branch,
                                  config_.first_instance + k, r.arrival_us,
                                  now_us, finish_us});
      }
    }
    if (batch_hook_) batch_hook_(batch, k, now_us, finish_us);
  }
}

double FleetEngine::next_event_us() {
  // When a batch is ready but every instance is busy, the next event is an
  // instance freeing up; otherwise it is the earliest batching deadline.
  const double now_us = clock_->now_us();
  if (aggregator_.has_ready(now_us)) {
    // A steady clock can cross an instance's free time between
    // dispatch_ready() and this call; the freed instance makes the ready
    // batch dispatchable *immediately*, so the next event is "now" —
    // consulting next_free_us() instead would sleep on the remaining busy
    // set (or forever, once the busy heap is empty) while holding
    // dispatchable work. Virtual time cannot hit this branch: its reading
    // is frozen between the two calls, so whatever dispatch_ready() left
    // ready found every instance busy and stays that way.
    if (dispatcher_.any_free(now_us)) return now_us;
    return dispatcher_.next_free_us(now_us);
  }
  if (aggregator_.pending() > 0) return aggregator_.next_deadline_us();
  return kInf;
}

void FleetEngine::advance_to(double t_us) {
  const double before_us = clock_->now_us();
  const double after_us = clock_->sleep_until_us(t_us);
  stats_.depth_integral_us +=
      static_cast<double>(aggregator_.pending()) * (after_us - before_us);
}

ShardStats FleetEngine::take_stats() {
  for (int k = 0; k < config_.instances; ++k) {
    const InstanceState& inst =
        dispatcher_.instances()[static_cast<std::size_t>(k)];
    InstanceStats is;
    is.instance = config_.first_instance + k;
    is.batches = inst.batches;
    is.requests = inst.requests;
    is.branch_switches = inst.switches;
    is.busy_us = inst.busy_us;
    stats_.instances.push_back(is);
  }
  if (tracer_ != nullptr && stats_.offered > 0) {
    tracer_->complete(
        shard_lane(config_.shard_index), "shard replay", "serving",
        first_arrival_us_,
        std::max(stats_.makespan_us - first_arrival_us_, 0.0),
        {{"requests", static_cast<double>(stats_.completed)},
         {"batches", static_cast<double>(stats_.batches)}});
  }
  return std::move(stats_);
}

ServingStats merge_shard_stats(const std::vector<ShardStats>& shards,
                               const ServiceModel& service,
                               double sla_bound_us, int total_instances,
                               int resumed_shards) {
  ServingStats stats;
  stats.sla_bound_us = sla_bound_us;
  stats.branch_completed.assign(
      static_cast<std::size_t>(service.num_branches()), 0);
  stats.resumed_shards = resumed_shards;
  std::size_t total = 0;
  for (const ShardStats& shard : shards) total += shard.latencies.size();
  std::vector<double> latencies;
  std::vector<double> waits;
  latencies.reserve(total);
  waits.reserve(total);
  double fill_sum = 0;
  double depth_integral_us = 0;
  double makespan_us = 0;
  for (const ShardStats& shard : shards) {
    stats.offered += shard.offered;
    stats.completed += shard.completed;
    stats.batches += shard.batches;
    stats.sla_violations += shard.sla_violations;
    stats.max_queue_depth =
        std::max(stats.max_queue_depth, shard.max_queue_depth);
    fill_sum += shard.fill_sum;
    depth_integral_us += shard.depth_integral_us;
    makespan_us = std::max(makespan_us, shard.makespan_us);
    latencies.insert(latencies.end(), shard.latencies.begin(),
                     shard.latencies.end());
    waits.insert(waits.end(), shard.waits.begin(), shard.waits.end());
    for (std::size_t j = 0; j < shard.branch_completed.size(); ++j) {
      stats.branch_completed[j] += shard.branch_completed[j];
    }
    stats.records.insert(stats.records.end(), shard.records.begin(),
                         shard.records.end());
  }

  stats.makespan_us = makespan_us;
  stats.throughput_rps =
      makespan_us > 0
          ? static_cast<double>(stats.completed) / (makespan_us * 1e-6)
          : 0;
  stats.latency = summarize(std::move(latencies));
  stats.queue_wait = summarize(std::move(waits));
  stats.mean_batch_fill =
      stats.batches > 0 ? fill_sum / static_cast<double>(stats.batches) : 0;
  stats.mean_queue_depth =
      makespan_us > 0 ? depth_integral_us / makespan_us : 0;
  stats.sla_violation_rate =
      stats.completed > 0
          ? static_cast<double>(stats.sla_violations) /
                static_cast<double>(stats.completed)
          : 0;
  stats.sla_met = stats.latency.p99 <= sla_bound_us;

  double busy_sum = 0;
  for (const ShardStats& shard : shards) {
    for (const InstanceStats& shard_inst : shard.instances) {
      InstanceStats is = shard_inst;
      is.utilization = makespan_us > 0 ? is.busy_us / makespan_us : 0;
      busy_sum += is.utilization;
      stats.instances.push_back(is);
    }
  }
  stats.fleet_utilization = busy_sum / total_instances;

  // Registry export, fed exclusively from this single-threaded shard-index-
  // ordered merge so the exported numbers (histogram buckets included) are
  // bit-identical for any thread count. Totals are cheap and always on; the
  // per-request histogram fills only run under --metrics-out.
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("serving.fleet.requests").add(stats.completed);
    reg.counter("serving.fleet.batches").add(stats.batches);
    reg.counter("serving.fleet.sla_violations").add(stats.sla_violations);
    reg.counter("serving.fleet.resumed_shards").add(stats.resumed_shards);
    if (obs::metrics_collection()) {
      static const std::vector<double> kLatencyBounds = {
          100,   200,   500,    1000,   2000,   5000,  10000,
          20000, 50000, 100000, 200000, 500000, 1e6};
      obs::Histogram& latency_hist =
          reg.histogram("serving.latency_us", kLatencyBounds);
      obs::Histogram& wait_hist =
          reg.histogram("serving.queue_wait_us", kLatencyBounds);
      for (const ShardStats& shard : shards) {
        for (double v : shard.latencies) latency_hist.observe(v);
        for (double v : shard.waits) wait_hist.observe(v);
      }
      reg.gauge("serving.fleet.throughput_rps").set(stats.throughput_rps);
      reg.gauge("serving.fleet.utilization").set(stats.fleet_utilization);
      reg.gauge("serving.fleet.mean_batch_fill").set(stats.mean_batch_fill);
    }
  }
  return stats;
}

}  // namespace fcad::serving
