#include "serving/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace fcad::serving {

namespace {

/// 0-based index of the nearest-rank pick: ceil(pct/100 * n), 1-indexed.
std::size_t nearest_rank_index(std::size_t n, double pct) {
  auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  return std::max<std::size_t>(rank, 1) - 1;
}

/// Nearest-rank pick from an already sorted, non-empty sample set.
double sorted_percentile(const std::vector<double>& sorted, double pct) {
  return sorted[nearest_rank_index(sorted.size(), pct)];
}

}  // namespace

double percentile(std::vector<double> samples, double pct) {
  FCAD_CHECK_MSG(!samples.empty(), "percentile: empty sample set");
  FCAD_CHECK_MSG(pct > 0 && pct <= 100, "percentile: pct out of (0, 100]");
  // One order statistic, so nth_element's O(n) beats a full sort — this runs
  // ~21 times over the whole latency set when a fleet replay streams partial
  // p99 estimates.
  const std::size_t index = nearest_rank_index(samples.size(), pct);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

LatencySummary summarize(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  s.count = static_cast<std::int64_t>(samples.size());
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  s.max = samples.back();
  s.p50 = sorted_percentile(samples, 50);
  s.p95 = sorted_percentile(samples, 95);
  s.p99 = sorted_percentile(samples, 99);
  return s;
}

namespace {

std::string ms(double us) { return format_fixed(us * 1e-3, 3) + " ms"; }

}  // namespace

std::string serving_report(const ServingStats& stats) {
  TablePrinter t({"Metric", "Value"});
  t.add_row({"requests offered", format_int(stats.offered)});
  t.add_row({"requests completed", format_int(stats.completed)});
  t.add_row({"makespan", ms(stats.makespan_us)});
  t.add_row({"throughput", format_fixed(stats.throughput_rps, 1) + " req/s"});
  t.add_separator();
  t.add_row({"latency mean", ms(stats.latency.mean)});
  t.add_row({"latency p50", ms(stats.latency.p50)});
  t.add_row({"latency p95", ms(stats.latency.p95)});
  t.add_row({"latency p99", ms(stats.latency.p99)});
  t.add_row({"latency max", ms(stats.latency.max)});
  t.add_row({"queue wait p99", ms(stats.queue_wait.p99)});
  t.add_separator();
  t.add_row({"batches dispatched", format_int(stats.batches)});
  t.add_row({"mean batch fill", format_percent(stats.mean_batch_fill, 1)});
  t.add_row({"mean queue depth", format_fixed(stats.mean_queue_depth, 2)});
  t.add_row({"max queue depth", format_int(stats.max_queue_depth)});
  t.add_separator();
  t.add_row({"SLA bound", ms(stats.sla_bound_us)});
  t.add_row({"SLA violations",
             format_int(stats.sla_violations) + " (" +
                 format_percent(stats.sla_violation_rate, 2) + ")"});
  t.add_row({"SLA met (p99 <= bound)", stats.sla_met ? "yes" : "no"});
  t.add_separator();
  t.add_row({"fleet utilization", format_percent(stats.fleet_utilization, 1)});
  for (const auto& inst : stats.instances) {
    t.add_row({"  instance " + std::to_string(inst.instance),
               format_percent(inst.utilization, 1) + " busy, " +
                   format_int(inst.batches) + " batches, " +
                   format_int(inst.branch_switches) + " switches"});
  }
  return t.to_string();
}

std::vector<std::string> serving_csv_header(std::vector<std::string> keys) {
  for (const char* col :
       {"offered", "completed", "throughput_rps", "latency_mean_us",
        "latency_p50_us", "latency_p95_us", "latency_p99_us", "latency_max_us",
        "queue_wait_p99_us", "batches", "mean_batch_fill", "mean_queue_depth",
        "max_queue_depth", "sla_bound_us", "sla_violation_rate", "sla_met",
        "fleet_utilization"}) {
    keys.emplace_back(col);
  }
  return keys;
}

std::vector<std::string> serving_csv_row(std::vector<std::string> keys,
                                         const ServingStats& stats) {
  const auto num = [](double v) { return format_fixed(v, 4); };
  keys.push_back(std::to_string(stats.offered));
  keys.push_back(std::to_string(stats.completed));
  keys.push_back(num(stats.throughput_rps));
  keys.push_back(num(stats.latency.mean));
  keys.push_back(num(stats.latency.p50));
  keys.push_back(num(stats.latency.p95));
  keys.push_back(num(stats.latency.p99));
  keys.push_back(num(stats.latency.max));
  keys.push_back(num(stats.queue_wait.p99));
  keys.push_back(std::to_string(stats.batches));
  keys.push_back(num(stats.mean_batch_fill));
  keys.push_back(num(stats.mean_queue_depth));
  keys.push_back(std::to_string(stats.max_queue_depth));
  keys.push_back(num(stats.sla_bound_us));
  keys.push_back(num(stats.sla_violation_rate));
  keys.push_back(stats.sla_met ? "1" : "0");
  keys.push_back(num(stats.fleet_utilization));
  return keys;
}

void serving_stats_json(JsonWriter& json, const ServingStats& stats) {
  json.begin_object();
  json.key("offered").value(stats.offered);
  json.key("completed").value(stats.completed);
  json.key("throughput_rps").value(stats.throughput_rps);
  json.key("mean_us").value(stats.latency.mean);
  json.key("p50_us").value(stats.latency.p50);
  json.key("p95_us").value(stats.latency.p95);
  json.key("p99_us").value(stats.latency.p99);
  json.key("max_us").value(stats.latency.max);
  json.key("queue_wait_p99_us").value(stats.queue_wait.p99);
  json.key("batches").value(stats.batches);
  json.key("mean_batch_fill").value(stats.mean_batch_fill);
  json.key("sla_bound_us").value(stats.sla_bound_us);
  json.key("sla_met").value(stats.sla_met);
  json.key("sla_violation_rate").value(stats.sla_violation_rate);
  json.key("fleet_utilization").value(stats.fleet_utilization);
  json.end_object();
}

}  // namespace fcad::serving
