#include "serving/stats.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/format.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace fcad::serving {

namespace {

/// 0-based index of the nearest-rank pick: ceil(pct/100 * n), 1-indexed.
std::size_t nearest_rank_index(std::size_t n, double pct) {
  auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  return std::max<std::size_t>(rank, 1) - 1;
}

/// Nearest-rank pick from an already sorted, non-empty sample set.
double sorted_percentile(const std::vector<double>& sorted, double pct) {
  return sorted[nearest_rank_index(sorted.size(), pct)];
}

}  // namespace

double percentile(std::vector<double> samples, double pct) {
  FCAD_CHECK_MSG(!samples.empty(), "percentile: empty sample set");
  FCAD_CHECK_MSG(pct > 0 && pct <= 100, "percentile: pct out of (0, 100]");
  // One order statistic, so nth_element's O(n) beats a full sort — this runs
  // ~21 times over the whole latency set when a fleet replay streams partial
  // p99 estimates.
  const std::size_t index = nearest_rank_index(samples.size(), pct);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index),
                   samples.end());
  return samples[index];
}

Status validate_percentile(double pct) {
  if (!(pct > 0 && pct <= 100)) {
    return Status::invalid_argument("percentile rank " + format_exact(pct) +
                                    " is out of (0, 100]");
  }
  return Status::ok();
}

StatusOr<double> percentile_checked(std::vector<double> samples, double pct) {
  if (Status s = validate_percentile(pct); !s.is_ok()) return s;
  if (samples.empty()) {
    return Status::invalid_argument("percentile: empty sample set");
  }
  return percentile(std::move(samples), pct);
}

TailTracker::TailTracker(std::int64_t expected_total, double pct)
    : pct_(pct) {
  FCAD_CHECK_MSG(validate_percentile(pct).is_ok(),
                 "TailTracker: pct out of (0, 100]");
  const auto n = static_cast<double>(std::max<std::int64_t>(expected_total, 1));
  // Samples >= the nearest-rank pick at n total: n - ceil(pct/100 * n) + 1.
  const auto rank =
      std::max<std::int64_t>(static_cast<std::int64_t>(
                                 std::ceil(pct / 100.0 * n)),
                             1);
  cap_ = static_cast<std::size_t>(
      std::max<std::int64_t>(expected_total, 1) - rank + 1);
  tail_.reserve(cap_);
}

void TailTracker::add(double sample) {
  ++seen_;
  if (tail_.size() < cap_) {
    tail_.push_back(sample);
    std::push_heap(tail_.begin(), tail_.end(), std::greater<>());
  } else if (sample > tail_.front()) {
    std::pop_heap(tail_.begin(), tail_.end(), std::greater<>());
    tail_.back() = sample;
    std::push_heap(tail_.begin(), tail_.end(), std::greater<>());
  }
}

double TailTracker::partial() const {
  if (seen_ == 0) return 0;
  const auto n = static_cast<std::size_t>(seen_);
  // The nearest-rank pick over n samples is the k-th largest one; the tail
  // heap holds the top min(n, cap_) samples, which contains it whenever the
  // caller honored expected_total (clamped defensively otherwise).
  std::size_t k = n - nearest_rank_index(n, pct_);
  std::vector<double> top = tail_;
  k = std::min(k, top.size());
  const std::size_t pos = top.size() - k;
  std::nth_element(top.begin(),
                   top.begin() + static_cast<std::ptrdiff_t>(pos), top.end());
  return top[pos];
}

LatencySummary summarize(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  s.count = static_cast<std::int64_t>(samples.size());
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  s.max = samples.back();
  s.p50 = sorted_percentile(samples, 50);
  s.p95 = sorted_percentile(samples, 95);
  s.p99 = sorted_percentile(samples, 99);
  return s;
}

LatencySummary summarize(const QuantileSketch& sketch) {
  LatencySummary s;
  if (sketch.count() == 0) return s;
  s.count = sketch.count();
  s.mean = sketch.sum() / static_cast<double>(sketch.count());
  s.p50 = sketch.quantile(50);
  s.p95 = sketch.quantile(95);
  s.p99 = sketch.quantile(99);
  s.max = sketch.max();
  return s;
}

namespace {

std::string ms(double us) { return format_fixed(us * 1e-3, 3) + " ms"; }

}  // namespace

std::string serving_report(const ServingStats& stats) {
  TablePrinter t({"Metric", "Value"});
  t.add_row({"requests offered", format_int(stats.offered)});
  t.add_row({"requests completed", format_int(stats.completed)});
  t.add_row({"makespan", ms(stats.makespan_us)});
  t.add_row({"throughput", format_fixed(stats.throughput_rps, 1) + " req/s"});
  t.add_separator();
  t.add_row({"latency mean", ms(stats.latency.mean)});
  t.add_row({"latency p50", ms(stats.latency.p50)});
  t.add_row({"latency p95", ms(stats.latency.p95)});
  t.add_row({"latency p99", ms(stats.latency.p99)});
  t.add_row({"latency max", ms(stats.latency.max)});
  t.add_row({"queue wait p99", ms(stats.queue_wait.p99)});
  if (stats.latency_mode == LatencyMode::kSketch) {
    t.add_row({"latency accounting",
               "sketch (" + std::to_string(stats.sketch_buckets) +
                   " buckets, " + format_int(stats.sketch_compactions) +
                   " compactions)"});
  }
  t.add_separator();
  t.add_row({"batches dispatched", format_int(stats.batches)});
  for (std::size_t j = 0; j < stats.branch_completed.size(); ++j) {
    t.add_row({"  branch " + std::to_string(j) + " completed",
               format_int(stats.branch_completed[j])});
  }
  t.add_row({"mean batch fill", format_percent(stats.mean_batch_fill, 1)});
  t.add_row({"mean queue depth", format_fixed(stats.mean_queue_depth, 2)});
  t.add_row({"max queue depth", format_int(stats.max_queue_depth)});
  t.add_separator();
  t.add_row({"SLA bound", ms(stats.sla_bound_us)});
  t.add_row({"SLA violations",
             format_int(stats.sla_violations) + " (" +
                 format_percent(stats.sla_violation_rate, 2) + ")"});
  t.add_row({"SLA met (p99 <= bound)", stats.sla_met ? "yes" : "no"});
  t.add_separator();
  const bool elastic = stats.scale_up_events > 0 ||
                       stats.scale_down_events > 0 ||
                       stats.reshard_splits > 0 || stats.fault_events > 0 ||
                       stats.recover_events > 0;
  if (elastic) {
    t.add_row({"scale up / down events",
               format_int(stats.scale_up_events) + " / " +
                   format_int(stats.scale_down_events)});
    t.add_row({"reshard splits", format_int(stats.reshard_splits)});
    t.add_row({"faults / recoveries",
               format_int(stats.fault_events) + " / " +
                   format_int(stats.recover_events)});
    t.add_separator();
  }
  t.add_row({"fleet utilization", format_percent(stats.fleet_utilization, 1)});
  for (const auto& inst : stats.instances) {
    t.add_row({"  instance " + std::to_string(inst.instance),
               format_percent(inst.utilization, 1) + " busy, " +
                   format_int(inst.batches) + " batches, " +
                   format_int(inst.branch_switches) + " switches"});
  }
  return t.to_string();
}

std::vector<std::string> serving_csv_header(std::vector<std::string> keys) {
  for (const char* col :
       {"offered", "completed", "throughput_rps", "latency_mean_us",
        "latency_p50_us", "latency_p95_us", "latency_p99_us", "latency_max_us",
        "queue_wait_p99_us", "batches", "mean_batch_fill", "mean_queue_depth",
        "max_queue_depth", "sla_bound_us", "sla_violation_rate", "sla_met",
        "fleet_utilization", "scale_up_events", "scale_down_events",
        "reshard_splits", "fault_events", "recover_events"}) {
    keys.emplace_back(col);
  }
  return keys;
}

std::vector<std::string> serving_csv_row(std::vector<std::string> keys,
                                         const ServingStats& stats) {
  const auto num = [](double v) { return format_fixed(v, 4); };
  keys.push_back(std::to_string(stats.offered));
  keys.push_back(std::to_string(stats.completed));
  keys.push_back(num(stats.throughput_rps));
  keys.push_back(num(stats.latency.mean));
  keys.push_back(num(stats.latency.p50));
  keys.push_back(num(stats.latency.p95));
  keys.push_back(num(stats.latency.p99));
  keys.push_back(num(stats.latency.max));
  keys.push_back(num(stats.queue_wait.p99));
  keys.push_back(std::to_string(stats.batches));
  keys.push_back(num(stats.mean_batch_fill));
  keys.push_back(num(stats.mean_queue_depth));
  keys.push_back(std::to_string(stats.max_queue_depth));
  keys.push_back(num(stats.sla_bound_us));
  keys.push_back(num(stats.sla_violation_rate));
  keys.push_back(stats.sla_met ? "1" : "0");
  keys.push_back(num(stats.fleet_utilization));
  keys.push_back(std::to_string(stats.scale_up_events));
  keys.push_back(std::to_string(stats.scale_down_events));
  keys.push_back(std::to_string(stats.reshard_splits));
  keys.push_back(std::to_string(stats.fault_events));
  keys.push_back(std::to_string(stats.recover_events));
  return keys;
}

void serving_stats_json(JsonWriter& json, const ServingStats& stats) {
  json.begin_object();
  json.key("offered").value(stats.offered);
  json.key("completed").value(stats.completed);
  json.key("throughput_rps").value(stats.throughput_rps);
  json.key("mean_us").value(stats.latency.mean);
  json.key("p50_us").value(stats.latency.p50);
  json.key("p95_us").value(stats.latency.p95);
  json.key("p99_us").value(stats.latency.p99);
  json.key("max_us").value(stats.latency.max);
  json.key("queue_wait_p99_us").value(stats.queue_wait.p99);
  json.key("batches").value(stats.batches);
  json.key("mean_batch_fill").value(stats.mean_batch_fill);
  json.key("sla_bound_us").value(stats.sla_bound_us);
  json.key("sla_met").value(stats.sla_met);
  json.key("sla_violation_rate").value(stats.sla_violation_rate);
  json.key("fleet_utilization").value(stats.fleet_utilization);
  json.key("scale_up_events").value(stats.scale_up_events);
  json.key("scale_down_events").value(stats.scale_down_events);
  json.key("reshard_splits").value(stats.reshard_splits);
  json.key("fault_events").value(stats.fault_events);
  json.key("recover_events").value(stats.recover_events);
  // Emitted only in sketch mode: exact-mode JSON must stay byte-identical
  // to pre-sketch output (the CI 1M replay diffs it literally).
  if (stats.latency_mode == LatencyMode::kSketch) {
    json.key("latency_mode").value(to_string(stats.latency_mode));
    json.key("sketch_compactions").value(stats.sketch_compactions);
    json.key("sketch_buckets").value(stats.sketch_buckets);
  }
  json.key("branch_completed").begin_array();
  for (std::int64_t n : stats.branch_completed) json.value(n);
  json.end_array();
  json.end_object();
}

namespace {

void write_summary(std::ostream& os, const char* key,
                   const LatencySummary& s) {
  os << key << " " << s.count << " " << format_exact(s.mean) << " "
     << format_exact(s.p50) << " " << format_exact(s.p95) << " "
     << format_exact(s.p99) << " " << format_exact(s.max) << "\n";
}

bool read_summary(std::istringstream& fields, LatencySummary& s) {
  fields >> s.count >> s.mean >> s.p50 >> s.p95 >> s.p99 >> s.max;
  return !fields.fail();
}

Status truncated(const std::string& what) {
  return Status::invalid_argument("serving stats: truncated " + what +
                                  " list");
}

}  // namespace

void write_instance_line(std::ostream& os, const InstanceStats& inst) {
  os << "instance " << inst.instance << " " << inst.batches << " "
     << inst.requests << " " << inst.branch_switches << " "
     << format_exact(inst.busy_us) << " " << format_exact(inst.utilization)
     << "\n";
}

bool parse_instance_line(const std::string& line, InstanceStats& inst) {
  std::istringstream fields(line);
  std::string key;
  fields >> key >> inst.instance >> inst.batches >> inst.requests >>
      inst.branch_switches >> inst.busy_us >> inst.utilization;
  return key == "instance" && !fields.fail();
}

void write_record_line(std::ostream& os, const RequestRecord& rec) {
  os << "record " << rec.id << " " << rec.user << " " << rec.branch << " "
     << rec.instance << " " << format_exact(rec.arrival_us) << " "
     << format_exact(rec.start_us) << " " << format_exact(rec.finish_us)
     << "\n";
}

bool parse_record_line(const std::string& line, RequestRecord& rec) {
  std::istringstream fields(line);
  std::string key;
  fields >> key >> rec.id >> rec.user >> rec.branch >> rec.instance >>
      rec.arrival_us >> rec.start_us >> rec.finish_us;
  return key == "record" && !fields.fail();
}

void serving_stats_to_text(std::ostream& os, const ServingStats& stats) {
  os << "serving_stats\n";
  os << "offered " << stats.offered << "\n";
  os << "completed " << stats.completed << "\n";
  os << "makespan_us " << format_exact(stats.makespan_us) << "\n";
  os << "throughput_rps " << format_exact(stats.throughput_rps) << "\n";
  write_summary(os, "latency", stats.latency);
  write_summary(os, "queue_wait", stats.queue_wait);
  os << "batches " << stats.batches << "\n";
  os << "mean_batch_fill " << format_exact(stats.mean_batch_fill) << "\n";
  os << "mean_queue_depth " << format_exact(stats.mean_queue_depth) << "\n";
  os << "max_queue_depth " << stats.max_queue_depth << "\n";
  os << "sla_bound_us " << format_exact(stats.sla_bound_us) << "\n";
  os << "sla_violations " << stats.sla_violations << "\n";
  os << "sla_violation_rate " << format_exact(stats.sla_violation_rate)
     << "\n";
  os << "sla_met " << (stats.sla_met ? 1 : 0) << "\n";
  os << "fleet_utilization " << format_exact(stats.fleet_utilization) << "\n";
  os << "scale_up_events " << stats.scale_up_events << "\n";
  os << "scale_down_events " << stats.scale_down_events << "\n";
  os << "reshard_splits " << stats.reshard_splits << "\n";
  os << "fault_events " << stats.fault_events << "\n";
  os << "recover_events " << stats.recover_events << "\n";
  // Written only in sketch mode so the default exact-mode block stays
  // byte-identical to every previously produced artifact.
  if (stats.latency_mode == LatencyMode::kSketch) {
    os << "latency_mode " << to_string(stats.latency_mode) << "\n";
    os << "sketch_compactions " << stats.sketch_compactions << "\n";
    os << "sketch_buckets " << stats.sketch_buckets << "\n";
  }
  os << "branch_completed " << stats.branch_completed.size();
  for (std::int64_t n : stats.branch_completed) os << " " << n;
  os << "\n";
  os << "instances " << stats.instances.size() << "\n";
  for (const InstanceStats& inst : stats.instances) {
    write_instance_line(os, inst);
  }
  os << "records " << stats.records.size() << "\n";
  for (const RequestRecord& rec : stats.records) {
    write_record_line(os, rec);
  }
  os << "serving_stats_end\n";
}

StatusOr<ServingStats> serving_stats_from_text(std::istream& in,
                                               bool header_consumed) {
  std::string line;
  if (!header_consumed) {
    // Skip blank lines, then require the block header.
    while (std::getline(in, line) && line.empty()) {
    }
    if (line != "serving_stats") {
      return Status::invalid_argument(
          "serving stats: missing 'serving_stats' header");
    }
  }

  ServingStats stats;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "serving_stats_end") {
      saw_end = true;
      break;
    }
    if (key == "latency" || key == "queue_wait") {
      LatencySummary& target =
          key == "latency" ? stats.latency : stats.queue_wait;
      if (!read_summary(fields, target)) {
        return Status::invalid_argument("serving stats: malformed " + key +
                                        " line");
      }
      continue;
    }
    if (key == "offered") {
      fields >> stats.offered;
    } else if (key == "completed") {
      fields >> stats.completed;
    } else if (key == "makespan_us") {
      fields >> stats.makespan_us;
    } else if (key == "throughput_rps") {
      fields >> stats.throughput_rps;
    } else if (key == "batches") {
      fields >> stats.batches;
    } else if (key == "mean_batch_fill") {
      fields >> stats.mean_batch_fill;
    } else if (key == "mean_queue_depth") {
      fields >> stats.mean_queue_depth;
    } else if (key == "max_queue_depth") {
      fields >> stats.max_queue_depth;
    } else if (key == "sla_bound_us") {
      fields >> stats.sla_bound_us;
    } else if (key == "sla_violations") {
      fields >> stats.sla_violations;
    } else if (key == "sla_violation_rate") {
      fields >> stats.sla_violation_rate;
    } else if (key == "sla_met") {
      int met = 0;
      fields >> met;
      stats.sla_met = met == 1;
    } else if (key == "fleet_utilization") {
      fields >> stats.fleet_utilization;
    } else if (key == "scale_up_events") {
      fields >> stats.scale_up_events;
    } else if (key == "scale_down_events") {
      fields >> stats.scale_down_events;
    } else if (key == "reshard_splits") {
      fields >> stats.reshard_splits;
    } else if (key == "fault_events") {
      fields >> stats.fault_events;
    } else if (key == "recover_events") {
      fields >> stats.recover_events;
    } else if (key == "latency_mode") {
      std::string name;
      fields >> name;
      auto mode = latency_mode_by_name(name);
      if (!mode.is_ok()) {
        return Status::invalid_argument(
            "serving stats: unknown latency_mode '" + name + "'");
      }
      stats.latency_mode = mode.value();
    } else if (key == "sketch_compactions") {
      fields >> stats.sketch_compactions;
    } else if (key == "sketch_buckets") {
      fields >> stats.sketch_buckets;
    } else if (key == "branch_completed") {
      std::size_t n = 0;
      fields >> n;
      for (std::size_t j = 0; j < n && !fields.fail(); ++j) {
        std::int64_t count = 0;
        fields >> count;
        stats.branch_completed.push_back(count);
      }
    } else if (key == "instances") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) {
        return Status::invalid_argument(
            "serving stats: malformed instances line");
      }
      for (std::size_t i = 0; i < n; ++i) {
        InstanceStats inst;
        if (!std::getline(in, line) || !parse_instance_line(line, inst)) {
          return truncated("instance");
        }
        stats.instances.push_back(inst);
      }
      continue;
    } else if (key == "records") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) {
        return Status::invalid_argument(
            "serving stats: malformed records line");
      }
      for (std::size_t i = 0; i < n; ++i) {
        RequestRecord rec;
        if (!std::getline(in, line) || !parse_record_line(line, rec)) {
          return truncated("record");
        }
        stats.records.push_back(rec);
      }
      continue;
    } else {
      return Status::invalid_argument("serving stats: unknown field '" + key +
                                      "'");
    }
    if (fields.fail()) {
      return Status::invalid_argument("serving stats: malformed " + key +
                                      " line");
    }
  }
  if (!saw_end) {
    return Status::invalid_argument(
        "serving stats: truncated (missing serving_stats_end marker)");
  }
  return stats;
}

}  // namespace fcad::serving
