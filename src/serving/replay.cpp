#include "serving/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "serving/clock.hpp"
#include "serving/daemon.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/run_control.hpp"

namespace fcad::serving {
namespace {

/// Peak resident set size of this process in kB (VmHWM from
/// /proc/self/status), 0 where unavailable. Reported in sketch-mode JSON so
/// the CI bench gate can assert the bounded-memory claim directly.
std::int64_t peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::int64_t kb = 0;
    fields >> kb;
    return fields.fail() ? 0 : kb;
  }
  return 0;
}

}  // namespace

StatusOr<ReplayJob> replay_job_from_args(const ArgParser& args) {
  ReplayJob job;
  WorkloadOptions& workload = job.spec.workload;
  FleetOptions& fleet = job.spec.fleet;

  auto requests = args.get_int("replay", 0);
  if (!requests.is_ok()) return requests.status();
  workload.target_requests = *requests;
  auto users = args.get_int("users", 8);
  if (!users.is_ok()) return users.status();
  workload.users = static_cast<int>(*users);
  auto frame_rate = args.get_double("frame-rate", 30.0);
  if (!frame_rate.is_ok()) return frame_rate.status();
  workload.frame_rate_hz = *frame_rate;
  auto seed = args.get_int("seed", 42);
  if (!seed.is_ok()) return seed.status();
  workload.seed = static_cast<std::uint64_t>(*seed);

  auto instances = args.get_int("instances", 8);
  if (!instances.is_ok()) return instances.status();
  fleet.instances = static_cast<int>(*instances);
  auto shards = args.get_int("shards", 8);
  if (!shards.is_ok()) return shards.status();
  fleet.shards = static_cast<int>(*shards);
  auto threads = args.get_int("threads", 0);
  if (!threads.is_ok()) return threads.status();
  fleet.threads = static_cast<int>(*threads);
  auto policy = dispatch_policy_by_name(args.get("policy", "least-loaded"));
  if (!policy.is_ok()) return policy.status();
  fleet.policy = *policy;
  auto timeout_us = args.get_double("timeout-us", 4000.0);
  if (!timeout_us.is_ok()) return timeout_us.status();
  fleet.batch_timeout_us = *timeout_us;
  auto switch_penalty = args.get_double("switch-penalty-us", 500.0);
  if (!switch_penalty.is_ok()) return switch_penalty.status();
  fleet.switch_penalty_us = *switch_penalty;
  auto tail_pct = args.get_double("tail-pct", 99.0);
  if (!tail_pct.is_ok()) return tail_pct.status();
  if (Status s = validate_percentile(*tail_pct); !s.is_ok()) {
    return Status::invalid_argument("--tail-pct: " + s.message());
  }
  fleet.progress_tail_pct = *tail_pct;
  fleet.checkpoint_path = args.get("checkpoint", "");

  auto sla_ms = args.get_double("sla-ms", 100.0 / 3.0);
  if (!sla_ms.is_ok()) return sla_ms.status();
  job.spec.sla.p99_bound_us = *sla_ms * 1e3;
  auto clock = clock_kind_by_name(args.get("clock", "virtual"));
  if (!clock.is_ok()) return clock.status();
  job.spec.clock = *clock;

  auto scenario = scenario_from_string(args.get("scenario", "none"));
  if (!scenario.is_ok()) {
    return Status::invalid_argument("--scenario: " +
                                    scenario.status().message());
  }
  job.spec.scenario = *scenario;
  auto elastic = elastic_from_string(args.get("elastic", "none"));
  if (!elastic.is_ok()) {
    return Status::invalid_argument("--elastic: " +
                                    elastic.status().message());
  }
  job.spec.elastic = *elastic;

  auto latency_mode = latency_mode_by_name(args.get("latency-mode", "exact"));
  if (!latency_mode.is_ok()) {
    return Status::invalid_argument("--latency-mode: " +
                                    latency_mode.status().message());
  }
  fleet.latency_mode = *latency_mode;
  job.stream = args.has("stream");

  // --process-shard i/N: this invocation owns process i's contiguous shard
  // range of an N-process streaming replay.
  if (const std::string shard_of = args.get("process-shard", "");
      !shard_of.empty()) {
    const std::size_t slash = shard_of.find('/');
    bool ok = slash != std::string::npos && slash > 0 &&
              slash + 1 < shard_of.size();
    if (ok) {
      try {
        std::size_t used_i = 0;
        std::size_t used_n = 0;
        const std::string left = shard_of.substr(0, slash);
        const std::string right = shard_of.substr(slash + 1);
        fleet.process_index = std::stoi(left, &used_i);
        fleet.process_count = std::stoi(right, &used_n);
        ok = used_i == left.size() && used_n == right.size();
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok) {
      return Status::invalid_argument(
          "--process-shard: expected i/N (e.g. 0/4), got '" + shard_of + "'");
    }
    job.stream = true;  // process sharding only exists on the stream path
  }

  // --merge a,b,...: fold the listed process-shard checkpoints.
  if (const std::string merge = args.get("merge", ""); !merge.empty()) {
    std::size_t start = 0;
    while (start <= merge.size()) {
      const std::size_t comma = merge.find(',', start);
      const std::string path =
          merge.substr(start, comma == std::string::npos ? std::string::npos
                                                         : comma - start);
      if (!path.empty()) job.merge_paths.push_back(path);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (job.merge_paths.empty()) {
      return Status::invalid_argument(
          "--merge: expected a comma-separated checkpoint list");
    }
  }

  auto cancel_at = args.get_double("cancel-at", 0.0);
  if (!cancel_at.is_ok()) return cancel_at.status();
  job.cancel_at = *cancel_at;
  job.csv_path = args.get("csv", "");
  job.json_path = args.get("json", "");
  job.decisions_path = args.get("decisions", "");
  return job;
}

int run_replay_cli(const ServiceModel& service, const ReplayJob& job) {
  ServeSpec spec = job.spec;
  const WorkloadOptions workload_defaults;
  if (spec.workload.branches == workload_defaults.branches) {
    spec.workload.branches = service.num_branches();
  }
  // The decisions artifact is the per-request record stream.
  if (!job.decisions_path.empty()) spec.fleet.keep_records = true;

  const bool merge_mode = !job.merge_paths.empty();
  if (job.stream && job.via_daemon) {
    std::fprintf(stderr,
                 "error: --stream drives simulate_fleet_stream — it cannot "
                 "go via the daemon\n");
    return 1;
  }

  // Stream and merge modes never materialize the workload; the planned
  // request count (banner, cancel-at threshold) is the generation target.
  std::optional<std::vector<Request>> trace;
  if (!merge_mode && !job.stream) {
    auto trace_or = generate_scenario_workload(spec.workload, spec.scenario);
    if (!trace_or.is_ok()) {
      std::fprintf(stderr, "error: %s\n",
                   trace_or.status().to_string().c_str());
      return 1;
    }
    trace = std::move(trace_or).value();
  }
  const std::int64_t planned =
      trace ? static_cast<std::int64_t>(trace->size())
            : spec.workload.target_requests;

  util::RunControl control;
  control.threads = spec.fleet.threads;
  if (job.cancel_at > 0) {
    const auto cancel_after = static_cast<std::int64_t>(
        job.cancel_at * static_cast<double>(planned));
    control.on_progress = [&control,
                           cancel_after](const util::ProgressEvent& event) {
      if (event.step >= cancel_after) control.cancel.request_cancel();
    };
  }
  const util::RunScope scope(control);

  if (merge_mode) {
    std::printf("=== merging %d replay checkpoint(s): %lld requests, "
                "%d instance(s) x %d shard(s) ===\n",
                static_cast<int>(job.merge_paths.size()),
                static_cast<long long>(planned), spec.fleet.instances,
                spec.fleet.shards);
  } else {
    std::printf("=== sharded fleet replay%s: %lld requests, %d users, "
                "%d instance(s) x %d shard(s), %s threads ===\n",
                job.stream ? " (streaming)" : "",
                static_cast<long long>(planned), spec.workload.users,
                spec.fleet.instances, spec.fleet.shards,
                spec.fleet.threads > 0
                    ? std::to_string(spec.fleet.threads).c_str()
                    : "all");
  }
  if (job.stream && spec.fleet.process_count > 1) {
    std::printf("process shard %d/%d\n", spec.fleet.process_index,
                spec.fleet.process_count);
  }
  if (spec.scenario.enabled()) {
    std::printf("scenario: %s\n",
                scenario_to_string(spec.scenario).c_str());
  }
  if (spec.elastic.enabled()) {
    std::printf("elastic: %s\n", elastic_to_string(spec.elastic).c_str());
  }

  // Wall timing through the serving time-source API (replay.cpp is grep-
  // gated against std::chrono like the rest of src/serving).
  SteadyClock wall;
  const double start_us = wall.now_us();
  StatusOr<ServingStats> stats = Status::internal("replay never ran");
  std::int64_t shed = 0;
  if (merge_mode) {
    stats = merge_replay_checkpoints(service, spec, job.merge_paths);
  } else if (job.via_daemon) {
    DaemonOptions daemon_options;
    daemon_options.admission_enabled = job.admission;
    const Daemon daemon(service, spec, daemon_options);
    auto result = daemon.run_trace(*trace, &scope);
    if (result.is_ok()) {
      shed = result->shed;
      stats = std::move(result)->stats;
    } else {
      stats = result.status();
    }
  } else if (job.stream) {
    stats = simulate_fleet_stream(service, spec, &scope);
  } else {
    stats = simulate_fleet(service, *trace, spec, &scope);
  }
  const double elapsed_s = (wall.now_us() - start_us) * 1e-6;

  if (!stats.is_ok()) {
    if (stats.status().code() == StatusCode::kCancelled) {
      std::printf("%s\n", stats.status().message().c_str());
      if (!spec.fleet.checkpoint_path.empty()) {
        std::printf("checkpoint kept at %s; rerun the same command to "
                    "resume\n",
                    spec.fleet.checkpoint_path.c_str());
      }
      return 3;
    }
    std::fprintf(stderr, "error: %s\n", stats.status().to_string().c_str());
    return 1;
  }

  std::printf(
      "replayed %lld requests in %.3f s (%.0f req/s simulated; makespan "
      "%.1f s of traffic)\n",
      static_cast<long long>(stats->completed), elapsed_s,
      static_cast<double>(stats->completed) / elapsed_s,
      stats->makespan_us * 1e-6);
  if (job.via_daemon) {
    std::printf("daemon path: %lld request(s) shed by admission control\n",
                static_cast<long long>(shed));
  }
  if (merge_mode) {
    std::printf("merged %d shard(s) from %d checkpoint(s)\n",
                spec.fleet.shards, static_cast<int>(job.merge_paths.size()));
  } else if (stats->resumed_shards > 0) {
    std::printf("resumed %d of %d shard(s) from %s\n", stats->resumed_shards,
                spec.fleet.shards, spec.fleet.checkpoint_path.c_str());
  }
  std::printf("%s\n", serving_report(*stats).c_str());

  if (!job.csv_path.empty()) {
    CsvWriter csv(serving_csv_header({"requests", "shards"}));
    csv.add_row(serving_csv_row({std::to_string(stats->offered),
                                 std::to_string(spec.fleet.shards)},
                                *stats));
    if (!csv.write_file(job.csv_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   job.csv_path.c_str());
      return 1;
    }
  }
  if (!job.decisions_path.empty()) {
    std::vector<RequestRecord> records = stats->records;
    std::sort(records.begin(), records.end(),
              [](const RequestRecord& a, const RequestRecord& b) {
                return a.id < b.id;
              });
    CsvWriter csv({"id", "user", "branch", "instance", "arrival_us",
                   "start_us", "finish_us"});
    for (const RequestRecord& r : records) {
      csv.add_row({std::to_string(r.id), std::to_string(r.user),
                   std::to_string(r.branch), std::to_string(r.instance),
                   format_exact(r.arrival_us), format_exact(r.start_us),
                   format_exact(r.finish_us)});
    }
    if (!csv.write_file(job.decisions_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   job.decisions_path.c_str());
      return 1;
    }
  }
  if (!job.json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("schema_version").value(1);
    json.key("bench").value(job.json_bench);
    json.key("requests").value(stats->offered);
    json.key("users").value(spec.workload.users);
    json.key("instances").value(spec.fleet.instances);
    json.key("shards").value(spec.fleet.shards);
    json.key("policy").value(to_string(spec.fleet.policy));
    json.key("clock").value(to_string(job.spec.clock));
    json.key("via_daemon").value(job.via_daemon);
    json.key("shed").value(shed);
    // Elastic summary keys the CI jq gates consume directly: the canonical
    // spec strings plus event totals and the p99's margin to the SLA bound
    // (negative = inside the bound).
    json.key("scenario").value(scenario_to_string(spec.scenario));
    json.key("elastic").value(elastic_to_string(spec.elastic));
    json.key("scale_events")
        .value(stats->scale_up_events + stats->scale_down_events);
    json.key("reshard_events").value(stats->reshard_splits);
    json.key("sla_p99_delta_us")
        .value(stats->latency.p99 - stats->sla_bound_us);
    // Sketch-only keys, so exact-mode JSON stays byte-identical to before
    // the sketch existed. peak_rss_kb is machine state, not simulation
    // output — determinism comparisons must strip it (CI does).
    if (spec.fleet.latency_mode == LatencyMode::kSketch) {
      json.key("latency_mode").value(to_string(spec.fleet.latency_mode));
      json.key("sketch_compactions").value(stats->sketch_compactions);
      json.key("peak_rss_kb").value(peak_rss_kb());
    }
    json.key("stats");
    serving_stats_json(json, *stats);
    json.end_object();
    if (!json.write_file(job.json_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   job.json_path.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace fcad::serving
