// Free-instance dispatch, promoted out of fleet.cpp so the offline replay
// (fleet.cpp) and the online daemon (daemon.cpp) share one decision
// implementation — per-request dispatch decisions can never diverge between
// the two, which is half of the replay/live parity contract.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "serving/fleet.hpp"

namespace fcad::serving {

/// Running state of one accelerator instance inside a Dispatcher.
struct InstanceState {
  double free_at_us = 0;
  double busy_us = 0;
  int last_branch = -1;
  std::int64_t batches = 0;
  std::int64_t requests = 0;
  std::int64_t switches = 0;
  /// Inactive instances never get picked: they are scale-up headroom or
  /// faulted/scaled-down capacity (the elastic layer flips this flag).
  bool active = true;
};

/// Dispatch bookkeeping in O(log K) per event instead of the former O(K)
/// scans: busy instances live in a free-time min-heap (one live entry each —
/// pushed on dispatch, popped once expired), free instances in ordered sets
/// keyed the way each policy picks (index order for round-robin, (busy_us,
/// index) for least-loaded, the same per last-branch for affinity). Every
/// pick reproduces the linear-scan decisions exactly, ties still breaking
/// toward the lowest index.
class Dispatcher {
 public:
  /// `initially_active` < 0 activates every instance (the static fleet);
  /// otherwise instances [0, initially_active) start active and the rest
  /// are headroom until set_active turns them on.
  Dispatcher(DispatchPolicy policy, int instances, int branches,
             int initially_active = -1);

  const std::vector<InstanceState>& instances() const { return instances_; }

  /// Flips instance `k`'s active flag at `now_us`. Activating an idle
  /// instance makes it immediately pickable; deactivating a busy one lets
  /// the batch in flight finish, after which the instance idles.
  void set_active(int k, bool on, double now_us);
  bool is_active(int k) const {
    return instances_[static_cast<std::size_t>(k)].active;
  }
  int active_count() const { return active_count_; }

  /// Total accumulated busy time across all instances — the elastic
  /// autoscaler differences this across evaluation windows.
  double total_busy_us() const;

  /// Earliest time any instance frees up after `now_us` (+inf if none busy).
  double next_free_us(double now_us);

  /// True when at least one instance is free at `now_us`.
  bool any_free(double now_us);

  /// Picks the instance to run a `branch` batch at `now_us`, or -1 when all
  /// are busy. Deterministic: ties break toward the lowest index.
  int pick(int branch, double now_us);

  /// Commits a `requests`-sized batch of `branch` to instance `k` (which
  /// pick() just returned as free) and returns its completion time.
  double dispatch(int k, int branch, double now_us, double base_pass_us,
                  double switch_penalty_us, std::int64_t requests);

 private:
  void refresh(double now_us);
  void insert_free(int k);
  void erase_free(int k);

  DispatchPolicy policy_;
  std::vector<InstanceState> instances_;
  /// (free_at_us, index) of busy instances; one live entry per instance.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<std::pair<double, int>>>
      busy_;
  std::set<int> free_by_index_;
  std::set<std::pair<double, int>> free_by_load_;  ///< (busy_us, index)
  std::vector<std::set<std::pair<double, int>>> free_by_branch_;
  int cursor_ = 0;
  int active_count_ = 0;
};

}  // namespace fcad::serving
