// The serving time-source API: every serving component reads and waits on an
// injected serving::Clock instead of calling a time function directly. The
// same event loop (engine.hpp) then runs in two modes:
//
//  - VirtualClock: event-driven simulated time. sleep_until_us() jumps the
//    clock to the deadline instantly, reproducing the bit-exact offline
//    replay semantics (simulate_fleet).
//  - SteadyClock: monotonic wall time. sleep_until_us() really blocks (and
//    can be interrupted by wake() from another thread), which is what the
//    live serving_daemon and real-time-paced replays run on.
//
// Decisions and stats are functions of clock *readings*, never of which
// implementation produced them — that is the replay/live parity contract
// pinned by tests/daemon_test.cpp. The one sanctioned place in src/serving
// that touches std::chrono clocks is clock.cpp (CI grep-gates the rest).
#pragma once

#include <memory>
#include <string>

#include "util/status.hpp"

namespace fcad::serving {

/// Pure time-source interface. Readings are microseconds on an arbitrary
/// per-clock origin (replays seed it with the first arrival time so trace
/// timestamps are directly comparable to now_us()).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current reading in microseconds. Monotone non-decreasing.
  virtual double now_us() = 0;

  /// Blocks until the clock reads at least `deadline_us`, or until wake()
  /// is called from another thread, whichever comes first. Returns the
  /// reading on return (>= deadline_us unless woken early). A deadline at
  /// or before now returns immediately; +infinity means "wait for wake()".
  virtual double sleep_until_us(double deadline_us) = 0;

  /// Interrupts a concurrent sleep_until_us(). Thread-safe. A wake with no
  /// sleeper in flight is sticky: the NEXT sleep consumes it and returns
  /// immediately — so "push work, then wake()" can never be lost between a
  /// consumer's queue check and its sleep.
  virtual void wake() {}
};

/// Event-driven simulated time: sleep_until_us() jumps the reading to the
/// deadline and returns immediately. Single-threaded by design (wake() is a
/// no-op) — each shard's event loop owns one.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start_us = 0) : now_us_(start_us) {}

  double now_us() override { return now_us_; }
  double sleep_until_us(double deadline_us) override;

 private:
  double now_us_;
};

/// Monotonic wall time: readings are `origin_us` plus the elapsed
/// microseconds since construction, so a replay seeded with its trace's
/// first arrival paces events at their trace timestamps. sleep_until_us()
/// blocks on a condition variable and is interruptible by wake() from any
/// thread (the daemon's receiver thread wakes the serving loop on arrival).
class SteadyClock final : public Clock {
 public:
  explicit SteadyClock(double origin_us = 0);
  ~SteadyClock() override;

  double now_us() override;
  double sleep_until_us(double deadline_us) override;
  void wake() override;

 private:
  struct Impl;  // hides <chrono>/<condition_variable> from the serving path
  std::unique_ptr<Impl> impl_;
};

enum class ClockKind {
  kVirtual,  ///< event-driven; offline replays (bit-exact, instant)
  kSteady,   ///< monotonic wall time; live serving / real-time-paced replays
};

const char* to_string(ClockKind kind);

/// Lookup by name ("virtual", "steady"/"wall"); case-insensitive.
StatusOr<ClockKind> clock_kind_by_name(const std::string& name);

/// Factory used by the per-shard event loops and the daemon. `origin_us`
/// seeds the initial reading of either implementation.
std::unique_ptr<Clock> make_clock(ClockKind kind, double origin_us = 0);

}  // namespace fcad::serving
