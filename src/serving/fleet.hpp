// Fleet dispatch (serving step 3): an event-driven simulation of K
// accelerator instances serving a batched multi-tenant request stream.
//
// Each instance is a single server (the branch pipelines share one DDR and
// control plane, so an instance runs one batch pass at a time). The
// dispatcher picks which free instance runs the next ready batch; the
// branch-affinity policy models the weight-stream cost of retargeting an
// instance to a different branch via a per-switch penalty.
#pragma once

#include <string>
#include <vector>

#include "serving/batcher.hpp"
#include "serving/service.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"
#include "util/run_control.hpp"
#include "util/status.hpp"

namespace fcad::serving {

enum class DispatchPolicy {
  kRoundRobin,     ///< cycle through instances, skipping busy ones
  kLeastLoaded,    ///< free instance with the least accumulated busy time
  kBranchAffinity, ///< prefer a free instance already targeting the branch
};

const char* to_string(DispatchPolicy policy);

/// Lookup by name ("round-robin"/"rr", "least-loaded"/"least",
/// "branch-affinity"/"affinity"); case-insensitive.
StatusOr<DispatchPolicy> dispatch_policy_by_name(const std::string& name);

struct FleetOptions {
  int instances = 1;  ///< K accelerator instances
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  /// Batching timeout: longest a request may wait for its batch to fill
  /// (<= 0 disables; batches then form only when full or at stream end).
  double batch_timeout_us = 4000;
  /// Extra pass time when an instance switches to a different branch than
  /// its previous pass (weight-stream retarget cost).
  double switch_penalty_us = 0;
  /// Latency bound requests are scored against (p99 target).
  double sla_bound_us = 33333.3;  ///< one 30 Hz frame period
  bool keep_records = false;      ///< retain per-request completion records
};

/// Simulates serving `workload` on `fleet.instances` copies of the
/// accelerator described by `service`. Every request completes (the
/// aggregator drains after the last arrival), so `completed == offered`.
/// Deterministic: identical inputs produce bit-identical stats.
///
/// When `scope` is set, huge replays become interruptible: the event loop
/// polls it and returns StatusCode::kCancelled once the token fires or the
/// deadline passes, and it streams ~20 "fleet" ProgressEvents over the
/// replay whose best_fitness field carries the *partial p99 latency
/// estimate* (microseconds) over the requests completed so far. Progress
/// observation never changes the stats.
StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const std::vector<Request>& workload,
                                      const FleetOptions& options,
                                      const util::RunScope* scope = nullptr);

}  // namespace fcad::serving
