// Fleet dispatch (serving step 3): an event-driven simulation of K
// accelerator instances serving a batched multi-tenant request stream.
//
// Each instance is a single server (the branch pipelines share one DDR and
// control plane, so an instance runs one batch pass at a time). The
// dispatcher picks which free instance runs the next ready batch; the
// branch-affinity policy models the weight-stream cost of retargeting an
// instance to a different branch via a per-switch penalty.
//
// Million-request replays shard: `FleetOptions::shards` statically
// partitions the user streams and the instance pool into independent
// per-shard event loops (user u -> shard u mod S; instances split into
// contiguous groups), which run across util::ThreadPool and merge their
// latency/SLA streams in shard-index order — so for a fixed shard count the
// stats are bit-identical for ANY thread count, including 1. Sharded runs
// can also checkpoint (`FleetOptions::checkpoint_path`): every finished
// shard's partial stats (counts, latency/wait streams, per-branch and
// per-instance counters) are serialized atomically, and a replay cancelled
// via RunControl resumes from the completed shards instead of restarting.
#pragma once

#include <string>
#include <vector>

#include "serving/batcher.hpp"
#include "serving/clock.hpp"
#include "serving/elastic.hpp"
#include "serving/scenario.hpp"
#include "serving/service.hpp"
#include "serving/sketch.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"
#include "util/run_control.hpp"
#include "util/status.hpp"

namespace fcad::serving {

enum class DispatchPolicy {
  kRoundRobin,     ///< cycle through instances, skipping busy ones
  kLeastLoaded,    ///< free instance with the least accumulated busy time
  kBranchAffinity, ///< prefer a free instance already targeting the branch
};

const char* to_string(DispatchPolicy policy);

/// Lookup by name ("round-robin"/"rr", "least-loaded"/"least",
/// "branch-affinity"/"affinity"); case-insensitive.
StatusOr<DispatchPolicy> dispatch_policy_by_name(const std::string& name);

struct FleetOptions {
  int instances = 1;  ///< K accelerator instances
  DispatchPolicy policy = DispatchPolicy::kLeastLoaded;
  /// Batching timeout: longest a request may wait for its batch to fill
  /// (<= 0 disables; batches then form only when full or at stream end).
  double batch_timeout_us = 4000;
  /// Extra pass time when an instance switches to a different branch than
  /// its previous pass (weight-stream retarget cost).
  double switch_penalty_us = 0;
  /// Latency bound requests are scored against (p99 target).
  double sla_bound_us = 33333.3;  ///< one 30 Hz frame period
  bool keep_records = false;      ///< retain per-request completion records

  /// Static sharding of the replay (1 = the classic single-timeline fleet).
  /// Must stay in [1, instances]. S > 1 models a statically partitioned
  /// fleet: user u's requests go to shard u mod S, which owns its own
  /// contiguous slice of the instance pool, batch aggregator, and
  /// dispatcher. The shard count is part of the model — changing it changes
  /// the stats — but for a fixed count results are bit-identical for any
  /// `threads`.
  int shards = 1;
  /// Thread-pool size for the sharded replay: 0 = one thread per hardware
  /// core, N = exactly N workers. A RunControl::threads override (via the
  /// scope) wins. Never changes results.
  int threads = 0;
  /// Percentile rank streamed by progress ticks (partial tail estimate).
  /// Validated: out-of-(0,100] values return Status::invalid_argument.
  double progress_tail_pct = 99;
  /// Checkpoint file ("" disables). Granularity is one shard: every shard
  /// completion atomically rewrites the file (temp + rename) with all
  /// finished shards' partial stats, and a later run with the same service,
  /// workload, and options resumes from it — loaded shards are not
  /// re-simulated, and the merged stats are bit-identical to an
  /// uninterrupted run. A checkpoint whose fingerprint does not match the
  /// run is ignored, never misapplied.
  std::string checkpoint_path;
  /// Time source the per-shard event loops run on. kVirtual jumps between
  /// events (the classic instant replay); kSteady paces every event at its
  /// trace timestamp in real wall time (each shard sleeps between events —
  /// use short traces). The clock only controls *when* events happen, never
  /// their decisions or stats, so it is excluded from the checkpoint
  /// fingerprint.
  ClockKind clock = ClockKind::kVirtual;
  /// kSketch swaps the exact per-request latency streams for mergeable
  /// quantile sketches (relative error <= the sketch alpha, 0.1%): memory
  /// per shard becomes O(1) and checkpoints switch to the compact binary v2
  /// format — the billion-request mode. Incompatible with keep_records.
  /// The default keeps today's exact accounting, bit for bit.
  LatencyMode latency_mode = LatencyMode::kExact;
  /// Multi-process sharding (simulate_fleet_stream only): this process owns
  /// the contiguous shard range [process_index*S/N, (process_index+1)*S/N)
  /// of the S shards and checkpoints its results for a later
  /// merge_replay_checkpoints pass. The defaults (0 of 1) own every shard.
  /// process_count > 1 requires a checkpoint_path — otherwise the partial
  /// results could never be combined.
  int process_index = 0;
  int process_count = 1;
};

/// SLA targets stated once at the spec level (mirrored into
/// FleetOptions::sla_bound_us by resolved_fleet_options).
struct SlaOptions {
  double p99_bound_us = 33333.3;  ///< one 30 Hz frame period
};

/// The aggregate serving spec — workload + fleet + SLA + clock selection —
/// consumed by simulate_fleet, serving::Daemon, serving_cli, and
/// bench_serving. Replaces threading the old two-struct
/// (WorkloadOptions, FleetOptions) shape plus loose SLA/clock knobs through
/// every call site.
struct ServeSpec {
  WorkloadOptions workload;
  FleetOptions fleet;
  SlaOptions sla;
  ClockKind clock = ClockKind::kVirtual;
  /// Traffic drift shaped over the workload (diurnal/flash/churn) and the
  /// instance fault schedule. The workload-generating simulate_fleet
  /// overload applies the arrival shapes; the fault schedule applies in
  /// every mode (trace-driven included).
  ScenarioSpec scenario;
  /// Elastic policies: autoscaling over the provisioned pool
  /// (fleet.instances active initially, autoscale.max_instances the cap)
  /// and shard-local dynamic resharding. Disabled by default — the static
  /// fleet is the `none` elastic spec.
  ElasticSpec elastic;
};

/// Folds the spec-level SLA bound and clock into the FleetOptions the event
/// loops consume. Status::invalid_argument when `sla.p99_bound_us` and
/// `fleet.sla_bound_us` are both set away from the default and disagree
/// (state the bound once); likewise for `clock` vs `fleet.clock`.
StatusOr<FleetOptions> resolved_fleet_options(const ServeSpec& spec);

/// Simulates serving the request stream on `spec.fleet.instances` copies of
/// the accelerator described by `service` (spec.workload is ignored by this
/// trace-driven overload). Every request completes (the aggregator drains
/// after the last arrival), so `completed == offered`. Deterministic:
/// identical inputs (including `shards`) produce bit-identical stats at any
/// thread count — and, under `ClockKind::kSteady`, identical stats to the
/// virtual run, just paced in real time.
///
/// When `scope` is set, huge replays become interruptible: the event loops
/// poll it and the call returns StatusCode::kCancelled once the token fires
/// or the deadline passes (finished shards stay checkpointed when a
/// checkpoint path is set), and it streams ~20 "fleet" ProgressEvents over
/// the replay whose best_fitness field carries the *partial tail-latency
/// estimate* (microseconds, exact nearest-rank at `progress_tail_pct` over
/// the emitting shard's completions so far). Progress observation never
/// changes the stats.
StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const std::vector<Request>& requests,
                                      const ServeSpec& spec,
                                      const util::RunScope* scope = nullptr);

/// Workload-generating twin: generates `spec.workload` (with `branches`
/// derived from the service model when left at its default of 1) and
/// replays it through the trace-driven overload.
StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const ServeSpec& spec,
                                      const util::RunScope* scope = nullptr);

/// Streaming twin for replays too large to materialize: each shard pulls
/// its own lazily generated request stream (serving/stream.hpp) and keeps
/// only the requests it owns, so the full workload vector never exists —
/// peak memory is O(users + shards), independent of request count. Requires
/// `spec.workload.target_requests > 0` (a generated process with a definite
/// end) and produces stats bit-identical to the materialized overload on
/// the same spec, for any thread count. `fleet.process_index/process_count`
/// restrict the run to a contiguous shard range whose results land in the
/// checkpoint; the returned stats then cover only the owned shards, and
/// merge_replay_checkpoints folds the per-process checkpoints into the
/// final fleet-wide result.
StatusOr<ServingStats> simulate_fleet_stream(
    const ServiceModel& service, const ServeSpec& spec,
    const util::RunScope* scope = nullptr);

/// Folds the checkpoints written by N `--process-shard` runs of the SAME
/// spec into the final ServingStats, exactly as if one process had run
/// every shard (sketch merges are associative and byte-stable, so the
/// result is bit-identical to the single-process run). Strict, unlike
/// checkpoint resume: an unreadable or mismatched-fingerprint file, an
/// overlapping or missing shard, or a merged request count that does not
/// reach the target is an error, never a silent restart.
StatusOr<ServingStats> merge_replay_checkpoints(
    const ServiceModel& service, const ServeSpec& spec,
    const std::vector<std::string>& checkpoint_paths);

}  // namespace fcad::serving
