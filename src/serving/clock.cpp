// The single sanctioned std::chrono user in src/serving (CI grep-gates every
// other serving source against *_clock::now()): SteadyClock wraps the
// monotonic clock behind the Clock interface, VirtualClock needs no time
// source at all.
#include "serving/clock.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace fcad::serving {

double VirtualClock::sleep_until_us(double deadline_us) {
  // Jump to the deadline; a non-finite deadline (the "wait for wake()" form)
  // leaves the reading untouched, since virtual time only moves via events.
  if (std::isfinite(deadline_us) && deadline_us > now_us_) {
    now_us_ = deadline_us;
  }
  return now_us_;
}

struct SteadyClock::Impl {
  std::chrono::steady_clock::time_point start;
  double origin_us = 0;
  std::mutex mutex;
  std::condition_variable cv;
  bool woken = false;  ///< guarded by mutex; sticky until a sleep consumes it

  double read() const {
    return origin_us + std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  }
};

SteadyClock::SteadyClock(double origin_us) : impl_(std::make_unique<Impl>()) {
  impl_->start = std::chrono::steady_clock::now();
  impl_->origin_us = origin_us;
}

SteadyClock::~SteadyClock() = default;

double SteadyClock::now_us() { return impl_->read(); }

double SteadyClock::sleep_until_us(double deadline_us) {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  while (!impl_->woken) {
    const double now = impl_->read();
    if (now >= deadline_us) break;
    // Bounded waits (<= 1000 s) keep a +infinity deadline from overflowing
    // time-point arithmetic; the loop re-checks wake/deadline per chunk and
    // absorbs spurious wakeups.
    const double wait_us = std::fmin(deadline_us - now, 1e9);
    impl_->cv.wait_for(lock, std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double, std::micro>(
                                     wait_us)));
  }
  // Consume the pending wake (sticky semantics: a wake between a caller's
  // work check and its sleep makes that sleep return immediately instead of
  // being lost).
  impl_->woken = false;
  return impl_->read();
}

void SteadyClock::wake() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->woken = true;
  }
  impl_->cv.notify_all();
}

const char* to_string(ClockKind kind) {
  switch (kind) {
    case ClockKind::kVirtual: return "virtual";
    case ClockKind::kSteady: return "steady";
  }
  return "?";
}

StatusOr<ClockKind> clock_kind_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "virtual") return ClockKind::kVirtual;
  if (lower == "steady" || lower == "wall") return ClockKind::kSteady;
  return Status::not_found("unknown clock kind '" + name + "'");
}

std::unique_ptr<Clock> make_clock(ClockKind kind, double origin_us) {
  switch (kind) {
    case ClockKind::kVirtual: return std::make_unique<VirtualClock>(origin_us);
    case ClockKind::kSteady: return std::make_unique<SteadyClock>(origin_us);
  }
  return std::make_unique<VirtualClock>(origin_us);
}

}  // namespace fcad::serving
