// Multi-tenant workload generation (serving step 1): request arrival
// processes over N concurrent users of the telepresence decoder.
//
// Each user produces frame events at a mean rate (e.g. 30 Hz camera capture);
// every frame event emits one decode request *per branch* of the reorganized
// model, since geometry / texture / warp streams are decoded independently by
// the multi-pipeline accelerator. Arrivals are driven by util/rng so a fixed
// seed reproduces the exact same workload on every platform.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace fcad::serving {

/// One decode request: a single branch inference for one user frame.
struct Request {
  std::int64_t id = 0;    ///< dense index in arrival order
  int user = 0;           ///< originating user stream
  int branch = 0;         ///< decoder branch this request exercises
  double arrival_us = 0;  ///< arrival time, microseconds from epoch 0
};

enum class ArrivalProcess {
  kPoisson,  ///< per-user exponential inter-arrival times
  kBursty,   ///< on/off modulated Poisson (talking-head bursts)
  kTrace,    ///< explicit frame-event times supplied by the caller
};

const char* to_string(ArrivalProcess process);

/// Lookup by name ("poisson", "bursty", "trace"); case-insensitive.
StatusOr<ArrivalProcess> arrival_process_by_name(const std::string& name);

struct WorkloadOptions {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  int users = 8;               ///< concurrent user streams
  int branches = 1;            ///< requests emitted per frame event
  double frame_rate_hz = 30;   ///< mean per-user frame-event rate
  double duration_s = 1.0;     ///< generation horizon
  std::uint64_t seed = 1;

  /// kBursty: each user alternates exponentially distributed on/off phases;
  /// during "on" the frame rate is multiplied by `burst_factor`, during
  /// "off" the stream is silent (camera occluded / user muted). The
  /// long-run mean rate is frame_rate_hz * burst_factor * on/(on+off) —
  /// the defaults keep it equal to frame_rate_hz so poisson-vs-bursty
  /// comparisons offer the same load, just burstier.
  double burst_on_s = 0.2;
  double burst_off_s = 0.2;
  double burst_factor = 2.0;

  /// kTrace: frame-event times in microseconds; event i is assigned to user
  /// i mod `users`. Unsorted input is accepted and sorted internally.
  std::vector<double> trace_arrivals_us;

  /// When > 0 (Poisson/bursty only): generate exactly this many requests
  /// — the knob for million-request replay traces — instead of bounding
  /// the horizon by `duration_s` (which is then ignored). Per-user streams
  /// are drawn lazily in global time order, so the result is deterministic
  /// for a fixed seed and each user's arrivals match what the
  /// duration-bounded generator would produce.
  std::int64_t target_requests = 0;
};

/// Validates every WorkloadOptions field: users/branches >= 1,
/// target_requests >= 0 (and only with a generated process), positive
/// rate/horizon for generated processes, positive burst phases and factor
/// (checked regardless of the selected process — a silently ignored
/// `burst_off_s = 0` would turn into an infinite loop the moment the
/// process switches to kBursty), and a non-empty trace for kTrace.
Status validate_workload_options(const WorkloadOptions& options);

/// Generates the request stream, sorted by arrival time with dense ids.
/// Fails on any validate_workload_options violation. Deterministic for a
/// fixed seed.
StatusOr<std::vector<Request>> generate_workload(const WorkloadOptions& options);

/// One user's (possibly modulated) Poisson arrival stream, drawn lazily —
/// the single copy of the draw sequence behind generate_workload and the
/// scenario generator (scenario.cpp): both must draw a user's candidate
/// events from the same decorrelated fork so per-user arrivals stay
/// deterministic whichever generator consumes them. `rate_hz` applies
/// during "on" phases; a non-positive `off_mean_s` disables modulation
/// (plain Poisson).
struct UserStream {
  UserStream(Rng rng_in, double rate_hz, double on_mean_s, double off_mean_s,
             double factor);

  /// Next event time, or a value >= `horizon_us` once a draw overshoots the
  /// horizon (the stream is then finished; do not call again).
  double next(double horizon_us = std::numeric_limits<double>::infinity());

  Rng rng;
  double rate_hz;
  double on_mean_s;
  double off_mean_s;
  double burst_factor;
  bool modulated;
  double t_us = 0;
  bool on = true;
  double phase_end_us = 0;
};

/// Offered load in requests/second of `workload` over its span.
double offered_rate_rps(const std::vector<Request>& workload);

}  // namespace fcad::serving
