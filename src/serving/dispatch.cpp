#include "serving/dispatch.hpp"

#include <algorithm>

namespace fcad::serving {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Dispatcher::Dispatcher(DispatchPolicy policy, int instances, int branches,
                       int initially_active)
    : policy_(policy),
      instances_(static_cast<std::size_t>(instances)),
      free_by_branch_(static_cast<std::size_t>(branches)) {
  const int active =
      initially_active < 0 ? instances : std::min(initially_active, instances);
  active_count_ = active;
  for (int k = 0; k < active; ++k) insert_free(k);
  for (int k = active; k < instances; ++k) {
    instances_[static_cast<std::size_t>(k)].active = false;
  }
}

double Dispatcher::next_free_us(double now_us) {
  refresh(now_us);
  return busy_.empty() ? kInf : busy_.top().first;
}

bool Dispatcher::any_free(double now_us) {
  refresh(now_us);
  return !free_by_index_.empty();
}

int Dispatcher::pick(int branch, double now_us) {
  refresh(now_us);
  switch (policy_) {
    case DispatchPolicy::kRoundRobin: {
      if (free_by_index_.empty()) return -1;
      auto it = free_by_index_.lower_bound(cursor_);
      const int k = it != free_by_index_.end() ? *it : *free_by_index_.begin();
      cursor_ = (k + 1) % static_cast<int>(instances_.size());
      return k;
    }
    case DispatchPolicy::kLeastLoaded:
      return free_by_load_.empty() ? -1 : free_by_load_.begin()->second;
    case DispatchPolicy::kBranchAffinity: {
      const auto& affine = free_by_branch_[static_cast<std::size_t>(branch)];
      if (!affine.empty()) return affine.begin()->second;
      return free_by_load_.empty() ? -1 : free_by_load_.begin()->second;
    }
  }
  return -1;
}

double Dispatcher::dispatch(int k, int branch, double now_us,
                            double base_pass_us, double switch_penalty_us,
                            std::int64_t requests) {
  InstanceState& inst = instances_[static_cast<std::size_t>(k)];
  erase_free(k);  // keyed on the pre-dispatch busy_us / last_branch
  double pass_us = base_pass_us;
  if (inst.last_branch >= 0 && inst.last_branch != branch) {
    pass_us += switch_penalty_us;
    ++inst.switches;
  }
  const double finish_us = now_us + pass_us;
  inst.free_at_us = finish_us;
  inst.busy_us += pass_us;
  inst.last_branch = branch;
  ++inst.batches;
  inst.requests += requests;
  busy_.push({finish_us, k});
  return finish_us;
}

void Dispatcher::set_active(int k, bool on, double now_us) {
  refresh(now_us);
  InstanceState& inst = instances_[static_cast<std::size_t>(k)];
  if (inst.active == on) return;
  inst.active = on;
  active_count_ += on ? 1 : -1;
  if (on) {
    // refresh() above drained every expired busy entry, so an idle
    // instance has no pending heap entry and joins the free sets now; a
    // still-busy one is re-inserted when its batch finishes.
    if (inst.free_at_us <= now_us) insert_free(k);
  } else if (free_by_index_.count(k) > 0) {
    erase_free(k);
  }
}

double Dispatcher::total_busy_us() const {
  double total = 0;
  for (const InstanceState& inst : instances_) total += inst.busy_us;
  return total;
}

void Dispatcher::refresh(double now_us) {
  while (!busy_.empty() && busy_.top().first <= now_us) {
    const int k = busy_.top().second;
    busy_.pop();
    // An instance deactivated mid-batch finishes but never rejoins the
    // free sets; set_active(k, true) brings it back later.
    if (instances_[static_cast<std::size_t>(k)].active) insert_free(k);
  }
}

void Dispatcher::insert_free(int k) {
  const InstanceState& inst = instances_[static_cast<std::size_t>(k)];
  free_by_index_.insert(k);
  free_by_load_.insert({inst.busy_us, k});
  if (inst.last_branch >= 0) {
    free_by_branch_[static_cast<std::size_t>(inst.last_branch)].insert(
        {inst.busy_us, k});
  }
}

void Dispatcher::erase_free(int k) {
  const InstanceState& inst = instances_[static_cast<std::size_t>(k)];
  free_by_index_.erase(k);
  free_by_load_.erase({inst.busy_us, k});
  if (inst.last_branch >= 0) {
    free_by_branch_[static_cast<std::size_t>(inst.last_branch)].erase(
        {inst.busy_us, k});
  }
}

}  // namespace fcad::serving
