// Streaming workload generation — the pull-based twin of
// generate_workload / generate_scenario_workload. A RequestStream yields
// requests one at a time in (arrival_us, id) order without ever
// materializing the request vector, which is what lets a billion-request
// replay run in bounded memory: each shard pulls its own copy of the
// stream and keeps only the requests it owns.
//
// The generated stream IS the generator: the materialized entry points in
// workload.cpp / scenario.cpp drain a stream from here, so the lazy and
// materialized paths can never diverge — every per-user candidate draw,
// acceptance draw, heap-merge pop, and branch fan-out happens in exactly
// the same order in both.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "serving/scenario.hpp"
#include "serving/workload.hpp"
#include "util/status.hpp"

namespace fcad::serving {

/// Pull interface over an arrival-ordered request sequence with dense ids.
class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Next request, or std::nullopt once the stream ends. Arrivals are
  /// non-decreasing and ids dense from 0.
  virtual std::optional<Request> next() = 0;

  /// Inspect after exhaustion: ok for a completed stream, an error when the
  /// stream ended early (e.g. target_requests unreachable because every
  /// user stream ran out of activity windows).
  virtual Status finish_status() const { return Status::ok(); }
};

/// A materialized workload exposed through the stream interface (the kTrace
/// adapter, and handy for tests).
class VectorRequestStream final : public RequestStream {
 public:
  explicit VectorRequestStream(std::vector<Request> requests)
      : requests_(std::move(requests)) {}

  std::optional<Request> next() override {
    if (next_ >= requests_.size()) return std::nullopt;
    return requests_[next_++];
  }

 private:
  std::vector<Request> requests_;
  std::size_t next_ = 0;
};

/// Builds the arrival stream for `options` shaped by `scenario`
/// (bit-identical to what generate_scenario_workload materializes,
/// including the plain-generator fallback when the scenario does not shape
/// arrivals). Validates both specs; a kTrace workload is materialized
/// internally (traces are already in memory) and rejected when the
/// scenario shapes arrivals, exactly like the materialized generator.
StatusOr<std::unique_ptr<RequestStream>> make_request_stream(
    const WorkloadOptions& options, const ScenarioSpec& scenario = {});

/// Pulls `stream` to exhaustion into a materialized workload, propagating
/// its finish_status — the implementation of the classic generators.
StatusOr<std::vector<Request>> drain_request_stream(RequestStream& stream,
                                                    std::int64_t reserve = 0);

}  // namespace fcad::serving
