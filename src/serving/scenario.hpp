// Scenario generators (serving step 8a): deterministic traffic drift on top
// of any generated workload.
//
// A ScenarioSpec composes four orthogonal shapes over a base WorkloadOptions:
//
//   * diurnal  — a sinusoidal multiplier on the per-user frame rate,
//                multiplier(t) = 1 + amplitude * sin(2*pi*(t/period + phase)),
//   * flash    — step windows [start, end) that multiply the rate and/or add
//                extra short-lived user streams for the window's duration,
//   * churn    — scheduled user arrivals/departures (a user only emits frame
//                events inside [join, leave)),
//   * faults   — an instance fail-at/recover-at schedule, consumed by the
//                elastic layer (it does not change arrivals).
//
// Time-varying rates are realized by Lewis–Shedler thinning: each user draws
// candidate events from the SAME decorrelated rng fork the plain generator
// would use, at the peak rate, then accepts a candidate with probability
// multiplier(t)/peak using a separate acceptance rng. A scenario that does
// not shape arrivals bypasses thinning entirely, so the output is
// bit-identical to generate_workload on the same options.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "serving/workload.hpp"
#include "util/status.hpp"

namespace fcad::serving {

/// Sinusoidal rate modulation. Disabled while `period_s <= 0`.
struct DiurnalSpec {
  double period_s = 0;    ///< full cycle length; <= 0 disables the shape
  double amplitude = 0.5; ///< multiplier swings in [1-a, 1+a]; must be in [0,1)
  double phase = 0;       ///< cycle offset in [0,1) turns
};

/// A step spike window: rate multiplier and extra users over [start, end).
struct FlashCrowdSpec {
  double start_s = 0;
  double end_s = 0;
  double rate_multiplier = 1;  ///< applied to every active user in the window
  int extra_users = 0;         ///< transient streams that exist only in-window
};

/// A scheduled join/leave for one base user stream.
struct ChurnEvent {
  int user = 0;
  double join_s = 0;
  double leave_s = std::numeric_limits<double>::infinity();
};

/// One instance failing at `fail_s` and recovering at `recover_s`
/// (virtual-time seconds). `instance` is a global instance index.
struct InstanceFault {
  int instance = 0;
  double fail_s = 0;
  double recover_s = 0;
};

struct ScenarioSpec {
  DiurnalSpec diurnal;
  std::vector<FlashCrowdSpec> flash;
  std::vector<ChurnEvent> churn;
  std::vector<InstanceFault> faults;

  /// True when the spec changes the arrival stream (diurnal/flash/churn);
  /// faults alone leave arrivals untouched.
  bool shapes_arrivals() const {
    return diurnal.period_s > 0 || !flash.empty() || !churn.empty();
  }
  /// True when any shape (including faults) is present.
  bool enabled() const { return shapes_arrivals() || !faults.empty(); }
  /// Total transient users added across flash windows; their user ids sit
  /// directly above the base range.
  int extra_users() const;
};

/// Validates ranges: diurnal amplitude in [0,1) and phase in [0,1); flash
/// windows need end > start >= 0, rate_multiplier > 0, extra_users >= 0,
/// and at least one effect; churn needs user >= 0 and leave > join >= 0;
/// faults need instance >= 0 and a finite recover_s > fail_s >= 0 (a fault
/// that never recovers could silence a shard's whole instance slice and
/// stall the replay, so it is rejected up front).
Status validate_scenario(const ScenarioSpec& spec);

/// Instantaneous rate multiplier at virtual time `t_us` for a base user:
/// diurnal(t) times the product of every flash window containing t.
double scenario_rate_multiplier(const ScenarioSpec& spec, double t_us);

/// Canonical one-line form, reparseable by scenario_from_string. Clauses are
/// `;`-separated, keys `,`-separated:
///   diurnal:period=<s>,amp=<a>,phase=<p>
///   flash:start=<s>,end=<s>,rate=<m>,users=<n>
///   churn:user=<u>,join=<s>,leave=<s|inf>
///   fault:instance=<k>,fail=<s>,recover=<s>
/// An empty/none spec prints as "none".
std::string scenario_to_string(const ScenarioSpec& spec);

/// Parses the scenario_to_string grammar ("none"/"" -> empty spec) and
/// validates the result.
StatusOr<ScenarioSpec> scenario_from_string(const std::string& text);

/// Generates `options` shaped by `spec`. With a trivial spec this defers to
/// generate_workload (bit-identical output). Shaped arrivals require a
/// generated process: kTrace + shapes_arrivals() is rejected. Extra flash
/// users get ids `options.users + j` and their own decorrelated rng forks,
/// so enabling a flash window never perturbs base users' arrival draws.
/// With `target_requests > 0` events are merged lazily in global time order
/// until the branch fan-out covers the target, matching generate_workload's
/// contract under drift.
StatusOr<std::vector<Request>> generate_scenario_workload(
    const WorkloadOptions& options, const ScenarioSpec& spec);

}  // namespace fcad::serving
