#include "serving/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "serving/stream.hpp"

namespace fcad::serving {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Shortest decimal form that parses back to exactly `v` ("inf" for
/// infinity) — keeps canonical scenario strings human-typable while staying
/// byte-stable for fingerprinting.
std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

StatusOr<double> parse_number(const std::string& text) {
  if (text == "inf") return std::numeric_limits<double>::infinity();
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::invalid_argument("scenario: bad number '" + text + "'");
  }
  return v;
}

std::string trim(const std::string& text) {
  std::size_t lo = text.find_first_not_of(" \t");
  if (lo == std::string::npos) return "";
  std::size_t hi = text.find_last_not_of(" \t");
  return text.substr(lo, hi - lo + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(trim(text.substr(start)));
      return parts;
    }
    parts.push_back(trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
}

}  // namespace

int ScenarioSpec::extra_users() const {
  int total = 0;
  for (const auto& f : flash) total += f.extra_users;
  return total;
}

Status validate_scenario(const ScenarioSpec& spec) {
  if (spec.diurnal.period_s > 0) {
    if (spec.diurnal.amplitude < 0 || spec.diurnal.amplitude >= 1) {
      return Status::invalid_argument(
          "scenario: diurnal amplitude must be in [0, 1)");
    }
    if (spec.diurnal.phase < 0 || spec.diurnal.phase >= 1) {
      return Status::invalid_argument(
          "scenario: diurnal phase must be in [0, 1)");
    }
  }
  for (const auto& f : spec.flash) {
    if (f.start_s < 0 || f.end_s <= f.start_s) {
      return Status::invalid_argument(
          "scenario: flash window needs end > start >= 0");
    }
    if (!std::isfinite(f.end_s)) {
      return Status::invalid_argument("scenario: flash end must be finite");
    }
    if (f.rate_multiplier <= 0) {
      return Status::invalid_argument(
          "scenario: flash rate multiplier must be > 0");
    }
    if (f.extra_users < 0) {
      return Status::invalid_argument("scenario: flash users must be >= 0");
    }
    if (f.rate_multiplier == 1 && f.extra_users == 0) {
      return Status::invalid_argument(
          "scenario: flash window has no effect (rate=1, users=0)");
    }
  }
  for (const auto& c : spec.churn) {
    if (c.user < 0) {
      return Status::invalid_argument("scenario: churn user must be >= 0");
    }
    if (c.join_s < 0 || c.leave_s <= c.join_s) {
      return Status::invalid_argument(
          "scenario: churn needs leave > join >= 0");
    }
  }
  for (const auto& fault : spec.faults) {
    if (fault.instance < 0) {
      return Status::invalid_argument(
          "scenario: fault instance must be >= 0");
    }
    // Rejecting non-recovering faults up front guarantees a shard can
    // never lose its whole instance slice forever and stall the replay.
    if (fault.fail_s < 0 || fault.recover_s <= fault.fail_s ||
        !std::isfinite(fault.recover_s)) {
      return Status::invalid_argument(
          "scenario: fault needs finite recover > fail >= 0");
    }
  }
  return Status::ok();
}

double scenario_rate_multiplier(const ScenarioSpec& spec, double t_us) {
  const double t_s = t_us * 1e-6;
  double mult = 1.0;
  if (spec.diurnal.period_s > 0) {
    mult *= 1.0 + spec.diurnal.amplitude *
                      std::sin(2.0 * kPi *
                               (t_s / spec.diurnal.period_s +
                                spec.diurnal.phase));
  }
  for (const auto& f : spec.flash) {
    if (t_s >= f.start_s && t_s < f.end_s) mult *= f.rate_multiplier;
  }
  return mult;
}

std::string scenario_to_string(const ScenarioSpec& spec) {
  std::ostringstream out;
  bool first = true;
  auto clause = [&](const std::string& text) {
    if (!first) out << ";";
    out << text;
    first = false;
  };
  if (spec.diurnal.period_s > 0) {
    clause("diurnal:period=" + format_number(spec.diurnal.period_s) +
           ",amp=" + format_number(spec.diurnal.amplitude) +
           ",phase=" + format_number(spec.diurnal.phase));
  }
  for (const auto& f : spec.flash) {
    clause("flash:start=" + format_number(f.start_s) +
           ",end=" + format_number(f.end_s) +
           ",rate=" + format_number(f.rate_multiplier) +
           ",users=" + std::to_string(f.extra_users));
  }
  for (const auto& c : spec.churn) {
    clause("churn:user=" + std::to_string(c.user) +
           ",join=" + format_number(c.join_s) +
           ",leave=" + format_number(c.leave_s));
  }
  for (const auto& fault : spec.faults) {
    clause("fault:instance=" + std::to_string(fault.instance) +
           ",fail=" + format_number(fault.fail_s) +
           ",recover=" + format_number(fault.recover_s));
  }
  if (first) return "none";
  return out.str();
}

StatusOr<ScenarioSpec> scenario_from_string(const std::string& text) {
  ScenarioSpec spec;
  const std::string trimmed = trim(text);
  if (trimmed.empty() || trimmed == "none") return spec;
  for (const std::string& clause : split(trimmed, ';')) {
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      return Status::invalid_argument(
          "scenario: clause '" + clause + "' is missing ':'");
    }
    const std::string kind = trim(clause.substr(0, colon));
    // Collect key=value pairs first, then map them onto the clause kind.
    std::vector<std::pair<std::string, double>> kv;
    for (const std::string& pair : split(clause.substr(colon + 1), ',')) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::invalid_argument(
            "scenario: expected key=value, got '" + pair + "'");
      }
      auto value = parse_number(trim(pair.substr(eq + 1)));
      if (!value.is_ok()) return value.status();
      kv.emplace_back(trim(pair.substr(0, eq)), value.value());
    }
    auto take = [&](const std::string& key, double* out) -> bool {
      for (auto it = kv.begin(); it != kv.end(); ++it) {
        if (it->first == key) {
          *out = it->second;
          kv.erase(it);
          return true;
        }
      }
      return false;
    };
    if (kind == "diurnal") {
      DiurnalSpec d;
      if (!take("period", &d.period_s)) {
        return Status::invalid_argument("scenario: diurnal needs period=");
      }
      take("amp", &d.amplitude);
      take("phase", &d.phase);
      spec.diurnal = d;
    } else if (kind == "flash") {
      FlashCrowdSpec f;
      double users = 0;
      if (!take("start", &f.start_s) || !take("end", &f.end_s)) {
        return Status::invalid_argument("scenario: flash needs start=,end=");
      }
      take("rate", &f.rate_multiplier);
      if (take("users", &users)) f.extra_users = static_cast<int>(users);
      spec.flash.push_back(f);
    } else if (kind == "churn") {
      ChurnEvent c;
      double user = 0;
      if (!take("user", &user)) {
        return Status::invalid_argument("scenario: churn needs user=");
      }
      c.user = static_cast<int>(user);
      take("join", &c.join_s);
      take("leave", &c.leave_s);
      spec.churn.push_back(c);
    } else if (kind == "fault") {
      InstanceFault fault;
      double instance = 0;
      if (!take("instance", &instance) || !take("fail", &fault.fail_s) ||
          !take("recover", &fault.recover_s)) {
        return Status::invalid_argument(
            "scenario: fault needs instance=,fail=,recover=");
      }
      fault.instance = static_cast<int>(instance);
      spec.faults.push_back(fault);
    } else {
      return Status::invalid_argument(
          "scenario: unknown clause kind '" + kind + "'");
    }
    if (!kv.empty()) {
      return Status::invalid_argument("scenario: unknown key '" +
                                      kv.front().first + "' in clause '" +
                                      kind + "'");
    }
  }
  if (Status s = validate_scenario(spec); !s.is_ok()) return s;
  return spec;
}

StatusOr<std::vector<Request>> generate_scenario_workload(
    const WorkloadOptions& options, const ScenarioSpec& spec) {
  // The pull-based stream (stream.cpp) is the single copy of the shaped
  // generator — thinning, churn windows, flash users, heap merge, and the
  // branch fan-out all live there; this entry point just drains it.
  auto stream = make_request_stream(options, spec);
  if (!stream.is_ok()) return stream.status();
  return drain_request_stream(**stream, options.target_requests);
}

}  // namespace fcad::serving
