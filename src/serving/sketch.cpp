#include "serving/sketch.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/hash.hpp"

namespace fcad::serving {
namespace {

constexpr std::uint32_t kSketchMagic = 0x46534b31;  // "FSK1"

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  os.write(buf, sizeof v);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  os.write(buf, sizeof v);
}

void put_i64(std::ostream& os, std::int64_t v) {
  put_u64(os, static_cast<std::uint64_t>(v));
}

void put_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(os, bits);
}

template <typename T>
bool get_raw(std::istream& in, T& v) {
  char buf[sizeof v];
  in.read(buf, sizeof v);
  if (in.gcount() != sizeof v) return false;
  std::memcpy(&v, buf, sizeof v);
  return true;
}

bool get_f64(std::istream& in, double& v) {
  std::uint64_t bits = 0;
  if (!get_raw(in, bits)) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

}  // namespace

const char* to_string(LatencyMode mode) {
  switch (mode) {
    case LatencyMode::kExact: return "exact";
    case LatencyMode::kSketch: return "sketch";
  }
  return "?";
}

StatusOr<LatencyMode> latency_mode_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "exact") return LatencyMode::kExact;
  if (lower == "sketch") return LatencyMode::kSketch;
  return Status::not_found("unknown latency mode '" + name + "'");
}

std::uint64_t sketch_seed_from_fingerprint(const std::string& fingerprint) {
  util::Hash128 h;
  h.absorb_string("fcad-sketch-seed");
  h.absorb_string(fingerprint);
  return h.lo ^ h.hi;
}

QuantileSketch::QuantileSketch(std::uint64_t seed, double alpha)
    : alpha_(alpha),
      gamma_((1.0 + alpha) / (1.0 - alpha)),
      inv_log_gamma_(1.0 / std::log((1.0 + alpha) / (1.0 - alpha))),
      seed_(seed),
      min_(std::numeric_limits<double>::infinity()) {
  FCAD_CHECK_MSG(alpha > 0 && alpha < 1, "sketch: alpha out of (0, 1)");
}

std::int32_t QuantileSketch::index_of(double v) const {
  return static_cast<std::int32_t>(std::ceil(std::log(v) * inv_log_gamma_));
}

double QuantileSketch::representative(std::int32_t index) const {
  // Harmonic midpoint of the bucket (gamma^{i-1}, gamma^i]: every value in
  // the bucket is within relative error alpha of it.
  return 2.0 * std::pow(gamma_, static_cast<double>(index)) / (gamma_ + 1.0);
}

void QuantileSketch::add_bucket(std::int32_t index, std::int64_t n) {
  if (counts_.empty()) {
    lo_ = index;
    counts_.push_back(n);
    return;
  }
  const std::int32_t hi = lo_ + static_cast<std::int32_t>(counts_.size()) - 1;
  if (index > hi) {
    counts_.resize(static_cast<std::size_t>(counts_.size()) +
                       static_cast<std::size_t>(index - hi),
                   0);
    counts_[static_cast<std::size_t>(index - lo_)] += n;
    // A raised ceiling may push the span past the cap; fold everything
    // below the new floor into it. The floor position depends only on the
    // largest index ever seen, which keeps the state a pure function of
    // the value multiset.
    const std::int32_t floor = index - kMaxBuckets + 1;
    if (lo_ < floor) {
      std::int64_t folded = 0;
      const auto cut = static_cast<std::size_t>(floor - lo_);
      for (std::size_t i = 0; i < cut; ++i) folded += counts_[i];
      counts_.erase(counts_.begin(),
                    counts_.begin() + static_cast<std::ptrdiff_t>(cut));
      counts_.front() += folded;
      lo_ = floor;
      ++compactions_;
    }
    return;
  }
  if (index < lo_) {
    const std::int32_t floor = hi - kMaxBuckets + 1;
    const std::int32_t target = std::max(index, floor);
    if (target < lo_) {
      counts_.insert(counts_.begin(),
                     static_cast<std::size_t>(lo_ - target), 0);
      lo_ = target;
    }
    counts_[static_cast<std::size_t>(target - lo_)] += n;
    if (index < floor) ++compactions_;  // mass folded into the floor
    return;
  }
  counts_[static_cast<std::size_t>(index - lo_)] += n;
}

void QuantileSketch::add(double v) {
  FCAD_CHECK_MSG(std::isfinite(v) && v >= 0 && v <= kMaxSample,
                 "sketch: sample must be finite and in [0, kMaxSample]");
  ++count_;
  // Fixed-point accumulation (2^-24 us units): integer addition is
  // associative, so the serialized sum is identical for any add/merge order.
  sum_units_ += static_cast<__int128>(std::llround(std::ldexp(v, 24)));
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  if (v == 0) {
    ++zero_count_;
    return;
  }
  add_bucket(index_of(v), 1);
}

double QuantileSketch::sum() const {
  return std::ldexp(static_cast<double>(sum_units_), -24);
}

Status QuantileSketch::merge(const QuantileSketch& other) {
  if (seed_ != other.seed_) {
    return Status::invalid_argument(
        "sketch: cannot merge sketches with different seeds (they belong "
        "to different replays)");
  }
  if (alpha_ != other.alpha_) {
    return Status::invalid_argument(
        "sketch: cannot merge sketches with different alpha");
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  sum_units_ += other.sum_units_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  compactions_ += other.compactions_;
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    if (other.counts_[i] == 0) continue;
    add_bucket(other.lo_ + static_cast<std::int32_t>(i), other.counts_[i]);
  }
  return Status::ok();
}

double QuantileSketch::quantile(double pct) const {
  FCAD_CHECK_MSG(pct > 0 && pct <= 100, "sketch: pct out of (0, 100]");
  if (count_ == 0) return 0;
  const auto k = std::max<std::int64_t>(
      static_cast<std::int64_t>(
          std::ceil(pct / 100.0 * static_cast<double>(count_))),
      1);
  if (k >= count_) return max_;  // the top rank is tracked exactly
  std::int64_t cum = zero_count_;
  if (k <= cum) return 0;  // exact-zero prefix (queue waits hit this)
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= k) {
      const double v = representative(lo_ + static_cast<std::int32_t>(i));
      return std::min(std::max(v, min_), max_);
    }
  }
  return max_;  // unreachable when the invariants hold
}

void QuantileSketch::write_binary(std::ostream& os) const {
  put_u32(os, kSketchMagic);
  put_u64(os, seed_);
  put_f64(os, alpha_);
  put_i64(os, count_);
  put_i64(os, zero_count_);
  const auto sum_bits = static_cast<unsigned __int128>(sum_units_);
  put_u64(os, static_cast<std::uint64_t>(sum_bits));
  put_u64(os, static_cast<std::uint64_t>(sum_bits >> 64));
  put_f64(os, min_);
  put_f64(os, max_);
  put_i64(os, compactions_);
  put_u32(os, static_cast<std::uint32_t>(lo_));
  put_u32(os, static_cast<std::uint32_t>(counts_.size()));
  for (std::int64_t c : counts_) put_i64(os, c);
}

bool QuantileSketch::read_binary(std::istream& in, QuantileSketch& out) {
  std::uint32_t magic = 0;
  if (!get_raw(in, magic) || magic != kSketchMagic) return false;
  std::uint64_t seed = 0;
  double alpha = 0;
  if (!get_raw(in, seed) || !get_f64(in, alpha)) return false;
  if (!(alpha > 0 && alpha < 1)) return false;
  QuantileSketch sketch(seed, alpha);
  std::uint32_t lo = 0;
  std::uint32_t n = 0;
  std::uint64_t sum_lo = 0;
  std::uint64_t sum_hi = 0;
  if (!get_raw(in, sketch.count_) || !get_raw(in, sketch.zero_count_) ||
      !get_raw(in, sum_lo) || !get_raw(in, sum_hi) ||
      !get_f64(in, sketch.min_) || !get_f64(in, sketch.max_) ||
      !get_raw(in, sketch.compactions_) || !get_raw(in, lo) ||
      !get_raw(in, n)) {
    return false;
  }
  sketch.sum_units_ = static_cast<__int128>(
      (static_cast<unsigned __int128>(sum_hi) << 64) | sum_lo);
  if (n > static_cast<std::uint32_t>(kMaxBuckets)) return false;
  sketch.lo_ = static_cast<std::int32_t>(lo);
  sketch.counts_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_raw(in, sketch.counts_[i])) return false;
  }
  out = std::move(sketch);
  return true;
}

std::string QuantileSketch::to_bytes() const {
  std::ostringstream os;
  write_binary(os);
  return os.str();
}

}  // namespace fcad::serving
