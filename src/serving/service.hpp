// Service-time model: how long one batch pass of each decoder branch
// occupies an accelerator instance, derived from the analytical evaluator
// (Eqs. 3-5) or the cycle-level simulator of the searched config.
#pragma once

#include <vector>

#include "arch/elastic.hpp"
#include "sim/simulator.hpp"

namespace fcad::serving {

/// One branch's serving characteristics on a fixed accelerator config.
struct BranchService {
  int capacity = 1;    ///< requests per pass (replicated pipeline copies)
  double pass_us = 0;  ///< wall time one full pass occupies the instance
};

/// Per-branch service times of one accelerator instance. A pass costs
/// `pass_us` whether or not every pipeline copy is filled — that is the
/// batching trade-off the aggregator's timeout manages.
struct ServiceModel {
  std::vector<BranchService> branches;

  int num_branches() const { return static_cast<int>(branches.size()); }
  std::vector<int> capacities() const;

  /// Saturation throughput of ONE instance under a uniform branch mix (each
  /// branch offered the same request rate r): the instance is a single
  /// server, so it saturates when sum_j r / fps_j reaches 1, i.e. at
  /// B / sum_j(capacity_j / pass_j)^-1 requests/second in total.
  double peak_rps() const;
};

/// Builds the model from the analytical evaluation of `config` (what the
/// DSE scores): branch j serves `batch_j` requests per pass in
/// batch_j / fps_j seconds (BranchEval::fps counts all pipeline copies).
ServiceModel service_model_from_eval(const arch::AcceleratorConfig& config,
                                     const arch::AcceleratorEval& eval);

/// Same, from the cycle-level simulator result (the "board" numbers).
ServiceModel service_model_from_sim(const arch::AcceleratorConfig& config,
                                    const sim::SimResult& result);

}  // namespace fcad::serving
