// Serving statistics (serving step 4): exact tail-latency percentiles,
// throughput, utilization, queue depth, and SLA-violation accounting over a
// completed fleet simulation, plus table/CSV rendering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace fcad::serving {

/// Exact nearest-rank percentile: the smallest sample x such that at least
/// pct% of the samples are <= x (sorted[ceil(pct/100 * N)] 1-indexed).
/// `pct` must be in (0, 100]; requires a non-empty sample set.
double percentile(std::vector<double> samples, double pct);

struct LatencySummary {
  std::int64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Summarizes a (possibly empty) latency sample set; all zeros when empty.
LatencySummary summarize(std::vector<double> samples);

struct InstanceStats {
  int instance = 0;
  std::int64_t batches = 0;
  std::int64_t requests = 0;
  std::int64_t branch_switches = 0;  ///< passes that paid the switch penalty
  double busy_us = 0;
  double utilization = 0;  ///< busy_us / makespan
};

/// Per-request completion record (kept when FleetOptions::keep_records).
struct RequestRecord {
  std::int64_t id = 0;
  int user = 0;
  int branch = 0;
  int instance = 0;
  double arrival_us = 0;
  double start_us = 0;   ///< batch dispatch time
  double finish_us = 0;  ///< batch completion time
};

struct ServingStats {
  std::int64_t offered = 0;    ///< requests in the workload
  std::int64_t completed = 0;  ///< requests that finished (== offered)
  double makespan_us = 0;      ///< last completion time
  double throughput_rps = 0;   ///< completed / makespan
  LatencySummary latency;      ///< arrival -> completion, microseconds
  LatencySummary queue_wait;   ///< arrival -> dispatch, microseconds

  std::int64_t batches = 0;
  double mean_batch_fill = 0;   ///< mean occupancy / capacity over batches
  double mean_queue_depth = 0;  ///< time-averaged pending requests
  int max_queue_depth = 0;

  double sla_bound_us = 0;          ///< latency bound the run was scored at
  std::int64_t sla_violations = 0;  ///< requests with latency > bound
  double sla_violation_rate = 0;
  bool sla_met = false;  ///< p99 latency within the bound

  double fleet_utilization = 0;  ///< mean instance utilization
  std::vector<InstanceStats> instances;
  std::vector<RequestRecord> records;  ///< empty unless requested
};

/// Renders an aligned summary table (latency percentiles, throughput, SLA,
/// per-instance utilization) via util/table.
std::string serving_report(const ServingStats& stats);

/// Column names for `serving_csv_row`, prefixed by caller-defined key
/// columns (scenario labels, sweep coordinates, ...).
std::vector<std::string> serving_csv_header(std::vector<std::string> keys);

/// One CSV row of deterministic stats fields, appended after `keys`.
std::vector<std::string> serving_csv_row(std::vector<std::string> keys,
                                         const ServingStats& stats);

/// Appends the deterministic stats fields as one JSON object (the --json
/// twin of serving_csv_row; consumed by the CLIs' machine-readable output).
void serving_stats_json(JsonWriter& json, const ServingStats& stats);

}  // namespace fcad::serving
