// Serving statistics (serving step 4): exact tail-latency percentiles,
// throughput, utilization, queue depth, and SLA-violation accounting over a
// completed fleet simulation, plus table/CSV rendering and the text
// serialization that lets kTraffic outcomes ride the artifact cache.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "serving/sketch.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace fcad::serving {

/// Exact nearest-rank percentile: the smallest sample x such that at least
/// pct% of the samples are <= x (sorted[ceil(pct/100 * N)] 1-indexed).
/// `pct` must be in (0, 100]; requires a non-empty sample set.
double percentile(std::vector<double> samples, double pct);

/// Ok iff `pct` is a valid percentile rank in (0, 100]. The check every
/// user-facing percentile input (CLI flags, FleetOptions) must pass before
/// it reaches the CHECKing `percentile()` above.
Status validate_percentile(double pct);

/// Validating twin of `percentile` for user-controlled inputs: returns
/// Status::invalid_argument on an out-of-range rank or an empty sample set
/// instead of crashing the process.
StatusOr<double> percentile_checked(std::vector<double> samples, double pct);

/// Streaming tracker of the upper tail of at most `expected_total` samples,
/// so *partial* nearest-rank percentiles stay exact without re-scanning the
/// whole stream: `partial()` costs O(tail) where the tail is the top
/// (100-pct)% of the expected stream (~1% for p99), and `add` is O(1)
/// amortized. Replaces the full O(n) latency-vector copy that fleet
/// progress ticks used to pay ~20 times per replay.
class TailTracker {
 public:
  /// `pct` must be a valid percentile rank; `expected_total` is an upper
  /// bound on the number of samples that will ever be added.
  TailTracker(std::int64_t expected_total, double pct);

  void add(double sample);

  /// Exact nearest-rank `pct` percentile over the samples added so far
  /// (0 when no samples were added yet).
  double partial() const;

  std::int64_t seen() const { return seen_; }

 private:
  double pct_ = 99;
  std::size_t cap_ = 1;        ///< tail size needed at expected_total
  std::int64_t seen_ = 0;
  std::vector<double> tail_;   ///< min-heap of the largest cap_ samples
};

struct LatencySummary {
  std::int64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Summarizes a (possibly empty) latency sample set; all zeros when empty.
LatencySummary summarize(std::vector<double> samples);

/// Summarizes a quantile sketch: count/mean/max are exact, p50/p95/p99 are
/// within the sketch's relative-error bound of the exact nearest-rank
/// values. All zeros on an empty sketch.
LatencySummary summarize(const QuantileSketch& sketch);

struct InstanceStats {
  int instance = 0;
  std::int64_t batches = 0;
  std::int64_t requests = 0;
  std::int64_t branch_switches = 0;  ///< passes that paid the switch penalty
  double busy_us = 0;
  double utilization = 0;  ///< busy_us / makespan
};

/// Per-request completion record (kept when FleetOptions::keep_records).
struct RequestRecord {
  std::int64_t id = 0;
  int user = 0;
  int branch = 0;
  int instance = 0;
  double arrival_us = 0;
  double start_us = 0;   ///< batch dispatch time
  double finish_us = 0;  ///< batch completion time
};

struct ServingStats {
  std::int64_t offered = 0;    ///< requests in the workload
  std::int64_t completed = 0;  ///< requests that finished (== offered)
  double makespan_us = 0;      ///< last completion time
  double throughput_rps = 0;   ///< completed / makespan
  LatencySummary latency;      ///< arrival -> completion, microseconds
  LatencySummary queue_wait;   ///< arrival -> dispatch, microseconds

  std::int64_t batches = 0;
  double mean_batch_fill = 0;   ///< mean occupancy / capacity over batches
  double mean_queue_depth = 0;  ///< time-averaged pending requests
  int max_queue_depth = 0;

  double sla_bound_us = 0;          ///< latency bound the run was scored at
  std::int64_t sla_violations = 0;  ///< requests with latency > bound
  double sla_violation_rate = 0;
  bool sla_met = false;  ///< p99 latency within the bound

  double fleet_utilization = 0;  ///< mean instance utilization
  /// Elastic-policy events summed over shards (all zero on a static fleet):
  /// autoscaler joins/leaves, cell splits, and fault/recover transitions.
  std::int64_t scale_up_events = 0;
  std::int64_t scale_down_events = 0;
  std::int64_t reshard_splits = 0;
  std::int64_t fault_events = 0;
  std::int64_t recover_events = 0;
  std::vector<InstanceStats> instances;
  /// Requests completed per decoder branch (index = branch id).
  std::vector<std::int64_t> branch_completed;
  std::vector<RequestRecord> records;  ///< empty unless requested

  /// Shards reloaded from a checkpoint instead of simulated (diagnostic of
  /// the producing run — like cache counters, it is not serialized).
  int resumed_shards = 0;

  /// How the latency/queue-wait summaries were computed. kSketch marks them
  /// as sketch estimates (relative error bounded by the sketch alpha) and
  /// fills the two diagnostics below; in the default kExact mode nothing
  /// about the serialized output changes.
  LatencyMode latency_mode = LatencyMode::kExact;
  std::int64_t sketch_compactions = 0;  ///< folds across both sketches
  int sketch_buckets = 0;               ///< bucket spans across both sketches
};

/// Renders an aligned summary table (latency percentiles, throughput, SLA,
/// per-instance utilization) via util/table.
std::string serving_report(const ServingStats& stats);

/// Column names for `serving_csv_row`, prefixed by caller-defined key
/// columns (scenario labels, sweep coordinates, ...).
std::vector<std::string> serving_csv_header(std::vector<std::string> keys);

/// One CSV row of deterministic stats fields, appended after `keys`.
std::vector<std::string> serving_csv_row(std::vector<std::string> keys,
                                         const ServingStats& stats);

/// Appends the deterministic stats fields as one JSON object (the --json
/// twin of serving_csv_row; consumed by the CLIs' machine-readable output).
void serving_stats_json(JsonWriter& json, const ServingStats& stats);

/// Serializes every stats field (doubles bit-exact via %.17g, including the
/// per-instance rows, per-branch counters, and any retained request
/// records) as a line-keyed text block between "serving_stats" and
/// "serving_stats_end" markers. Embedded whole in search-artifact v3 files,
/// which is what lets kTraffic outcomes round-trip through the spec-hash
/// artifact cache. `resumed_shards` is a diagnostic of the producing run
/// and reloads as zero.
void serving_stats_to_text(std::ostream& os, const ServingStats& stats);

/// Parses the block written by serving_stats_to_text, consuming through the
/// terminal "serving_stats_end" marker. A truncated or torn block (missing
/// marker, short instance/record list) is rejected, never silently accepted
/// as a shorter-but-valid stats object. Line-keyed outer parsers (the
/// search-artifact reader) that already consumed the "serving_stats" header
/// line pass `header_consumed`.
StatusOr<ServingStats> serving_stats_from_text(std::istream& in,
                                               bool header_consumed = false);

/// Single-line (de)serializers for the per-instance and per-request rows,
/// shared by the stats block above and the fleet checkpoint format so the
/// two can never diverge per-row. Writers emit the terminating newline;
/// parsers reject a malformed or short line.
void write_instance_line(std::ostream& os, const InstanceStats& inst);
bool parse_instance_line(const std::string& line, InstanceStats& inst);
void write_record_line(std::ostream& os, const RequestRecord& rec);
bool parse_record_line(const std::string& line, RequestRecord& rec);

}  // namespace fcad::serving
