// Deterministic mergeable quantile sketch — the bounded-memory latency
// accounting behind `FleetOptions::latency_mode = kSketch`, which is what
// lets a billion-request replay finish with O(1) memory per shard instead
// of an O(requests) latency stream.
//
// The sketch is a logarithmic-bucket histogram (DDSketch-family): sample v
// lands in bucket ceil(log_gamma(v)) with gamma = (1+alpha)/(1-alpha), so
// every reported quantile is within a relative error of `alpha` (0.1% at
// the default) of the exact nearest-rank value. Exact zeros get their own
// counter; count/min/max are tracked exactly and the sum accumulates in
// 128-bit fixed point (2^-24 microsecond units — integer addition is
// associative where floating-point is not), so max is exact and the mean is
// exact to within the unit in sketch mode.
//
// Determinism and mergeability are the design constraints, not afterthoughts:
// the final bucket state is a pure function of the value *multiset* — the
// bucket schedule is fixed up front (no data-dependent compaction like a
// classic KLL), and the memory bound collapses the lowest buckets into a
// floor whose position depends only on the largest index seen. Merging is
// therefore associative and commutative down to the byte, which is what
// lets N processes fold fingerprint-bound checkpoints into one final result
// that is bit-identical to the single-process run for any merge order.
//
// `seed` binds a sketch to the replay fingerprint that produced it: merges
// refuse to fold sketches from different replays (or different alpha), the
// same contract the checkpoint fingerprint enforces for exact streams.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace fcad::serving {

/// How a fleet replay accounts per-request latencies.
enum class LatencyMode {
  kExact,   ///< full per-request latency/wait streams (the default)
  kSketch,  ///< bounded-memory quantile sketches (lossy, mergeable)
};

const char* to_string(LatencyMode mode);

/// Lookup by name ("exact", "sketch"); case-insensitive.
StatusOr<LatencyMode> latency_mode_by_name(const std::string& name);

/// Derives the sketch-binding seed from a replay fingerprint string (the
/// 32-hex-digit checkpoint fingerprint), so sketches and the checkpoints
/// that carry them are bound to one exact replay.
std::uint64_t sketch_seed_from_fingerprint(const std::string& fingerprint);

class QuantileSketch {
 public:
  /// Default relative-error bound; gamma = (1+alpha)/(1-alpha).
  static constexpr double kDefaultAlpha = 0.001;
  /// Bucket-span cap: 16384 buckets cover a dynamic range of gamma^16384
  /// (~10^14 at the default alpha), so the collapse below is a safety
  /// valve for pathological inputs, never the steady state for latencies.
  static constexpr int kMaxBuckets = 1 << 14;

  explicit QuantileSketch(std::uint64_t seed = 0,
                          double alpha = kDefaultAlpha);

  /// Largest accepted sample: 2^39 microseconds (~6.4 days), the bound that
  /// keeps one sample's fixed-point sum contribution inside 64 bits.
  static constexpr double kMaxSample = 549755813888.0;

  /// Adds one sample; `v` must be finite and in [0, kMaxSample].
  void add(double v);

  /// Folds `other` into this sketch. Status::invalid_argument when the
  /// seeds or alphas differ — sketches from different replays never merge.
  Status merge(const QuantileSketch& other);

  /// Nearest-rank quantile (`pct` in (0, 100]) over the samples added so
  /// far: the reported value is within relative error `alpha` of the exact
  /// nearest-rank pick, clamped into [min, max]; exact for the max and for
  /// all-zero prefixes. Returns 0 on an empty sketch.
  double quantile(double pct) const;

  std::int64_t count() const { return count_; }
  std::int64_t zero_count() const { return zero_count_; }
  /// Sum of the samples, exact to within 2^-24 per sample and — unlike a
  /// floating-point running sum — independent of add/merge order.
  double sum() const;
  /// Smallest / largest sample (min is +inf, max 0 on an empty sketch).
  double min() const { return min_; }
  double max() const { return max_; }
  double alpha() const { return alpha_; }
  std::uint64_t seed() const { return seed_; }
  /// Current bucket-span size (diagnostic; bounded by kMaxBuckets).
  int buckets() const { return static_cast<int>(counts_.size()); }
  /// Times the memory bound folded mass into the floor bucket (0 unless the
  /// sample dynamic range exceeded ~10^14). Merges sum the inputs'
  /// counters, then add any folds the merge itself performs.
  std::int64_t compactions() const { return compactions_; }

  /// Canonical little-endian binary encoding — byte-stable, so two sketches
  /// over the same value multiset (whatever the add/merge order) serialize
  /// identically as long as no compaction fired. Used by the v2 binary
  /// checkpoint format.
  void write_binary(std::ostream& os) const;
  /// Reads the encoding back; false on a torn or malformed block (the
  /// checkpoint loader then rejects the file wholesale).
  static bool read_binary(std::istream& in, QuantileSketch& out);
  /// write_binary into a string (byte-identity tests and checkpoints).
  std::string to_bytes() const;

 private:
  std::int32_t index_of(double v) const;
  double representative(std::int32_t index) const;
  /// Adds `n` samples' mass at bucket `index`, growing the span or folding
  /// below the floor as needed to keep it canonical and bounded.
  void add_bucket(std::int32_t index, std::int64_t n);

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::uint64_t seed_;
  std::int64_t count_ = 0;
  std::int64_t zero_count_ = 0;
  /// Sample sum in 2^-24 units (gcc/clang 128-bit integer: 1e9 samples of
  /// kMaxSample still fit with ~25 bits to spare).
  __int128 sum_units_ = 0;
  double min_;
  double max_ = 0;
  std::int64_t compactions_ = 0;
  std::int32_t lo_ = 0;  ///< index of counts_[0]; meaningless when empty
  std::vector<std::int64_t> counts_;
};

}  // namespace fcad::serving
