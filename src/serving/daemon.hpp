// The live serving daemon: the step from "simulator" to "system". Runs the
// existing batching/dispatch/TailTracker pipeline (engine.hpp) online behind
// a local-socket request server, with simple admission control when the
// rolling p99 drifts toward the SLA bound and a graceful drain on shutdown.
//
// Two entry points over the same submit path:
//
//  - run_trace(): drives an arrival-stamped trace through the online engine
//    under the spec's clock (usually VirtualClock). With admission control
//    off this produces per-request decisions, latencies, and stats
//    IDENTICAL to simulate_fleet on the same trace — the replay/live parity
//    contract, pinned by tests/daemon_test.cpp and diffed in CI.
//
//  - serve(): listens on an AF_UNIX socket (SteadyClock required) and
//    serves a line protocol:
//        client -> "req <user> <branch>\n"
//        daemon -> "ok <id> <branch> <instance> <latency_us>\n"   (on
//                  dispatch; latency is arrival -> predicted completion)
//               |  "shed <id>\n"        (rejected by admission control)
//               |  "err <reason>\n"
//    A client line "shutdown\n" — or request_shutdown(), which is safe to
//    call from a signal handler — stops intake, drains every in-flight
//    batch on the batching-timeout schedule, answers the stragglers, and
//    returns the final stats.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serving/fleet.hpp"
#include "serving/service.hpp"
#include "serving/stats.hpp"
#include "util/run_control.hpp"
#include "util/status.hpp"

namespace fcad::serving {

struct DaemonOptions {
  /// Admission control: once at least `admission_window` requests have
  /// completed, a new request is shed (rejected before batching) while the
  /// rolling p99 over the last `admission_window` completions exceeds
  /// `admission_headroom * sla.p99_bound_us` — the daemon starts refusing
  /// load *before* the SLA is breached, not after. With an elastic policy
  /// (ServeSpec::elastic) the daemon grows first and drops load last:
  /// shedding engages only once scale-up headroom is exhausted.
  bool admission_enabled = false;
  int admission_window = 256;
  double admission_headroom = 0.9;
  /// serve(): AF_UNIX socket path to listen on (unlinked + rebound).
  std::string socket_path;
  /// serve(): cap on requests one session may admit (TailTracker sizing
  /// and stream reservations; ~16 MB of latency/wait doubles at 1M).
  std::int64_t expected_requests = 1 << 20;
};

struct DaemonResult {
  ServingStats stats;     ///< over admitted requests only
  std::int64_t shed = 0;  ///< requests rejected by admission control
};

class Daemon {
 public:
  /// `spec.workload` is unused (the daemon serves whatever arrives);
  /// `spec.fleet`/`spec.sla`/`spec.clock` configure the engine.
  /// `spec.elastic` and `spec.scenario.faults` apply in both entry points —
  /// arrival shaping in `spec.scenario` is the generator's business and is
  /// ignored here (shape the trace before handing it to run_trace).
  Daemon(ServiceModel service, ServeSpec spec, DaemonOptions options = {});
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Drives an arrival-stamped trace through the online submit path —
  /// admission control included — sharded and merged exactly like
  /// simulate_fleet (user u -> shard u mod S, index-ordered merge), each
  /// shard on its own clock of the spec's kind. Deterministic for any
  /// thread count; cancellable via `scope` (StatusCode::kCancelled).
  StatusOr<DaemonResult> run_trace(const std::vector<Request>& trace,
                                   const util::RunScope* scope = nullptr) const;

  /// Serves the socket until shutdown. Blocks; returns the session's final
  /// stats after the graceful drain. Requires options.socket_path,
  /// spec.clock == ClockKind::kSteady, and spec.fleet.shards == 1 (live
  /// sharding is a daemon-per-shard deployment, not one process).
  StatusOr<DaemonResult> serve();

  /// Initiates a graceful shutdown of a concurrent serve(): one write to an
  /// internal pipe, so it is safe from any thread or signal handler. A
  /// no-op when serve() is not running (the next serve() call will see it).
  void request_shutdown();

 private:
  ServiceModel service_;
  ServeSpec spec_;
  DaemonOptions options_;
  int shutdown_pipe_[2] = {-1, -1};
};

}  // namespace fcad::serving
