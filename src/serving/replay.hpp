// The shared sharded-replay driver behind `serving_cli --replay`,
// `bench_serving --replay`, and `serving_daemon` replay mode. The three
// binaries used to carry near-identical copies of this glue (flag parsing,
// workload generation, cancel-at wiring, the replay banner, CSV/JSON
// emission); it now lives here once, so their flags, output formats, and
// exit codes can never drift apart — which is what lets CI diff the
// daemon's decisions against the CLI's byte for byte.
//
// The hardware search that produces the ServiceModel stays in the binaries:
// serving must not depend on dse.
#pragma once

#include <string>
#include <vector>

#include "serving/fleet.hpp"
#include "serving/service.hpp"
#include "util/args.hpp"
#include "util/status.hpp"

namespace fcad::serving {

/// One replay job: the ServeSpec plus the CLI-facing outputs.
struct ReplayJob {
  ServeSpec spec;
  /// Cancel via RunControl once this fraction of the requests completed
  /// (exit code 3); 0 disables.
  double cancel_at = 0;
  std::string csv_path;        ///< stats row ("" disables)
  std::string json_path;       ///< deterministic JSON report ("" disables)
  /// Per-request decision CSV (id,user,branch,instance,arrival_us,start_us,
  /// finish_us; exact %.17g doubles, sorted by id) — the artifact CI diffs
  /// between the daemon and simulate_fleet for replay/live parity.
  std::string decisions_path;
  std::string json_bench = "serving_replay";  ///< "bench" key in the JSON
  /// Drive the trace through serving::Daemon's online submit path instead
  /// of simulate_fleet. With admission off the outputs are identical.
  bool via_daemon = false;
  bool admission = false;  ///< daemon-path admission control (sheds load)
  /// Streaming replay (simulate_fleet_stream): the workload is generated
  /// lazily per shard instead of materialized up front — the
  /// billion-request path. Incompatible with via_daemon.
  bool stream = false;
  /// Non-empty switches the job to merge mode: fold these `--process-shard`
  /// checkpoints into the final stats (merge_replay_checkpoints) instead of
  /// simulating anything.
  std::vector<std::string> merge_paths;
};

/// Parses the shared --replay flag set (--replay N --users --frame-rate
/// --seed --instances --shards --threads --policy --timeout-us
/// --switch-penalty-us --sla-ms --tail-pct --clock --checkpoint --cancel-at
/// --scenario --elastic --latency-mode --stream --process-shard i/N
/// --merge a,b,... --csv --json --decisions) into a job. --scenario
/// takes the scenario_to_string grammar (diurnal/flash/churn/fault
/// clauses), --elastic the elastic_to_string grammar (scale/reshard
/// clauses); both default to "none". --latency-mode exact|sketch selects
/// the latency accounting; --process-shard i/N restricts a streaming run to
/// process i's shard range; --merge folds the resulting checkpoints.
/// Callers set via_daemon/admission themselves.
StatusOr<ReplayJob> replay_job_from_args(const ArgParser& args);

/// Runs the job end to end against `service`: generate the workload, replay
/// it (simulate_fleet or Daemon::run_trace), print the banner/report, write
/// the requested artifacts. Returns the process exit code: 0 ok, 1 error,
/// 3 cancelled via cancel_at. The caller owns the obs::ObservationScope.
int run_replay_cli(const ServiceModel& service, const ReplayJob& job);

}  // namespace fcad::serving
