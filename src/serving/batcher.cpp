#include "serving/batcher.hpp"

#include <algorithm>
#include <limits>

#include "util/status.hpp"

namespace fcad::serving {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

BatchAggregator::BatchAggregator(std::vector<int> capacity, double timeout_us)
    : capacity_(std::move(capacity)), timeout_us_(timeout_us) {
  FCAD_CHECK_MSG(!capacity_.empty(), "BatchAggregator: no branches");
  for (int c : capacity_) {
    FCAD_CHECK_MSG(c >= 1, "BatchAggregator: capacity must be >= 1");
  }
  queues_.resize(capacity_.size());
}

void BatchAggregator::enqueue(const Request& request) {
  FCAD_CHECK_MSG(
      request.branch >= 0 && request.branch < num_branches(),
      "BatchAggregator: request branch out of range");
  queues_[static_cast<std::size_t>(request.branch)].push_back(request);
}

int BatchAggregator::ready_branch(double now_us) const {
  int best = -1;
  double best_head = kInf;
  for (std::size_t j = 0; j < queues_.size(); ++j) {
    const auto& q = queues_[j];
    if (q.empty()) continue;
    const bool full = static_cast<int>(q.size()) >= capacity_[j];
    // Same expression as next_deadline_us() so a queue is ready exactly at
    // its reported deadline (no floating-point disagreement).
    const bool timed_out =
        timeout_us_ > 0 && now_us >= q.front().arrival_us + timeout_us_;
    // close() only forces partial batches out when no timeout would ever
    // fire; with a timeout the tail drains on its own schedule.
    const bool drained = closed_ && timeout_us_ <= 0;
    if (!(full || timed_out || drained)) continue;
    if (q.front().arrival_us < best_head) {
      best_head = q.front().arrival_us;
      best = static_cast<int>(j);
    }
  }
  return best;
}

std::optional<Batch> BatchAggregator::pop_ready(double now_us) {
  const int branch = ready_branch(now_us);
  if (branch < 0) return std::nullopt;
  auto& q = queues_[static_cast<std::size_t>(branch)];
  Batch batch;
  batch.branch = branch;
  batch.formed_us = now_us;
  const int take = std::min<int>(capacity_[static_cast<std::size_t>(branch)],
                                 static_cast<int>(q.size()));
  batch.requests.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    batch.requests.push_back(q.front());
    q.pop_front();
  }
  return batch;
}

double BatchAggregator::next_deadline_us() const {
  double deadline = kInf;
  if (timeout_us_ <= 0 && !closed_) return deadline;
  for (const auto& q : queues_) {
    if (q.empty()) continue;
    const double t = timeout_us_ > 0 ? q.front().arrival_us + timeout_us_
                                     : q.front().arrival_us;
    deadline = std::min(deadline, t);
  }
  return deadline;
}

double BatchAggregator::head_arrival_us(int branch) const {
  FCAD_CHECK(branch >= 0 && branch < num_branches());
  const auto& q = queues_[static_cast<std::size_t>(branch)];
  return q.empty() ? kInf : q.front().arrival_us;
}

std::size_t BatchAggregator::pending() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

int BatchAggregator::pending_in(int branch) const {
  FCAD_CHECK(branch >= 0 && branch < num_branches());
  return static_cast<int>(queues_[static_cast<std::size_t>(branch)].size());
}

}  // namespace fcad::serving
