// Elastic fleet policies (serving step 8b): deterministic autoscaling and
// dynamic resharding layered over the per-shard FleetEngine loops.
//
// The fleet becomes a *provisioned pool*: `FleetOptions::instances` are
// initially active, `AutoscaleSpec::max_instances` bounds what scale-up may
// additionally activate. Instances are partitioned across shards once, up
// front, over the provisioned total, so global instance ids (obs lanes,
// fault schedules) never move. Every decision — scale up/down, cell split,
// fault/recover — is a pure function of shard-local state at virtual-time
// boundaries, which keeps elastic replays bit-identical for any thread
// count: the same contract the static fleet pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serving/scenario.hpp"
#include "util/status.hpp"

namespace fcad::serving {

class FleetEngine;

/// Rolling-utilization autoscaler. Disabled while `max_instances <= 0`.
/// Utilization over each evaluation window is Δ(Σ instance busy µs) /
/// (elapsed µs × active instances); one instance joins when it exceeds
/// `high_watermark`, one leaves when it drops under `low_watermark`, with
/// `cooldown_us` hysteresis between decisions in either direction.
struct AutoscaleSpec {
  int max_instances = 0;        ///< provisioned cap; <= 0 disables scaling
  double high_watermark = 0.85; ///< scale up above this utilization
  double low_watermark = 0.25;  ///< scale down below this utilization
  double window_us = 100000;    ///< evaluation cadence
  double cooldown_us = 250000;  ///< min gap between scaling decisions
  int min_instances = 1;        ///< fleet-wide floor scale-down respects
};

/// Shard-local dynamic resharding. Disabled while `p99_fraction <= 0`.
/// When the rolling p99 over the last `window` completions drifts past
/// `p99_fraction * sla_bound_us`, the shard splits its hottest cell's user
/// range in two (up to `max_cells` cells), subject to `cooldown_us`.
struct ReshardSpec {
  double p99_fraction = 0;  ///< trigger threshold as a fraction of the SLA
  int window = 256;         ///< completions in the rolling p99 window
  double cooldown_us = 250000;
  int max_cells = 4;        ///< cap on user-range cells per shard
};

struct ElasticSpec {
  AutoscaleSpec autoscale;
  ReshardSpec reshard;

  bool autoscale_enabled() const { return autoscale.max_instances > 0; }
  bool reshard_enabled() const { return reshard.p99_fraction > 0; }
  bool enabled() const { return autoscale_enabled() || reshard_enabled(); }
};

/// Validates enabled layers: watermarks need 0 < low < high <= 1 and
/// window/cooldown sane; resharding needs p99_fraction > 0, window >= 1,
/// and max_cells >= 2 (a one-cell cap can never split).
Status validate_elastic(const ElasticSpec& spec);

/// Canonical one-line form, reparseable by elastic_from_string. Clauses:
///   scale:max=<k>,high=<u>,low=<u>,window_us=<t>,cooldown_us=<t>,min=<k>
///   reshard:frac=<f>,window=<n>,cooldown_us=<t>,cells=<n>
/// A fully disabled spec prints as "none".
std::string elastic_to_string(const ElasticSpec& spec);

/// Parses the elastic_to_string grammar ("none"/"" -> disabled spec) and
/// validates the result.
StatusOr<ElasticSpec> elastic_from_string(const std::string& text);

/// Fixed-size rolling window with a lazily computed exact nearest-rank p99
/// — shared by the daemon's admission control and the reshard trigger.
class RollingP99Window {
 public:
  explicit RollingP99Window(int window);

  void add(double value);
  std::int64_t count() const { return count_; }
  bool full() const {
    return count_ >= static_cast<std::int64_t>(ring_.size());
  }
  /// Exact nearest-rank p99 over the samples currently in the window
  /// (0 while empty). O(window) on first call after an add, O(1) after.
  double p99() const;

 private:
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::int64_t count_ = 0;
  mutable bool dirty_ = false;
  mutable double p99_ = 0;
};

/// One scheduled change of an instance's fault state, shard-local indices.
struct LocalFaultEvent {
  double t_us = 0;
  int local_instance = 0;
  bool fail = false;  ///< true = fail at t, false = recover at t
};

/// One shard's slice of the provisioned pool plus its local fault schedule.
struct ShardElasticPlan {
  int first_instance = 0;  ///< global id of the slice's first instance
  int provisioned = 1;     ///< slice size (what the engine constructs)
  int initial_active = 1;  ///< instances active before any scaling
  int min_active = 1;      ///< scale-down floor for this shard
  std::vector<LocalFaultEvent> faults;  ///< sorted by (t_us, instance)
};

/// Partitions the provisioned pool max(instances, autoscale.max_instances)
/// fairly across `shards` (contiguous slices, remainder to low shards —
/// the same split the static fleet uses, so a disabled spec reproduces it
/// exactly), actives `instances` of them (each shard activates a prefix of
/// its slice), and routes `faults` to the owning shard in local indices.
/// Faults naming instances outside the provisioned pool are rejected.
StatusOr<std::vector<ShardElasticPlan>> plan_elastic_shards(
    const ElasticSpec& spec, const std::vector<InstanceFault>& faults,
    int instances, int shards);

/// Drives one shard's elastic decisions from inside its event loop. The
/// loop calls tick() before dispatching and folds next_event_us() into its
/// time-advance target; the engine feeds completions back via
/// on_complete(). Everything is keyed on virtual-time readings, never on
/// wall time or thread identity.
class ElasticController {
 public:
  ElasticController(const ElasticSpec& spec, const ShardElasticPlan& plan,
                    double sla_bound_us);

  /// Applies every fault event due by `now_us` and, when an evaluation
  /// boundary has been crossed, one autoscale and/or reshard decision.
  void tick(FleetEngine& engine, double now_us);

  /// Next controller event: the earliest pending fault transition or the
  /// next evaluation boundary (+inf when neither layer has work left).
  double next_event_us(double now_us) const;

  /// Feeds one completion latency into the reshard trigger window.
  void on_complete(double latency_us);

  /// True while scale-up headroom remains — the live daemon sheds only
  /// after this is exhausted (grow first, drop load last).
  bool can_scale_up() const;

  int effective_active() const;

 private:
  void apply_fault(FleetEngine& engine, const LocalFaultEvent& event);
  void evaluate_autoscale(FleetEngine& engine, double now_us);
  void evaluate_reshard(FleetEngine& engine, double now_us);

  ElasticSpec spec_;
  ShardElasticPlan plan_;
  double sla_bound_us_;
  std::vector<bool> scaled_on_;  ///< autoscaler's intent per local instance
  std::vector<bool> faulted_;    ///< fault schedule's state per instance
  std::size_t next_fault_ = 0;
  double eval_next_us_;
  double last_eval_us_ = 0;
  double last_busy_us_ = 0;
  double scale_ready_us_ = 0;    ///< cooldown gate for the next scale move
  double reshard_ready_us_ = 0;  ///< cooldown gate for the next split
  RollingP99Window p99_window_;
};

}  // namespace fcad::serving
