#include "serving/fleet.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serving/engine.hpp"
#include "serving/stream.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr const char* kCheckpointMagic = "fcad-fleet-checkpoint v1";
/// Binary checkpoint v2 leading/trailing magics (sketch-mode replays).
constexpr char kBinaryMagic[8] = {'F', 'C', 'A', 'D', 'F', 'L', 'T', '2'};
constexpr std::uint32_t kBinaryVersion = 2;
constexpr std::uint32_t kBinaryTrailer = 0x32544c46;  // "FLT2"

/// Progress plumbing shared by every shard: a global completion counter
/// drives the ~20-tick cadence; the emitting shard supplies its local
/// partial tail estimate.
struct ProgressSink {
  const util::RunScope* scope = nullptr;
  std::int64_t offered = 0;
  std::int64_t chunk = 0;
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> next_at{0};
  std::atomic<std::int64_t> last_emitted{-1};
  std::mutex mutex;

  void emit(std::int64_t step, double partial_tail) {
    scope->emit({"fleet",
                 static_cast<int>(std::min<std::int64_t>(step, 1LL << 30)),
                 static_cast<int>(std::min<std::int64_t>(offered, 1LL << 30)),
                 partial_tail});
    last_emitted.store(step, std::memory_order_relaxed);
  }

  /// The engine is passed, not its tail value: partial_tail() costs O(tail)
  /// (or a sketch walk), and this is called once per event-loop iteration —
  /// only a due tick (at most ~20 per replay) may pay for the estimate.
  void maybe_emit(const FleetEngine& engine) {
    if (scope == nullptr || chunk <= 0) return;
    const std::int64_t c = completed.load(std::memory_order_relaxed);
    if (c < next_at.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mutex);
    if (c < next_at.load(std::memory_order_relaxed)) return;  // lost the race
    emit(c, engine.partial_tail());
    next_at.store((c / chunk + 1) * chunk, std::memory_order_relaxed);
  }
};

/// Pull interface the shard event loop consumes arrivals through — either a
/// materialized arrival-sorted slice (VectorSource) or a lazily generated
/// stream filtered down to the shard's users (StreamShardSource).
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  /// Next arrival without consuming it; nullptr once exhausted. Stable
  /// until the next pop().
  virtual const Request* peek() = 0;
  virtual void pop() = 0;
};

class VectorSource final : public RequestSource {
 public:
  explicit VectorSource(const std::vector<Request>& requests)
      : requests_(requests) {}

  const Request* peek() override {
    return next_ < requests_.size() ? &requests_[next_] : nullptr;
  }
  void pop() override { ++next_; }

 private:
  const std::vector<Request>& requests_;
  std::size_t next_ = 0;
};

/// Filters a full-workload stream down to `user % num_shards == shard`,
/// buffering one request — the shard sees exactly the slice the static
/// partition in simulate_fleet would hand it, without the workload ever
/// being materialized.
class StreamShardSource final : public RequestSource {
 public:
  StreamShardSource(RequestStream& stream, int shard, int num_shards)
      : stream_(stream), shard_(shard), num_shards_(num_shards) {}

  const Request* peek() override {
    while (!buffered_) {
      std::optional<Request> r = stream_.next();
      if (!r) return nullptr;
      if (r->user % num_shards_ == shard_) buffered_ = *r;
    }
    return &*buffered_;
  }
  void pop() override { buffered_.reset(); }

 private:
  RequestStream& stream_;
  int shard_;
  int num_shards_;
  std::optional<Request> buffered_;
};

/// One shard's event-driven replay: arrivals pulled from `source` (in
/// non-decreasing time order) over `instances` servers whose global ids
/// start at `first_instance`, run through the shared FleetEngine on this
/// shard's own clock — VirtualClock jumps between events (bit-exact,
/// reproducible), SteadyClock paces them at their trace timestamps in real
/// time, so recorded dispatch times and latencies include genuine scheduler
/// jitter — that is the point of wall mode, not a defect. The only failure
/// mode is cooperative cancellation via `sink->scope`.
StatusOr<ShardStats> run_shard(const ServiceModel& service,
                               RequestSource& source,
                               std::int64_t expected_requests,
                               int shard_index, const ElasticSpec& elastic,
                               const ShardElasticPlan& plan,
                               const FleetOptions& options,
                               std::uint64_t sketch_seed,
                               ProgressSink* sink) {
  const util::RunScope* scope = sink->scope;
  const Request* first = source.peek();
  const std::unique_ptr<Clock> clock =
      make_clock(options.clock, first != nullptr ? first->arrival_us : 0);

  FleetEngineConfig config;
  config.policy = options.policy;
  config.batch_timeout_us = options.batch_timeout_us;
  config.switch_penalty_us = options.switch_penalty_us;
  config.sla_bound_us = options.sla_bound_us;
  config.progress_tail_pct = options.progress_tail_pct;
  config.keep_records = options.keep_records;
  config.shard_index = shard_index;
  config.first_instance = plan.first_instance;
  config.instances = plan.provisioned;
  config.initial_active = plan.initial_active;
  config.max_cells =
      elastic.reshard_enabled() ? elastic.reshard.max_cells : 1;
  config.expected_requests = expected_requests;
  config.latency_mode = options.latency_mode;
  config.sketch_seed = sketch_seed;
  FleetEngine engine(service, config, clock.get());
  engine.set_batch_hook([sink](const Batch& batch, int, double, double) {
    sink->completed.fetch_add(
        static_cast<std::int64_t>(batch.requests.size()),
        std::memory_order_relaxed);
  });

  // The controller exists whenever a policy or fault schedule has work to
  // do; its decisions are functions of shard-local state at virtual-time
  // readings, so its presence never couples shards or threads.
  std::optional<ElasticController> controller;
  if (elastic.enabled() || !plan.faults.empty()) {
    controller.emplace(elastic, plan, options.sla_bound_us);
    engine.set_controller(&*controller);
  }

  while (true) {
    if (scope != nullptr && scope->should_stop()) {
      return Status::cancelled("fleet replay cancelled after " +
                               std::to_string(sink->completed.load()) + "/" +
                               std::to_string(sink->offered) + " requests");
    }
    // Ingest every arrival due by the clock reading.
    while (const Request* r = source.peek()) {
      if (r->arrival_us > engine.now_us()) break;
      engine.enqueue(*r);
      source.pop();
    }
    const Request* upcoming = source.peek();
    if (upcoming == nullptr) engine.close();

    if (controller) controller->tick(engine, engine.now_us());
    engine.dispatch_ready();
    sink->maybe_emit(engine);

    // Advance to the next event: an arrival, a batching deadline, an
    // elastic boundary (evaluation cadence or fault transition), or — when
    // a batch is ready but every instance is busy — an instance freeing up.
    double t_us = engine.next_event_us();
    if (upcoming != nullptr) {
      t_us = std::min(t_us, upcoming->arrival_us);
    }
    if (controller) {
      t_us = std::min(t_us, controller->next_event_us(engine.now_us()));
    }
    // The controller's evaluation cadence stays finite after the work is
    // done, so "no event left" alone no longer terminates the loop — the
    // drained check does (it is exactly when t_us hit +inf before).
    if ((upcoming == nullptr && engine.drained()) || t_us == kInf) break;
    // Virtual time must advance strictly every iteration — an equal-time
    // event would loop forever on exact readings. A steady clock, by
    // contrast, keeps moving between calls, so the wall reading can
    // legitimately overtake the event schedule; advance_to on a
    // past deadline is then an immediate return and the next iteration
    // processes whatever became due.
    if (options.clock == ClockKind::kVirtual) {
      FCAD_CHECK_MSG(t_us > engine.now_us(),
                     "fleet: simulation time did not advance");
    }
    engine.advance_to(t_us);
  }

  ShardStats out = engine.take_stats();
  FCAD_CHECK_MSG(out.completed == out.offered,
                 "fleet: lost requests in flight");
  return out;
}

// ---------------------------------------------------------- checkpointing --

void write_int64s(std::ostream& os, const char* key,
                  const std::vector<std::int64_t>& values) {
  os << key << " " << values.size();
  for (std::int64_t v : values) os << " " << v;
  os << "\n";
}

void write_doubles(std::ostream& os, const char* key,
                   const std::vector<double>& values) {
  os << key << " " << values.size();
  for (double v : values) os << " " << format_exact(v);
  os << "\n";
}

void shard_to_text(std::ostream& os, const ShardStats& shard) {
  os << "offered " << shard.offered << "\n";
  os << "completed " << shard.completed << "\n";
  os << "batches " << shard.batches << "\n";
  os << "sla_violations " << shard.sla_violations << "\n";
  os << "max_queue_depth " << shard.max_queue_depth << "\n";
  os << "scale_up_events " << shard.scale_up_events << "\n";
  os << "scale_down_events " << shard.scale_down_events << "\n";
  os << "reshard_splits " << shard.reshard_splits << "\n";
  os << "fault_events " << shard.fault_events << "\n";
  os << "recover_events " << shard.recover_events << "\n";
  os << "fill_sum " << format_exact(shard.fill_sum) << "\n";
  os << "depth_integral_us " << format_exact(shard.depth_integral_us) << "\n";
  os << "makespan_us " << format_exact(shard.makespan_us) << "\n";
  write_doubles(os, "latencies", shard.latencies);
  write_doubles(os, "waits", shard.waits);
  write_int64s(os, "branch_completed", shard.branch_completed);
  // Instance and record rows share stats.cpp's line (de)serializers, so
  // the checkpoint and artifact formats can never diverge per-row (the
  // utilization field is 0 here — it is recomputed at merge time).
  os << "instances " << shard.instances.size() << "\n";
  for (const InstanceStats& inst : shard.instances) {
    write_instance_line(os, inst);
  }
  os << "records " << shard.records.size() << "\n";
  for (const RequestRecord& rec : shard.records) {
    write_record_line(os, rec);
  }
  os << "shard_end\n";
}

bool shard_from_text(std::istream& in, ShardStats& shard) {
  std::string line;
  auto read_counted = [](std::istringstream& fields, auto& out) {
    std::size_t n = 0;
    fields >> n;
    if (fields.fail()) return false;
    out.clear();
    // The count comes from an untrusted file: cap the reservation so a
    // corrupt value fails the element reads below (-> wholesale restart)
    // instead of throwing length_error out of reserve.
    out.reserve(std::min<std::size_t>(n, 1u << 20));
    for (std::size_t i = 0; i < n; ++i) {
      typename std::decay_t<decltype(out)>::value_type v{};
      fields >> v;
      if (fields.fail()) return false;
      out.push_back(v);
    }
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "shard_end") return true;
    if (key == "offered") {
      fields >> shard.offered;
    } else if (key == "completed") {
      fields >> shard.completed;
    } else if (key == "batches") {
      fields >> shard.batches;
    } else if (key == "sla_violations") {
      fields >> shard.sla_violations;
    } else if (key == "max_queue_depth") {
      fields >> shard.max_queue_depth;
    } else if (key == "scale_up_events") {
      fields >> shard.scale_up_events;
    } else if (key == "scale_down_events") {
      fields >> shard.scale_down_events;
    } else if (key == "reshard_splits") {
      fields >> shard.reshard_splits;
    } else if (key == "fault_events") {
      fields >> shard.fault_events;
    } else if (key == "recover_events") {
      fields >> shard.recover_events;
    } else if (key == "fill_sum") {
      fields >> shard.fill_sum;
    } else if (key == "depth_integral_us") {
      fields >> shard.depth_integral_us;
    } else if (key == "makespan_us") {
      fields >> shard.makespan_us;
    } else if (key == "latencies") {
      if (!read_counted(fields, shard.latencies)) return false;
      continue;
    } else if (key == "waits") {
      if (!read_counted(fields, shard.waits)) return false;
      continue;
    } else if (key == "branch_completed") {
      if (!read_counted(fields, shard.branch_completed)) return false;
      continue;
    } else if (key == "instances") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) return false;
      for (std::size_t i = 0; i < n; ++i) {
        InstanceStats inst;
        if (!std::getline(in, line) || !parse_instance_line(line, inst)) {
          return false;
        }
        shard.instances.push_back(inst);
      }
      continue;
    } else if (key == "records") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) return false;
      for (std::size_t i = 0; i < n; ++i) {
        RequestRecord rec;
        if (!std::getline(in, line) || !parse_record_line(line, rec)) {
          return false;
        }
        shard.records.push_back(rec);
      }
      continue;
    } else {
      return false;
    }
    if (fields.fail()) return false;
  }
  return false;  // ran out of lines before shard_end
}

void absorb_common_fingerprint(util::Hash128& h, const ServiceModel& service,
                               const FleetOptions& options,
                               const ScenarioSpec& scenario,
                               const ElasticSpec& elastic) {
  // Elastic policies and fault schedules change per-shard results, so a
  // checkpoint from a different spec must never resume this run. The
  // canonical strings are byte-stable (format_number round-trips exactly).
  h.absorb_string(scenario_to_string(scenario));
  h.absorb_string(elastic_to_string(elastic));
  h.absorb(service.branches.size());
  for (const BranchService& b : service.branches) {
    h.absorb(static_cast<std::uint64_t>(b.capacity));
    h.absorb_double(b.pass_us);
  }
  h.absorb(static_cast<std::uint64_t>(options.instances));
  h.absorb(static_cast<std::uint64_t>(options.policy));
  h.absorb_double(options.batch_timeout_us);
  h.absorb_double(options.switch_penalty_us);
  h.absorb_double(options.sla_bound_us);
  h.absorb(static_cast<std::uint64_t>(options.shards));
  h.absorb(static_cast<std::uint64_t>(options.keep_records));
  h.absorb(static_cast<std::uint64_t>(options.latency_mode));
}

/// Fingerprint binding a checkpoint to its exact run: the service model,
/// the full request stream (hashed shard slice by shard slice, in shard
/// order), and every result-affecting fleet option. A mismatch means
/// "different replay" — the checkpoint is ignored. The clock kind is
/// deliberately absent: it paces events without changing results, so a
/// virtual run may resume a cancelled wall-clock one and vice versa.
/// process_index/process_count are likewise absent — the point of the
/// multi-process mode is that every process (and the final merge) agrees on
/// one fingerprint.
std::string replay_fingerprint(
    const ServiceModel& service,
    const std::vector<std::vector<Request>>& shard_requests,
    const FleetOptions& options, const ScenarioSpec& scenario,
    const ElasticSpec& elastic) {
  util::Hash128 h;
  h.absorb_string(kCheckpointMagic);
  absorb_common_fingerprint(h, service, options, scenario, elastic);
  h.absorb(shard_requests.size());
  for (const std::vector<Request>& shard : shard_requests) {
    h.absorb(shard.size());
    for (const Request& r : shard) {
      h.absorb(static_cast<std::uint64_t>(r.id));
      h.absorb(static_cast<std::uint64_t>(r.user));
      h.absorb(static_cast<std::uint64_t>(r.branch));
      h.absorb_double(r.arrival_us);
    }
  }
  return h.hex();
}

/// Streaming-replay twin: the request stream is a pure function of the
/// workload + scenario parameters, so hashing those (instead of a stream the
/// whole point is never to materialize) binds the checkpoint just as
/// tightly.
std::string stream_fingerprint(const ServiceModel& service,
                               const WorkloadOptions& workload,
                               const FleetOptions& options,
                               const ScenarioSpec& scenario,
                               const ElasticSpec& elastic) {
  util::Hash128 h;
  h.absorb_string("fcad-fleet-stream v2");
  absorb_common_fingerprint(h, service, options, scenario, elastic);
  h.absorb(static_cast<std::uint64_t>(workload.process));
  h.absorb(static_cast<std::uint64_t>(workload.users));
  h.absorb(static_cast<std::uint64_t>(workload.branches));
  h.absorb_double(workload.frame_rate_hz);
  h.absorb_double(workload.duration_s);
  h.absorb(workload.seed);
  h.absorb_double(workload.burst_on_s);
  h.absorb_double(workload.burst_off_s);
  h.absorb_double(workload.burst_factor);
  h.absorb(static_cast<std::uint64_t>(workload.target_requests));
  return h.hex();
}

/// Loads finished-shard slots from `path`. Any mismatch (magic,
/// fingerprint, shard count) or torn content ignores the file wholesale —
/// resuming from a stale or corrupt checkpoint would silently change
/// results, restarting never does.
int load_checkpoint(const std::string& path, const std::string& fingerprint,
                    std::vector<std::optional<ShardStats>>& slots) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointMagic) {
    FCAD_LOG(kWarn) << "fleet checkpoint unreadable, restarting: " << path;
    return 0;
  }
  if (!std::getline(in, line) || line != "fingerprint " + fingerprint) {
    FCAD_LOG(kWarn) << "fleet checkpoint is for a different replay, "
                       "restarting: "
                    << path;
    return 0;
  }
  if (!std::getline(in, line) ||
      line != "shards " + std::to_string(slots.size())) {
    FCAD_LOG(kWarn) << "fleet checkpoint shard count mismatch, restarting: "
                    << path;
    return 0;
  }
  std::vector<std::optional<ShardStats>> loaded(slots.size());
  int count = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      slots = std::move(loaded);
      return count;
    }
    std::size_t index = slots.size();
    fields >> index;
    if (key != "shard" || fields.fail() || index >= slots.size()) break;
    ShardStats shard;
    if (!shard_from_text(in, shard)) break;
    loaded[index] = std::move(shard);
    ++count;
  }
  FCAD_LOG(kWarn) << "fleet checkpoint torn or truncated, restarting: "
                  << path;
  return 0;
}

/// Atomically rewrites the checkpoint with every finished shard. Called
/// under the caller's mutex; a failed write only costs resumability.
void write_checkpoint(const std::string& path, const std::string& fingerprint,
                      const std::vector<std::optional<ShardStats>>& slots) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid());
  bool written = false;
  {
    std::ofstream out(tmp_path);
    if (out) {
      out << kCheckpointMagic << "\n";
      out << "fingerprint " << fingerprint << "\n";
      out << "shards " << slots.size() << "\n";
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (!slots[s]) continue;
        out << "shard " << s << "\n";
        shard_to_text(out, *slots[s]);
      }
      out << "end\n";
      written = out.good();
    }
  }
  std::error_code ec;
  if (written) {
    std::filesystem::rename(tmp_path, path, ec);
    written = !ec;
  }
  if (!written) {
    std::filesystem::remove(tmp_path, ec);
    FCAD_LOG(kWarn) << "fleet checkpoint not writable: " << path;
  }
}

// ------------------------------------------------ binary checkpoint (v2) --
// The sketch-mode format: raw little-endian fields (like the sketch's own
// encoding), no per-request streams — a shard block is O(branches +
// instances + sketch buckets) however many requests it covered. Every read
// is exact-size, so a torn or truncated file fails a get_* and is rejected
// wholesale, same contract as the text format.

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  os.write(buf, sizeof v);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  os.write(buf, sizeof v);
}

void put_i64(std::ostream& os, std::int64_t v) {
  put_u64(os, static_cast<std::uint64_t>(v));
}

void put_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(os, bits);
}

template <typename T>
bool get_raw(std::istream& in, T& v) {
  char buf[sizeof v];
  in.read(buf, sizeof v);
  if (in.gcount() != sizeof v) return false;
  std::memcpy(&v, buf, sizeof v);
  return true;
}

bool get_f64(std::istream& in, double& v) {
  std::uint64_t bits = 0;
  if (!get_raw(in, bits)) return false;
  std::memcpy(&v, &bits, sizeof v);
  return true;
}

void shard_to_binary(std::ostream& os, const ShardStats& shard) {
  put_i64(os, shard.offered);
  put_i64(os, shard.completed);
  put_i64(os, shard.batches);
  put_i64(os, shard.sla_violations);
  put_i64(os, shard.max_queue_depth);
  put_i64(os, shard.scale_up_events);
  put_i64(os, shard.scale_down_events);
  put_i64(os, shard.reshard_splits);
  put_i64(os, shard.fault_events);
  put_i64(os, shard.recover_events);
  put_f64(os, shard.fill_sum);
  put_f64(os, shard.depth_integral_us);
  put_f64(os, shard.makespan_us);
  put_u32(os, static_cast<std::uint32_t>(shard.branch_completed.size()));
  for (std::int64_t v : shard.branch_completed) put_i64(os, v);
  put_u32(os, static_cast<std::uint32_t>(shard.instances.size()));
  for (const InstanceStats& inst : shard.instances) {
    put_i64(os, inst.instance);
    put_i64(os, inst.batches);
    put_i64(os, inst.requests);
    put_i64(os, inst.branch_switches);
    put_f64(os, inst.busy_us);
  }
  shard.latency_sketch.write_binary(os);
  shard.wait_sketch.write_binary(os);
}

bool shard_from_binary(std::istream& in, ShardStats& shard) {
  std::int64_t depth = 0;
  if (!get_raw(in, shard.offered) || !get_raw(in, shard.completed) ||
      !get_raw(in, shard.batches) || !get_raw(in, shard.sla_violations) ||
      !get_raw(in, depth) || !get_raw(in, shard.scale_up_events) ||
      !get_raw(in, shard.scale_down_events) ||
      !get_raw(in, shard.reshard_splits) ||
      !get_raw(in, shard.fault_events) ||
      !get_raw(in, shard.recover_events) || !get_f64(in, shard.fill_sum) ||
      !get_f64(in, shard.depth_integral_us) ||
      !get_f64(in, shard.makespan_us)) {
    return false;
  }
  shard.max_queue_depth = static_cast<int>(depth);
  shard.latency_mode = LatencyMode::kSketch;
  std::uint32_t n_branch = 0;
  if (!get_raw(in, n_branch)) return false;
  shard.branch_completed.clear();
  shard.branch_completed.reserve(std::min<std::uint32_t>(n_branch, 1u << 20));
  for (std::uint32_t i = 0; i < n_branch; ++i) {
    std::int64_t v = 0;
    if (!get_raw(in, v)) return false;
    shard.branch_completed.push_back(v);
  }
  std::uint32_t n_instances = 0;
  if (!get_raw(in, n_instances)) return false;
  shard.instances.clear();
  shard.instances.reserve(std::min<std::uint32_t>(n_instances, 1u << 20));
  for (std::uint32_t i = 0; i < n_instances; ++i) {
    InstanceStats inst;
    std::int64_t id = 0;
    if (!get_raw(in, id) || !get_raw(in, inst.batches) ||
        !get_raw(in, inst.requests) || !get_raw(in, inst.branch_switches) ||
        !get_f64(in, inst.busy_us)) {
      return false;
    }
    inst.instance = static_cast<int>(id);
    shard.instances.push_back(inst);
  }
  return QuantileSketch::read_binary(in, shard.latency_sketch) &&
         QuantileSketch::read_binary(in, shard.wait_sketch);
}

/// Binary twin of load_checkpoint: same strictness (any mismatch or torn
/// content rejects the file wholesale), returns the loaded-shard count.
int load_checkpoint_binary(const std::string& path,
                           const std::string& fingerprint,
                           std::vector<std::optional<ShardStats>>& slots) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  char magic[8];
  in.read(magic, sizeof magic);
  if (in.gcount() != sizeof magic ||
      std::memcmp(magic, kBinaryMagic, sizeof magic) != 0) {
    FCAD_LOG(kWarn) << "fleet checkpoint unreadable, restarting: " << path;
    return 0;
  }
  std::uint32_t version = 0;
  std::uint32_t fp_len = 0;
  if (!get_raw(in, version) || version != kBinaryVersion ||
      !get_raw(in, fp_len) || fp_len != fingerprint.size()) {
    FCAD_LOG(kWarn) << "fleet checkpoint unreadable, restarting: " << path;
    return 0;
  }
  std::string fp(fp_len, '\0');
  in.read(fp.data(), static_cast<std::streamsize>(fp_len));
  if (in.gcount() != static_cast<std::streamsize>(fp_len) ||
      fp != fingerprint) {
    FCAD_LOG(kWarn) << "fleet checkpoint is for a different replay, "
                       "restarting: "
                    << path;
    return 0;
  }
  std::uint32_t total = 0;
  std::uint32_t present = 0;
  if (!get_raw(in, total) || total != slots.size() || !get_raw(in, present) ||
      present > total) {
    FCAD_LOG(kWarn) << "fleet checkpoint shard count mismatch, restarting: "
                    << path;
    return 0;
  }
  std::vector<std::optional<ShardStats>> loaded(slots.size());
  for (std::uint32_t i = 0; i < present; ++i) {
    std::uint32_t index = 0;
    ShardStats shard;
    if (!get_raw(in, index) || index >= slots.size() ||
        !shard_from_binary(in, shard)) {
      FCAD_LOG(kWarn) << "fleet checkpoint torn or truncated, restarting: "
                      << path;
      return 0;
    }
    loaded[index] = std::move(shard);
  }
  std::uint32_t trailer = 0;
  if (!get_raw(in, trailer) || trailer != kBinaryTrailer) {
    FCAD_LOG(kWarn) << "fleet checkpoint torn or truncated, restarting: "
                    << path;
    return 0;
  }
  slots = std::move(loaded);
  return static_cast<int>(present);
}

/// Binary twin of write_checkpoint — same temp + rename atomicity.
void write_checkpoint_binary(
    const std::string& path, const std::string& fingerprint,
    const std::vector<std::optional<ShardStats>>& slots) {
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
  bool written = false;
  {
    std::ofstream out(tmp_path, std::ios::binary);
    if (out) {
      out.write(kBinaryMagic, sizeof kBinaryMagic);
      put_u32(out, kBinaryVersion);
      put_u32(out, static_cast<std::uint32_t>(fingerprint.size()));
      out.write(fingerprint.data(),
                static_cast<std::streamsize>(fingerprint.size()));
      put_u32(out, static_cast<std::uint32_t>(slots.size()));
      std::uint32_t present = 0;
      for (const auto& slot : slots) present += slot ? 1 : 0;
      put_u32(out, present);
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (!slots[s]) continue;
        put_u32(out, static_cast<std::uint32_t>(s));
        shard_to_binary(out, *slots[s]);
      }
      put_u32(out, kBinaryTrailer);
      written = out.good();
    }
  }
  std::error_code ec;
  if (written) {
    std::filesystem::rename(tmp_path, path, ec);
    written = !ec;
  }
  if (!written) {
    std::filesystem::remove(tmp_path, ec);
    FCAD_LOG(kWarn) << "fleet checkpoint not writable: " << path;
  }
}

/// The exact final tail-percentile estimate for the terminal progress tick,
/// computed from the per-shard streams BEFORE merge_shard_stats consumes
/// them. Exact mode streams every latency through a TailTracker (O(tail)
/// memory); sketch mode folds the shard sketches and reads the quantile.
double final_tail_estimate(const std::vector<ShardStats>& shards,
                           std::int64_t total_completed,
                           const FleetOptions& options) {
  if (options.latency_mode == LatencyMode::kSketch) {
    QuantileSketch merged;
    bool first = true;
    for (const ShardStats& shard : shards) {
      if (first) {
        merged = shard.latency_sketch;
        first = false;
      } else {
        FCAD_CHECK_MSG(merged.merge(shard.latency_sketch).is_ok(),
                       "fleet: shard sketches disagree on seed/alpha");
      }
    }
    return merged.count() == 0 ? 0
                               : merged.quantile(options.progress_tail_pct);
  }
  TailTracker tail(total_completed, options.progress_tail_pct);
  for (const ShardStats& shard : shards) {
    for (double v : shard.latencies) tail.add(v);
  }
  return tail.partial();
}

}  // namespace

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kBranchAffinity: return "branch-affinity";
  }
  return "?";
}

StatusOr<DispatchPolicy> dispatch_policy_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "round-robin" || lower == "rr") {
    return DispatchPolicy::kRoundRobin;
  }
  if (lower == "least-loaded" || lower == "least") {
    return DispatchPolicy::kLeastLoaded;
  }
  if (lower == "branch-affinity" || lower == "affinity") {
    return DispatchPolicy::kBranchAffinity;
  }
  return Status::not_found("unknown dispatch policy '" + name + "'");
}

StatusOr<FleetOptions> resolved_fleet_options(const ServeSpec& spec) {
  FleetOptions options = spec.fleet;
  const FleetOptions fleet_defaults;
  const SlaOptions sla_defaults;
  const bool fleet_bound_set =
      spec.fleet.sla_bound_us != fleet_defaults.sla_bound_us;
  const bool sla_bound_set =
      spec.sla.p99_bound_us != sla_defaults.p99_bound_us;
  if (fleet_bound_set && sla_bound_set &&
      spec.fleet.sla_bound_us != spec.sla.p99_bound_us) {
    return Status::invalid_argument(
        "ServeSpec: sla.p99_bound_us and fleet.sla_bound_us disagree — "
        "state the bound once");
  }
  if (sla_bound_set) options.sla_bound_us = spec.sla.p99_bound_us;
  if (spec.clock != ClockKind::kVirtual &&
      spec.fleet.clock != ClockKind::kVirtual &&
      spec.clock != spec.fleet.clock) {
    return Status::invalid_argument(
        "ServeSpec: clock and fleet.clock disagree — state the clock once");
  }
  if (spec.clock != ClockKind::kVirtual) options.clock = spec.clock;
  return options;
}

StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const std::vector<Request>& requests,
                                      const ServeSpec& spec,
                                      const util::RunScope* scope) {
  auto resolved = resolved_fleet_options(spec);
  if (!resolved.is_ok()) return resolved.status();
  const FleetOptions& options = *resolved;
  if (options.instances < 1) {
    return Status::invalid_argument("fleet: instances must be >= 1");
  }
  if (options.shards < 1 || options.shards > options.instances) {
    return Status::invalid_argument(
        "fleet: shards must be in [1, instances], got " +
        std::to_string(options.shards));
  }
  if (Status s = validate_percentile(options.progress_tail_pct); !s.is_ok()) {
    return Status::invalid_argument("fleet: progress_tail_pct: " +
                                    s.message());
  }
  if (service.num_branches() < 1) {
    return Status::invalid_argument("fleet: service model has no branches");
  }
  if (Status s = validate_scenario(spec.scenario); !s.is_ok()) return s;
  if (Status s = validate_elastic(spec.elastic); !s.is_ok()) return s;
  if (options.latency_mode == LatencyMode::kSketch && options.keep_records) {
    return Status::invalid_argument(
        "fleet: keep_records requires latency_mode exact — the binary v2 "
        "checkpoint carries no per-request records");
  }
  if (options.process_count != 1 || options.process_index != 0) {
    return Status::invalid_argument(
        "fleet: process sharding requires the streaming replay "
        "(simulate_fleet_stream)");
  }

  // Static partition: user u -> shard u mod S; the *provisioned* instance
  // pool splits into contiguous per-shard slices (with a disabled elastic
  // spec the provisioned pool is exactly the active fleet — the classic
  // split). One counting pass sizes every slice, one partition pass fills
  // them — the full-workload copy the old copy-then-sort paid is gone.
  // Partitioning preserves relative order, so a per-shard stable sort
  // yields exactly the slice a global stable sort would have handed the
  // shard — and already-sorted input (every generator's output) skips the
  // sorts entirely.
  const int num_shards = options.shards;
  std::vector<std::size_t> shard_sizes(static_cast<std::size_t>(num_shards),
                                       0);
  for (const Request& r : requests) {
    if (r.branch < 0 || r.branch >= service.num_branches()) {
      return Status::invalid_argument("fleet: request branch out of range");
    }
    ++shard_sizes[static_cast<std::size_t>(r.user % num_shards)];
  }
  std::vector<std::vector<Request>> shard_requests(
      static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shard_requests[static_cast<std::size_t>(s)].reserve(
        shard_sizes[static_cast<std::size_t>(s)]);
  }
  const auto by_arrival = [](const Request& a, const Request& b) {
    return a.arrival_us < b.arrival_us;
  };
  const bool presorted =
      std::is_sorted(requests.begin(), requests.end(), by_arrival);
  for (const Request& r : requests) {
    shard_requests[static_cast<std::size_t>(r.user % num_shards)].push_back(
        r);
  }
  if (!presorted) {
    for (std::vector<Request>& shard : shard_requests) {
      std::stable_sort(shard.begin(), shard.end(), by_arrival);
    }
  }
  auto plans_or = plan_elastic_shards(spec.elastic, spec.scenario.faults,
                                      options.instances, num_shards);
  if (!plans_or.is_ok()) return plans_or.status();
  const std::vector<ShardElasticPlan>& plans = *plans_or;
  const int provisioned_total =
      plans.back().first_instance + plans.back().provisioned;

  const std::int64_t offered = static_cast<std::int64_t>(requests.size());
  const bool sketch_mode = options.latency_mode == LatencyMode::kSketch;

  // Checkpoint resume: reload every finished shard of a matching prior run.
  // The fingerprint is also what seeds sketch binding, so sketch mode
  // computes it even without a checkpoint path.
  std::vector<std::optional<ShardStats>> slots(
      static_cast<std::size_t>(num_shards));
  std::string fingerprint;
  std::uint64_t sketch_seed = 0;
  int resumed = 0;
  if (!options.checkpoint_path.empty() || sketch_mode) {
    fingerprint = replay_fingerprint(service, shard_requests, options,
                                     spec.scenario, spec.elastic);
    if (sketch_mode) sketch_seed = sketch_seed_from_fingerprint(fingerprint);
  }
  if (!options.checkpoint_path.empty()) {
    resumed = sketch_mode ? load_checkpoint_binary(options.checkpoint_path,
                                                   fingerprint, slots)
                          : load_checkpoint(options.checkpoint_path,
                                            fingerprint, slots);
  }

  ProgressSink sink;
  sink.scope = scope;
  sink.offered = offered;
  sink.chunk = scope != nullptr ? std::max<std::int64_t>(1, offered / 20) : 0;
  std::int64_t already_completed = 0;
  for (const auto& slot : slots) {
    if (slot) already_completed += slot->completed;
  }
  sink.completed.store(already_completed);
  sink.next_at.store(
      sink.chunk > 0 ? (already_completed / sink.chunk + 1) * sink.chunk : 0);

  std::mutex slot_mutex;
  std::vector<Status> shard_status(static_cast<std::size_t>(num_shards),
                                   Status::ok());
  auto run_one = [&](std::int64_t s) {
    const auto index = static_cast<std::size_t>(s);
    if (slots[index]) return;  // resumed from the checkpoint
    VectorSource source(shard_requests[index]);
    auto result = run_shard(
        service, source,
        static_cast<std::int64_t>(shard_requests[index].size()),
        static_cast<int>(s), spec.elastic, plans[index], options, sketch_seed,
        &sink);
    if (!result.is_ok()) {
      shard_status[index] = result.status();
      return;
    }
    std::lock_guard<std::mutex> lock(slot_mutex);
    slots[index] = std::move(result).value();
    if (!options.checkpoint_path.empty()) {
      if (sketch_mode) {
        write_checkpoint_binary(options.checkpoint_path, fingerprint, slots);
      } else {
        write_checkpoint(options.checkpoint_path, fingerprint, slots);
      }
      obs::MetricsRegistry::global()
          .counter("serving.fleet.checkpoint_writes")
          .add(1);
      if (obs::Tracer* const tracer = obs::tracer()) {
        // Stamped at the shard's virtual makespan — where the shard's
        // timeline ends, which is when its state became durable.
        tracer->instant(shard_lane(static_cast<int>(s)), "checkpoint write",
                        "serving", slots[index]->makespan_us);
      }
    }
  };
  if (num_shards == 1) {
    run_one(0);
  } else {
    util::ThreadPool& pool = util::ThreadPool::shared(
        scope != nullptr ? scope->threads(options.threads) : options.threads);
    pool.parallel_for(num_shards, run_one);
  }

  bool cancelled = false;
  for (const Status& s : shard_status) {
    if (s.is_ok()) continue;
    if (s.code() == StatusCode::kCancelled) {
      cancelled = true;
      continue;
    }
    return s;
  }
  if (cancelled) {
    return Status::cancelled("fleet replay cancelled after " +
                             std::to_string(sink.completed.load()) + "/" +
                             std::to_string(offered) + " requests");
  }

  std::vector<ShardStats> shards;
  shards.reserve(slots.size());
  for (auto& slot : slots) shards.push_back(std::move(*slot));

  // The terminal tick: every replay with an observer ends with a progress
  // event whose estimate is the final tail percentile over ALL latencies
  // (exact in exact mode, the merged-sketch quantile in sketch mode). A
  // sharded run's last in-loop tick carries the emitting shard's local
  // estimate even when it lands exactly at completed == offered, so only
  // the single-shard loop (whose tracker saw every sample) may skip the
  // terminal emit. Computed before the merge, which consumes the shards.
  std::int64_t total_completed = 0;
  for (const ShardStats& shard : shards) total_completed += shard.completed;
  const bool terminal_tick =
      scope != nullptr &&
      (num_shards > 1 || sink.last_emitted.load() != total_completed);
  const double final_tail =
      terminal_tick ? final_tail_estimate(shards, total_completed, options)
                    : 0;

  ServingStats stats =
      merge_shard_stats(std::move(shards), service, options.sla_bound_us,
                        provisioned_total, resumed);

  FCAD_CHECK_MSG(stats.completed == stats.offered,
                 "fleet: lost requests in flight");

  if (terminal_tick) sink.emit(stats.completed, final_tail);

  return stats;
}

StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const ServeSpec& spec,
                                      const util::RunScope* scope) {
  WorkloadOptions workload = spec.workload;
  const WorkloadOptions workload_defaults;
  if (workload.branches == workload_defaults.branches) {
    workload.branches = service.num_branches();
  }
  auto requests = generate_scenario_workload(workload, spec.scenario);
  if (!requests.is_ok()) return requests.status();
  return simulate_fleet(service, *requests, spec, scope);
}

namespace {

/// Shared head of the streaming replay and the checkpoint merge: resolves
/// and validates the spec, fills the derived workload, and computes the
/// stream fingerprint every process (and the merge) must agree on.
struct StreamPlan {
  FleetOptions options;
  WorkloadOptions workload;
  std::vector<ShardElasticPlan> plans;
  int provisioned_total = 0;
  std::string fingerprint;
  std::uint64_t sketch_seed = 0;
};

StatusOr<StreamPlan> plan_stream_replay(const ServiceModel& service,
                                        const ServeSpec& spec) {
  auto resolved = resolved_fleet_options(spec);
  if (!resolved.is_ok()) return resolved.status();
  StreamPlan plan;
  plan.options = *resolved;
  const FleetOptions& options = plan.options;
  if (options.instances < 1) {
    return Status::invalid_argument("fleet: instances must be >= 1");
  }
  if (options.shards < 1 || options.shards > options.instances) {
    return Status::invalid_argument(
        "fleet: shards must be in [1, instances], got " +
        std::to_string(options.shards));
  }
  if (Status s = validate_percentile(options.progress_tail_pct); !s.is_ok()) {
    return Status::invalid_argument("fleet: progress_tail_pct: " +
                                    s.message());
  }
  if (service.num_branches() < 1) {
    return Status::invalid_argument("fleet: service model has no branches");
  }
  if (Status s = validate_scenario(spec.scenario); !s.is_ok()) return s;
  if (Status s = validate_elastic(spec.elastic); !s.is_ok()) return s;
  if (options.latency_mode == LatencyMode::kSketch && options.keep_records) {
    return Status::invalid_argument(
        "fleet: keep_records requires latency_mode exact — the binary v2 "
        "checkpoint carries no per-request records");
  }

  plan.workload = spec.workload;
  const WorkloadOptions workload_defaults;
  if (plan.workload.branches == workload_defaults.branches) {
    plan.workload.branches = service.num_branches();
  }
  if (plan.workload.process == ArrivalProcess::kTrace) {
    return Status::invalid_argument(
        "fleet: the streaming replay generates its workload — a trace is "
        "already materialized, use simulate_fleet");
  }
  if (plan.workload.target_requests <= 0) {
    return Status::invalid_argument(
        "fleet: the streaming replay needs workload.target_requests > 0 (a "
        "definite end the shards can run to)");
  }
  if (plan.workload.branches > service.num_branches()) {
    return Status::invalid_argument(
        "fleet: workload.branches exceeds the service model's branches");
  }

  auto plans_or = plan_elastic_shards(spec.elastic, spec.scenario.faults,
                                      options.instances, options.shards);
  if (!plans_or.is_ok()) return plans_or.status();
  plan.plans = std::move(plans_or).value();
  plan.provisioned_total =
      plan.plans.back().first_instance + plan.plans.back().provisioned;
  plan.fingerprint = stream_fingerprint(service, plan.workload, options,
                                        spec.scenario, spec.elastic);
  if (options.latency_mode == LatencyMode::kSketch) {
    plan.sketch_seed = sketch_seed_from_fingerprint(plan.fingerprint);
  }
  return plan;
}

}  // namespace

StatusOr<ServingStats> simulate_fleet_stream(const ServiceModel& service,
                                             const ServeSpec& spec,
                                             const util::RunScope* scope) {
  auto plan_or = plan_stream_replay(service, spec);
  if (!plan_or.is_ok()) return plan_or.status();
  const StreamPlan& plan = *plan_or;
  const FleetOptions& options = plan.options;
  const int num_shards = options.shards;
  if (options.process_count < 1 || options.process_count > num_shards) {
    return Status::invalid_argument(
        "fleet: process_count must be in [1, shards], got " +
        std::to_string(options.process_count));
  }
  if (options.process_index < 0 ||
      options.process_index >= options.process_count) {
    return Status::invalid_argument(
        "fleet: process_index must be in [0, process_count), got " +
        std::to_string(options.process_index));
  }
  if (options.process_count > 1 && options.checkpoint_path.empty()) {
    return Status::invalid_argument(
        "fleet: process sharding needs a checkpoint_path — without one the "
        "partial results could never be merged");
  }

  // This process's contiguous shard range.
  const int shard_lo = static_cast<int>(
      static_cast<std::int64_t>(options.process_index) * num_shards /
      options.process_count);
  const int shard_hi = static_cast<int>(
      static_cast<std::int64_t>(options.process_index + 1) * num_shards /
      options.process_count);
  const bool sketch_mode = options.latency_mode == LatencyMode::kSketch;
  const std::int64_t target = plan.workload.target_requests;

  std::vector<std::optional<ShardStats>> slots(
      static_cast<std::size_t>(num_shards));
  int resumed = 0;
  if (!options.checkpoint_path.empty()) {
    resumed = sketch_mode ? load_checkpoint_binary(options.checkpoint_path,
                                                   plan.fingerprint, slots)
                          : load_checkpoint(options.checkpoint_path,
                                            plan.fingerprint, slots);
    // A resumable checkpoint only ever carries this process's own shards —
    // drop anything outside the owned range (e.g. a file from a different
    // process split) rather than reporting shards this process does not own.
    for (int s = 0; s < num_shards; ++s) {
      if ((s < shard_lo || s >= shard_hi) &&
          slots[static_cast<std::size_t>(s)]) {
        slots[static_cast<std::size_t>(s)].reset();
        --resumed;
      }
    }
  }

  ProgressSink sink;
  sink.scope = scope;
  sink.offered = target;
  sink.chunk = scope != nullptr ? std::max<std::int64_t>(1, target / 20) : 0;
  std::int64_t already_completed = 0;
  for (const auto& slot : slots) {
    if (slot) already_completed += slot->completed;
  }
  sink.completed.store(already_completed);
  sink.next_at.store(
      sink.chunk > 0 ? (already_completed / sink.chunk + 1) * sink.chunk : 0);

  std::mutex slot_mutex;
  const int owned = shard_hi - shard_lo;
  std::vector<Status> shard_status(static_cast<std::size_t>(owned),
                                   Status::ok());
  auto run_one = [&](std::int64_t i) {
    const int s = shard_lo + static_cast<int>(i);
    const auto index = static_cast<std::size_t>(s);
    if (slots[index]) return;  // resumed from the checkpoint
    // Each shard pulls its own full-workload stream and keeps only the
    // users it owns — memory is O(users), never O(requests). The generator
    // is deterministic, so every shard sees the identical global sequence.
    auto stream_or = make_request_stream(plan.workload, spec.scenario);
    if (!stream_or.is_ok()) {
      shard_status[static_cast<std::size_t>(i)] = stream_or.status();
      return;
    }
    RequestStream& stream = **stream_or;
    StreamShardSource source(stream, s, num_shards);
    auto result = run_shard(service, source, target, s, spec.elastic,
                            plan.plans[index], options, plan.sketch_seed,
                            &sink);
    if (Status fs = stream.finish_status(); !fs.is_ok()) {
      shard_status[static_cast<std::size_t>(i)] = fs;
      return;
    }
    if (!result.is_ok()) {
      shard_status[static_cast<std::size_t>(i)] = result.status();
      return;
    }
    std::lock_guard<std::mutex> lock(slot_mutex);
    slots[index] = std::move(result).value();
    if (!options.checkpoint_path.empty()) {
      if (sketch_mode) {
        write_checkpoint_binary(options.checkpoint_path, plan.fingerprint,
                                slots);
      } else {
        write_checkpoint(options.checkpoint_path, plan.fingerprint, slots);
      }
      obs::MetricsRegistry::global()
          .counter("serving.fleet.checkpoint_writes")
          .add(1);
      if (obs::Tracer* const tracer = obs::tracer()) {
        tracer->instant(shard_lane(s), "checkpoint write", "serving",
                        slots[index]->makespan_us);
      }
    }
  };
  if (owned == 1) {
    run_one(0);
  } else {
    util::ThreadPool& pool = util::ThreadPool::shared(
        scope != nullptr ? scope->threads(options.threads) : options.threads);
    pool.parallel_for(owned, run_one);
  }

  bool cancelled = false;
  for (const Status& s : shard_status) {
    if (s.is_ok()) continue;
    if (s.code() == StatusCode::kCancelled) {
      cancelled = true;
      continue;
    }
    return s;
  }
  if (cancelled) {
    return Status::cancelled("fleet replay cancelled after " +
                             std::to_string(sink.completed.load()) + "/" +
                             std::to_string(target) + " requests");
  }

  std::vector<ShardStats> shards;
  shards.reserve(static_cast<std::size_t>(owned));
  for (int s = shard_lo; s < shard_hi; ++s) {
    shards.push_back(std::move(*slots[static_cast<std::size_t>(s)]));
  }

  std::int64_t total_completed = 0;
  for (const ShardStats& shard : shards) total_completed += shard.completed;
  const bool terminal_tick =
      scope != nullptr &&
      (owned > 1 || sink.last_emitted.load() != total_completed);
  const double final_tail =
      terminal_tick ? final_tail_estimate(shards, total_completed, options)
                    : 0;

  // The returned stats cover this process's owned shards; a single-process
  // run owns them all, and its result is bit-identical to the materialized
  // overload on the same spec.
  ServingStats stats =
      merge_shard_stats(std::move(shards), service, options.sla_bound_us,
                        plan.provisioned_total, resumed);

  FCAD_CHECK_MSG(stats.completed == stats.offered,
                 "fleet: lost requests in flight");
  if (options.process_count == 1) {
    FCAD_CHECK_MSG(stats.completed == target,
                   "fleet: stream ended short of target_requests");
  }

  if (terminal_tick) sink.emit(stats.completed, final_tail);

  return stats;
}

StatusOr<ServingStats> merge_replay_checkpoints(
    const ServiceModel& service, const ServeSpec& spec,
    const std::vector<std::string>& checkpoint_paths) {
  auto plan_or = plan_stream_replay(service, spec);
  if (!plan_or.is_ok()) return plan_or.status();
  const StreamPlan& plan = *plan_or;
  const FleetOptions& options = plan.options;
  const int num_shards = options.shards;
  const bool sketch_mode = options.latency_mode == LatencyMode::kSketch;
  if (checkpoint_paths.empty()) {
    return Status::invalid_argument("merge: no checkpoint files given");
  }

  // Unlike checkpoint *resume* (where a bad file just restarts work),
  // merging has nothing to fall back to — every anomaly is an error.
  std::vector<std::optional<ShardStats>> slots(
      static_cast<std::size_t>(num_shards));
  for (const std::string& path : checkpoint_paths) {
    std::vector<std::optional<ShardStats>> file_slots(
        static_cast<std::size_t>(num_shards));
    const int loaded =
        sketch_mode
            ? load_checkpoint_binary(path, plan.fingerprint, file_slots)
            : load_checkpoint(path, plan.fingerprint, file_slots);
    if (loaded == 0) {
      return Status::invalid_argument(
          "merge: checkpoint unreadable, torn, empty, or for a different "
          "replay: " +
          path);
    }
    for (int s = 0; s < num_shards; ++s) {
      const auto index = static_cast<std::size_t>(s);
      if (!file_slots[index]) continue;
      if (slots[index]) {
        return Status::invalid_argument(
            "merge: shard " + std::to_string(s) +
            " appears in more than one checkpoint (overlapping process "
            "ranges?): " +
            path);
      }
      slots[index] = std::move(file_slots[index]);
    }
  }
  for (int s = 0; s < num_shards; ++s) {
    if (!slots[static_cast<std::size_t>(s)]) {
      return Status::invalid_argument(
          "merge: shard " + std::to_string(s) +
          " is missing from every checkpoint — did all " +
          std::to_string(num_shards) + "-shard processes finish?");
    }
  }

  std::vector<ShardStats> shards;
  shards.reserve(slots.size());
  std::int64_t total_offered = 0;
  for (auto& slot : slots) {
    total_offered += slot->offered;
    shards.push_back(std::move(*slot));
  }
  if (total_offered != plan.workload.target_requests) {
    return Status::invalid_argument(
        "merge: checkpoints cover " + std::to_string(total_offered) +
        " requests but the spec targets " +
        std::to_string(plan.workload.target_requests));
  }

  ServingStats stats =
      merge_shard_stats(std::move(shards), service, options.sla_bound_us,
                        plan.provisioned_total, num_shards);
  FCAD_CHECK_MSG(stats.completed == stats.offered,
                 "merge: lost requests in flight");
  return stats;
}

}  // namespace fcad::serving
