#include "serving/fleet.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Instance {
  double free_at_us = 0;
  double busy_us = 0;
  int last_branch = -1;
  std::int64_t batches = 0;
  std::int64_t requests = 0;
  std::int64_t switches = 0;
};

class Dispatcher {
 public:
  Dispatcher(DispatchPolicy policy, int instances)
      : policy_(policy), instances_(static_cast<std::size_t>(instances)) {}

  std::vector<Instance>& instances() { return instances_; }
  const std::vector<Instance>& instances() const { return instances_; }

  /// Earliest time any instance frees up after `now_us` (+inf if none busy).
  double next_free_us(double now_us) const {
    double t = kInf;
    for (const auto& inst : instances_) {
      if (inst.free_at_us > now_us) t = std::min(t, inst.free_at_us);
    }
    return t;
  }

  /// Picks the instance to run a `branch` batch at `now_us`, or -1 when all
  /// are busy. Deterministic: ties break toward the lowest index.
  int pick(int branch, double now_us) {
    const int n = static_cast<int>(instances_.size());
    switch (policy_) {
      case DispatchPolicy::kRoundRobin:
        for (int step = 0; step < n; ++step) {
          const int k = (cursor_ + step) % n;
          if (free_at(k) <= now_us) {
            cursor_ = (k + 1) % n;
            return k;
          }
        }
        return -1;
      case DispatchPolicy::kLeastLoaded:
        return least_loaded(now_us, /*branch=*/-1);
      case DispatchPolicy::kBranchAffinity: {
        const int affine = least_loaded(now_us, branch);
        if (affine >= 0) return affine;
        return least_loaded(now_us, /*branch=*/-1);
      }
    }
    return -1;
  }

 private:
  double free_at(int k) const {
    return instances_[static_cast<std::size_t>(k)].free_at_us;
  }

  /// Least-busy free instance; when `branch >= 0` only instances whose last
  /// pass targeted that branch qualify.
  int least_loaded(double now_us, int branch) const {
    int best = -1;
    for (int k = 0; k < static_cast<int>(instances_.size()); ++k) {
      const auto& inst = instances_[static_cast<std::size_t>(k)];
      if (inst.free_at_us > now_us) continue;
      if (branch >= 0 && inst.last_branch != branch) continue;
      if (best < 0 ||
          inst.busy_us < instances_[static_cast<std::size_t>(best)].busy_us) {
        best = k;
      }
    }
    return best;
  }

  DispatchPolicy policy_;
  std::vector<Instance> instances_;
  int cursor_ = 0;
};

}  // namespace

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kBranchAffinity: return "branch-affinity";
  }
  return "?";
}

StatusOr<DispatchPolicy> dispatch_policy_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "round-robin" || lower == "rr") {
    return DispatchPolicy::kRoundRobin;
  }
  if (lower == "least-loaded" || lower == "least") {
    return DispatchPolicy::kLeastLoaded;
  }
  if (lower == "branch-affinity" || lower == "affinity") {
    return DispatchPolicy::kBranchAffinity;
  }
  return Status::not_found("unknown dispatch policy '" + name + "'");
}

StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const std::vector<Request>& workload,
                                      const FleetOptions& options,
                                      const util::RunScope* scope) {
  if (options.instances < 1) {
    return Status::invalid_argument("fleet: instances must be >= 1");
  }
  if (service.num_branches() < 1) {
    return Status::invalid_argument("fleet: service model has no branches");
  }
  for (const Request& r : workload) {
    if (r.branch < 0 || r.branch >= service.num_branches()) {
      return Status::invalid_argument("fleet: request branch out of range");
    }
  }

  std::vector<Request> requests = workload;
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_us < b.arrival_us;
                   });

  BatchAggregator aggregator(service.capacities(), options.batch_timeout_us);
  Dispatcher dispatcher(options.policy, options.instances);

  ServingStats stats;
  stats.offered = static_cast<std::int64_t>(requests.size());
  stats.sla_bound_us = options.sla_bound_us;

  std::vector<double> latencies;
  std::vector<double> waits;
  latencies.reserve(requests.size());
  waits.reserve(requests.size());
  double fill_sum = 0;
  double depth_integral_us = 0;
  double makespan_us = 0;

  std::size_t next = 0;
  double now_us = requests.empty() ? 0 : requests.front().arrival_us;
  if (requests.empty()) aggregator.close();

  // Progress cadence: ~20 ticks across the replay plus a final one, each
  // carrying the exact p99 over the latencies recorded so far (a partial
  // estimate of the final tail). Progress never mutates the stats.
  const std::int64_t progress_chunk =
      scope != nullptr ? std::max<std::int64_t>(1, stats.offered / 20) : 0;
  std::int64_t next_progress_at = progress_chunk;
  std::int64_t last_progress_at = -1;
  auto emit_progress = [&]() {
    const double partial_p99 =
        latencies.empty() ? 0 : percentile(latencies, 99);
    scope->emit({"fleet",
                 static_cast<int>(std::min<std::int64_t>(stats.completed,
                                                         1LL << 30)),
                 static_cast<int>(std::min<std::int64_t>(stats.offered,
                                                         1LL << 30)),
                 partial_p99});
    last_progress_at = stats.completed;
    while (next_progress_at <= stats.completed) {
      next_progress_at += progress_chunk;
    }
  };

  while (true) {
    if (scope != nullptr && scope->should_stop()) {
      return Status::cancelled("fleet replay cancelled after " +
                               std::to_string(stats.completed) + "/" +
                               std::to_string(stats.offered) + " requests");
    }
    // Ingest every arrival due by `now_us`.
    while (next < requests.size() &&
           requests[next].arrival_us <= now_us) {
      aggregator.enqueue(requests[next]);
      ++next;
      stats.max_queue_depth = std::max(
          stats.max_queue_depth, static_cast<int>(aggregator.pending()));
    }
    if (next >= requests.size()) aggregator.close();

    // Dispatch ready batches while a free instance exists.
    while (true) {
      const int branch = aggregator.ready_branch(now_us);
      if (branch < 0) break;
      const int k = dispatcher.pick(branch, now_us);
      if (k < 0) break;
      Batch batch = *aggregator.pop_ready(now_us);

      Instance& inst = dispatcher.instances()[static_cast<std::size_t>(k)];
      double pass_us =
          service.branches[static_cast<std::size_t>(branch)].pass_us;
      if (inst.last_branch >= 0 && inst.last_branch != branch) {
        pass_us += options.switch_penalty_us;
        ++inst.switches;
      }
      const double finish_us = now_us + pass_us;
      inst.free_at_us = finish_us;
      inst.busy_us += pass_us;
      inst.last_branch = branch;
      ++inst.batches;
      inst.requests += static_cast<std::int64_t>(batch.requests.size());

      ++stats.batches;
      fill_sum += static_cast<double>(batch.requests.size()) /
                  static_cast<double>(aggregator.capacity(branch));
      makespan_us = std::max(makespan_us, finish_us);
      for (const Request& r : batch.requests) {
        const double latency = finish_us - r.arrival_us;
        latencies.push_back(latency);
        waits.push_back(now_us - r.arrival_us);
        if (latency > options.sla_bound_us) ++stats.sla_violations;
        ++stats.completed;
        if (options.keep_records) {
          stats.records.push_back({r.id, r.user, r.branch, k, r.arrival_us,
                                   now_us, finish_us});
        }
      }
    }

    if (scope != nullptr && stats.completed >= next_progress_at) {
      emit_progress();
    }

    // Advance to the next event: an arrival, a batching deadline, or — when
    // a batch is ready but every instance is busy — an instance freeing up.
    double t_us = kInf;
    if (next < requests.size()) {
      t_us = std::min(t_us, requests[next].arrival_us);
    }
    if (aggregator.has_ready(now_us)) {
      t_us = std::min(t_us, dispatcher.next_free_us(now_us));
    } else if (aggregator.pending() > 0) {
      t_us = std::min(t_us, aggregator.next_deadline_us());
    }
    if (t_us == kInf) break;
    FCAD_CHECK_MSG(t_us > now_us, "fleet: simulation time did not advance");
    depth_integral_us += static_cast<double>(aggregator.pending()) *
                         (t_us - now_us);
    now_us = t_us;
  }

  // The terminal tick: every replay with an observer ends with a progress
  // event whose estimate is the exact final p99.
  if (scope != nullptr && last_progress_at != stats.completed) {
    emit_progress();
  }

  FCAD_CHECK_MSG(stats.completed == stats.offered,
                 "fleet: lost requests in flight");

  stats.makespan_us = makespan_us;
  stats.throughput_rps =
      makespan_us > 0
          ? static_cast<double>(stats.completed) / (makespan_us * 1e-6)
          : 0;
  stats.latency = summarize(std::move(latencies));
  stats.queue_wait = summarize(std::move(waits));
  stats.mean_batch_fill =
      stats.batches > 0 ? fill_sum / static_cast<double>(stats.batches) : 0;
  stats.mean_queue_depth =
      makespan_us > 0 ? depth_integral_us / makespan_us : 0;
  stats.sla_violation_rate =
      stats.completed > 0
          ? static_cast<double>(stats.sla_violations) /
                static_cast<double>(stats.completed)
          : 0;
  stats.sla_met = stats.latency.p99 <= options.sla_bound_us;

  double busy_sum = 0;
  for (int k = 0; k < options.instances; ++k) {
    const Instance& inst = dispatcher.instances()[static_cast<std::size_t>(k)];
    InstanceStats is;
    is.instance = k;
    is.batches = inst.batches;
    is.requests = inst.requests;
    is.branch_switches = inst.switches;
    is.busy_us = inst.busy_us;
    is.utilization = makespan_us > 0 ? inst.busy_us / makespan_us : 0;
    busy_sum += is.utilization;
    stats.instances.push_back(is);
  }
  stats.fleet_utilization = busy_sum / options.instances;
  return stats;
}

}  // namespace fcad::serving
