#include "serving/fleet.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serving/engine.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr const char* kCheckpointMagic = "fcad-fleet-checkpoint v1";

/// Progress plumbing shared by every shard: a global completion counter
/// drives the ~20-tick cadence; the emitting shard supplies its local
/// partial tail estimate.
struct ProgressSink {
  const util::RunScope* scope = nullptr;
  std::int64_t offered = 0;
  std::int64_t chunk = 0;
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> next_at{0};
  std::atomic<std::int64_t> last_emitted{-1};
  std::mutex mutex;

  void emit(std::int64_t step, double partial_tail) {
    scope->emit({"fleet",
                 static_cast<int>(std::min<std::int64_t>(step, 1LL << 30)),
                 static_cast<int>(std::min<std::int64_t>(offered, 1LL << 30)),
                 partial_tail});
    last_emitted.store(step, std::memory_order_relaxed);
  }

  /// The tail tracker is passed, not its value: partial() costs O(tail),
  /// and this is called once per event-loop iteration — only a due tick
  /// (at most ~20 per replay) may pay for the estimate.
  void maybe_emit(const TailTracker& tail) {
    if (scope == nullptr || chunk <= 0) return;
    const std::int64_t c = completed.load(std::memory_order_relaxed);
    if (c < next_at.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mutex);
    if (c < next_at.load(std::memory_order_relaxed)) return;  // lost the race
    emit(c, tail.partial());
    next_at.store((c / chunk + 1) * chunk, std::memory_order_relaxed);
  }
};

/// One shard's event-driven replay: `requests` (arrival-sorted) over
/// `instances` servers whose global ids start at `first_instance`, run
/// through the shared FleetEngine on this shard's own clock — VirtualClock
/// jumps between events (bit-exact, reproducible), SteadyClock paces them
/// at their trace timestamps in real time, so recorded dispatch times and
/// latencies include genuine scheduler jitter — that is the point of wall
/// mode, not a defect. The only failure mode is cooperative cancellation
/// via `sink->scope`.
StatusOr<ShardStats> run_shard(const ServiceModel& service,
                               const std::vector<Request>& requests,
                               int shard_index, const ElasticSpec& elastic,
                               const ShardElasticPlan& plan,
                               const FleetOptions& options,
                               ProgressSink* sink) {
  const util::RunScope* scope = sink->scope;
  const std::unique_ptr<Clock> clock = make_clock(
      options.clock, requests.empty() ? 0 : requests.front().arrival_us);

  FleetEngineConfig config;
  config.policy = options.policy;
  config.batch_timeout_us = options.batch_timeout_us;
  config.switch_penalty_us = options.switch_penalty_us;
  config.sla_bound_us = options.sla_bound_us;
  config.progress_tail_pct = options.progress_tail_pct;
  config.keep_records = options.keep_records;
  config.shard_index = shard_index;
  config.first_instance = plan.first_instance;
  config.instances = plan.provisioned;
  config.initial_active = plan.initial_active;
  config.max_cells =
      elastic.reshard_enabled() ? elastic.reshard.max_cells : 1;
  config.expected_requests = static_cast<std::int64_t>(requests.size());
  FleetEngine engine(service, config, clock.get());
  engine.set_batch_hook([sink](const Batch& batch, int, double, double) {
    sink->completed.fetch_add(
        static_cast<std::int64_t>(batch.requests.size()),
        std::memory_order_relaxed);
  });

  // The controller exists whenever a policy or fault schedule has work to
  // do; its decisions are functions of shard-local state at virtual-time
  // readings, so its presence never couples shards or threads.
  std::optional<ElasticController> controller;
  if (elastic.enabled() || !plan.faults.empty()) {
    controller.emplace(elastic, plan, options.sla_bound_us);
    engine.set_controller(&*controller);
  }

  std::size_t next = 0;
  while (true) {
    if (scope != nullptr && scope->should_stop()) {
      return Status::cancelled("fleet replay cancelled after " +
                               std::to_string(sink->completed.load()) + "/" +
                               std::to_string(sink->offered) + " requests");
    }
    // Ingest every arrival due by the clock reading.
    while (next < requests.size() &&
           requests[next].arrival_us <= engine.now_us()) {
      engine.enqueue(requests[next]);
      ++next;
    }
    if (next >= requests.size()) engine.close();

    if (controller) controller->tick(engine, engine.now_us());
    engine.dispatch_ready();
    sink->maybe_emit(engine.tail());

    // Advance to the next event: an arrival, a batching deadline, an
    // elastic boundary (evaluation cadence or fault transition), or — when
    // a batch is ready but every instance is busy — an instance freeing up.
    double t_us = engine.next_event_us();
    if (next < requests.size()) {
      t_us = std::min(t_us, requests[next].arrival_us);
    }
    if (controller) {
      t_us = std::min(t_us, controller->next_event_us(engine.now_us()));
    }
    // The controller's evaluation cadence stays finite after the work is
    // done, so "no event left" alone no longer terminates the loop — the
    // drained check does (it is exactly when t_us hit +inf before).
    if ((next >= requests.size() && engine.drained()) || t_us == kInf) break;
    // Virtual time must advance strictly every iteration — an equal-time
    // event would loop forever on exact readings. A steady clock, by
    // contrast, keeps moving between calls, so the wall reading can
    // legitimately overtake the event schedule; advance_to on a
    // past deadline is then an immediate return and the next iteration
    // processes whatever became due.
    if (options.clock == ClockKind::kVirtual) {
      FCAD_CHECK_MSG(t_us > engine.now_us(),
                     "fleet: simulation time did not advance");
    }
    engine.advance_to(t_us);
  }

  ShardStats out = engine.take_stats();
  FCAD_CHECK_MSG(out.completed == out.offered,
                 "fleet: lost requests in flight");
  return out;
}

// ---------------------------------------------------------- checkpointing --

void write_int64s(std::ostream& os, const char* key,
                  const std::vector<std::int64_t>& values) {
  os << key << " " << values.size();
  for (std::int64_t v : values) os << " " << v;
  os << "\n";
}

void write_doubles(std::ostream& os, const char* key,
                   const std::vector<double>& values) {
  os << key << " " << values.size();
  for (double v : values) os << " " << format_exact(v);
  os << "\n";
}

void shard_to_text(std::ostream& os, const ShardStats& shard) {
  os << "offered " << shard.offered << "\n";
  os << "completed " << shard.completed << "\n";
  os << "batches " << shard.batches << "\n";
  os << "sla_violations " << shard.sla_violations << "\n";
  os << "max_queue_depth " << shard.max_queue_depth << "\n";
  os << "scale_up_events " << shard.scale_up_events << "\n";
  os << "scale_down_events " << shard.scale_down_events << "\n";
  os << "reshard_splits " << shard.reshard_splits << "\n";
  os << "fault_events " << shard.fault_events << "\n";
  os << "recover_events " << shard.recover_events << "\n";
  os << "fill_sum " << format_exact(shard.fill_sum) << "\n";
  os << "depth_integral_us " << format_exact(shard.depth_integral_us) << "\n";
  os << "makespan_us " << format_exact(shard.makespan_us) << "\n";
  write_doubles(os, "latencies", shard.latencies);
  write_doubles(os, "waits", shard.waits);
  write_int64s(os, "branch_completed", shard.branch_completed);
  // Instance and record rows share stats.cpp's line (de)serializers, so
  // the checkpoint and artifact formats can never diverge per-row (the
  // utilization field is 0 here — it is recomputed at merge time).
  os << "instances " << shard.instances.size() << "\n";
  for (const InstanceStats& inst : shard.instances) {
    write_instance_line(os, inst);
  }
  os << "records " << shard.records.size() << "\n";
  for (const RequestRecord& rec : shard.records) {
    write_record_line(os, rec);
  }
  os << "shard_end\n";
}

bool shard_from_text(std::istream& in, ShardStats& shard) {
  std::string line;
  auto read_counted = [](std::istringstream& fields, auto& out) {
    std::size_t n = 0;
    fields >> n;
    if (fields.fail()) return false;
    out.clear();
    // The count comes from an untrusted file: cap the reservation so a
    // corrupt value fails the element reads below (-> wholesale restart)
    // instead of throwing length_error out of reserve.
    out.reserve(std::min<std::size_t>(n, 1u << 20));
    for (std::size_t i = 0; i < n; ++i) {
      typename std::decay_t<decltype(out)>::value_type v{};
      fields >> v;
      if (fields.fail()) return false;
      out.push_back(v);
    }
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "shard_end") return true;
    if (key == "offered") {
      fields >> shard.offered;
    } else if (key == "completed") {
      fields >> shard.completed;
    } else if (key == "batches") {
      fields >> shard.batches;
    } else if (key == "sla_violations") {
      fields >> shard.sla_violations;
    } else if (key == "max_queue_depth") {
      fields >> shard.max_queue_depth;
    } else if (key == "scale_up_events") {
      fields >> shard.scale_up_events;
    } else if (key == "scale_down_events") {
      fields >> shard.scale_down_events;
    } else if (key == "reshard_splits") {
      fields >> shard.reshard_splits;
    } else if (key == "fault_events") {
      fields >> shard.fault_events;
    } else if (key == "recover_events") {
      fields >> shard.recover_events;
    } else if (key == "fill_sum") {
      fields >> shard.fill_sum;
    } else if (key == "depth_integral_us") {
      fields >> shard.depth_integral_us;
    } else if (key == "makespan_us") {
      fields >> shard.makespan_us;
    } else if (key == "latencies") {
      if (!read_counted(fields, shard.latencies)) return false;
      continue;
    } else if (key == "waits") {
      if (!read_counted(fields, shard.waits)) return false;
      continue;
    } else if (key == "branch_completed") {
      if (!read_counted(fields, shard.branch_completed)) return false;
      continue;
    } else if (key == "instances") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) return false;
      for (std::size_t i = 0; i < n; ++i) {
        InstanceStats inst;
        if (!std::getline(in, line) || !parse_instance_line(line, inst)) {
          return false;
        }
        shard.instances.push_back(inst);
      }
      continue;
    } else if (key == "records") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) return false;
      for (std::size_t i = 0; i < n; ++i) {
        RequestRecord rec;
        if (!std::getline(in, line) || !parse_record_line(line, rec)) {
          return false;
        }
        shard.records.push_back(rec);
      }
      continue;
    } else {
      return false;
    }
    if (fields.fail()) return false;
  }
  return false;  // ran out of lines before shard_end
}

/// Fingerprint binding a checkpoint to its exact run: the service model,
/// the full request stream, and every result-affecting fleet option. A
/// mismatch means "different replay" — the checkpoint is ignored. The clock
/// kind is deliberately absent: it paces events without changing results,
/// so a virtual run may resume a cancelled wall-clock one and vice versa.
std::string replay_fingerprint(const ServiceModel& service,
                               const std::vector<Request>& requests,
                               const FleetOptions& options,
                               const ScenarioSpec& scenario,
                               const ElasticSpec& elastic) {
  util::Hash128 h;
  h.absorb_string(kCheckpointMagic);
  // Elastic policies and fault schedules change per-shard results, so a
  // checkpoint from a different spec must never resume this run. The
  // canonical strings are byte-stable (format_number round-trips exactly).
  h.absorb_string(scenario_to_string(scenario));
  h.absorb_string(elastic_to_string(elastic));
  h.absorb(service.branches.size());
  for (const BranchService& b : service.branches) {
    h.absorb(static_cast<std::uint64_t>(b.capacity));
    h.absorb_double(b.pass_us);
  }
  h.absorb(static_cast<std::uint64_t>(options.instances));
  h.absorb(static_cast<std::uint64_t>(options.policy));
  h.absorb_double(options.batch_timeout_us);
  h.absorb_double(options.switch_penalty_us);
  h.absorb_double(options.sla_bound_us);
  h.absorb(static_cast<std::uint64_t>(options.shards));
  h.absorb(static_cast<std::uint64_t>(options.keep_records));
  h.absorb(requests.size());
  for (const Request& r : requests) {
    h.absorb(static_cast<std::uint64_t>(r.id));
    h.absorb(static_cast<std::uint64_t>(r.user));
    h.absorb(static_cast<std::uint64_t>(r.branch));
    h.absorb_double(r.arrival_us);
  }
  return h.hex();
}

/// Loads finished-shard slots from `path`. Any mismatch (magic,
/// fingerprint, shard count) or torn content ignores the file wholesale —
/// resuming from a stale or corrupt checkpoint would silently change
/// results, restarting never does.
int load_checkpoint(const std::string& path, const std::string& fingerprint,
                    std::vector<std::optional<ShardStats>>& slots) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointMagic) {
    FCAD_LOG(kWarn) << "fleet checkpoint unreadable, restarting: " << path;
    return 0;
  }
  if (!std::getline(in, line) || line != "fingerprint " + fingerprint) {
    FCAD_LOG(kWarn) << "fleet checkpoint is for a different replay, "
                       "restarting: "
                    << path;
    return 0;
  }
  if (!std::getline(in, line) ||
      line != "shards " + std::to_string(slots.size())) {
    FCAD_LOG(kWarn) << "fleet checkpoint shard count mismatch, restarting: "
                    << path;
    return 0;
  }
  std::vector<std::optional<ShardStats>> loaded(slots.size());
  int count = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      slots = std::move(loaded);
      return count;
    }
    std::size_t index = slots.size();
    fields >> index;
    if (key != "shard" || fields.fail() || index >= slots.size()) break;
    ShardStats shard;
    if (!shard_from_text(in, shard)) break;
    loaded[index] = std::move(shard);
    ++count;
  }
  FCAD_LOG(kWarn) << "fleet checkpoint torn or truncated, restarting: "
                  << path;
  return 0;
}

/// Atomically rewrites the checkpoint with every finished shard. Called
/// under the caller's mutex; a failed write only costs resumability.
void write_checkpoint(const std::string& path, const std::string& fingerprint,
                      const std::vector<std::optional<ShardStats>>& slots) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid());
  bool written = false;
  {
    std::ofstream out(tmp_path);
    if (out) {
      out << kCheckpointMagic << "\n";
      out << "fingerprint " << fingerprint << "\n";
      out << "shards " << slots.size() << "\n";
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (!slots[s]) continue;
        out << "shard " << s << "\n";
        shard_to_text(out, *slots[s]);
      }
      out << "end\n";
      written = out.good();
    }
  }
  std::error_code ec;
  if (written) {
    std::filesystem::rename(tmp_path, path, ec);
    written = !ec;
  }
  if (!written) {
    std::filesystem::remove(tmp_path, ec);
    FCAD_LOG(kWarn) << "fleet checkpoint not writable: " << path;
  }
}

}  // namespace

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kBranchAffinity: return "branch-affinity";
  }
  return "?";
}

StatusOr<DispatchPolicy> dispatch_policy_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "round-robin" || lower == "rr") {
    return DispatchPolicy::kRoundRobin;
  }
  if (lower == "least-loaded" || lower == "least") {
    return DispatchPolicy::kLeastLoaded;
  }
  if (lower == "branch-affinity" || lower == "affinity") {
    return DispatchPolicy::kBranchAffinity;
  }
  return Status::not_found("unknown dispatch policy '" + name + "'");
}

StatusOr<FleetOptions> resolved_fleet_options(const ServeSpec& spec) {
  FleetOptions options = spec.fleet;
  const FleetOptions fleet_defaults;
  const SlaOptions sla_defaults;
  const bool fleet_bound_set =
      spec.fleet.sla_bound_us != fleet_defaults.sla_bound_us;
  const bool sla_bound_set =
      spec.sla.p99_bound_us != sla_defaults.p99_bound_us;
  if (fleet_bound_set && sla_bound_set &&
      spec.fleet.sla_bound_us != spec.sla.p99_bound_us) {
    return Status::invalid_argument(
        "ServeSpec: sla.p99_bound_us and fleet.sla_bound_us disagree — "
        "state the bound once");
  }
  if (sla_bound_set) options.sla_bound_us = spec.sla.p99_bound_us;
  if (spec.clock != ClockKind::kVirtual &&
      spec.fleet.clock != ClockKind::kVirtual &&
      spec.clock != spec.fleet.clock) {
    return Status::invalid_argument(
        "ServeSpec: clock and fleet.clock disagree — state the clock once");
  }
  if (spec.clock != ClockKind::kVirtual) options.clock = spec.clock;
  return options;
}

StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const std::vector<Request>& requests,
                                      const ServeSpec& spec,
                                      const util::RunScope* scope) {
  auto resolved = resolved_fleet_options(spec);
  if (!resolved.is_ok()) return resolved.status();
  const FleetOptions& options = *resolved;
  if (options.instances < 1) {
    return Status::invalid_argument("fleet: instances must be >= 1");
  }
  if (options.shards < 1 || options.shards > options.instances) {
    return Status::invalid_argument(
        "fleet: shards must be in [1, instances], got " +
        std::to_string(options.shards));
  }
  if (Status s = validate_percentile(options.progress_tail_pct); !s.is_ok()) {
    return Status::invalid_argument("fleet: progress_tail_pct: " +
                                    s.message());
  }
  if (service.num_branches() < 1) {
    return Status::invalid_argument("fleet: service model has no branches");
  }
  if (Status s = validate_scenario(spec.scenario); !s.is_ok()) return s;
  if (Status s = validate_elastic(spec.elastic); !s.is_ok()) return s;
  for (const Request& r : requests) {
    if (r.branch < 0 || r.branch >= service.num_branches()) {
      return Status::invalid_argument("fleet: request branch out of range");
    }
  }

  std::vector<Request> sorted = requests;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_us < b.arrival_us;
                   });

  // Static partition: user u -> shard u mod S (stable, so each shard's
  // slice stays arrival-sorted); the *provisioned* instance pool splits
  // into contiguous per-shard slices (with a disabled elastic spec the
  // provisioned pool is exactly the active fleet — the classic split).
  const int num_shards = options.shards;
  std::vector<std::vector<Request>> shard_requests(
      static_cast<std::size_t>(num_shards));
  for (const Request& r : sorted) {
    shard_requests[static_cast<std::size_t>(r.user % num_shards)].push_back(
        r);
  }
  auto plans_or = plan_elastic_shards(spec.elastic, spec.scenario.faults,
                                      options.instances, num_shards);
  if (!plans_or.is_ok()) return plans_or.status();
  const std::vector<ShardElasticPlan>& plans = *plans_or;
  const int provisioned_total =
      plans.back().first_instance + plans.back().provisioned;

  const std::int64_t offered = static_cast<std::int64_t>(sorted.size());

  // Checkpoint resume: reload every finished shard of a matching prior run.
  std::vector<std::optional<ShardStats>> slots(
      static_cast<std::size_t>(num_shards));
  std::string fingerprint;
  int resumed = 0;
  if (!options.checkpoint_path.empty()) {
    fingerprint = replay_fingerprint(service, sorted, options, spec.scenario,
                                     spec.elastic);
    resumed = load_checkpoint(options.checkpoint_path, fingerprint, slots);
  }

  ProgressSink sink;
  sink.scope = scope;
  sink.offered = offered;
  sink.chunk = scope != nullptr ? std::max<std::int64_t>(1, offered / 20) : 0;
  std::int64_t already_completed = 0;
  for (const auto& slot : slots) {
    if (slot) already_completed += slot->completed;
  }
  sink.completed.store(already_completed);
  sink.next_at.store(
      sink.chunk > 0 ? (already_completed / sink.chunk + 1) * sink.chunk : 0);

  std::mutex slot_mutex;
  std::vector<Status> shard_status(static_cast<std::size_t>(num_shards),
                                   Status::ok());
  auto run_one = [&](std::int64_t s) {
    const auto index = static_cast<std::size_t>(s);
    if (slots[index]) return;  // resumed from the checkpoint
    auto result = run_shard(service, shard_requests[index],
                            static_cast<int>(s), spec.elastic, plans[index],
                            options, &sink);
    if (!result.is_ok()) {
      shard_status[index] = result.status();
      return;
    }
    std::lock_guard<std::mutex> lock(slot_mutex);
    slots[index] = std::move(result).value();
    if (!options.checkpoint_path.empty()) {
      write_checkpoint(options.checkpoint_path, fingerprint, slots);
      obs::MetricsRegistry::global()
          .counter("serving.fleet.checkpoint_writes")
          .add(1);
      if (obs::Tracer* const tracer = obs::tracer()) {
        // Stamped at the shard's virtual makespan — where the shard's
        // timeline ends, which is when its state became durable.
        tracer->instant(shard_lane(static_cast<int>(s)), "checkpoint write",
                        "serving", slots[index]->makespan_us);
      }
    }
  };
  if (num_shards == 1) {
    run_one(0);
  } else {
    util::ThreadPool& pool = util::ThreadPool::shared(
        scope != nullptr ? scope->threads(options.threads) : options.threads);
    pool.parallel_for(num_shards, run_one);
  }

  bool cancelled = false;
  for (const Status& s : shard_status) {
    if (s.is_ok()) continue;
    if (s.code() == StatusCode::kCancelled) {
      cancelled = true;
      continue;
    }
    return s;
  }
  if (cancelled) {
    return Status::cancelled("fleet replay cancelled after " +
                             std::to_string(sink.completed.load()) + "/" +
                             std::to_string(offered) + " requests");
  }

  std::vector<ShardStats> shards;
  shards.reserve(slots.size());
  for (auto& slot : slots) shards.push_back(std::move(*slot));
  ServingStats stats = merge_shard_stats(shards, service,
                                         options.sla_bound_us,
                                         provisioned_total, resumed);

  FCAD_CHECK_MSG(stats.completed == stats.offered,
                 "fleet: lost requests in flight");

  // The terminal tick: every replay with an observer ends with a progress
  // event whose estimate is the exact final tail percentile over ALL
  // latencies. A sharded run's last in-loop tick carries the emitting
  // shard's local estimate even when it lands exactly at completed ==
  // offered, so only the single-shard loop (whose tracker saw every
  // sample) may skip the terminal emit.
  if (scope != nullptr &&
      (num_shards > 1 || sink.last_emitted.load() != stats.completed)) {
    std::vector<double> latencies;
    latencies.reserve(static_cast<std::size_t>(stats.completed));
    for (const ShardStats& shard : shards) {
      latencies.insert(latencies.end(), shard.latencies.begin(),
                       shard.latencies.end());
    }
    const double final_tail =
        latencies.empty()
            ? 0
            : percentile(std::move(latencies), options.progress_tail_pct);
    sink.emit(stats.completed, final_tail);
  }

  return stats;
}

StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const ServeSpec& spec,
                                      const util::RunScope* scope) {
  WorkloadOptions workload = spec.workload;
  const WorkloadOptions workload_defaults;
  if (workload.branches == workload_defaults.branches) {
    workload.branches = service.num_branches();
  }
  auto requests = generate_scenario_workload(workload, spec.scenario);
  if (!requests.is_ok()) return requests.status();
  return simulate_fleet(service, *requests, spec, scope);
}

}  // namespace fcad::serving
