#include "serving/fleet.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <queue>
#include <set>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr const char* kCheckpointMagic = "fcad-fleet-checkpoint v1";

/// Virtual-time lanes: shard event loops sit at tid = shard index, instance
/// timelines at tid = 1000 + global instance id, so Perfetto renders shards
/// first and instances below them, in stable structural order.
obs::LaneId shard_lane(int shard_index) {
  return obs::LaneId{obs::kServingPid, shard_index};
}

obs::LaneId instance_lane(int global_instance) {
  return obs::LaneId{obs::kServingPid, 1000 + global_instance};
}

struct Instance {
  double free_at_us = 0;
  double busy_us = 0;
  int last_branch = -1;
  std::int64_t batches = 0;
  std::int64_t requests = 0;
  std::int64_t switches = 0;
};

/// Dispatch bookkeeping in O(log K) per event instead of the former O(K)
/// scans: busy instances live in a free-time min-heap (one live entry each —
/// pushed on dispatch, popped once expired), free instances in ordered sets
/// keyed the way each policy picks (index order for round-robin, (busy_us,
/// index) for least-loaded, the same per last-branch for affinity). Every
/// pick reproduces the linear-scan decisions exactly, ties still breaking
/// toward the lowest index.
class Dispatcher {
 public:
  Dispatcher(DispatchPolicy policy, int instances, int branches)
      : policy_(policy),
        instances_(static_cast<std::size_t>(instances)),
        free_by_branch_(static_cast<std::size_t>(branches)) {
    for (int k = 0; k < instances; ++k) insert_free(k);
  }

  const std::vector<Instance>& instances() const { return instances_; }

  /// Earliest time any instance frees up after `now_us` (+inf if none busy).
  double next_free_us(double now_us) {
    refresh(now_us);
    return busy_.empty() ? kInf : busy_.top().first;
  }

  /// Picks the instance to run a `branch` batch at `now_us`, or -1 when all
  /// are busy. Deterministic: ties break toward the lowest index.
  int pick(int branch, double now_us) {
    refresh(now_us);
    switch (policy_) {
      case DispatchPolicy::kRoundRobin: {
        if (free_by_index_.empty()) return -1;
        auto it = free_by_index_.lower_bound(cursor_);
        const int k =
            it != free_by_index_.end() ? *it : *free_by_index_.begin();
        cursor_ = (k + 1) % static_cast<int>(instances_.size());
        return k;
      }
      case DispatchPolicy::kLeastLoaded:
        return free_by_load_.empty() ? -1 : free_by_load_.begin()->second;
      case DispatchPolicy::kBranchAffinity: {
        const auto& affine =
            free_by_branch_[static_cast<std::size_t>(branch)];
        if (!affine.empty()) return affine.begin()->second;
        return free_by_load_.empty() ? -1 : free_by_load_.begin()->second;
      }
    }
    return -1;
  }

  /// Commits a `requests`-sized batch of `branch` to instance `k` (which
  /// pick() just returned as free) and returns its completion time.
  double dispatch(int k, int branch, double now_us, double base_pass_us,
                  double switch_penalty_us, std::int64_t requests) {
    Instance& inst = instances_[static_cast<std::size_t>(k)];
    erase_free(k);  // keyed on the pre-dispatch busy_us / last_branch
    double pass_us = base_pass_us;
    if (inst.last_branch >= 0 && inst.last_branch != branch) {
      pass_us += switch_penalty_us;
      ++inst.switches;
    }
    const double finish_us = now_us + pass_us;
    inst.free_at_us = finish_us;
    inst.busy_us += pass_us;
    inst.last_branch = branch;
    ++inst.batches;
    inst.requests += requests;
    busy_.push({finish_us, k});
    return finish_us;
  }

 private:
  void refresh(double now_us) {
    while (!busy_.empty() && busy_.top().first <= now_us) {
      const int k = busy_.top().second;
      busy_.pop();
      insert_free(k);
    }
  }

  void insert_free(int k) {
    const Instance& inst = instances_[static_cast<std::size_t>(k)];
    free_by_index_.insert(k);
    free_by_load_.insert({inst.busy_us, k});
    if (inst.last_branch >= 0) {
      free_by_branch_[static_cast<std::size_t>(inst.last_branch)].insert(
          {inst.busy_us, k});
    }
  }

  void erase_free(int k) {
    const Instance& inst = instances_[static_cast<std::size_t>(k)];
    free_by_index_.erase(k);
    free_by_load_.erase({inst.busy_us, k});
    if (inst.last_branch >= 0) {
      free_by_branch_[static_cast<std::size_t>(inst.last_branch)].erase(
          {inst.busy_us, k});
    }
  }

  DispatchPolicy policy_;
  std::vector<Instance> instances_;
  /// (free_at_us, index) of busy instances; one live entry per instance.
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<std::pair<double, int>>>
      busy_;
  std::set<int> free_by_index_;
  std::set<std::pair<double, int>> free_by_load_;  ///< (busy_us, index)
  std::vector<std::set<std::pair<double, int>>> free_by_branch_;
  int cursor_ = 0;
};

/// Raw accumulation streams of one shard's event loop, merged across shards
/// in shard-index order (concatenation, sums, maxima) — the merge is a pure
/// function of the per-shard results, which is what makes the replay
/// bit-identical for any thread count and resumable from a checkpoint.
struct ShardStats {
  std::int64_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t batches = 0;
  std::int64_t sla_violations = 0;
  int max_queue_depth = 0;
  double fill_sum = 0;
  double depth_integral_us = 0;
  double makespan_us = 0;
  std::vector<double> latencies;
  std::vector<double> waits;
  std::vector<std::int64_t> branch_completed;
  /// Per-instance counters with *global* instance ids; utilization is
  /// filled at merge time (it depends on the global makespan).
  std::vector<InstanceStats> instances;
  std::vector<RequestRecord> records;
};

/// Progress plumbing shared by every shard: a global completion counter
/// drives the ~20-tick cadence; the emitting shard supplies its local
/// partial tail estimate.
struct ProgressSink {
  const util::RunScope* scope = nullptr;
  std::int64_t offered = 0;
  std::int64_t chunk = 0;
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> next_at{0};
  std::atomic<std::int64_t> last_emitted{-1};
  std::mutex mutex;

  void emit(std::int64_t step, double partial_tail) {
    scope->emit({"fleet",
                 static_cast<int>(std::min<std::int64_t>(step, 1LL << 30)),
                 static_cast<int>(std::min<std::int64_t>(offered, 1LL << 30)),
                 partial_tail});
    last_emitted.store(step, std::memory_order_relaxed);
  }

  /// The tail tracker is passed, not its value: partial() costs O(tail),
  /// and this is called once per event-loop iteration — only a due tick
  /// (at most ~20 per replay) may pay for the estimate.
  void maybe_emit(const TailTracker& tail) {
    if (scope == nullptr || chunk <= 0) return;
    const std::int64_t c = completed.load(std::memory_order_relaxed);
    if (c < next_at.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mutex);
    if (c < next_at.load(std::memory_order_relaxed)) return;  // lost the race
    emit(c, tail.partial());
    next_at.store((c / chunk + 1) * chunk, std::memory_order_relaxed);
  }
};

/// One shard's event-driven replay: `requests` (arrival-sorted) over
/// `instances` servers whose global ids start at `first_instance`. The only
/// failure mode is cooperative cancellation via `sink->scope`.
StatusOr<ShardStats> run_shard(const ServiceModel& service,
                               const std::vector<Request>& requests,
                               int shard_index, int first_instance,
                               int instances, const FleetOptions& options,
                               ProgressSink* sink) {
  const util::RunScope* scope = sink->scope;
  BatchAggregator aggregator(service.capacities(), options.batch_timeout_us);
  Dispatcher dispatcher(options.policy, instances, service.num_branches());

  // Resolved once per shard loop; every span below carries *virtual* µs, so
  // the emitted timeline is identical for any thread count.
  obs::Tracer* const tracer = obs::tracer();
  if (tracer != nullptr) {
    tracer->name_lane(shard_lane(shard_index), "serving fleet (virtual time)",
                      "shard " + std::to_string(shard_index));
    for (int k = 0; k < instances; ++k) {
      tracer->name_lane(instance_lane(first_instance + k),
                        "serving fleet (virtual time)",
                        "instance " + std::to_string(first_instance + k));
    }
  }

  ShardStats out;
  out.offered = static_cast<std::int64_t>(requests.size());
  out.branch_completed.assign(
      static_cast<std::size_t>(service.num_branches()), 0);
  out.latencies.reserve(requests.size());
  out.waits.reserve(requests.size());
  TailTracker tail(out.offered, options.progress_tail_pct);

  std::size_t next = 0;
  double now_us = requests.empty() ? 0 : requests.front().arrival_us;
  if (requests.empty()) aggregator.close();

  while (true) {
    if (scope != nullptr && scope->should_stop()) {
      return Status::cancelled("fleet replay cancelled after " +
                               std::to_string(sink->completed.load()) + "/" +
                               std::to_string(sink->offered) + " requests");
    }
    // Ingest every arrival due by `now_us`.
    while (next < requests.size() && requests[next].arrival_us <= now_us) {
      aggregator.enqueue(requests[next]);
      ++next;
      const int depth = static_cast<int>(aggregator.pending());
      if (depth > out.max_queue_depth) {
        out.max_queue_depth = depth;
        // Counter samples only on a new high-water mark, so the event count
        // stays bounded even on million-request replays.
        if (tracer != nullptr) {
          tracer->counter(shard_lane(shard_index), "queue depth", now_us,
                          depth);
        }
      }
    }
    if (next >= requests.size()) aggregator.close();

    // Dispatch ready batches while a free instance exists.
    while (true) {
      const int branch = aggregator.ready_branch(now_us);
      if (branch < 0) break;
      const int k = dispatcher.pick(branch, now_us);
      if (k < 0) break;
      Batch batch = *aggregator.pop_ready(now_us);

      const double finish_us = dispatcher.dispatch(
          k, branch,
          now_us, service.branches[static_cast<std::size_t>(branch)].pass_us,
          options.switch_penalty_us,
          static_cast<std::int64_t>(batch.requests.size()));

      if (tracer != nullptr) {
        tracer->complete(
            instance_lane(first_instance + k),
            "batch b" + std::to_string(branch), "serving", now_us,
            finish_us - now_us,
            {{"branch", static_cast<double>(branch)},
             {"requests", static_cast<double>(batch.requests.size())}});
      }
      ++out.batches;
      out.fill_sum += static_cast<double>(batch.requests.size()) /
                      static_cast<double>(aggregator.capacity(branch));
      out.makespan_us = std::max(out.makespan_us, finish_us);
      for (const Request& r : batch.requests) {
        const double latency = finish_us - r.arrival_us;
        out.latencies.push_back(latency);
        out.waits.push_back(now_us - r.arrival_us);
        tail.add(latency);
        if (latency > options.sla_bound_us) ++out.sla_violations;
        ++out.completed;
        ++out.branch_completed[static_cast<std::size_t>(r.branch)];
        if (options.keep_records) {
          out.records.push_back({r.id, r.user, r.branch, first_instance + k,
                                 r.arrival_us, now_us, finish_us});
        }
      }
      sink->completed.fetch_add(static_cast<std::int64_t>(
                                    batch.requests.size()),
                                std::memory_order_relaxed);
    }

    sink->maybe_emit(tail);

    // Advance to the next event: an arrival, a batching deadline, or — when
    // a batch is ready but every instance is busy — an instance freeing up.
    double t_us = kInf;
    if (next < requests.size()) {
      t_us = std::min(t_us, requests[next].arrival_us);
    }
    if (aggregator.has_ready(now_us)) {
      t_us = std::min(t_us, dispatcher.next_free_us(now_us));
    } else if (aggregator.pending() > 0) {
      t_us = std::min(t_us, aggregator.next_deadline_us());
    }
    if (t_us == kInf) break;
    FCAD_CHECK_MSG(t_us > now_us, "fleet: simulation time did not advance");
    out.depth_integral_us +=
        static_cast<double>(aggregator.pending()) * (t_us - now_us);
    now_us = t_us;
  }

  FCAD_CHECK_MSG(out.completed == out.offered,
                 "fleet: lost requests in flight");

  for (int k = 0; k < instances; ++k) {
    const Instance& inst = dispatcher.instances()[static_cast<std::size_t>(k)];
    InstanceStats is;
    is.instance = first_instance + k;
    is.batches = inst.batches;
    is.requests = inst.requests;
    is.branch_switches = inst.switches;
    is.busy_us = inst.busy_us;
    out.instances.push_back(is);
  }
  if (tracer != nullptr && !requests.empty()) {
    const double start_us = requests.front().arrival_us;
    tracer->complete(shard_lane(shard_index), "shard replay", "serving",
                     start_us, std::max(out.makespan_us - start_us, 0.0),
                     {{"requests", static_cast<double>(out.completed)},
                      {"batches", static_cast<double>(out.batches)}});
  }
  return out;
}

// ---------------------------------------------------------- checkpointing --

void write_int64s(std::ostream& os, const char* key,
                  const std::vector<std::int64_t>& values) {
  os << key << " " << values.size();
  for (std::int64_t v : values) os << " " << v;
  os << "\n";
}

void write_doubles(std::ostream& os, const char* key,
                   const std::vector<double>& values) {
  os << key << " " << values.size();
  for (double v : values) os << " " << format_exact(v);
  os << "\n";
}

void shard_to_text(std::ostream& os, const ShardStats& shard) {
  os << "offered " << shard.offered << "\n";
  os << "completed " << shard.completed << "\n";
  os << "batches " << shard.batches << "\n";
  os << "sla_violations " << shard.sla_violations << "\n";
  os << "max_queue_depth " << shard.max_queue_depth << "\n";
  os << "fill_sum " << format_exact(shard.fill_sum) << "\n";
  os << "depth_integral_us " << format_exact(shard.depth_integral_us) << "\n";
  os << "makespan_us " << format_exact(shard.makespan_us) << "\n";
  write_doubles(os, "latencies", shard.latencies);
  write_doubles(os, "waits", shard.waits);
  write_int64s(os, "branch_completed", shard.branch_completed);
  // Instance and record rows share stats.cpp's line (de)serializers, so
  // the checkpoint and artifact formats can never diverge per-row (the
  // utilization field is 0 here — it is recomputed at merge time).
  os << "instances " << shard.instances.size() << "\n";
  for (const InstanceStats& inst : shard.instances) {
    write_instance_line(os, inst);
  }
  os << "records " << shard.records.size() << "\n";
  for (const RequestRecord& rec : shard.records) {
    write_record_line(os, rec);
  }
  os << "shard_end\n";
}

bool shard_from_text(std::istream& in, ShardStats& shard) {
  std::string line;
  auto read_counted = [](std::istringstream& fields, auto& out) {
    std::size_t n = 0;
    fields >> n;
    if (fields.fail()) return false;
    out.clear();
    // The count comes from an untrusted file: cap the reservation so a
    // corrupt value fails the element reads below (-> wholesale restart)
    // instead of throwing length_error out of reserve.
    out.reserve(std::min<std::size_t>(n, 1u << 20));
    for (std::size_t i = 0; i < n; ++i) {
      typename std::decay_t<decltype(out)>::value_type v{};
      fields >> v;
      if (fields.fail()) return false;
      out.push_back(v);
    }
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "shard_end") return true;
    if (key == "offered") {
      fields >> shard.offered;
    } else if (key == "completed") {
      fields >> shard.completed;
    } else if (key == "batches") {
      fields >> shard.batches;
    } else if (key == "sla_violations") {
      fields >> shard.sla_violations;
    } else if (key == "max_queue_depth") {
      fields >> shard.max_queue_depth;
    } else if (key == "fill_sum") {
      fields >> shard.fill_sum;
    } else if (key == "depth_integral_us") {
      fields >> shard.depth_integral_us;
    } else if (key == "makespan_us") {
      fields >> shard.makespan_us;
    } else if (key == "latencies") {
      if (!read_counted(fields, shard.latencies)) return false;
      continue;
    } else if (key == "waits") {
      if (!read_counted(fields, shard.waits)) return false;
      continue;
    } else if (key == "branch_completed") {
      if (!read_counted(fields, shard.branch_completed)) return false;
      continue;
    } else if (key == "instances") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) return false;
      for (std::size_t i = 0; i < n; ++i) {
        InstanceStats inst;
        if (!std::getline(in, line) || !parse_instance_line(line, inst)) {
          return false;
        }
        shard.instances.push_back(inst);
      }
      continue;
    } else if (key == "records") {
      std::size_t n = 0;
      fields >> n;
      if (fields.fail()) return false;
      for (std::size_t i = 0; i < n; ++i) {
        RequestRecord rec;
        if (!std::getline(in, line) || !parse_record_line(line, rec)) {
          return false;
        }
        shard.records.push_back(rec);
      }
      continue;
    } else {
      return false;
    }
    if (fields.fail()) return false;
  }
  return false;  // ran out of lines before shard_end
}

/// Fingerprint binding a checkpoint to its exact run: the service model,
/// the full request stream, and every result-affecting fleet option. A
/// mismatch means "different replay" — the checkpoint is ignored.
std::string replay_fingerprint(const ServiceModel& service,
                               const std::vector<Request>& requests,
                               const FleetOptions& options) {
  util::Hash128 h;
  h.absorb_string(kCheckpointMagic);
  h.absorb(service.branches.size());
  for (const BranchService& b : service.branches) {
    h.absorb(static_cast<std::uint64_t>(b.capacity));
    h.absorb_double(b.pass_us);
  }
  h.absorb(static_cast<std::uint64_t>(options.instances));
  h.absorb(static_cast<std::uint64_t>(options.policy));
  h.absorb_double(options.batch_timeout_us);
  h.absorb_double(options.switch_penalty_us);
  h.absorb_double(options.sla_bound_us);
  h.absorb(static_cast<std::uint64_t>(options.shards));
  h.absorb(static_cast<std::uint64_t>(options.keep_records));
  h.absorb(requests.size());
  for (const Request& r : requests) {
    h.absorb(static_cast<std::uint64_t>(r.id));
    h.absorb(static_cast<std::uint64_t>(r.user));
    h.absorb(static_cast<std::uint64_t>(r.branch));
    h.absorb_double(r.arrival_us);
  }
  return h.hex();
}

/// Loads finished-shard slots from `path`. Any mismatch (magic,
/// fingerprint, shard count) or torn content ignores the file wholesale —
/// resuming from a stale or corrupt checkpoint would silently change
/// results, restarting never does.
int load_checkpoint(const std::string& path, const std::string& fingerprint,
                    std::vector<std::optional<ShardStats>>& slots) {
  std::ifstream in(path);
  if (!in) return 0;
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointMagic) {
    FCAD_LOG(kWarn) << "fleet checkpoint unreadable, restarting: " << path;
    return 0;
  }
  if (!std::getline(in, line) || line != "fingerprint " + fingerprint) {
    FCAD_LOG(kWarn) << "fleet checkpoint is for a different replay, "
                       "restarting: "
                    << path;
    return 0;
  }
  if (!std::getline(in, line) ||
      line != "shards " + std::to_string(slots.size())) {
    FCAD_LOG(kWarn) << "fleet checkpoint shard count mismatch, restarting: "
                    << path;
    return 0;
  }
  std::vector<std::optional<ShardStats>> loaded(slots.size());
  int count = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      slots = std::move(loaded);
      return count;
    }
    std::size_t index = slots.size();
    fields >> index;
    if (key != "shard" || fields.fail() || index >= slots.size()) break;
    ShardStats shard;
    if (!shard_from_text(in, shard)) break;
    loaded[index] = std::move(shard);
    ++count;
  }
  FCAD_LOG(kWarn) << "fleet checkpoint torn or truncated, restarting: "
                  << path;
  return 0;
}

/// Atomically rewrites the checkpoint with every finished shard. Called
/// under the caller's mutex; a failed write only costs resumability.
void write_checkpoint(const std::string& path, const std::string& fingerprint,
                      const std::vector<std::optional<ShardStats>>& slots) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid());
  bool written = false;
  {
    std::ofstream out(tmp_path);
    if (out) {
      out << kCheckpointMagic << "\n";
      out << "fingerprint " << fingerprint << "\n";
      out << "shards " << slots.size() << "\n";
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (!slots[s]) continue;
        out << "shard " << s << "\n";
        shard_to_text(out, *slots[s]);
      }
      out << "end\n";
      written = out.good();
    }
  }
  std::error_code ec;
  if (written) {
    std::filesystem::rename(tmp_path, path, ec);
    written = !ec;
  }
  if (!written) {
    std::filesystem::remove(tmp_path, ec);
    FCAD_LOG(kWarn) << "fleet checkpoint not writable: " << path;
  }
}

}  // namespace

const char* to_string(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::kRoundRobin: return "round-robin";
    case DispatchPolicy::kLeastLoaded: return "least-loaded";
    case DispatchPolicy::kBranchAffinity: return "branch-affinity";
  }
  return "?";
}

StatusOr<DispatchPolicy> dispatch_policy_by_name(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "round-robin" || lower == "rr") {
    return DispatchPolicy::kRoundRobin;
  }
  if (lower == "least-loaded" || lower == "least") {
    return DispatchPolicy::kLeastLoaded;
  }
  if (lower == "branch-affinity" || lower == "affinity") {
    return DispatchPolicy::kBranchAffinity;
  }
  return Status::not_found("unknown dispatch policy '" + name + "'");
}

StatusOr<ServingStats> simulate_fleet(const ServiceModel& service,
                                      const std::vector<Request>& workload,
                                      const FleetOptions& options,
                                      const util::RunScope* scope) {
  if (options.instances < 1) {
    return Status::invalid_argument("fleet: instances must be >= 1");
  }
  if (options.shards < 1 || options.shards > options.instances) {
    return Status::invalid_argument(
        "fleet: shards must be in [1, instances], got " +
        std::to_string(options.shards));
  }
  if (Status s = validate_percentile(options.progress_tail_pct); !s.is_ok()) {
    return Status::invalid_argument("fleet: progress_tail_pct: " +
                                    s.message());
  }
  if (service.num_branches() < 1) {
    return Status::invalid_argument("fleet: service model has no branches");
  }
  for (const Request& r : workload) {
    if (r.branch < 0 || r.branch >= service.num_branches()) {
      return Status::invalid_argument("fleet: request branch out of range");
    }
  }

  std::vector<Request> requests = workload;
  std::stable_sort(requests.begin(), requests.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival_us < b.arrival_us;
                   });

  // Static partition: user u -> shard u mod S (stable, so each shard's
  // slice stays arrival-sorted); the instance pool splits into contiguous
  // groups as even as possible, shard s starting at global instance id
  // `starts[s]`.
  const int num_shards = options.shards;
  std::vector<std::vector<Request>> shard_requests(
      static_cast<std::size_t>(num_shards));
  for (const Request& r : requests) {
    shard_requests[static_cast<std::size_t>(r.user % num_shards)].push_back(
        r);
  }
  std::vector<int> counts(static_cast<std::size_t>(num_shards));
  std::vector<int> starts(static_cast<std::size_t>(num_shards));
  {
    const int base = options.instances / num_shards;
    const int extra = options.instances % num_shards;
    int start = 0;
    for (int s = 0; s < num_shards; ++s) {
      counts[static_cast<std::size_t>(s)] = base + (s < extra ? 1 : 0);
      starts[static_cast<std::size_t>(s)] = start;
      start += counts[static_cast<std::size_t>(s)];
    }
  }

  const std::int64_t offered = static_cast<std::int64_t>(requests.size());

  // Checkpoint resume: reload every finished shard of a matching prior run.
  std::vector<std::optional<ShardStats>> slots(
      static_cast<std::size_t>(num_shards));
  std::string fingerprint;
  int resumed = 0;
  if (!options.checkpoint_path.empty()) {
    fingerprint = replay_fingerprint(service, requests, options);
    resumed = load_checkpoint(options.checkpoint_path, fingerprint, slots);
  }

  ProgressSink sink;
  sink.scope = scope;
  sink.offered = offered;
  sink.chunk = scope != nullptr ? std::max<std::int64_t>(1, offered / 20) : 0;
  std::int64_t already_completed = 0;
  for (const auto& slot : slots) {
    if (slot) already_completed += slot->completed;
  }
  sink.completed.store(already_completed);
  sink.next_at.store(
      sink.chunk > 0 ? (already_completed / sink.chunk + 1) * sink.chunk : 0);

  std::mutex slot_mutex;
  std::vector<Status> shard_status(static_cast<std::size_t>(num_shards),
                                   Status::ok());
  auto run_one = [&](std::int64_t s) {
    const auto index = static_cast<std::size_t>(s);
    if (slots[index]) return;  // resumed from the checkpoint
    auto result = run_shard(service, shard_requests[index],
                            static_cast<int>(s), starts[index], counts[index],
                            options, &sink);
    if (!result.is_ok()) {
      shard_status[index] = result.status();
      return;
    }
    std::lock_guard<std::mutex> lock(slot_mutex);
    slots[index] = std::move(result).value();
    if (!options.checkpoint_path.empty()) {
      write_checkpoint(options.checkpoint_path, fingerprint, slots);
      obs::MetricsRegistry::global()
          .counter("serving.fleet.checkpoint_writes")
          .add(1);
      if (obs::Tracer* const tracer = obs::tracer()) {
        // Stamped at the shard's virtual makespan — where the shard's
        // timeline ends, which is when its state became durable.
        tracer->instant(shard_lane(static_cast<int>(s)), "checkpoint write",
                        "serving", slots[index]->makespan_us);
      }
    }
  };
  if (num_shards == 1) {
    run_one(0);
  } else {
    util::ThreadPool& pool = util::ThreadPool::shared(
        scope != nullptr ? scope->threads(options.threads) : options.threads);
    pool.parallel_for(num_shards, run_one);
  }

  bool cancelled = false;
  for (const Status& s : shard_status) {
    if (s.is_ok()) continue;
    if (s.code() == StatusCode::kCancelled) {
      cancelled = true;
      continue;
    }
    return s;
  }
  if (cancelled) {
    return Status::cancelled("fleet replay cancelled after " +
                             std::to_string(sink.completed.load()) + "/" +
                             std::to_string(offered) + " requests");
  }

  // Index-ordered merge: concatenation and sums over shards 0..S-1, so the
  // result is a pure function of the partition — never of thread timing.
  ServingStats stats;
  stats.offered = offered;
  stats.sla_bound_us = options.sla_bound_us;
  stats.branch_completed.assign(
      static_cast<std::size_t>(service.num_branches()), 0);
  stats.resumed_shards = resumed;
  std::vector<double> latencies;
  std::vector<double> waits;
  latencies.reserve(requests.size());
  waits.reserve(requests.size());
  double fill_sum = 0;
  double depth_integral_us = 0;
  double makespan_us = 0;
  for (const auto& slot : slots) {
    const ShardStats& shard = *slot;
    stats.completed += shard.completed;
    stats.batches += shard.batches;
    stats.sla_violations += shard.sla_violations;
    stats.max_queue_depth = std::max(stats.max_queue_depth,
                                     shard.max_queue_depth);
    fill_sum += shard.fill_sum;
    depth_integral_us += shard.depth_integral_us;
    makespan_us = std::max(makespan_us, shard.makespan_us);
    latencies.insert(latencies.end(), shard.latencies.begin(),
                     shard.latencies.end());
    waits.insert(waits.end(), shard.waits.begin(), shard.waits.end());
    for (std::size_t j = 0; j < shard.branch_completed.size(); ++j) {
      stats.branch_completed[j] += shard.branch_completed[j];
    }
    stats.records.insert(stats.records.end(), shard.records.begin(),
                         shard.records.end());
  }

  FCAD_CHECK_MSG(stats.completed == stats.offered,
                 "fleet: lost requests in flight");

  // The terminal tick: every replay with an observer ends with a progress
  // event whose estimate is the exact final tail percentile over ALL
  // latencies. A sharded run's last in-loop tick carries the emitting
  // shard's local estimate even when it lands exactly at completed ==
  // offered, so only the single-shard loop (whose tracker saw every
  // sample) may skip the terminal emit.
  if (scope != nullptr &&
      (num_shards > 1 || sink.last_emitted.load() != stats.completed)) {
    const double final_tail =
        latencies.empty()
            ? 0
            : percentile(latencies, options.progress_tail_pct);
    sink.emit(stats.completed, final_tail);
  }

  stats.makespan_us = makespan_us;
  stats.throughput_rps =
      makespan_us > 0
          ? static_cast<double>(stats.completed) / (makespan_us * 1e-6)
          : 0;
  stats.latency = summarize(std::move(latencies));
  stats.queue_wait = summarize(std::move(waits));
  stats.mean_batch_fill =
      stats.batches > 0 ? fill_sum / static_cast<double>(stats.batches) : 0;
  stats.mean_queue_depth =
      makespan_us > 0 ? depth_integral_us / makespan_us : 0;
  stats.sla_violation_rate =
      stats.completed > 0
          ? static_cast<double>(stats.sla_violations) /
                static_cast<double>(stats.completed)
          : 0;
  stats.sla_met = stats.latency.p99 <= options.sla_bound_us;

  double busy_sum = 0;
  for (const auto& slot : slots) {
    for (const InstanceStats& shard_inst : slot->instances) {
      InstanceStats is = shard_inst;
      is.utilization = makespan_us > 0 ? is.busy_us / makespan_us : 0;
      busy_sum += is.utilization;
      stats.instances.push_back(is);
    }
  }
  stats.fleet_utilization = busy_sum / options.instances;

  // Registry export, fed exclusively from this single-threaded shard-index-
  // ordered merge so the exported numbers (histogram buckets included) are
  // bit-identical for any thread count. Totals are cheap and always on; the
  // per-request histogram fills only run under --metrics-out.
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("serving.fleet.requests").add(stats.completed);
    reg.counter("serving.fleet.batches").add(stats.batches);
    reg.counter("serving.fleet.sla_violations").add(stats.sla_violations);
    reg.counter("serving.fleet.resumed_shards").add(stats.resumed_shards);
    if (obs::metrics_collection()) {
      static const std::vector<double> kLatencyBounds = {
          100,    200,    500,    1000,   2000,    5000,   10000,
          20000,  50000,  100000, 200000, 500000,  1e6};
      obs::Histogram& latency_hist =
          reg.histogram("serving.latency_us", kLatencyBounds);
      obs::Histogram& wait_hist =
          reg.histogram("serving.queue_wait_us", kLatencyBounds);
      for (const auto& slot : slots) {
        for (double v : slot->latencies) latency_hist.observe(v);
        for (double v : slot->waits) wait_hist.observe(v);
      }
      reg.gauge("serving.fleet.throughput_rps").set(stats.throughput_rps);
      reg.gauge("serving.fleet.utilization").set(stats.fleet_utilization);
      reg.gauge("serving.fleet.mean_batch_fill").set(stats.mean_batch_fill);
    }
  }
  return stats;
}

}  // namespace fcad::serving
