#include "serving/service.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace fcad::serving {
namespace {

ServiceModel build(const arch::AcceleratorConfig& config,
                   const std::vector<double>& fps_per_branch) {
  FCAD_CHECK_MSG(config.branches.size() == fps_per_branch.size(),
                 "service model: config/eval branch arity mismatch");
  ServiceModel model;
  model.branches.reserve(config.branches.size());
  for (std::size_t j = 0; j < config.branches.size(); ++j) {
    BranchService s;
    s.capacity = std::max(1, config.branches[j].batch);
    const double fps = fps_per_branch[j];
    FCAD_CHECK_MSG(fps > 0, "service model: branch throughput must be > 0");
    // fps counts frames across all pipeline copies, so a full pass of
    // `capacity` frames completes every capacity / fps seconds.
    s.pass_us = static_cast<double>(s.capacity) / fps * 1e6;
    model.branches.push_back(s);
  }
  return model;
}

}  // namespace

std::vector<int> ServiceModel::capacities() const {
  std::vector<int> caps;
  caps.reserve(branches.size());
  for (const auto& b : branches) caps.push_back(b.capacity);
  return caps;
}

double ServiceModel::peak_rps() const {
  // Uniform mix: rate r per branch keeps the server busy a fraction
  // r * pass_s / capacity per branch; saturation at sum == 1.
  double busy_per_rps = 0;
  for (const auto& b : branches) {
    if (b.capacity > 0) busy_per_rps += b.pass_us * 1e-6 / b.capacity;
  }
  if (busy_per_rps <= 0) return 0;
  return static_cast<double>(branches.size()) / busy_per_rps;
}

ServiceModel service_model_from_eval(const arch::AcceleratorConfig& config,
                                     const arch::AcceleratorEval& eval) {
  std::vector<double> fps;
  fps.reserve(eval.branches.size());
  for (const auto& b : eval.branches) fps.push_back(b.fps);
  return build(config, fps);
}

ServiceModel service_model_from_sim(const arch::AcceleratorConfig& config,
                                    const sim::SimResult& result) {
  std::vector<double> fps;
  fps.reserve(result.branches.size());
  for (const auto& b : result.branches) fps.push_back(b.fps);
  return build(config, fps);
}

}  // namespace fcad::serving
