#include "serving/stream.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <utility>

namespace fcad::serving {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Salt decorrelating the acceptance rng tree from the candidate-draw tree
/// (moved from scenario.cpp with the generator; the value is part of the
/// workload contract — changing it changes every shaped trace).
constexpr std::uint64_t kAcceptSalt = 0x9e3779b97f4a7c15ULL;

/// Per-user activity windows derived from churn (base users) or a flash
/// window (extra users). An empty list means always active.
struct ActivityWindows {
  std::vector<std::pair<double, double>> windows_us;

  bool active_at(double t_us) const {
    if (windows_us.empty()) return true;
    for (const auto& [lo, hi] : windows_us) {
      if (t_us >= lo && t_us < hi) return true;
    }
    return false;
  }
  /// Time after which the user can never emit again (µs).
  double horizon_us() const {
    if (windows_us.empty()) return kInf;
    double hi = 0;
    for (const auto& w : windows_us) hi = std::max(hi, w.second);
    return hi;
  }
};

/// The merged lazy generator behind every non-trace workload: per-user
/// candidate streams (thinned by the scenario's acceptance rule when it
/// shapes arrivals) folded through a min-heap in (arrival, user) order,
/// with the branch fan-out and dense ids applied per popped frame event.
/// Draw-for-draw identical to the materialized generators it replaced:
/// each user's candidate and acceptance rngs are private to that user and
/// consumed in per-user time order in both formulations, and a min-heap
/// pop sequence over (t, user) pairs IS their lexicographic sort.
class GeneratedRequestStream final : public RequestStream {
 public:
  GeneratedRequestStream(const WorkloadOptions& options,
                         const ScenarioSpec& scenario)
      : spec_(scenario),
        thinned_(scenario.shapes_arrivals()),
        branches_(options.branches),
        target_(options.target_requests) {
    const bool bursty = options.process == ArrivalProcess::kBursty;
    const double duration_horizon_us =
        target_ > 0 ? kInf : options.duration_s * 1e6;
    // Peak multiplier for thinning: the diurnal crest times every flash
    // window's boost (windows may overlap, and max(1, m) bounds any subset
    // product from above). Candidates are drawn at rate * peak and
    // accepted with probability multiplier(t) / peak.
    peak_ = spec_.diurnal.period_s > 0 ? 1.0 + spec_.diurnal.amplitude : 1.0;
    if (thinned_) {
      for (const auto& f : spec_.flash) {
        peak_ *= std::max(1.0, f.rate_multiplier);
      }
    }
    const double rate_hz =
        options.frame_rate_hz * (thinned_ ? peak_ : 1.0);

    // Base users fork from the root in the same order as the plain
    // generator, so the candidate rng tree is independent of the scenario.
    // Extra flash users fork afterwards; acceptance draws come from a
    // separate decorrelated tree.
    Rng root(options.seed);
    Rng accept_root(options.seed ^ kAcceptSalt);
    const int total_users =
        options.users + (thinned_ ? spec_.extra_users() : 0);
    users_.reserve(static_cast<std::size_t>(total_users));
    auto add_user = [&](int user, ActivityWindows activity) {
      UserEntry entry{
          UserStream(root.fork(static_cast<std::uint64_t>(user) + 1),
                     rate_hz, bursty ? options.burst_on_s : 0.0,
                     bursty ? options.burst_off_s : 0.0,
                     options.burst_factor),
          thinned_
              ? std::optional<Rng>(
                    accept_root.fork(static_cast<std::uint64_t>(user) + 1))
              : std::nullopt,
          std::move(activity), 0};
      entry.horizon_us =
          std::min(duration_horizon_us, entry.activity.horizon_us());
      users_.push_back(std::move(entry));
    };
    for (int user = 0; user < options.users; ++user) {
      ActivityWindows activity;
      if (thinned_) {
        for (const auto& c : spec_.churn) {
          if (c.user == user) {
            activity.windows_us.emplace_back(c.join_s * 1e6, c.leave_s * 1e6);
          }
        }
      }
      add_user(user, std::move(activity));
    }
    if (thinned_) {
      int next_extra = options.users;
      for (const auto& f : spec_.flash) {
        for (int j = 0; j < f.extra_users; ++j, ++next_extra) {
          ActivityWindows activity;
          activity.windows_us.emplace_back(f.start_s * 1e6, f.end_s * 1e6);
          add_user(next_extra, std::move(activity));
        }
      }
    }
    // A stream past its horizon can never emit again; keep it out of the
    // heap so exhausted extra/churned users cost nothing.
    for (int user = 0; user < total_users; ++user) {
      UserEntry& entry = users_[static_cast<std::size_t>(user)];
      const double t = entry.candidates.next(entry.horizon_us);
      if (t < entry.horizon_us) heap_.push({t, user});
    }
  }

  std::optional<Request> next() override {
    if (target_ > 0 && emitted_ >= target_) return std::nullopt;
    while (branch_ >= branches_) {  // current frame event fully fanned out
      if (heap_.empty()) {
        if (target_ > 0) {
          status_ = Status::invalid_argument(
              "scenario: target_requests unreachable — every user stream "
              "ends before enough events are accepted");
        }
        return std::nullopt;
      }
      const auto [t_us, user] = heap_.top();
      heap_.pop();
      UserEntry& entry = users_[static_cast<std::size_t>(user)];
      const bool accepted = accept(entry, t_us);
      const double t = entry.candidates.next(entry.horizon_us);
      if (t < entry.horizon_us) heap_.push({t, user});
      if (accepted) {
        event_t_us_ = t_us;
        event_user_ = user;
        branch_ = 0;
      }
    }
    Request r;
    r.id = emitted_++;
    r.user = event_user_;
    r.branch = branch_++;
    r.arrival_us = event_t_us_;
    return r;
  }

  Status finish_status() const override { return status_; }

 private:
  struct UserEntry {
    UserStream candidates;
    std::optional<Rng> accept;  ///< engaged only for thinned streams
    ActivityWindows activity;
    double horizon_us;  ///< retire bound: min(duration, last activity)
  };

  bool accept(UserEntry& entry, double t_us) {
    if (!thinned_) return true;
    // The draw is consumed before the activity check on purpose — it pins
    // the materialized generator's rng stream exactly.
    const double draw = entry.accept->next_double();
    return entry.activity.active_at(t_us) &&
           draw < scenario_rate_multiplier(spec_, t_us) / peak_;
  }

  ScenarioSpec spec_;
  bool thinned_;
  int branches_;
  std::int64_t target_;
  double peak_ = 1;
  std::vector<UserEntry> users_;
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<std::pair<double, int>>>
      heap_;
  double event_t_us_ = 0;
  int event_user_ = 0;
  int branch_ = std::numeric_limits<int>::max();  ///< forces the first pop
  std::int64_t emitted_ = 0;
  Status status_ = Status::ok();
};

}  // namespace

StatusOr<std::unique_ptr<RequestStream>> make_request_stream(
    const WorkloadOptions& options, const ScenarioSpec& scenario) {
  if (Status s = validate_workload_options(options); !s.is_ok()) return s;
  if (Status s = validate_scenario(scenario); !s.is_ok()) return s;
  if (options.process == ArrivalProcess::kTrace) {
    if (scenario.shapes_arrivals()) {
      return Status::invalid_argument(
          "scenario: shaped arrivals require a generated process, not a "
          "trace");
    }
    // Traces are already materialized; adapt them instead of re-deriving.
    auto workload = generate_workload(options);
    if (!workload.is_ok()) return workload.status();
    return std::unique_ptr<RequestStream>(
        std::make_unique<VectorRequestStream>(std::move(*workload)));
  }
  return std::unique_ptr<RequestStream>(
      std::make_unique<GeneratedRequestStream>(options, scenario));
}

StatusOr<std::vector<Request>> drain_request_stream(RequestStream& stream,
                                                    std::int64_t reserve) {
  std::vector<Request> out;
  if (reserve > 0) out.reserve(static_cast<std::size_t>(reserve));
  while (std::optional<Request> r = stream.next()) out.push_back(*r);
  if (Status s = stream.finish_status(); !s.is_ok()) return s;
  return out;
}

}  // namespace fcad::serving
