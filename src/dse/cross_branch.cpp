#include "dse/cross_branch.hpp"

#include <algorithm>
#include <chrono>

#include "dse/fitness_cache.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fcad::dse {
namespace {

ResourceDistribution random_distribution(Rng& rng, int branches) {
  ResourceDistribution rd;
  rd.c_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.m_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.bw_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  return rd;
}

void normalize_fractions(std::vector<double>& frac) {
  double sum = 0;
  for (double f : frac) sum += f;
  if (sum <= 0) {
    frac.assign(frac.size(), 1.0 / static_cast<double>(frac.size()));
    return;
  }
  for (double& f : frac) f /= sum;
}

/// Demand-proportional warm start: compute fractions follow each branch's
/// owned MAC work x batch target; memory fractions follow the branch's
/// minimum-parallelism BRAM floor (line buffers and overheads do not shrink
/// with pf, so a branch starved below its floor can never meet its batch
/// target no matter how the search evolves); bandwidth follows stream bytes.
/// Seeding the swarm with this point (and jittered copies) lets the search
/// find the narrow feasible sliver on BRAM-tight cases.
ResourceDistribution demand_distribution(const arch::ReorganizedModel& model,
                                         const Customization& cust) {
  return demand_proportional_distribution(model, cust);
}

}  // namespace

ResourceDistribution demand_proportional_distribution(
    const arch::ReorganizedModel& model, const Customization& cust) {
  const int B = model.num_branches();
  ResourceDistribution rd;
  rd.c_frac.resize(static_cast<std::size_t>(B));
  rd.m_frac.resize(static_cast<std::size_t>(B));
  rd.bw_frac.resize(static_cast<std::size_t>(B));
  for (int b = 0; b < B; ++b) {
    const arch::BranchPipeline& br =
        model.branches[static_cast<std::size_t>(b)];
    const double batch =
        static_cast<double>(cust.batch_sizes[static_cast<std::size_t>(b)]);
    double floor_brams = 0;
    double stream_bytes = 0;
    for (int s : br.stages) {
      const arch::FusedStage& stage = model.stage(s);
      arch::UnitStreamContext ctx;
      ctx.reads_external_input =
          model.fused.stage_inputs[static_cast<std::size_t>(s)].empty();
      ctx.writes_external_output =
          !model.fused.stage_outputs[static_cast<std::size_t>(s)].empty();
      const arch::UnitResources res = arch::unit_resources(
          stage, arch::UnitConfig{1, 1, 1}, cust.quantization,
          cust.quantization, ctx);
      floor_brams += res.brams;
      stream_bytes += static_cast<double>(res.total_stream_bytes());
    }
    rd.c_frac[static_cast<std::size_t>(b)] =
        static_cast<double>(br.macs_owned) * batch + 1.0;
    rd.m_frac[static_cast<std::size_t>(b)] = floor_brams * batch + 1.0;
    rd.bw_frac[static_cast<std::size_t>(b)] = stream_bytes * batch + 1.0;
  }
  normalize_fractions(rd.c_frac);
  normalize_fractions(rd.m_frac);
  normalize_fractions(rd.bw_frac);
  return rd;
}

/// Projects a fraction vector back onto the simplex (non-negative floor, sum
/// of 1) after an evolution move.
void renormalize(std::vector<double>& frac) {
  constexpr double kFloor = 0.01;
  double sum = 0;
  for (double& f : frac) {
    f = std::max(f, kFloor);
    sum += f;
  }
  for (double& f : frac) f /= sum;
}

/// One PSO-style move of `frac` toward the local and global bests by a
/// random distance, plus uniform jitter (Algorithm 1, line 16).
void evolve(std::vector<double>& frac, const std::vector<double>& local_best,
            const std::vector<double>& global_best,
            const CrossBranchOptions& opt, Rng& rng) {
  const double r1 = rng.next_double() * opt.w_local;
  const double r2 = rng.next_double() * opt.w_global;
  for (std::size_t j = 0; j < frac.size(); ++j) {
    frac[j] += r1 * (local_best[j] - frac[j]) +
               r2 * (global_best[j] - frac[j]) +
               rng.next_range(-opt.jitter, opt.jitter);
  }
  renormalize(frac);
}

DistributionEval evaluate_distribution(const arch::ReorganizedModel& model,
                                       const ResourceBudget& budget,
                                       const ResourceDistribution& rd,
                                       const Customization& cust,
                                       const CrossBranchOptions& opt,
                                       SearchTrace& trace,
                                       FitnessCache* cache) {
  DistributionEval ce;
  ce.config.dw = cust.quantization;
  ce.config.ww = cust.quantization;
  ce.config.freq_mhz = opt.freq_mhz;

  int unmet = 0;
  std::uint64_t met_mask = 0;
  for (int b = 0; b < model.num_branches(); ++b) {
    const ResourceBudget slice = rd.slice(budget, b);
    const InBranchResult ib = in_branch_optimize(
        model, b, slice, cust.batch_sizes[static_cast<std::size_t>(b)],
        ce.config.dw, ce.config.ww, opt.freq_mhz);
    ++trace.evaluations;
    if (ib.met_batch_target) {
      met_mask |= std::uint64_t{1} << (b % 64);
    } else {
      ++unmet;
    }
    ce.config.branches.push_back(ib.config);
  }

  // Nearby distributions quantize to the same discrete config; once one of
  // them has been scored, the rest are cache hits.
  FitnessCache::Key key;
  if (cache) {
    key = FitnessCache::config_key(ce.config, met_mask, opt.eval_mode);
    if (auto entry = cache->find(key)) {
      ce.eval = entry->eval;
      ce.fitness = entry->fitness;
      ce.feasible = entry->feasible;
      return ce;
    }
  }

  ce.eval = arch::evaluate(model, ce.config, opt.eval_mode);
  // A candidate must also respect the global budget once quantization and
  // cross-branch caps are accounted for.
  if (!ce.eval.within(static_cast<int>(budget.c), static_cast<int>(budget.m),
                      budget.bw)) {
    ++unmet;
  }
  std::vector<double> fps;
  fps.reserve(ce.eval.branches.size());
  for (const arch::BranchEval& be : ce.eval.branches) fps.push_back(be.fps);
  if (opt.objective.empty()) {
    ce.fitness = fitness_score(fps, cust.priorities, unmet, opt.fitness);
  } else {
    ObjectiveInput input;
    input.fps = std::move(fps);
    input.priorities = cust.priorities;
    input.unmet_targets = unmet;
    ce.fitness = opt.objective.score(input);
  }
  ce.feasible = unmet == 0;
  if (cache) cache->insert(key, {ce.eval, ce.fitness, ce.feasible});
  return ce;
}

SearchResult cross_branch_search(const arch::ReorganizedModel& model,
                                 const ResourceBudget& budget,
                                 const Customization& customization,
                                 const CrossBranchOptions& options,
                                 const RunScope* scope) {
  FCAD_CHECK(options.population >= 1 && options.iterations >= 1);
  FCAD_CHECK(customization.batch_sizes.size() ==
             static_cast<std::size_t>(model.num_branches()));
  const auto t0 = std::chrono::steady_clock::now();
  Rng rng(options.seed);
  util::ThreadPool& pool = util::ThreadPool::shared(options.threads);
  FitnessCache cache;

  const int B = model.num_branches();
  struct Particle {
    ResourceDistribution rd;
    ResourceDistribution best_rd;  ///< rd_i^best
    double best_fitness = -1e300;
  };

  SearchResult result;
  result.fitness = -1e300;

  // Line 4: initial population RD^0 — mostly random, seeded with the
  // demand-proportional warm start plus jittered variants of it (about a
  // tenth of the swarm).
  std::vector<Particle> swarm(static_cast<std::size_t>(options.population));
  const ResourceDistribution demand = demand_distribution(model, customization);
  const int warm = std::max(1, options.population / 10);
  for (int i = 0; i < options.population; ++i) {
    Particle& p = swarm[static_cast<std::size_t>(i)];
    if (i < warm) {
      p.rd = demand;
      if (i > 0) {  // jittered copies around the warm start
        for (auto* frac : {&p.rd.c_frac, &p.rd.m_frac, &p.rd.bw_frac}) {
          for (double& f : *frac) f += rng.next_range(-0.05, 0.05);
          renormalize(*frac);
        }
      }
    } else {
      p.rd = random_distribution(rng, B);
    }
    p.best_rd = p.rd;
  }

  std::vector<SearchTrace> local_traces(swarm.size());
  for (int iter = 0; iter < options.iterations; ++iter) {
    if (scope != nullptr && scope->should_stop()) {
      result.stopped_early = true;
      break;
    }
    // Line 12: score every particle. Evaluation is a pure function of the
    // particle's rd, so the swarm fans out across the pool; the best-update
    // reduction below walks the results in particle order, keeping the
    // outcome bit-identical to a serial sweep.
    const std::vector<DistributionEval> evals =
        pool.parallel_map<DistributionEval>(
            static_cast<std::int64_t>(swarm.size()), [&](std::int64_t i) {
              const auto idx = static_cast<std::size_t>(i);
              return evaluate_distribution(model, budget, swarm[idx].rd,
                                           customization, options,
                                           local_traces[idx], &cache);
            });
    for (std::size_t i = 0; i < swarm.size(); ++i) {
      Particle& p = swarm[i];
      const DistributionEval& ce = evals[i];
      // Line 13: update local and global bests.
      if (ce.fitness > p.best_fitness) {
        p.best_fitness = ce.fitness;
        p.best_rd = p.rd;
      }
      if (ce.fitness > result.fitness) {
        result.fitness = ce.fitness;
        result.config = ce.config;
        result.eval = ce.eval;
        result.distribution = p.rd;
        result.feasible = ce.feasible;
        result.trace.convergence_iteration = iter + 1;
      }
    }
    result.trace.best_fitness.push_back(result.fitness);
    FCAD_LOG(kInfo) << "cross-branch iter " << (iter + 1) << "/"
                    << options.iterations << " best fitness "
                    << result.fitness;
    if (scope != nullptr) {
      scope->emit({options.progress_label, iter + 1, options.iterations,
                   result.fitness});
    }
    // Line 16: evolve every particle toward its bests.
    for (Particle& p : swarm) {
      evolve(p.rd.c_frac, p.best_rd.c_frac, result.distribution.c_frac,
             options, rng);
      evolve(p.rd.m_frac, p.best_rd.m_frac, result.distribution.m_frac,
             options, rng);
      evolve(p.rd.bw_frac, p.best_rd.bw_frac, result.distribution.bw_frac,
             options, rng);
    }
  }

  for (const SearchTrace& local : local_traces) {
    result.trace.evaluations += local.evaluations;
  }
  result.trace.cache_hits = cache.hits();
  result.trace.cache_misses = cache.misses();

  // Report the winner under quantized evaluation — what the generated RTL
  // would actually do. (Divisor-exact configs make this a no-op; non-divisor
  // factors would surface their ceil waste here.)
  if (!result.config.branches.empty()) {
    result.eval =
        arch::evaluate(model, result.config, arch::EvalMode::kQuantized);
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace fcad::dse
