#include "dse/cross_branch.hpp"

#include "dse/fitness_cache.hpp"
#include "dse/strategy.hpp"

namespace fcad::dse {
namespace {

void normalize_fractions(std::vector<double>& frac) {
  double sum = 0;
  for (double f : frac) sum += f;
  if (sum <= 0) {
    frac.assign(frac.size(), 1.0 / static_cast<double>(frac.size()));
    return;
  }
  for (double& f : frac) f /= sum;
}

}  // namespace

/// Demand-proportional warm start: compute fractions follow each branch's
/// owned MAC work x batch target; memory fractions follow the branch's
/// minimum-parallelism BRAM floor (line buffers and overheads do not shrink
/// with pf, so a branch starved below its floor can never meet its batch
/// target no matter how the search evolves); bandwidth follows stream bytes.
/// Seeding the swarm with this point (and jittered copies) lets the search
/// find the narrow feasible sliver on BRAM-tight cases.
ResourceDistribution demand_proportional_distribution(
    const arch::ReorganizedModel& model, const Customization& cust) {
  const int B = model.num_branches();
  const arch::Datapath dp = cust.resolved_datapath();
  ResourceDistribution rd;
  rd.c_frac.resize(static_cast<std::size_t>(B));
  rd.m_frac.resize(static_cast<std::size_t>(B));
  rd.bw_frac.resize(static_cast<std::size_t>(B));
  for (int b = 0; b < B; ++b) {
    const arch::BranchPipeline& br =
        model.branches[static_cast<std::size_t>(b)];
    const double batch =
        static_cast<double>(cust.batch_sizes[static_cast<std::size_t>(b)]);
    double floor_brams = 0;
    double stream_bytes = 0;
    for (int s : br.stages) {
      const arch::FusedStage& stage = model.stage(s);
      arch::UnitStreamContext ctx;
      ctx.reads_external_input =
          model.fused.stage_inputs[static_cast<std::size_t>(s)].empty();
      ctx.writes_external_output =
          !model.fused.stage_outputs[static_cast<std::size_t>(s)].empty();
      const arch::UnitResources res =
          arch::unit_resources(stage, arch::UnitConfig{1, 1, 1}, dp, ctx);
      floor_brams += res.brams;
      stream_bytes += static_cast<double>(res.total_stream_bytes());
    }
    rd.c_frac[static_cast<std::size_t>(b)] =
        static_cast<double>(br.macs_owned) * batch + 1.0;
    rd.m_frac[static_cast<std::size_t>(b)] = floor_brams * batch + 1.0;
    rd.bw_frac[static_cast<std::size_t>(b)] = stream_bytes * batch + 1.0;
  }
  normalize_fractions(rd.c_frac);
  normalize_fractions(rd.m_frac);
  normalize_fractions(rd.bw_frac);
  return rd;
}

DistributionEval evaluate_distribution(const arch::ReorganizedModel& model,
                                       const ResourceBudget& budget,
                                       const ResourceDistribution& rd,
                                       const Customization& cust,
                                       const CrossBranchOptions& opt,
                                       SearchTrace& trace,
                                       FitnessCache* cache) {
  DistributionEval ce;
  ce.config.datapath = cust.resolved_datapath();
  ce.config.freq_mhz = opt.freq_mhz;

  int unmet = 0;
  std::uint64_t met_mask = 0;
  for (int b = 0; b < model.num_branches(); ++b) {
    const ResourceBudget slice = rd.slice(budget, b);
    const InBranchResult ib = in_branch_optimize(
        model, b, slice, cust.batch_sizes[static_cast<std::size_t>(b)],
        ce.config.datapath, opt.freq_mhz);
    ++trace.evaluations;
    if (ib.met_batch_target) {
      met_mask |= std::uint64_t{1} << (b % 64);
    } else {
      ++unmet;
    }
    ce.config.branches.push_back(ib.config);
  }

  // Nearby distributions quantize to the same discrete config; once one of
  // them has been scored, the rest are cache hits.
  FitnessCache::Key key;
  if (cache) {
    key = FitnessCache::config_key(ce.config, met_mask, opt.eval_mode);
    if (auto entry = cache->find(key)) {
      ce.eval = entry->eval;
      ce.fitness = entry->fitness;
      ce.feasible = entry->feasible;
      return ce;
    }
  }

  ce.eval = arch::evaluate(model, ce.config, opt.eval_mode);
  // A candidate must also respect the global budget once quantization and
  // cross-branch caps are accounted for.
  if (!ce.eval.within(static_cast<int>(budget.c), static_cast<int>(budget.m),
                      budget.bw, static_cast<int>(budget.l))) {
    ++unmet;
  }
  std::vector<double> fps;
  fps.reserve(ce.eval.branches.size());
  for (const arch::BranchEval& be : ce.eval.branches) fps.push_back(be.fps);
  if (opt.objective.empty()) {
    ce.fitness = fitness_score(fps, cust.priorities, unmet, opt.fitness);
  } else {
    ObjectiveInput input;
    input.fps = std::move(fps);
    input.priorities = cust.priorities;
    input.unmet_targets = unmet;
    input.min_fps = ce.eval.min_fps;
    input.dsps = ce.eval.dsps;
    input.brams = ce.eval.brams;
    input.bw_gbps = ce.eval.bw_gbps;
    input.accuracy_proxy = ce.eval.accuracy_proxy;
    ce.fitness = opt.objective.score(input);
  }
  ce.feasible = unmet == 0;
  if (cache) cache->insert(key, {ce.eval, ce.fitness, ce.feasible});
  return ce;
}

SearchResult cross_branch_search(const arch::ReorganizedModel& model,
                                 const ResourceBudget& budget,
                                 const Customization& customization,
                                 const CrossBranchOptions& options,
                                 const RunScope* scope) {
  auto result = run_search_strategy(kDefaultStrategy, model, budget,
                                    customization, options, scope);
  FCAD_CHECK_MSG(result.is_ok(), result.status().message());
  return std::move(result).value();
}

}  // namespace fcad::dse
