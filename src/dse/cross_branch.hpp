// Cross-branch search vocabulary: options, traces, results, and the shared
// candidate evaluation (in-branch greedy configuration + fitness) every
// search strategy optimizes. The search algorithms themselves live behind
// the pluggable dse::Strategy interface (dse/strategy.hpp); Algorithm 1 —
// the particle-swarm search over resource distribution schemes, where each
// of P candidates is a per-branch split of {Cmax, Mmax, BWmax} — is the
// registered "particle-swarm" strategy, reachable directly through
// cross_branch_search() below.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/elastic.hpp"
#include "dse/design_space.hpp"
#include "dse/fitness.hpp"
#include "dse/in_branch.hpp"
#include "dse/objective.hpp"
#include "dse/run_control.hpp"

namespace fcad::dse {

struct CrossBranchOptions {
  int iterations = 20;    ///< N of Sec. VII
  int population = 200;   ///< P of Sec. VII
  std::uint64_t seed = 1;
  /// Candidate evaluations per iteration run on a util::ThreadPool of this
  /// size (0 = one thread per hardware core, 1 = fully serial). Results are
  /// bit-identical for any value: RNG streams are drawn outside the parallel
  /// region and reductions happen in candidate order.
  int threads = 0;
  FitnessParams fitness;
  /// Attraction weights toward the candidate's local best and the global
  /// best (each scaled by an independent U[0,1) draw per move).
  double w_local = 0.7;
  double w_global = 0.7;
  /// Uniform mutation half-width applied to every fraction per move.
  double jitter = 0.05;
  /// Evaluation mode used inside the search loop.
  arch::EvalMode eval_mode = arch::EvalMode::kAnalytical;
  /// Accelerator clock (from the target platform).
  double freq_mhz = 200.0;
  /// Candidate objective. Empty scores the legacy fitness_score() with
  /// `fitness` (bit-identical to Objective::batch_fitness(fitness)); a
  /// non-empty composition replaces it for this search and for every
  /// registered strategy (dse/strategy.hpp).
  Objective objective;
  /// Stage name used in ProgressEvents emitted by this search.
  std::string progress_label = "search";
};

struct SearchTrace {
  std::vector<double> best_fitness;  ///< global best after each iteration
  /// First iteration (1-based) after which the global best stopped
  /// improving (the paper's convergence-iteration metric).
  int convergence_iteration = 0;
  std::int64_t evaluations = 0;  ///< in-branch optimizations performed
  /// Fitness-memoization traffic: candidates whose discrete configuration
  /// was already evaluated this search (hits) vs computed fresh (misses).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
};

struct SearchResult {
  arch::AcceleratorConfig config;       ///< Config_global^best
  arch::AcceleratorEval eval;           ///< evaluation of that config
  ResourceDistribution distribution;    ///< rd_global^best
  double fitness = 0;
  bool feasible = false;  ///< all batch targets met within the budget
  SearchTrace trace;
  double seconds = 0;  ///< wall-clock DSE time
  /// Cancelled or hit the deadline before finishing all iterations; the
  /// result is the best seen up to that point.
  bool stopped_early = false;
};

/// Runs Algorithm 1 (the registered "particle-swarm" strategy under the
/// shared strategy loop). `customization` must already be normalized. When
/// `scope` is set, the loop polls it between iterations (cooperative
/// cancellation / deadline) and emits one ProgressEvent per iteration.
SearchResult cross_branch_search(const arch::ReorganizedModel& model,
                                 const ResourceBudget& budget,
                                 const Customization& customization,
                                 const CrossBranchOptions& options,
                                 const RunScope* scope = nullptr);

/// Evaluation of one resource-distribution candidate: in-branch greedy
/// configuration (Algorithm 2) per branch + fitness. The shared strategy
/// loop (dse/strategy.hpp) scores every proposed candidate through this one
/// function, so all strategies optimize exactly the same objective as
/// Algorithm 1.
struct DistributionEval {
  arch::AcceleratorConfig config;
  arch::AcceleratorEval eval;
  double fitness = 0;
  bool feasible = false;
};

class FitnessCache;

/// Pure function of (model, budget, rd, customization, options); safe to
/// call concurrently from pool workers. When `cache` is non-null, the
/// post-quantization evaluation + fitness are memoized by discrete-config
/// hash (see dse/fitness_cache.hpp); the cache must belong to this search
/// context.
DistributionEval evaluate_distribution(const arch::ReorganizedModel& model,
                                       const ResourceBudget& budget,
                                       const ResourceDistribution& rd,
                                       const Customization& customization,
                                       const CrossBranchOptions& options,
                                       SearchTrace& trace,
                                       FitnessCache* cache = nullptr);

/// The demand-proportional warm-start distribution used to seed Algorithm
/// 1's swarm (compute ∝ owned MACs x batch, memory ∝ minimum-parallelism
/// BRAM floor, bandwidth ∝ stream bytes).
ResourceDistribution demand_proportional_distribution(
    const arch::ReorganizedModel& model, const Customization& customization);

}  // namespace fcad::dse
