// Alternative cross-branch search strategies, optimizing the identical
// objective as Algorithm 1 (same in-branch greedy configuration, same
// fitness). Used by bench_ablation to justify the paper's choice of a
// stochastic swarm search:
//   * kRandom      — pure random sampling of resource distributions;
//   * kAnnealing   — single-chain simulated annealing over the simplexes;
//   * kParticleSwarm — Algorithm 1 itself (delegates to
//     cross_branch_search).
// Every strategy gets the same evaluation budget (population x iterations
// candidate evaluations) so comparisons are compute-fair.
#pragma once

#include "dse/cross_branch.hpp"

namespace fcad::dse {

enum class SearchStrategy {
  kParticleSwarm,
  kRandom,
  kAnnealing,
};

const char* to_string(SearchStrategy strategy);

/// Runs `strategy` under the same budget/customization/options contract as
/// cross_branch_search.
SearchResult strategy_search(const arch::ReorganizedModel& model,
                             const ResourceBudget& budget,
                             const Customization& customization,
                             const CrossBranchOptions& options,
                             SearchStrategy strategy);

}  // namespace fcad::dse
