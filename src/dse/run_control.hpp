// The run controls live in util/run_control.hpp so the serving layer can
// honor the same cancellation/progress contract without depending on dse.
// The dse spellings below are the canonical public names (SearchSpec carries
// a dse::RunControl); this header keeps them in the namespace the search API
// lives in.
#pragma once

#include "util/run_control.hpp"

namespace fcad::dse {

using CancellationToken = util::CancellationToken;
using ProgressEvent = util::ProgressEvent;
using RunControl = util::RunControl;
using RunScope = util::RunScope;

}  // namespace fcad::dse
