// Co-exploration sweeps on top of the core DSE: quantization x clock
// frequency grids, with Pareto filtering on (min-FPS, DSP usage). The paper
// fixes 200 MHz and explores Q as a customization; a deployment study wants
// the whole grid — this is the "joint optimization" entry point.
#pragma once

#include <vector>

#include "dse/engine.hpp"

namespace fcad::dse {

struct SweepPoint {
  nn::DataType quantization = nn::DataType::kInt8;
  double freq_mhz = 200.0;
  SearchResult result;
  bool pareto_optimal = false;  ///< on the (min FPS up, DSPs down) frontier
};

struct SweepOptions {
  std::vector<nn::DataType> quantizations = {nn::DataType::kInt8,
                                             nn::DataType::kInt16};
  std::vector<double> frequencies_mhz = {150, 200, 300};
  CrossBranchOptions search;
  /// Copied into every run's customization (batch sizes / priorities).
  Customization customization;
};

/// Runs the DSE once per grid point and marks the Pareto frontier.
/// Frequency scaling is idealized (timing closure is the RTL backend's
/// problem); resource budgets come from `platform` unchanged.
StatusOr<std::vector<SweepPoint>> quantization_frequency_sweep(
    const arch::ReorganizedModel& model, const arch::Platform& platform,
    const SweepOptions& options);

}  // namespace fcad::dse
