// DEPRECATED facade — the standalone quantization x frequency sweep entry
// point, kept one release as an inline shim over
// SearchDriver::run(SearchKind::kSweep). New code sets SearchSpec::sweep.
#pragma once

#include <utility>
#include <vector>

#include "dse/search_driver.hpp"

namespace fcad::dse {

/// Legacy sweep request. Superseded by SearchSpec{kind = kSweep, sweep = ...}.
struct SweepOptions {
  std::vector<nn::DataType> quantizations = {nn::DataType::kInt8,
                                             nn::DataType::kInt16};
  std::vector<double> frequencies_mhz = {150, 200, 300};
  CrossBranchOptions search;
  /// Copied into every run's customization (batch sizes / priorities).
  Customization customization;
};

/// Runs the DSE once per grid point and marks the Pareto frontier.
[[deprecated("build a SearchSpec (SearchKind::kSweep) and call "
             "dse::SearchDriver::run")]]
inline StatusOr<std::vector<SweepPoint>> quantization_frequency_sweep(
    const arch::ReorganizedModel& model, const arch::Platform& platform,
    const SweepOptions& options) {
  SearchSpec spec;
  spec.kind = SearchKind::kSweep;
  spec.customization = options.customization;
  spec.search = options.search;
  spec.sweep.quantizations = options.quantizations;
  spec.sweep.frequencies_mhz = options.frequencies_mhz;
  auto outcome = SearchDriver(model, platform).run(spec);
  if (!outcome.is_ok()) return outcome.status();
  return std::move(outcome->sweep);
}

}  // namespace fcad::dse
