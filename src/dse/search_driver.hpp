// The unified DSE entry point: every optimization scenario — the plain
// cross-branch search, SLA-aware traffic search, maximum-batch probing, the
// quantization x frequency sweep, and the repeated-search convergence study
// — is one SearchDriver::run(SearchSpec) call. The spec carries the shared
// pieces exactly once (customization, swarm options, a pluggable Objective,
// and a RunControl with progress/cancellation/deadline/threads), replacing
// the five bespoke request structs of the legacy dse/engine.hpp facade.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/platform.hpp"
#include "dse/cross_branch.hpp"
#include "dse/objective.hpp"
#include "dse/run_control.hpp"
#include "dse/strategy.hpp"
#include "nn/dtype.hpp"
#include "serving/fleet.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"

namespace fcad::dse {

enum class SearchKind {
  kOptimize,     ///< one cross-branch search (Algorithm 1)
  kTraffic,      ///< SLA-aware serving search (batch scaling under load)
  kMaxBatch,     ///< largest feasible batch target for one branch
  kSweep,        ///< datapath x frequency x batch-scale grid, Pareto-marked
  kConvergence,  ///< statistics over repeated independent searches
};

const char* to_string(SearchKind kind);

/// Traffic description for SearchKind::kTraffic. Replaces the legacy
/// TrafficProfile, whose `workload.branches` and `sla.p99_bound_us` fields
/// were silently overwritten internally; here the driver validates them
/// instead: `workload.branches` must stay at its default (it is derived from
/// the model), and `sla.p99_bound_us` must stay at its default or equal
/// `fleet.sla_bound_us` (the single place the bound is set).
struct TrafficSpec {
  /// Arrival process over `users` streams. Leave `branches` alone.
  serving::WorkloadOptions workload;
  /// Fleet shape, batching timeout, and the p99 bound (`sla_bound_us`).
  serving::FleetOptions fleet;
  /// Objective weights. The bound itself comes from `fleet.sla_bound_us`.
  SlaParams sla;
  int max_batch = 8;  ///< largest uniform batch multiplier probed (doubling)
  /// When > workload.users: additionally maximize the served user count up
  /// to this cap (doubling + bisection per candidate config). Ignored for
  /// kTrace workloads, whose offered load does not depend on the count.
  int max_users = 0;
  /// Score candidates on the cycle-level simulator's service times instead
  /// of the analytical estimate (slower, closer to the board).
  bool use_simulator = false;
};

/// Grid for SearchKind::kSweep. Two ways to span the precision axis:
///  - legacy: `quantizations` (each entry means "pipelined-<Q>"), or
///  - datapath-first: `datapaths` holds canonical arch::Datapath names
///    ("staged-int8", "pipelined-int8x4", ...; see arch/datapath.hpp).
/// When `datapaths` is non-empty it REPLACES the quantization axis; when it
/// is empty the grid is derived from `quantizations` and results are
/// bit-identical to the pre-datapath sweep. `batch_scales` multiplies every
/// branch's batch target per point (default {1} — no scaling), making the
/// sweep a joint precision x microarchitecture x batch grid.
struct SweepGrid {
  std::vector<nn::DataType> quantizations = {nn::DataType::kInt8,
                                             nn::DataType::kInt16};
  std::vector<double> frequencies_mhz = {150, 200, 300};
  std::vector<std::string> datapaths;   ///< canonical names; empty = legacy
  std::vector<int> batch_scales = {1};  ///< per-point batch multipliers (>= 1)
};

/// Statistics over repeated independent searches (different seeds).
struct ConvergenceStats {
  int runs = 0;
  double mean_iterations = 0;  ///< iterations until the global best settled
  double min_iterations = 0;
  double max_iterations = 0;
  double mean_seconds = 0;
  double mean_fitness = 0;
  double fitness_spread = 0;  ///< max - min final fitness across runs
};

/// Winner of a kTraffic run.
struct TrafficSearchResult {
  SearchResult search;           ///< winning hardware search result
  std::vector<int> batch_sizes;  ///< per-branch batch targets of the winner
  int users_served = 0;  ///< largest user count meeting the SLA (0: none)
  serving::ServingStats stats;  ///< serving stats at the scored user count
  /// p99 within fleet.sla_bound_us *at users_served* — which may be below
  /// the requested workload.users when the traffic had to be degraded.
  bool sla_met = false;
  double sla_fitness = 0;  ///< serving-objective score of the winner
};

/// One kSweep grid point.
struct SweepPoint {
  /// Canonical datapath name of the point ("pipelined-int8", ...). For
  /// legacy quantization grids this is the derived "pipelined-<Q>" name.
  std::string datapath;
  /// Weight width of the point's datapath — kept so legacy consumers keyed
  /// on the quantization axis keep working one release.
  nn::DataType quantization = nn::DataType::kInt8;
  double freq_mhz = 200.0;
  int batch_scale = 1;  ///< batch multiplier applied to every branch target
  SearchResult result;
  /// On the grid's default frontier, marked via dse::extract_frontier: min
  /// FPS up vs DSPs down for legacy quantization grids, min FPS up vs
  /// accuracy penalty down for datapath grids (where 0-DSP LUT-fabric int4
  /// would otherwise dominate the resource axis). Other term pairs can be
  /// extracted from the same outcome (dse/frontier.hpp).
  bool pareto_optimal = false;
};

/// One search request. `kind` selects the scenario; the fields below the
/// fold only apply to their kind and are ignored otherwise.
struct SearchSpec {
  SearchKind kind = SearchKind::kOptimize;
  /// Search algorithm, by registry name (dse/strategy.hpp): "particle-swarm"
  /// (Algorithm 1, the default), "random", "annealing", or any custom
  /// strategy registered with register_strategy(). Every kind — including
  /// the inner searches of kTraffic/kMaxBatch/kSweep/kConvergence — runs
  /// under the selected strategy; unknown names are rejected by run().
  /// "" selects the default.
  std::string strategy = "particle-swarm";
  /// User customization (quantization, batch targets, priorities).
  /// Normalized by the driver; arity mismatches are rejected.
  Customization customization;
  /// Swarm parameters. `freq_mhz` and `threads` are resolved by the driver
  /// (from the platform and `control`, respectively).
  CrossBranchOptions search;
  /// Candidate objective. Empty uses the kind's default: batch fitness
  /// (== legacy fitness_score) everywhere except kTraffic, whose serving
  /// candidates score with Objective::sla (== legacy sla_fitness_score).
  /// For kTraffic a non-empty objective replaces the *serving* score; the
  /// inner hardware searches keep the batch-fitness default.
  Objective objective;
  /// Progress observer, cancellation token, deadline, thread override.
  RunControl control;

  TrafficSpec traffic;         ///< kTraffic
  int batch_branch = 0;        ///< kMaxBatch: branch whose batch is probed
  int batch_probe_limit = 16;  ///< kMaxBatch: doubling/bisection ceiling
  SweepGrid sweep;             ///< kSweep
  int convergence_runs = 10;   ///< kConvergence
};

/// Result of SearchDriver::run. Only the member matching the spec's kind is
/// populated (kOptimize/kMaxBatch also fill `search` with the winning /
/// last-probed search).
struct SearchOutcome {
  SearchKind kind = SearchKind::kOptimize;
  /// The run was cancelled or hit its deadline; populated members hold the
  /// best results produced up to that point.
  bool cancelled = false;
  SearchResult search;           ///< kOptimize, kMaxBatch
  TrafficSearchResult traffic;   ///< kTraffic
  int max_batch = 0;             ///< kMaxBatch (0: even batch 1 infeasible)
  std::vector<SweepPoint> sweep; ///< kSweep
  ConvergenceStats convergence;  ///< kConvergence
};

/// Runs any SearchSpec against one reorganized model + platform budget.
/// Holds a reference to the model: it must outlive the driver. Stateless
/// otherwise — run() may be called repeatedly (and from different threads,
/// with distinct specs).
class SearchDriver {
 public:
  SearchDriver(const arch::ReorganizedModel& model, arch::Platform platform)
      : model_(model), platform_(std::move(platform)) {}

  StatusOr<SearchOutcome> run(const SearchSpec& spec) const;

  const arch::ReorganizedModel& model() const { return model_; }
  const arch::Platform& platform() const { return platform_; }

 private:
  /// Resolved per-run context shared by every kind: the normalized
  /// customization, driver-adjusted options, the selected strategy's
  /// factory (a fresh instance per inner search), and the run scope.
  struct RunContext {
    const Customization& customization;
    const CrossBranchOptions& options;
    const StrategyFactory& strategy;
    const RunScope& scope;

    /// One inner search under this run's strategy; `opt`/`cust` carry the
    /// per-candidate overrides (probed batch, sweep grid point, ...).
    SearchResult search(const arch::ReorganizedModel& model,
                        const ResourceBudget& budget,
                        const Customization& cust,
                        const CrossBranchOptions& opt) const;
  };

  StatusOr<SearchOutcome> run_optimize(const SearchSpec& spec,
                                       const RunContext& run) const;
  StatusOr<SearchOutcome> run_max_batch(const SearchSpec& spec,
                                        const RunContext& run) const;
  StatusOr<SearchOutcome> run_convergence(const SearchSpec& spec,
                                          const RunContext& run) const;
  StatusOr<SearchOutcome> run_sweep(const SearchSpec& spec,
                                    const RunContext& run) const;
  StatusOr<SearchOutcome> run_traffic(const SearchSpec& spec,
                                      const RunContext& run) const;

  const arch::ReorganizedModel& model_;
  arch::Platform platform_;
};

}  // namespace fcad::dse
