#include "dse/objective.hpp"

#include <algorithm>
#include <cstdio>

#include "util/status.hpp"

namespace fcad::dse {

Objective& Objective::add(std::string name, double weight, TermFn value) {
  FCAD_CHECK_MSG(static_cast<bool>(value), "Objective term '" + name +
                                               "' has no value function");
  terms_.push_back(Term{std::move(name), weight, std::move(value)});
  return *this;
}

double Objective::score(const ObjectiveInput& input) const {
  FCAD_CHECK_MSG(!terms_.empty(), "scoring an empty Objective");
  double score = 0;
  for (const Term& term : terms_) {
    score += term.weight * term.value(input);
  }
  return score;
}

std::string Objective::describe() const {
  std::string out;
  for (const Term& term : terms_) {
    if (!out.empty()) out += " + ";
    if (term.weight != 1.0) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%g*", term.weight);
      out += buffer;
    }
    out += term.name;
  }
  return out.empty() ? "<empty>" : out;
}

Objective::Term Objective::throughput() {
  return {"throughput", 1.0, [](const ObjectiveInput& in) {
            FCAD_CHECK(in.fps.size() == in.priorities.size());
            double sum = 0;
            for (std::size_t j = 0; j < in.fps.size(); ++j) {
              sum += in.fps[j] * in.priorities[j];
            }
            return sum;
          }};
}

Objective::Term Objective::balance() {
  return {"balance", 1.0,
          [](const ObjectiveInput& in) { return -variance(in.fps); }};
}

Objective::Term Objective::feasibility() {
  return {"feasibility", 1.0, [](const ObjectiveInput& in) {
            FCAD_CHECK(in.unmet_targets >= 0);
            return -static_cast<double>(in.unmet_targets);
          }};
}

Objective::Term Objective::min_throughput() {
  return {"min-fps", 1.0,
          [](const ObjectiveInput& in) { return in.min_fps; }};
}

Objective::Term Objective::dsp_cost() {
  return {"dsps", 1.0, [](const ObjectiveInput& in) {
            return -static_cast<double>(in.dsps);
          }};
}

Objective::Term Objective::bram_cost() {
  return {"brams", 1.0, [](const ObjectiveInput& in) {
            return -static_cast<double>(in.brams);
          }};
}

Objective::Term Objective::bandwidth_cost() {
  return {"bandwidth", 1.0,
          [](const ObjectiveInput& in) { return -in.bw_gbps; }};
}

Objective::Term Objective::accuracy_proxy() {
  return {"accuracy", 1.0, [](const ObjectiveInput& in) {
            FCAD_CHECK(in.accuracy_proxy >= 0);
            return -in.accuracy_proxy;
          }};
}

Objective::Term Objective::users_served() {
  return {"users", 1.0, [](const ObjectiveInput& in) {
            FCAD_CHECK(in.users_served >= 0);
            return static_cast<double>(in.users_served);
          }};
}

Objective::Term Objective::latency_headroom(const SlaParams& params) {
  FCAD_CHECK(params.p99_bound_us > 0);
  return {"latency-headroom", 1.0, [params](const ObjectiveInput& in) {
            const double headroom =
                1.0 - in.p99_latency_us / params.p99_bound_us;
            if (headroom >= 0) return std::min(headroom, 0.999);
            return params.over_bound_demerit * headroom;
          }};
}

Objective::Term Objective::sla_violations() {
  return {"violations", 1.0, [](const ObjectiveInput& in) {
            return -in.sla_violation_rate;
          }};
}

Objective Objective::batch_fitness(const FitnessParams& params) {
  // Same accumulation order as fitness_score(): weighted-FPS sum, minus the
  // variance penalty, minus the infeasibility demerits.
  Objective objective;
  Term t = throughput();
  objective.add(t.name, 1.0, t.value);
  t = balance();
  objective.add(t.name, params.alpha, t.value);
  t = feasibility();
  objective.add(t.name, params.infeasible_demerit, t.value);
  return objective;
}

Objective Objective::sla(const SlaParams& params) {
  // Same accumulation order as sla_fitness_score(): users, plus the headroom
  // shaping, minus the violation mass.
  Objective objective;
  Term t = users_served();
  objective.add(t.name, 1.0, t.value);
  t = latency_headroom(params);
  objective.add(t.name, 1.0, t.value);
  t = sla_violations();
  objective.add(t.name, params.violation_weight, t.value);
  return objective;
}

}  // namespace fcad::dse
