#include "dse/search_driver.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "dse/frontier.hpp"
#include "serving/service.hpp"
#include "sim/simulator.hpp"
#include "util/format.hpp"
#include "util/thread_pool.hpp"

namespace fcad::dse {

const char* to_string(SearchKind kind) {
  switch (kind) {
    case SearchKind::kOptimize:
      return "optimize";
    case SearchKind::kTraffic:
      return "traffic";
    case SearchKind::kMaxBatch:
      return "max-batch";
    case SearchKind::kSweep:
      return "sweep";
    case SearchKind::kConvergence:
      return "convergence";
  }
  return "unknown";
}

SearchResult SearchDriver::RunContext::search(
    const arch::ReorganizedModel& model, const ResourceBudget& budget,
    const Customization& cust, const CrossBranchOptions& opt) const {
  const std::unique_ptr<Strategy> instance = strategy();
  return run_strategy(*instance, StrategyContext{model, budget, cust, opt},
                      &scope);
}

StatusOr<SearchOutcome> SearchDriver::run(const SearchSpec& spec) const {
  const RunScope scope(spec.control);

  auto strategy = strategy_factory(spec.strategy);
  if (!strategy.is_ok()) return strategy.status();

  Customization customization = spec.customization;
  if (Status s = customization.normalize(model_.num_branches()); !s.is_ok()) {
    return s;
  }
  CrossBranchOptions options = spec.search;
  options.freq_mhz = platform_.freq_mhz;
  options.threads = scope.threads(spec.search.threads);
  // kTraffic scores *serving* candidates with the spec objective; its inner
  // hardware searches keep the batch-fitness default.
  if (spec.kind != SearchKind::kTraffic) {
    options.objective = spec.objective;
  }

  const RunContext run{customization, options, *strategy, scope};
  switch (spec.kind) {
    case SearchKind::kOptimize:
      return run_optimize(spec, run);
    case SearchKind::kMaxBatch:
      return run_max_batch(spec, run);
    case SearchKind::kConvergence:
      return run_convergence(spec, run);
    case SearchKind::kSweep:
      return run_sweep(spec, run);
    case SearchKind::kTraffic:
      return run_traffic(spec, run);
  }
  return Status::invalid_argument("SearchSpec: unknown kind");
}

StatusOr<SearchOutcome> SearchDriver::run_optimize(
    const SearchSpec& spec, const RunContext& run) const {
  (void)spec;
  SearchOutcome outcome;
  outcome.kind = SearchKind::kOptimize;
  const ResourceBudget budget = ResourceBudget::from_platform(platform_);
  outcome.search =
      run.search(model_, budget, run.customization, run.options);
  outcome.cancelled = outcome.search.stopped_early;
  return outcome;
}

StatusOr<SearchOutcome> SearchDriver::run_max_batch(
    const SearchSpec& spec, const RunContext& run) const {
  if (spec.batch_branch < 0 || spec.batch_branch >= model_.num_branches()) {
    return Status::invalid_argument("SearchSpec.batch_branch: bad index");
  }
  if (spec.batch_probe_limit < 1) {
    return Status::invalid_argument(
        "SearchSpec.batch_probe_limit must be >= 1");
  }
  SearchOutcome outcome;
  outcome.kind = SearchKind::kMaxBatch;
  const ResourceBudget budget = ResourceBudget::from_platform(platform_);

  int probes = 0;
  // Runs one search with `batch` as the probed branch's target. A feasible
  // probe becomes the outcome's winning search (the final winner is always
  // the probe at the reported max_batch: `lo` only ever advances to a
  // just-proven-feasible batch). A probe truncated by cancellation or the
  // deadline can still *prove* feasibility, but an infeasible verdict from
  // one is unreliable — the caller sees `aborted` and we stop probing.
  bool aborted = false;
  auto feasible_at = [&](int batch) {
    Customization cust = run.customization;
    cust.batch_sizes[static_cast<std::size_t>(spec.batch_branch)] = batch;
    CrossBranchOptions opt = run.options;
    opt.progress_label = "max-batch probe b=" + std::to_string(batch);
    SearchResult result = run.search(model_, budget, cust, opt);
    ++probes;
    run.scope.emit({"max-batch", probes, 0, result.fitness});
    outcome.cancelled |= result.stopped_early;
    const bool feasible = result.feasible;
    if (feasible || outcome.search.config.branches.empty()) {
      outcome.search = std::move(result);  // winner, or base diagnostics
    }
    aborted = outcome.cancelled && !feasible;
    return feasible;
  };

  // Exponential probe upward, then bisect the first infeasible gap.
  if (!feasible_at(1)) {
    outcome.max_batch = 0;
    return outcome;
  }
  int lo = 1;  // feasible
  int hi = 1;
  while (hi < spec.batch_probe_limit && !aborted) {
    if (run.scope.should_stop()) {
      outcome.cancelled = true;
      break;
    }
    hi = std::min(spec.batch_probe_limit, hi * 2);
    if (feasible_at(hi)) {
      lo = hi;
    } else {
      break;
    }
  }
  while (hi - lo > 1 && !aborted) {  // lo == hi: feasible to the probe limit
    if (run.scope.should_stop()) {
      outcome.cancelled = true;
      break;
    }
    const int mid = lo + (hi - lo) / 2;
    (feasible_at(mid) ? lo : hi) = mid;
  }
  outcome.max_batch = lo;
  return outcome;
}

StatusOr<SearchOutcome> SearchDriver::run_convergence(
    const SearchSpec& spec, const RunContext& run) const {
  const int runs = spec.convergence_runs;
  if (runs < 1) {
    return Status::invalid_argument(
        "SearchSpec.convergence_runs must be >= 1");
  }
  SearchOutcome outcome;
  outcome.kind = SearchKind::kConvergence;
  ConvergenceStats& stats = outcome.convergence;
  stats.runs = runs;
  stats.min_iterations = 1e18;
  const ResourceBudget budget = ResourceBudget::from_platform(platform_);

  // The independent searches are the outermost (and cheapest-to-split)
  // parallelism axis: each run is pre-seeded here, executed on the pool, and
  // aggregated below in run order.
  util::ThreadPool& pool = util::ThreadPool::shared(run.options.threads);
  const std::vector<SearchResult> results = pool.parallel_map<SearchResult>(
      runs, [&](std::int64_t r) {
        CrossBranchOptions opt = run.options;
        opt.seed = run.options.seed +
                   7919ULL * (static_cast<std::uint64_t>(r) + 1);
        opt.progress_label =
            "convergence run " + std::to_string(r + 1) + "/" +
            std::to_string(runs);
        return run.search(model_, budget, run.customization, opt);
      });

  double min_fitness = 0;
  double max_fitness = 0;
  for (int r = 0; r < runs; ++r) {
    const SearchResult& result = results[static_cast<std::size_t>(r)];
    outcome.cancelled |= result.stopped_early;
    const double iters = result.trace.convergence_iteration;
    stats.mean_iterations += iters;
    stats.min_iterations = std::min(stats.min_iterations, iters);
    stats.max_iterations = std::max(stats.max_iterations, iters);
    stats.mean_seconds += result.seconds;
    stats.mean_fitness += result.fitness;
    if (r == 0) {
      min_fitness = max_fitness = result.fitness;
    } else {
      min_fitness = std::min(min_fitness, result.fitness);
      max_fitness = std::max(max_fitness, result.fitness);
    }
  }
  stats.mean_iterations /= runs;
  stats.mean_seconds /= runs;
  stats.mean_fitness /= runs;
  stats.fitness_spread = max_fitness - min_fitness;
  run.scope.emit({"convergence", runs, runs, stats.mean_fitness});
  return outcome;
}

StatusOr<SearchOutcome> SearchDriver::run_sweep(
    const SearchSpec& spec, const RunContext& run) const {
  const bool datapath_grid = !spec.sweep.datapaths.empty();
  if ((!datapath_grid && spec.sweep.quantizations.empty()) ||
      spec.sweep.frequencies_mhz.empty() || spec.sweep.batch_scales.empty()) {
    return Status::invalid_argument("SearchSpec.sweep: empty grid");
  }
  for (double f : spec.sweep.frequencies_mhz) {
    if (f <= 0) {
      return Status::invalid_argument("SearchSpec.sweep: bad frequency");
    }
  }
  for (int s : spec.sweep.batch_scales) {
    if (s < 1) {
      return Status::invalid_argument(
          "SearchSpec.sweep: batch scale must be >= 1");
    }
  }

  // Resolve the precision axis up front: either the explicit datapath names
  // or the legacy quantization list as "pipelined-<Q>" (which keeps legacy
  // grids bit-identical to the pre-datapath sweep).
  std::vector<arch::Datapath> axis;
  if (datapath_grid) {
    axis.reserve(spec.sweep.datapaths.size());
    for (const std::string& name : spec.sweep.datapaths) {
      auto dp = arch::datapath_from_string(name);
      if (!dp.is_ok()) {
        return Status::invalid_argument("SearchSpec.sweep: " +
                                        dp.status().message());
      }
      axis.push_back(*dp);
    }
  } else {
    axis.reserve(spec.sweep.quantizations.size());
    for (nn::DataType q : spec.sweep.quantizations) {
      axis.push_back(arch::datapath_from_quantization(q));
    }
  }

  SearchOutcome outcome;
  outcome.kind = SearchKind::kSweep;

  // Grid points are independent searches: run them across the pool and
  // collect into grid-ordered slots.
  std::vector<SweepPoint> grid;
  for (const arch::Datapath& dp : axis) {
    for (double freq : spec.sweep.frequencies_mhz) {
      for (int scale : spec.sweep.batch_scales) {
        SweepPoint point;
        point.datapath = arch::datapath_to_string(dp);
        point.quantization = dp.ww;
        point.freq_mhz = freq;
        point.batch_scale = scale;
        grid.push_back(point);
      }
    }
  }

  util::ThreadPool& pool = util::ThreadPool::shared(run.options.threads);
  std::vector<SearchResult> results = pool.parallel_map<SearchResult>(
      static_cast<std::int64_t>(grid.size()), [&](std::int64_t i) {
        const SweepPoint& point = grid[static_cast<std::size_t>(i)];
        Customization cust = run.customization;
        // normalize() already canonicalized cust.datapath from the driver's
        // customization, so the per-point datapath must be set explicitly
        // (quantization rides along for legacy consumers).
        cust.datapath = point.datapath;
        cust.quantization = point.quantization;
        for (int& b : cust.batch_sizes) b *= point.batch_scale;
        CrossBranchOptions opt = run.options;
        opt.freq_mhz = point.freq_mhz;
        opt.progress_label =
            "sweep " + point.datapath + "@" +
            format_fixed(point.freq_mhz, 0) + "MHz" +
            (point.batch_scale > 1
                 ? " x" + std::to_string(point.batch_scale)
                 : "");
        arch::Platform platform = platform_;
        platform.freq_mhz = point.freq_mhz;
        return run.search(model_, ResourceBudget::from_platform(platform),
                          cust, opt);
      });

  std::vector<SweepPoint>& points = outcome.sweep;
  points = std::move(grid);
  for (std::size_t i = 0; i < points.size(); ++i) {
    outcome.cancelled |= results[i].stopped_early;
    points[i].result = std::move(results[i]);
  }

  // Default frontier: maximize min-FPS against the grid's natural cost axis.
  // Legacy quantization grids keep (min FPS up, DSPs down); datapath grids
  // trade min FPS against the precision penalty instead — LUT-fabric int4
  // consumes zero DSPs and would otherwise dominate every other datapath.
  // Infeasible points never make the frontier. Callers wanting other axes
  // re-extract from the outcome with any Objective term pair
  // (dse/frontier.hpp).
  const std::vector<FrontierPoint> frontier = extract_frontier(
      outcome, Objective::min_throughput(),
      datapath_grid ? Objective::accuracy_proxy() : Objective::dsp_cost());
  for (const FrontierPoint& point : frontier) {
    points[point.index].pareto_optimal = point.on_frontier;
  }
  return outcome;
}

namespace {

/// Replays the traffic spec at `users` concurrent streams on `service`.
/// `workload.branches` is derived from the service model here — the one
/// place it is set. The scope makes huge replays interruptible (and streams
/// partial percentile estimates as progress).
StatusOr<serving::ServingStats> replay_traffic(
    const serving::ServiceModel& service, const TrafficSpec& traffic,
    int users, const RunScope* scope) {
  serving::WorkloadOptions workload = traffic.workload;
  workload.users = users;
  workload.branches = service.num_branches();
  auto requests = serving::generate_workload(workload);
  if (!requests.is_ok()) return requests.status();
  serving::ServeSpec serve;
  serve.fleet = traffic.fleet;  // SLA bound rides fleet.sla_bound_us here
  return serving::simulate_fleet(service, *requests, serve, scope);
}

}  // namespace

StatusOr<SearchOutcome> SearchDriver::run_traffic(
    const SearchSpec& spec, const RunContext& run) const {
  const TrafficSpec& traffic = spec.traffic;
  if (traffic.workload.users < 1) {
    return Status::invalid_argument(
        "TrafficSpec.workload.users must be >= 1");
  }
  if (traffic.max_batch < 1) {
    return Status::invalid_argument("TrafficSpec.max_batch must be >= 1");
  }
  // The request fan-out per frame is a property of the model, not an input;
  // reject caller-set values instead of silently overwriting them (the
  // legacy TrafficProfile footgun).
  if (traffic.workload.branches != serving::WorkloadOptions{}.branches) {
    return Status::invalid_argument(
        "TrafficSpec.workload.branches is derived from the model (got " +
        std::to_string(traffic.workload.branches) +
        "); leave it at its default");
  }
  // The p99 bound lives in fleet.sla_bound_us alone; the SlaParams copy used
  // for scoring must not disagree with it.
  if (traffic.sla.p99_bound_us != SlaParams{}.p99_bound_us &&
      traffic.sla.p99_bound_us != traffic.fleet.sla_bound_us) {
    return Status::invalid_argument(
        "TrafficSpec.sla.p99_bound_us (" +
        std::to_string(traffic.sla.p99_bound_us) +
        ") disagrees with fleet.sla_bound_us (" +
        std::to_string(traffic.fleet.sla_bound_us) +
        "); set the bound once, in fleet.sla_bound_us");
  }
  SlaParams sla = traffic.sla;
  sla.p99_bound_us = traffic.fleet.sla_bound_us;
  const Objective objective =
      spec.objective.empty() ? Objective::sla(sla) : spec.objective;

  SearchOutcome outcome;
  outcome.kind = SearchKind::kTraffic;
  const ResourceBudget budget = ResourceBudget::from_platform(platform_);

  // Probe doubling batch multipliers; each candidate gets its own hardware
  // search, then a serving replay of the traffic spec. Candidates are
  // independent, so they are scored in parallel and reduced in multiplier
  // order below — identical outcome to a sequential probe.
  std::vector<int> multipliers;
  for (int mult = 1; mult <= traffic.max_batch; mult *= 2) {
    multipliers.push_back(mult);
  }

  /// Outcome of one batch-multiplier candidate, reduced in probe order.
  struct Candidate {
    bool produced = false;     ///< scored end to end
    bool hard_failed = false;  ///< replay error that aborts the whole search
    Status error;              ///< skip reason or hard error
    TrafficSearchResult result;
  };

  auto score_candidate = [&](int mult) -> Candidate {
    Candidate out;
    if (run.scope.should_stop()) {
      out.error = Status::cancelled("traffic candidate skipped: cancelled");
      return out;
    }
    Customization cust = run.customization;
    for (int& b : cust.batch_sizes) b *= mult;
    CrossBranchOptions opt = run.options;
    opt.progress_label = "traffic x" + std::to_string(mult);
    SearchResult search = run.search(model_, budget, cust, opt);

    serving::ServiceModel service;
    if (traffic.use_simulator) {
      const sim::SimResult simulated =
          sim::simulate(model_, search.config, platform_);
      service = serving::service_model_from_sim(search.config, simulated);
    } else {
      service = serving::service_model_from_eval(search.config, search.eval);
    }

    // A cancelled replay skips the candidate (the run winds down with its
    // best-so-far winner); any other replay error aborts the whole search.
    auto fail = [&](Status status) {
      out.hard_failed = status.code() != StatusCode::kCancelled;
      out.error = std::move(status);
    };
    auto stats_at = [&](int users) {
      return replay_traffic(service, traffic, users, &run.scope);
    };
    auto first = stats_at(traffic.workload.users);
    if (!first.is_ok()) {
      fail(first.status());
      return out;
    }
    serving::ServingStats stats = std::move(*first);
    int users_served = stats.sla_met ? traffic.workload.users : 0;

    // Trace-driven workloads ignore the user count (the offered load IS the
    // trace; the count only relabels requests), so scaling it would inflate
    // users_served without changing anything the SLA sees.
    const bool scalable =
        traffic.workload.process != serving::ArrivalProcess::kTrace;

    // Bisects (lo meets the SLA, hi does not) to the largest SLA-meeting
    // user count, leaving that count's replay in `best`.
    auto bisect_users = [&](int lo, int hi,
                            serving::ServingStats& best) -> StatusOr<int> {
      while (hi - lo > 1) {
        const int mid = lo + (hi - lo) / 2;
        auto probe = stats_at(mid);
        if (!probe.is_ok()) return probe.status();
        if (probe->sla_met) {
          lo = mid;
          best = std::move(*probe);
        } else {
          hi = mid;
        }
      }
      return lo;
    };

    if (scalable && stats.sla_met &&
        traffic.max_users > traffic.workload.users) {
      // Maximize the served user count: double to the first SLA miss, then
      // bisect the gap.
      int lo = traffic.workload.users;
      int hi = lo;
      while (hi < traffic.max_users) {
        hi = std::min(traffic.max_users, hi * 2);
        auto probe = stats_at(hi);
        if (!probe.is_ok()) {
          fail(probe.status());
          return out;
        }
        if (probe->sla_met) {
          lo = hi;
          stats = std::move(*probe);
        } else {
          break;
        }
      }
      auto served = bisect_users(lo, hi, stats);
      if (!served.is_ok()) {
        fail(served.status());
        return out;
      }
      users_served = *served;
    } else if (scalable && !stats.sla_met && traffic.workload.users > 1) {
      // Over capacity at the requested count: find the largest user count
      // this candidate can still serve within the bound.
      int hi = traffic.workload.users;
      int lo = 0;
      serving::ServingStats lo_stats;
      for (int probe_users = hi / 2; probe_users >= 1; probe_users /= 2) {
        auto probe = stats_at(probe_users);
        if (!probe.is_ok()) {
          fail(probe.status());
          return out;
        }
        if (probe->sla_met) {
          lo = probe_users;
          lo_stats = std::move(*probe);
          break;
        }
        hi = probe_users;
      }
      if (lo >= 1) {
        auto served = bisect_users(lo, hi, lo_stats);
        if (!served.is_ok()) {
          fail(served.status());
          return out;
        }
        users_served = *served;
        stats = std::move(lo_stats);
      }
      // lo == 0: not even one user fits; keep the diagnostic stats at the
      // requested count.
    }

    ObjectiveInput input;
    input.fps.reserve(search.eval.branches.size());
    for (const arch::BranchEval& be : search.eval.branches) {
      input.fps.push_back(be.fps);
    }
    input.priorities = cust.priorities;
    input.min_fps = search.eval.min_fps;
    input.dsps = search.eval.dsps;
    input.brams = search.eval.brams;
    input.bw_gbps = search.eval.bw_gbps;
    input.accuracy_proxy = search.eval.accuracy_proxy;
    input.has_serving = true;
    input.users_served = users_served;
    input.p99_latency_us = stats.latency.p99;
    input.sla_violation_rate = stats.sla_violation_rate;
    out.result.sla_fitness = objective.score(input);
    out.result.search = std::move(search);
    out.result.batch_sizes = cust.batch_sizes;
    out.result.users_served = users_served;
    out.result.sla_met = stats.sla_met;
    out.result.stats = std::move(stats);
    out.produced = true;
    run.scope.emit({"traffic x" + std::to_string(mult), mult,
                    traffic.max_batch, out.result.sla_fitness});
    return out;
  };

  util::ThreadPool& pool = util::ThreadPool::shared(run.options.threads);
  std::vector<Candidate> candidates = pool.parallel_map<Candidate>(
      static_cast<std::int64_t>(multipliers.size()), [&](std::int64_t i) {
        return score_candidate(multipliers[static_cast<std::size_t>(i)]);
      });

  bool have_best = false;
  Status last_error = Status::infeasible(
      "traffic search: no candidate produced a design");
  for (Candidate& candidate : candidates) {
    if (candidate.hard_failed) return candidate.error;
    if (!candidate.produced) {
      last_error = candidate.error;
      continue;
    }
    if (!have_best ||
        candidate.result.sla_fitness > outcome.traffic.sla_fitness) {
      outcome.traffic = std::move(candidate.result);
      have_best = true;
    }
  }
  outcome.cancelled = run.scope.should_stop();
  if (!have_best && !outcome.cancelled) return last_error;
  return outcome;
}

}  // namespace fcad::dse
