// The pluggable cross-branch search strategy layer. Every search algorithm
// — the paper's particle swarm (Algorithm 1), pure random sampling, the
// parallel annealing ensemble, or a user-registered custom strategy — is a
// dse::Strategy driven by one shared round loop (run_strategy):
//
//   begin(ctx)                       once, seed RNG / build the population
//   repeat up to max_rounds(ctx):
//     propose(ctx, round)            candidate resource distributions
//     [framework] evaluate           parallel, fitness-memoized, bit-stable
//     accept(ctx, round, ...)        update internal state + the incumbent
//   finish(ctx, result)              post-loop trace fixups
//
// The framework owns everything a strategy should not reimplement: the
// thread-pool fan-out over candidates, the per-search FitnessCache, the
// RunControl contract (cancellation/deadline polling between rounds, one
// ProgressEvent per round), evaluation accounting, the final quantized
// re-evaluation of the winner, and wall-clock timing. Candidate evaluation
// order never affects results: evaluations are pure functions of the
// proposed distribution and accept() sees them in proposal order.
//
// Strategies register by name (register_strategy) and are selected with
// SearchSpec::strategy, so every SearchKind — optimize, traffic, max-batch,
// sweep, convergence — can run under any registered strategy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dse/cross_branch.hpp"
#include "dse/run_control.hpp"

namespace fcad::dse {

/// Everything one strategy run sees. The customization is already
/// normalized; options carry the evaluation budget (iterations x population
/// candidate evaluations) every strategy must respect so comparisons stay
/// compute-fair.
struct StrategyContext {
  const arch::ReorganizedModel& model;
  const ResourceBudget& budget;
  const Customization& customization;
  const CrossBranchOptions& options;
};

/// One search algorithm over resource distributions. Instances are stateful
/// and single-run: the registry hands out a fresh instance per search, so
/// implementations are free to keep RNGs and populations as members without
/// synchronization.
class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Resets state for a fresh run (RNG from ctx.options.seed, population).
  virtual void begin(const StrategyContext& ctx) = 0;

  /// Upper bound on propose/accept rounds for this context's budget.
  virtual int max_rounds(const StrategyContext& ctx) const = 0;

  /// Candidate distributions for `round`. Returning an empty batch ends the
  /// search early (budget exhausted before max_rounds).
  virtual std::vector<ResourceDistribution> propose(const StrategyContext& ctx,
                                                    int round) = 0;

  /// The scored batch, in proposal order. Implementations update internal
  /// state and fold improvements into `result` (config/eval/distribution/
  /// fitness/feasible and the trace fields the strategy owns).
  virtual void accept(const StrategyContext& ctx, int round,
                      const std::vector<ResourceDistribution>& proposed,
                      const std::vector<DistributionEval>& evals,
                      SearchResult& result) = 0;

  /// Post-loop trace fixup (the annealing ensemble rebuilds its
  /// per-iteration curve here). Default: no-op.
  virtual void finish(const StrategyContext& ctx, SearchResult& result);
};

/// Runs `strategy` under the shared round loop. When `scope` is set, the
/// loop polls it between rounds (cooperative cancellation / deadline) and
/// emits one ProgressEvent per round.
SearchResult run_strategy(Strategy& strategy, const StrategyContext& ctx,
                          const RunScope* scope = nullptr);

// ---- registry -------------------------------------------------------------

using StrategyFactory = std::function<std::unique_ptr<Strategy>()>;

/// The built-in strategy names: "particle-swarm" (Algorithm 1), "random",
/// "annealing". SearchSpec::strategy defaults to kDefaultStrategy.
inline constexpr const char* kDefaultStrategy = "particle-swarm";

/// Registers a strategy under `name`; fails on duplicates or empty names.
/// Thread-safe. Registered strategies are selectable by every SearchKind via
/// SearchSpec::strategy.
Status register_strategy(const std::string& name, StrategyFactory factory);

/// Factory lookup; "" resolves to kDefaultStrategy. kNotFound lists the
/// registered names so CLI typos are self-explanatory.
StatusOr<StrategyFactory> strategy_factory(const std::string& name);

/// Registered names, sorted (the built-ins plus any custom registrations).
std::vector<std::string> registered_strategy_names();

/// Convenience: resolve `name` and run it once under the shared loop.
StatusOr<SearchResult> run_search_strategy(const std::string& name,
                                           const arch::ReorganizedModel& model,
                                           const ResourceBudget& budget,
                                           const Customization& customization,
                                           const CrossBranchOptions& options,
                                           const RunScope* scope = nullptr);

}  // namespace fcad::dse
