#include "dse/fitness.hpp"

#include "util/status.hpp"

namespace fcad::dse {

double variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  return var / static_cast<double>(values.size());
}

double fitness_score(const std::vector<double>& fps,
                     const std::vector<double>& priorities, int unmet_targets,
                     const FitnessParams& params) {
  FCAD_CHECK(fps.size() == priorities.size());
  FCAD_CHECK(unmet_targets >= 0);
  double score = 0;
  for (std::size_t j = 0; j < fps.size(); ++j) {
    score += fps[j] * priorities[j];
  }
  score -= params.alpha * variance(fps);
  score -= params.infeasible_demerit * unmet_targets;
  return score;
}

}  // namespace fcad::dse
