#include "dse/fitness.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace fcad::dse {

double variance(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double mean = 0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  return var / static_cast<double>(values.size());
}

double fitness_score(const std::vector<double>& fps,
                     const std::vector<double>& priorities, int unmet_targets,
                     const FitnessParams& params) {
  FCAD_CHECK(fps.size() == priorities.size());
  FCAD_CHECK(unmet_targets >= 0);
  double score = 0;
  for (std::size_t j = 0; j < fps.size(); ++j) {
    score += fps[j] * priorities[j];
  }
  score -= params.alpha * variance(fps);
  score -= params.infeasible_demerit * unmet_targets;
  return score;
}

double sla_fitness_score(int users_served, double p99_latency_us,
                         double sla_violation_rate, const SlaParams& params) {
  FCAD_CHECK(users_served >= 0);
  FCAD_CHECK(params.p99_bound_us > 0);
  double score = static_cast<double>(users_served);
  const double headroom = 1.0 - p99_latency_us / params.p99_bound_us;
  if (headroom >= 0) {
    // Within the bound: a bonus in [0, 1) so latency only breaks ties
    // between configs serving the same number of users.
    score += std::min(headroom, 0.999);
  } else {
    score += params.over_bound_demerit * headroom;  // headroom < 0
  }
  score -= params.violation_weight * sla_violation_rate;
  return score;
}

}  // namespace fcad::dse
