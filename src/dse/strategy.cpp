#include "dse/strategy.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "dse/fitness_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fcad::dse {
namespace {

ResourceDistribution random_distribution(Rng& rng, int branches) {
  ResourceDistribution rd;
  rd.c_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.m_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.bw_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  return rd;
}

/// Projects a fraction vector back onto the simplex (non-negative floor, sum
/// of 1) after an evolution/neighbor move.
void renormalize(std::vector<double>& frac) {
  constexpr double kFloor = 0.01;
  double sum = 0;
  for (double& f : frac) {
    f = std::max(f, kFloor);
    sum += f;
  }
  for (double& f : frac) f /= sum;
}

/// Records a candidate into `result` if it improves the incumbent.
void consider(const DistributionEval& ce, const ResourceDistribution& rd,
              int iteration, SearchResult& result) {
  if (ce.fitness > result.fitness) {
    result.fitness = ce.fitness;
    result.config = ce.config;
    result.eval = ce.eval;
    result.distribution = rd;
    result.feasible = ce.feasible;
    result.trace.convergence_iteration = iteration;
  }
}

// ---- particle swarm (Algorithm 1) -----------------------------------------

/// One PSO-style move of `frac` toward the local and global bests by a
/// random distance, plus uniform jitter (Algorithm 1, line 16).
void evolve(std::vector<double>& frac, const std::vector<double>& local_best,
            const std::vector<double>& global_best,
            const CrossBranchOptions& opt, Rng& rng) {
  const double r1 = rng.next_double() * opt.w_local;
  const double r2 = rng.next_double() * opt.w_global;
  for (std::size_t j = 0; j < frac.size(); ++j) {
    frac[j] += r1 * (local_best[j] - frac[j]) +
               r2 * (global_best[j] - frac[j]) +
               rng.next_range(-opt.jitter, opt.jitter);
  }
  renormalize(frac);
}

/// Algorithm 1: per round, every particle is scored and then evolved a
/// random distance toward its local best and the global best. Round r
/// proposes the swarm positions after r evolution steps, so the RNG draw
/// order (init draws, then one evolve pass per subsequent round) is
/// identical to the classic single-function swarm loop — results are
/// bit-for-bit the same.
class ParticleSwarmStrategy : public Strategy {
 public:
  void begin(const StrategyContext& ctx) override {
    const CrossBranchOptions& opt = ctx.options;
    rng_ = Rng(opt.seed);
    swarm_.assign(static_cast<std::size_t>(opt.population), Particle{});

    // Line 4: initial population RD^0 — mostly random, seeded with the
    // demand-proportional warm start plus jittered variants of it (about a
    // tenth of the swarm).
    const ResourceDistribution demand =
        demand_proportional_distribution(ctx.model, ctx.customization);
    const int warm = std::max(1, opt.population / 10);
    for (int i = 0; i < opt.population; ++i) {
      Particle& p = swarm_[static_cast<std::size_t>(i)];
      if (i < warm) {
        p.rd = demand;
        if (i > 0) {  // jittered copies around the warm start
          for (auto* frac : {&p.rd.c_frac, &p.rd.m_frac, &p.rd.bw_frac}) {
            for (double& f : *frac) f += rng_.next_range(-0.05, 0.05);
            renormalize(*frac);
          }
        }
      } else {
        p.rd = random_distribution(rng_, ctx.model.num_branches());
      }
      p.best_rd = p.rd;
    }
  }

  int max_rounds(const StrategyContext& ctx) const override {
    return ctx.options.iterations;
  }

  std::vector<ResourceDistribution> propose(const StrategyContext& ctx,
                                            int round) override {
    if (round > 0) {
      // Line 16: evolve every particle toward its bests.
      for (Particle& p : swarm_) {
        evolve(p.rd.c_frac, p.best_rd.c_frac, global_best_.c_frac,
               ctx.options, rng_);
        evolve(p.rd.m_frac, p.best_rd.m_frac, global_best_.m_frac,
               ctx.options, rng_);
        evolve(p.rd.bw_frac, p.best_rd.bw_frac, global_best_.bw_frac,
               ctx.options, rng_);
      }
    }
    std::vector<ResourceDistribution> batch;
    batch.reserve(swarm_.size());
    for (const Particle& p : swarm_) batch.push_back(p.rd);
    return batch;
  }

  void accept(const StrategyContext&, int round,
              const std::vector<ResourceDistribution>&,
              const std::vector<DistributionEval>& evals,
              SearchResult& result) override {
    // Line 13: update local and global bests, walking the batch in particle
    // order so the outcome is bit-identical to a serial sweep.
    for (std::size_t i = 0; i < swarm_.size(); ++i) {
      Particle& p = swarm_[i];
      const DistributionEval& ce = evals[i];
      if (ce.fitness > p.best_fitness) {
        p.best_fitness = ce.fitness;
        p.best_rd = p.rd;
      }
      if (ce.fitness > result.fitness) {
        consider(ce, p.rd, round + 1, result);
        global_best_ = p.rd;
      }
    }
    result.trace.best_fitness.push_back(result.fitness);
  }

 private:
  struct Particle {
    ResourceDistribution rd;
    ResourceDistribution best_rd;  ///< rd_i^best
    double best_fitness = -1e300;
  };

  Rng rng_{0};
  std::vector<Particle> swarm_;
  ResourceDistribution global_best_;  ///< rd_global^best
};

// ---- random sampling -------------------------------------------------------

/// Pure random sampling of resource distributions. Candidate streams are
/// forked from the master RNG per round, so the draw order cannot depend on
/// evaluation scheduling.
class RandomSamplingStrategy : public Strategy {
 public:
  void begin(const StrategyContext& ctx) override {
    rng_ = Rng(ctx.options.seed);
  }

  int max_rounds(const StrategyContext& ctx) const override {
    return ctx.options.iterations;
  }

  std::vector<ResourceDistribution> propose(const StrategyContext& ctx,
                                            int) override {
    const auto population = static_cast<std::size_t>(ctx.options.population);
    std::vector<ResourceDistribution> batch;
    batch.reserve(population);
    for (std::size_t i = 0; i < population; ++i) {
      Rng stream = rng_.fork(static_cast<std::uint64_t>(i));
      batch.push_back(random_distribution(stream, ctx.model.num_branches()));
    }
    return batch;
  }

  void accept(const StrategyContext&, int round,
              const std::vector<ResourceDistribution>& proposed,
              const std::vector<DistributionEval>& evals,
              SearchResult& result) override {
    for (std::size_t i = 0; i < proposed.size(); ++i) {
      consider(evals[i], proposed[i], round + 1, result);
    }
    result.trace.best_fitness.push_back(result.fitness);
  }

 private:
  Rng rng_{0};
};

// ---- simulated annealing ---------------------------------------------------

/// Parallel multi-start annealing: kAnnealingChains independent chains split
/// the iterations x population evaluation budget, each on its own RNG stream
/// forked from the seed (SplitMix64 fork, so chains are decorrelated). Chain
/// 0 starts from the demand-proportional point — the head start a single
/// chain would enjoy — and the rest from random draws. Chains advance in
/// lock-step: each round proposes one neighbor per live chain, so the
/// framework evaluates the ensemble's step in parallel while every chain's
/// private RNG sequence stays identical to a serial walk.
class AnnealingStrategy : public Strategy {
 public:
  /// Chains of the ensemble. Fixed (never derived from the pool size) so
  /// results are identical for any thread count.
  static constexpr int kChains = 8;

  void begin(const StrategyContext& ctx) override {
    const CrossBranchOptions& opt = ctx.options;
    Rng root(opt.seed);
    const long total_steps = static_cast<long>(opt.iterations) * opt.population;
    const int chains = static_cast<int>(std::min<long>(kChains, total_steps));
    chains_.assign(static_cast<std::size_t>(chains), Chain{});
    max_rounds_ = 0;
    for (int c = 0; c < chains; ++c) {
      Chain& chain = chains_[static_cast<std::size_t>(c)];
      chain.rng = root.fork(static_cast<std::uint64_t>(c));
      chain.steps = total_steps / chains + (c < total_steps % chains ? 1 : 0);
      max_rounds_ = std::max(max_rounds_, static_cast<int>(chain.steps));
      chain.current =
          c == 0 ? demand_proportional_distribution(ctx.model,
                                                    ctx.customization)
                 : random_distribution(chain.rng, ctx.model.num_branches());
      chain.best_by_step.reserve(static_cast<std::size_t>(chain.steps));
    }
  }

  int max_rounds(const StrategyContext&) const override { return max_rounds_; }

  std::vector<ResourceDistribution> propose(const StrategyContext&,
                                            int round) override {
    std::vector<ResourceDistribution> batch;
    batch.reserve(chains_.size());
    for (Chain& chain : chains_) {
      if (round >= chain.steps) continue;
      if (round == 0) {
        batch.push_back(chain.current);
        continue;
      }
      // Geometric temperature schedule in fitness units, adapted to the
      // start point's magnitude; the move radius shrinks as the chain cools.
      const double progress =
          chain.steps > 2 ? static_cast<double>(round - 1) /
                                static_cast<double>(chain.steps - 2)
                          : 1.0;
      const double radius = 0.02 + 0.18 * (1.0 - progress);
      ResourceDistribution neighbor = chain.current;
      for (auto* frac :
           {&neighbor.c_frac, &neighbor.m_frac, &neighbor.bw_frac}) {
        for (double& f : *frac) f += chain.rng.next_range(-radius, radius);
        renormalize(*frac);
      }
      chain.proposed = neighbor;
      batch.push_back(std::move(neighbor));
    }
    return batch;
  }

  void accept(const StrategyContext&, int round,
              const std::vector<ResourceDistribution>& proposed,
              const std::vector<DistributionEval>& evals,
              SearchResult& result) override {
    std::size_t slot = 0;
    for (Chain& chain : chains_) {
      if (round >= chain.steps) continue;
      const DistributionEval& ce = evals[slot];
      consider(ce, proposed[slot], 1, result);
      if (ce.fitness > chain.best_fitness) chain.best_fitness = ce.fitness;
      chain.best_by_step.push_back(chain.best_fitness);
      if (round == 0) {
        chain.current_fitness = ce.fitness;
        chain.t_start = std::max(1.0, std::fabs(ce.fitness) * 0.1);
      } else {
        const double progress =
            chain.steps > 2 ? static_cast<double>(round - 1) /
                                  static_cast<double>(chain.steps - 2)
                            : 1.0;
        const double t_end = chain.t_start * 1e-3;
        const double temperature =
            chain.t_start * std::pow(t_end / chain.t_start, progress);
        const double delta = ce.fitness - chain.current_fitness;
        if (delta >= 0 ||
            chain.rng.next_double() <
                std::exp(delta / std::max(temperature, 1e-12))) {
          chain.current = chain.proposed;
          chain.current_fitness = ce.fitness;
        }
      }
      ++slot;
    }
  }

  void finish(const StrategyContext& ctx, SearchResult& result) override {
    // Rebuild the per-iteration trace from the chains' per-step curves:
    // after iteration i the ensemble has spent (i+1)/iterations of each
    // chain's budget.
    const int iterations = ctx.options.iterations;
    result.trace.best_fitness.assign(static_cast<std::size_t>(iterations),
                                     -1e300);
    for (int it = 0; it < iterations; ++it) {
      double best = -1e300;
      for (const Chain& chain : chains_) {
        const auto steps = static_cast<long>(chain.best_by_step.size());
        if (steps == 0) continue;
        long cutoff = (static_cast<long>(it + 1) * steps) / iterations - 1;
        cutoff = std::clamp<long>(cutoff, 0, steps - 1);
        best = std::max(best,
                        chain.best_by_step[static_cast<std::size_t>(cutoff)]);
      }
      result.trace.best_fitness[static_cast<std::size_t>(it)] =
          it > 0
              ? std::max(best, result.trace.best_fitness[static_cast<
                                   std::size_t>(it - 1)])
              : best;
    }
    for (int it = 0; it < iterations; ++it) {
      if (result.trace.best_fitness[static_cast<std::size_t>(it)] ==
          result.fitness) {
        result.trace.convergence_iteration = it + 1;
        break;
      }
    }
  }

 private:
  struct Chain {
    Rng rng{0};
    long steps = 0;
    ResourceDistribution current;
    ResourceDistribution proposed;
    double current_fitness = 0;
    double best_fitness = -1e300;  ///< chain-local incumbent
    double t_start = 1.0;
    std::vector<double> best_by_step;  ///< best-so-far after each evaluation
  };

  std::vector<Chain> chains_;
  int max_rounds_ = 0;
};

// ---- registry --------------------------------------------------------------

struct Registry {
  std::mutex mutex;
  std::map<std::string, StrategyFactory> factories;
};

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry();
    r->factories.emplace("particle-swarm", [] {
      return std::make_unique<ParticleSwarmStrategy>();
    });
    r->factories.emplace("random", [] {
      return std::make_unique<RandomSamplingStrategy>();
    });
    r->factories.emplace("annealing", [] {
      return std::make_unique<AnnealingStrategy>();
    });
    return r;
  }();
  return *instance;
}

}  // namespace

void Strategy::finish(const StrategyContext&, SearchResult&) {}

SearchResult run_strategy(Strategy& strategy, const StrategyContext& ctx,
                          const RunScope* scope) {
  const CrossBranchOptions& options = ctx.options;
  FCAD_CHECK(options.population >= 1 && options.iterations >= 1);
  FCAD_CHECK(ctx.customization.batch_sizes.size() ==
             static_cast<std::size_t>(ctx.model.num_branches()));
  const auto t0 = std::chrono::steady_clock::now();
  util::ThreadPool& pool = util::ThreadPool::shared(options.threads);
  FitnessCache cache;

  SearchResult result;
  result.fitness = -1e300;

  // Wall-clock DSE lane keyed by the structural worker index — nested
  // searches issued from pool workers trace onto their own lanes.
  const int worker = util::ThreadPool::current_worker();
  const obs::LaneId dse_lane{obs::kDsePid, worker};
  obs::Tracer* const tracer = obs::tracer();
  if (tracer != nullptr) {
    tracer->name_lane(dse_lane, "dse (wall clock)",
                      worker == 0 ? "driver"
                                  : "worker " + std::to_string(worker));
  }
  int rounds_run = 0;

  strategy.begin(ctx);
  const int rounds = strategy.max_rounds(ctx);
  for (int round = 0; round < rounds; ++round) {
    if (scope != nullptr && scope->should_stop()) {
      result.stopped_early = true;
      break;
    }
    const obs::WallSpan round_span(
        tracer, dse_lane,
        options.progress_label + " round " + std::to_string(round + 1),
        "dse");
    ++rounds_run;
    const std::vector<ResourceDistribution> proposed =
        strategy.propose(ctx, round);
    if (proposed.empty()) break;

    // Evaluation is a pure function of the proposed rd, so the batch fans
    // out across the pool; accept() walks the results in proposal order,
    // keeping the outcome bit-identical to a serial sweep.
    std::vector<SearchTrace> local_traces(proposed.size());
    const std::vector<DistributionEval> evals =
        pool.parallel_map<DistributionEval>(
            static_cast<std::int64_t>(proposed.size()), [&](std::int64_t i) {
              const auto idx = static_cast<std::size_t>(i);
              return evaluate_distribution(ctx.model, ctx.budget,
                                           proposed[idx], ctx.customization,
                                           options, local_traces[idx], &cache);
            });
    for (const SearchTrace& local : local_traces) {
      result.trace.evaluations += local.evaluations;
    }
    strategy.accept(ctx, round, proposed, evals, result);
    FCAD_LOG(kInfo) << options.progress_label << " round " << (round + 1)
                    << "/" << rounds << " best fitness " << result.fitness;
    if (scope != nullptr) {
      scope->emit(
          {options.progress_label, round + 1, rounds, result.fitness});
    }
  }
  strategy.finish(ctx, result);
  result.trace.cache_hits = cache.hits();
  result.trace.cache_misses = cache.misses();
  {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    reg.counter("dse.search.rounds").add(rounds_run);
    reg.counter("dse.search.evaluations").add(result.trace.evaluations);
    if (obs::metrics_collection()) {
      reg.gauge("dse.search.best_fitness").set(result.fitness);
    }
  }

  // Report the winner under quantized evaluation — what the generated RTL
  // would actually do. (Divisor-exact configs make this a no-op; non-divisor
  // factors would surface their ceil waste here.)
  if (!result.config.branches.empty()) {
    result.eval = arch::evaluate(ctx.model, result.config,
                                 arch::EvalMode::kQuantized);
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

Status register_strategy(const std::string& name, StrategyFactory factory) {
  if (name.empty()) {
    return Status::invalid_argument("register_strategy: empty name");
  }
  if (!factory) {
    return Status::invalid_argument("register_strategy: null factory for '" +
                                    name + "'");
  }
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  if (!reg.factories.emplace(name, std::move(factory)).second) {
    return Status::invalid_argument("register_strategy: '" + name +
                                    "' is already registered");
  }
  return Status::ok();
}

StatusOr<StrategyFactory> strategy_factory(const std::string& name) {
  const std::string& resolved = name.empty() ? kDefaultStrategy : name;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.factories.find(resolved);
  if (it == reg.factories.end()) {
    std::string known;
    for (const auto& [known_name, factory] : reg.factories) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    return Status::not_found("unknown search strategy '" + resolved +
                             "' (registered: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> registered_strategy_names() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  return names;
}

StatusOr<SearchResult> run_search_strategy(const std::string& name,
                                           const arch::ReorganizedModel& model,
                                           const ResourceBudget& budget,
                                           const Customization& customization,
                                           const CrossBranchOptions& options,
                                           const RunScope* scope) {
  auto factory = strategy_factory(name);
  if (!factory.is_ok()) return factory.status();
  const std::unique_ptr<Strategy> strategy = (*factory)();
  return run_strategy(*strategy,
                      StrategyContext{model, budget, customization, options},
                      scope);
}

}  // namespace fcad::dse
