// Generalized Pareto-frontier extraction over any pair of Objective terms.
//
// The sweep path used to hard-wire its frontier to (min FPS up, DSPs down);
// extract_frontier replaces that with term-pair extraction: both axes are
// Objective terms (higher is better — minimized quantities enter negated,
// e.g. Objective::dsp_cost()), so the same machinery marks frontiers over
// (throughput, feasibility), (users served, DSPs), (min FPS, bandwidth), or
// any custom term a caller registers.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/objective.hpp"
#include "dse/search_driver.hpp"

namespace fcad::dse {

/// One scored candidate of a frontier extraction.
struct FrontierPoint {
  std::size_t index = 0;  ///< position in the candidate set
  double a = 0;           ///< weighted value of term_a (higher is better)
  double b = 0;           ///< weighted value of term_b (higher is better)
  bool feasible = false;  ///< candidate met its targets (unmet_targets == 0)
  bool on_frontier = false;
};

/// Marks the Pareto-maximal set of `candidates` under (term_a, term_b). A
/// candidate is dominated when another *feasible* candidate is no worse on
/// both axes and strictly better on one; infeasible candidates never make
/// the frontier (but are still scored, for reporting). Term weights scale
/// the reported values and never change the frontier (weights are positive).
std::vector<FrontierPoint> extract_frontier(
    const std::vector<ObjectiveInput>& candidates,
    const Objective::Term& term_a, const Objective::Term& term_b);

/// The candidate set an outcome exposes to frontier extraction: one input
/// per grid point for kSweep (priorities default to 1 — the customization is
/// not recorded in the outcome), the winning serving candidate for kTraffic
/// (serving fields filled), and the single winning search otherwise.
std::vector<ObjectiveInput> frontier_candidates(const SearchOutcome& outcome);

/// extract_frontier over frontier_candidates(outcome). For a kSweep outcome
/// with term_a = Objective::min_throughput() and term_b =
/// Objective::dsp_cost() this reproduces the classic (min FPS up, DSPs down)
/// sweep frontier exactly.
std::vector<FrontierPoint> extract_frontier(const SearchOutcome& outcome,
                                            const Objective::Term& term_a,
                                            const Objective::Term& term_b);

}  // namespace fcad::dse
