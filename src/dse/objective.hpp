// dse::Objective — the pluggable, composable optimization objective of the
// unified search API. An Objective is an ordered list of weighted terms
// (throughput, resource balance, feasibility, SLA terms, ...) scored against
// an ObjectiveInput; every SearchDriver entry point optimizes one Objective,
// so custom scenarios plug in a new composition instead of a new engine
// function.
//
// Floating-point contract: terms accumulate in insertion order, so the
// canned compositions `batch_fitness()` and `sla()` reproduce the legacy
// fitness_score() / sla_fitness_score() values bit-for-bit (pinned by
// objective_test.cpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dse/fitness.hpp"

namespace fcad::dse {

/// Everything a scored candidate exposes to the objective. The hardware
/// fields are always filled by the search; the serving fields only by
/// traffic-driven runs (`has_serving` distinguishes "no replay happened"
/// from "zero users survived the SLA").
struct ObjectiveInput {
  std::vector<double> fps;         ///< per-branch throughput
  std::vector<double> priorities;  ///< per-branch customization priorities
  int unmet_targets = 0;           ///< branches missing their batch target
                                   ///< (+1 when the global budget is blown)
  /// Hardware totals of the evaluated configuration, so objectives (and
  /// frontier extraction, dse/frontier.hpp) can trade throughput against
  /// resource cost.
  double min_fps = 0;   ///< slowest-branch throughput
  int dsps = 0;         ///< DSP slices consumed
  int brams = 0;        ///< BRAM18K blocks consumed
  double bw_gbps = 0;   ///< DDR bandwidth consumed
  /// Precision penalty of the evaluated datapath (Datapath::accuracy_proxy,
  /// >= 0, higher is worse); lets frontiers trade throughput vs precision.
  double accuracy_proxy = 0;
  bool has_serving = false;
  int users_served = 0;            ///< user streams served within the SLA
  double p99_latency_us = 0;       ///< serving tail latency
  double sla_violation_rate = 0;   ///< fraction of requests over the bound
};

class Objective {
 public:
  using TermFn = std::function<double(const ObjectiveInput&)>;

  struct Term {
    std::string name;
    double weight = 1.0;
    TermFn value;
  };

  Objective() = default;

  /// Appends a term; score() adds `weight * value(input)` per term in
  /// insertion order.
  Objective& add(std::string name, double weight, TermFn value);

  bool empty() const { return terms_.empty(); }
  const std::vector<Term>& terms() const { return terms_; }

  double score(const ObjectiveInput& input) const;

  /// "throughput + 0.05*balance + 1e+07*feasibility" — for reports/logs.
  std::string describe() const;

  // ---- canned terms ------------------------------------------------------
  static Term throughput();   ///< sum_j fps_j * priority_j
  static Term balance();      ///< -Var(fps) (weight carries alpha)
  static Term feasibility();  ///< -unmet_targets (weight carries the demerit)
  static Term min_throughput();  ///< slowest-branch FPS
  /// Resource-cost terms enter negated (objectives maximize), so "fewer
  /// DSPs" and "less bandwidth" are higher term values — which is also the
  /// orientation dse::extract_frontier expects.
  static Term dsp_cost();        ///< -DSPs consumed
  static Term bram_cost();       ///< -BRAM18Ks consumed
  static Term bandwidth_cost();  ///< -GB/s consumed
  /// Precision cost, negated like the resource terms: higher (closer to 0)
  /// means a more accurate datapath.
  static Term accuracy_proxy();  ///< -accuracy penalty
  static Term users_served(); ///< served user streams
  /// Sub-unit tie-break bonus within the bound, hard demerit over it
  /// (the piecewise headroom shaping of sla_fitness_score).
  static Term latency_headroom(const SlaParams& params);
  static Term sla_violations(); ///< -violation rate (weight carries the scale)

  // ---- canned compositions (legacy equivalents, bit-for-bit) -------------
  /// throughput + alpha*balance + demerit*feasibility
  /// == fitness_score(fps, priorities, unmet_targets, params).
  static Objective batch_fitness(const FitnessParams& params = {});
  /// users + headroom + violation_weight*violations
  /// == sla_fitness_score(users, p99, rate, params).
  static Objective sla(const SlaParams& params = {});

 private:
  std::vector<Term> terms_;
};

}  // namespace fcad::dse
