#include "dse/fitness_cache.hpp"

#include <cstring>

namespace fcad::dse {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

FitnessCache::Key FitnessCache::config_key(const arch::AcceleratorConfig& config,
                                           std::uint64_t met_mask,
                                           arch::EvalMode mode) {
  // Two accumulators over the same word stream, decorrelated by seed.
  std::uint64_t lo = 0x243f6a8885a308d3ULL;
  std::uint64_t hi = 0x13198a2e03707344ULL;
  auto absorb = [&](std::uint64_t v) {
    lo = mix(lo, v);
    hi = mix(hi, ~v);
  };
  absorb(met_mask);
  absorb(static_cast<std::uint64_t>(mode));
  absorb(static_cast<std::uint64_t>(config.dw));
  absorb(static_cast<std::uint64_t>(config.ww));
  absorb(double_bits(config.freq_mhz));
  absorb(config.branches.size());
  for (const arch::BranchHardwareConfig& branch : config.branches) {
    absorb(static_cast<std::uint64_t>(branch.batch));
    absorb(branch.units.size());
    for (const arch::UnitConfig& unit : branch.units) {
      absorb((static_cast<std::uint64_t>(static_cast<std::uint32_t>(unit.cpf))
              << 32) |
             static_cast<std::uint32_t>(unit.kpf));
      absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(unit.h)));
    }
  }
  return Key{lo, hi};
}

std::shared_ptr<const FitnessCache::Entry> FitnessCache::find(const Key& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) entry = it->second;
  }
  if (entry) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

std::shared_ptr<const FitnessCache::Entry> FitnessCache::insert(const Key& key,
                                                                Entry entry) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.map.try_emplace(key, nullptr);
  if (inserted) {
    it->second = std::make_shared<const Entry>(std::move(entry));
  }
  return it->second;
}

}  // namespace fcad::dse
