#include "dse/fitness_cache.hpp"

#include "util/hash.hpp"

namespace fcad::dse {

FitnessCache::Key FitnessCache::config_key(const arch::AcceleratorConfig& config,
                                           std::uint64_t met_mask,
                                           arch::EvalMode mode) {
  util::Hash128 h;
  h.absorb(met_mask);
  h.absorb(static_cast<std::uint64_t>(mode));
  h.absorb(static_cast<std::uint64_t>(config.datapath.mac));
  h.absorb(static_cast<std::uint64_t>(config.datapath.dw));
  h.absorb(static_cast<std::uint64_t>(config.datapath.ww));
  h.absorb_double(config.freq_mhz);
  h.absorb(config.branches.size());
  for (const arch::BranchHardwareConfig& branch : config.branches) {
    h.absorb(static_cast<std::uint64_t>(branch.batch));
    h.absorb(branch.units.size());
    for (const arch::UnitConfig& unit : branch.units) {
      h.absorb((static_cast<std::uint64_t>(static_cast<std::uint32_t>(unit.cpf))
                << 32) |
               static_cast<std::uint32_t>(unit.kpf));
      h.absorb(static_cast<std::uint64_t>(static_cast<std::uint32_t>(unit.h)));
    }
  }
  return Key{h.lo, h.hi};
}

std::shared_ptr<const FitnessCache::Entry> FitnessCache::find(const Key& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<const Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) entry = it->second;
  }
  if (entry) {
    hits_.add(1);
    global_hits_.add(1);
  } else {
    misses_.add(1);
    global_misses_.add(1);
  }
  return entry;
}

std::shared_ptr<const FitnessCache::Entry> FitnessCache::insert(const Key& key,
                                                                Entry entry) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.map.try_emplace(key, nullptr);
  if (inserted) {
    it->second = std::make_shared<const Entry>(std::move(entry));
  }
  return it->second;
}

}  // namespace fcad::dse
