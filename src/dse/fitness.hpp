// Fitness of an accelerator candidate (Algorithm 1, line 12):
// S(Perf, U) - P(Perf) = sum_j perf_j * P_j  -  alpha * Var(perf),
// with a large constant demerit per branch that missed its batch target so
// infeasible candidates still rank against each other but never beat a
// feasible one.
#pragma once

#include <vector>

namespace fcad::dse {

struct FitnessParams {
  double alpha = 0.05;              ///< variance penalty weight
  double infeasible_demerit = 1e7;  ///< per branch missing its batch target
};

/// Population variance of `values` (sigma^2 of Sec. VI-B).
double variance(const std::vector<double>& values);

/// Weighted score minus variance penalty minus infeasibility demerits.
/// `fps` and `priorities` are per-branch; `unmet_targets` counts branches
/// whose batch-size customization could not be met.
double fitness_score(const std::vector<double>& fps,
                     const std::vector<double>& priorities, int unmet_targets,
                     const FitnessParams& params = {});

}  // namespace fcad::dse
