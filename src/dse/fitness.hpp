// Fitness of an accelerator candidate (Algorithm 1, line 12):
// S(Perf, U) - P(Perf) = sum_j perf_j * P_j  -  alpha * Var(perf),
// with a large constant demerit per branch that missed its batch target so
// infeasible candidates still rank against each other but never beat a
// feasible one.
#pragma once

#include <vector>

namespace fcad::dse {

struct FitnessParams {
  double alpha = 0.05;              ///< variance penalty weight
  double infeasible_demerit = 1e7;  ///< per branch missing its batch target
};

/// Population variance of `values` (sigma^2 of Sec. VI-B).
double variance(const std::vector<double>& values);

/// Weighted score minus variance penalty minus infeasibility demerits.
/// `fps` and `priorities` are per-branch; `unmet_targets` counts branches
/// whose batch-size customization could not be met.
double fitness_score(const std::vector<double>& fps,
                     const std::vector<double>& priorities, int unmet_targets,
                     const FitnessParams& params = {});

/// SLA-aware serving objective: maximize users served subject to a tail
/// latency bound (the telepresence SLA — every stream decoded within its
/// frame budget at p99).
struct SlaParams {
  double p99_bound_us = 33333.3;    ///< one 30 Hz frame period
  double over_bound_demerit = 1e6;  ///< per unit of relative p99 overshoot
  double violation_weight = 1e3;    ///< per unit of SLA-violation rate
};

/// Score of one serving scenario. Users dominate; a sub-unit latency bonus
/// breaks ties among configs serving the same user count; any p99 overshoot
/// or violation mass is penalized hard enough that a config meeting the
/// bound always beats one that misses it.
double sla_fitness_score(int users_served, double p99_latency_us,
                         double sla_violation_rate,
                         const SlaParams& params = {});

}  // namespace fcad::dse
