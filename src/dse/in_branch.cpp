#include "dse/in_branch.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fcad::dse {
namespace {

struct StageDemand {
  const arch::FusedStage* stage = nullptr;
  double ops = 0;           ///< op_k: MACs (the Eq. 4 work term)
  double stream_bytes = 0;  ///< per-frame DDR bytes (GetReuse numerator)
  arch::UnitStreamContext ctx;
};

}  // namespace

InBranchResult in_branch_optimize(const arch::ReorganizedModel& model,
                                  int branch, const ResourceBudget& rd,
                                  int batch_target, nn::DataType dw,
                                  nn::DataType ww, double freq_mhz) {
  return in_branch_optimize(model, branch, rd, batch_target,
                            arch::Datapath{arch::MacStyle::kPipelined, dw, ww},
                            freq_mhz);
}

InBranchResult in_branch_optimize(const arch::ReorganizedModel& model,
                                  int branch, const ResourceBudget& rd,
                                  int batch_target, const arch::Datapath& dp,
                                  double freq_mhz) {
  FCAD_CHECK(branch >= 0 && branch < model.num_branches());
  FCAD_CHECK(batch_target >= 1);
  const arch::BranchPipeline& br =
      model.branches[static_cast<std::size_t>(branch)];
  const double freq_hz = freq_mhz * 1e6;
  const double bw_bytes = rd.bw * 1e9;

  InBranchResult result;
  result.config.batch = 1;
  if (br.stages.empty()) {
    // Branch owns nothing (fully shared into another branch); trivially met.
    result.met_batch_target = true;
    result.config.batch = batch_target;
    return result;
  }

  // Lines 4-7: layer-wise compute demand and data-reuse characteristics.
  std::vector<StageDemand> demands;
  demands.reserve(br.stages.size());
  for (int s : br.stages) {
    StageDemand d;
    d.stage = &model.stage(s);
    d.ops = static_cast<double>(d.stage->macs);
    d.ctx.reads_external_input =
        model.fused.stage_inputs[static_cast<std::size_t>(s)].empty();
    d.ctx.writes_external_output =
        !model.fused.stage_outputs[static_cast<std::size_t>(s)].empty();
    const arch::UnitResources probe = arch::unit_resources(
        *d.stage, arch::UnitConfig{1, 1, 1}, dp, d.ctx);
    d.stream_bytes = static_cast<double>(probe.total_stream_bytes());
    demands.push_back(d);
  }

  // Lines 8-12: most optimistic parallelism targets that just exhaust the
  // allocated bandwidth. norm_param_k = bytes/op (GetReuse); the closed form
  // reduces to pf_k = BW * op_k / (freq * sum bytes).
  double op_min = demands[0].ops;
  double total_bytes = 0;
  for (const StageDemand& d : demands) {
    op_min = std::min(op_min, std::max(d.ops, 1.0));
    total_bytes += d.stream_bytes;
  }
  op_min = std::max(op_min, 1.0);
  double norm_bw = 0;  // bytes/s at unit parallelism scale
  for (const StageDemand& d : demands) {
    const double norm_param = d.stream_bytes / std::max(d.ops, 1.0);
    norm_bw += (d.ops / op_min) * norm_param * freq_hz;
  }

  std::vector<std::int64_t> pf(demands.size(), 1);
  for (std::size_t k = 0; k < demands.size(); ++k) {
    const std::int64_t cap = arch::max_lanes(*demands[k].stage);
    double target;
    if (norm_bw > 0) {
      target = std::ceil(bw_bytes / norm_bw * (demands[k].ops / op_min));
    } else {
      target = static_cast<double>(cap);  // nothing streams: no BW bound
    }
    pf[k] = std::clamp<std::int64_t>(static_cast<std::int64_t>(target), 1, cap);
  }

  // Lines 13-24: greedy halving until the batch target fits.
  while (true) {
    std::vector<arch::UnitConfig> cfgs(demands.size());
    double c_sum = 0;
    double l_sum = 0;
    double m_sum = 0;
    double param_bytes = 0;
    double feature_bytes = 0;
    double max_lat = 0;
    for (std::size_t k = 0; k < demands.size(); ++k) {
      cfgs[k] = arch::get_pf(pf[k], *demands[k].stage);
      const arch::UnitResources res = arch::unit_resources(
          *demands[k].stage, cfgs[k], dp, demands[k].ctx);
      c_sum += res.dsps;
      l_sum += res.luts;
      m_sum += res.brams;
      param_bytes += static_cast<double>(res.param_stream_bytes);
      feature_bytes += static_cast<double>(res.feature_stream_bytes);
      max_lat = std::max(
          max_lat, arch::cycles_analytical(*demands[k].stage, cfgs[k], dp));
    }

    // Line 18: how many pipeline copies fit the slice. Parameters are
    // broadcast to lock-stepped copies, features scale per copy.
    const double waves_per_s = max_lat > 0 ? freq_hz / max_lat : 0.0;
    // The compute bound comes from whichever fabric the datapath multiplies
    // on: DSP slices, fabric LUTs (lut_multipliers()), or neither (no
    // compute streams: unbounded, like batch_bw below).
    double batch_c = static_cast<double>(batch_target);
    if (c_sum > 0) batch_c = std::min(batch_c, rd.c / c_sum);
    if (l_sum > 0) batch_c = std::min(batch_c, rd.l / l_sum);
    double batch_m = m_sum > 0 ? rd.m / m_sum : 0.0;
    double batch_bw = static_cast<double>(batch_target);
    if (feature_bytes * waves_per_s > 0) {
      batch_bw = (bw_bytes - param_bytes * waves_per_s) /
                 (feature_bytes * waves_per_s);
    } else if (param_bytes * waves_per_s > bw_bytes) {
      batch_bw = 0;
    }
    const double batch_f = std::min({batch_c, batch_m, batch_bw});
    const int batch = static_cast<int>(std::floor(batch_f));

    if (batch < batch_target) {
      // Line 20: halve the targets and retry, unless already minimal.
      bool can_halve = false;
      for (std::int64_t p : pf) can_halve = can_halve || p > 1;
      if (!can_halve) {
        result.config.batch = std::max(batch, 1);
        result.config.units = std::move(cfgs);
        result.met_batch_target = false;
        result.c_used = c_sum * result.config.batch;
        result.m_used = m_sum * result.config.batch;
        result.bw_used = (param_bytes + feature_bytes * result.config.batch) *
                         waves_per_s * 1e-9;
        result.bottleneck_cycles = max_lat;
        return result;
      }
      for (std::int64_t& p : pf) p = std::max<std::int64_t>(1, p / 2);
      ++result.halvings;
      continue;
    }

    // Line 22: clamp to the requested batch and stop.
    result.config.batch = batch_target;
    result.config.units = std::move(cfgs);
    result.met_batch_target = true;
    result.c_used = c_sum * batch_target;
    result.m_used = m_sum * batch_target;
    result.bw_used =
        (param_bytes + feature_bytes * batch_target) * waves_per_s * 1e-9;
    result.bottleneck_cycles = max_lat;
    return result;
  }
}

}  // namespace fcad::dse
