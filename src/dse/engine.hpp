// The DSE engine facade: one call from a network + platform + customization
// to the globally optimized accelerator, plus repeated-search convergence
// statistics (Sec. VII reports 10 independent searches per case).
#pragma once

#include <vector>

#include "arch/platform.hpp"
#include "dse/cross_branch.hpp"
#include "nn/graph.hpp"

namespace fcad::dse {

struct DseRequest {
  arch::Platform platform;
  Customization customization;
  CrossBranchOptions options;
};

/// Runs the full optimization step for an already reorganized model.
StatusOr<SearchResult> optimize(const arch::ReorganizedModel& model,
                                DseRequest request);

/// Statistics over repeated independent searches (different seeds).
struct ConvergenceStats {
  int runs = 0;
  double mean_iterations = 0;  ///< iterations until the global best settled
  double min_iterations = 0;
  double max_iterations = 0;
  double mean_seconds = 0;
  double mean_fitness = 0;
  double fitness_spread = 0;  ///< max - min final fitness across runs
};

ConvergenceStats convergence_study(const arch::ReorganizedModel& model,
                                   const DseRequest& request, int runs);

/// Maximum batch size exploration (the "maximum batch size" customization
/// of Sec. I): for `branch`, finds the largest batch-size target the
/// platform can satisfy with every other branch pinned at
/// `request.customization`'s targets. Returns 0 when even batch 1 is
/// infeasible. Runs one search per probed batch (doubling then bisecting),
/// so cost is O(log(max)) searches.
StatusOr<int> max_feasible_batch(const arch::ReorganizedModel& model,
                                 const DseRequest& request, int branch,
                                 int probe_limit = 16);

}  // namespace fcad::dse
