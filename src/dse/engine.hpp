// The DSE engine facade: one call from a network + platform + customization
// to the globally optimized accelerator, plus repeated-search convergence
// statistics (Sec. VII reports 10 independent searches per case).
#pragma once

#include <vector>

#include "arch/platform.hpp"
#include "dse/cross_branch.hpp"
#include "nn/graph.hpp"
#include "serving/fleet.hpp"
#include "serving/workload.hpp"

namespace fcad::dse {

struct DseRequest {
  arch::Platform platform;
  Customization customization;
  CrossBranchOptions options;
};

/// Runs the full optimization step for an already reorganized model.
StatusOr<SearchResult> optimize(const arch::ReorganizedModel& model,
                                DseRequest request);

/// Statistics over repeated independent searches (different seeds).
struct ConvergenceStats {
  int runs = 0;
  double mean_iterations = 0;  ///< iterations until the global best settled
  double min_iterations = 0;
  double max_iterations = 0;
  double mean_seconds = 0;
  double mean_fitness = 0;
  double fitness_spread = 0;  ///< max - min final fitness across runs
};

ConvergenceStats convergence_study(const arch::ReorganizedModel& model,
                                   const DseRequest& request, int runs);

/// Maximum batch size exploration (the "maximum batch size" customization
/// of Sec. I): for `branch`, finds the largest batch-size target the
/// platform can satisfy with every other branch pinned at
/// `request.customization`'s targets. Returns 0 when even batch 1 is
/// infeasible. Runs one search per probed batch (doubling then bisecting),
/// so cost is O(log(max)) searches.
StatusOr<int> max_feasible_batch(const arch::ReorganizedModel& model,
                                 const DseRequest& request, int branch,
                                 int probe_limit = 16);

/// Traffic profile for the SLA-aware search: instead of pinning per-branch
/// batch-size targets, the caller describes the *load* (arrival process over
/// N users, fleet size, dispatch policy) and the latency SLA; the engine
/// searches batch scaling + resource distribution to serve it.
struct TrafficProfile {
  /// Arrival process. `users` is the scored user count; `branches` is set
  /// internally from the model.
  serving::WorkloadOptions workload;
  /// Fleet shape and batching timeout. `sla_bound_us` is the p99 target the
  /// search optimizes against.
  serving::FleetOptions fleet;
  SlaParams sla;      ///< objective weights (bound taken from `fleet`)
  int max_batch = 8;  ///< largest uniform batch multiplier probed (doubling)
  /// When > workload.users: additionally maximize the served user count up
  /// to this cap (doubling + bisection per candidate config). Ignored for
  /// kTrace workloads, whose offered load does not depend on the count.
  int max_users = 0;
  /// Score candidates on the cycle-level simulator's service times instead
  /// of the analytical estimate (slower, closer to the board).
  bool use_simulator = false;
};

struct TrafficSearchResult {
  SearchResult search;          ///< winning hardware search result
  std::vector<int> batch_sizes; ///< per-branch batch targets of the winner
  int users_served = 0;         ///< largest user count meeting the SLA (0: none)
  serving::ServingStats stats;  ///< serving stats at the scored user count
  /// p99 within fleet.sla_bound_us *at users_served* — which may be below
  /// the requested workload.users when the traffic had to be degraded.
  bool sla_met = false;
  double sla_fitness = 0;       ///< sla_fitness_score of the winner
};

/// SLA-aware DSE (the serving tentpole): probes doubling batch multipliers,
/// runs the cross-branch search per candidate, replays the traffic profile
/// on the resulting service model, and keeps the candidate with the best
/// sla_fitness_score (users served subject to the p99 bound).
/// `request.customization.batch_sizes` acts as the per-branch base ratio
/// (default all 1). Deterministic for fixed seeds.
StatusOr<TrafficSearchResult> optimize_for_traffic(
    const arch::ReorganizedModel& model, const DseRequest& request,
    const TrafficProfile& profile);

}  // namespace fcad::dse
