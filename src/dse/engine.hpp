// DEPRECATED facade — the fragmented per-scenario entry points that predate
// the unified dse::SearchDriver. Every function below is a thin inline shim
// that builds the equivalent SearchSpec and forwards to
// SearchDriver::run(); they are kept for one release so out-of-tree callers
// keep compiling, then they go away. New code targets
// dse/search_driver.hpp (or core/pipeline.hpp for the whole flow).
#pragma once

#include <utility>
#include <vector>

#include "dse/search_driver.hpp"

namespace fcad::dse {

/// Legacy request bundle: platform + customization + swarm options.
struct DseRequest {
  arch::Platform platform;
  Customization customization;
  CrossBranchOptions options;
};

/// Legacy traffic profile. Superseded by TrafficSpec, which *validates* the
/// `workload.branches` / `sla.p99_bound_us` fields this struct silently
/// overwrote internally.
struct TrafficProfile {
  /// Arrival process. `users` is the scored user count; `branches` is set
  /// internally from the model.
  serving::WorkloadOptions workload;
  /// Fleet shape and batching timeout. `sla_bound_us` is the p99 target the
  /// search optimizes against.
  serving::FleetOptions fleet;
  SlaParams sla;      ///< objective weights (bound taken from `fleet`)
  int max_batch = 8;  ///< largest uniform batch multiplier probed (doubling)
  int max_users = 0;  ///< when > users: also maximize the served user count
  bool use_simulator = false;  ///< score on the cycle-level simulator
};

/// Runs the full optimization step for an already reorganized model.
[[deprecated("build a SearchSpec (SearchKind::kOptimize) and call "
             "dse::SearchDriver::run")]]
inline StatusOr<SearchResult> optimize(const arch::ReorganizedModel& model,
                                       DseRequest request) {
  SearchSpec spec;
  spec.customization = std::move(request.customization);
  spec.search = request.options;
  auto outcome = SearchDriver(model, std::move(request.platform)).run(spec);
  if (!outcome.is_ok()) return outcome.status();
  return std::move(outcome->search);
}

/// Statistics over repeated independent searches (different seeds).
[[deprecated("build a SearchSpec (SearchKind::kConvergence) and call "
             "dse::SearchDriver::run")]]
inline ConvergenceStats convergence_study(const arch::ReorganizedModel& model,
                                          const DseRequest& request,
                                          int runs) {
  SearchSpec spec;
  spec.kind = SearchKind::kConvergence;
  spec.customization = request.customization;
  spec.search = request.options;
  spec.convergence_runs = runs;
  auto outcome = SearchDriver(model, request.platform).run(spec);
  FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
  return std::move(outcome->convergence);
}

/// Maximum batch size exploration for `branch` with every other branch
/// pinned at `request.customization`'s targets. Returns 0 when even batch 1
/// is infeasible.
[[deprecated("build a SearchSpec (SearchKind::kMaxBatch) and call "
             "dse::SearchDriver::run")]]
inline StatusOr<int> max_feasible_batch(const arch::ReorganizedModel& model,
                                        const DseRequest& request, int branch,
                                        int probe_limit = 16) {
  SearchSpec spec;
  spec.kind = SearchKind::kMaxBatch;
  spec.customization = request.customization;
  spec.search = request.options;
  spec.batch_branch = branch;
  spec.batch_probe_limit = probe_limit;
  auto outcome = SearchDriver(model, request.platform).run(spec);
  if (!outcome.is_ok()) return outcome.status();
  return outcome->max_batch;
}

/// SLA-aware DSE over a legacy TrafficProfile. Preserves the legacy
/// overwrite semantics: `profile.workload.branches` is discarded (derived
/// from the model) and `profile.sla.p99_bound_us` is taken from
/// `profile.fleet.sla_bound_us`.
[[deprecated("build a SearchSpec (SearchKind::kTraffic) with a TrafficSpec "
             "and call dse::SearchDriver::run")]]
inline StatusOr<TrafficSearchResult> optimize_for_traffic(
    const arch::ReorganizedModel& model, const DseRequest& request,
    const TrafficProfile& profile) {
  SearchSpec spec;
  spec.kind = SearchKind::kTraffic;
  spec.customization = request.customization;
  spec.search = request.options;
  spec.traffic.workload = profile.workload;
  spec.traffic.workload.branches = serving::WorkloadOptions{}.branches;
  spec.traffic.fleet = profile.fleet;
  spec.traffic.sla = profile.sla;
  spec.traffic.sla.p99_bound_us = profile.fleet.sla_bound_us;
  spec.traffic.max_batch = profile.max_batch;
  spec.traffic.max_users = profile.max_users;
  spec.traffic.use_simulator = profile.use_simulator;
  auto outcome = SearchDriver(model, request.platform).run(spec);
  if (!outcome.is_ok()) return outcome.status();
  return std::move(outcome->traffic);
}

}  // namespace fcad::dse
