#include "dse/sweep.hpp"

#include "util/thread_pool.hpp"

namespace fcad::dse {

StatusOr<std::vector<SweepPoint>> quantization_frequency_sweep(
    const arch::ReorganizedModel& model, const arch::Platform& platform,
    const SweepOptions& options) {
  if (options.quantizations.empty() || options.frequencies_mhz.empty()) {
    return Status::invalid_argument("sweep: empty grid");
  }
  for (double f : options.frequencies_mhz) {
    if (f <= 0) return Status::invalid_argument("sweep: bad frequency");
  }

  // Grid points are independent searches: run them across the pool and
  // collect into grid-ordered slots (first error in grid order wins, as in a
  // sequential sweep).
  std::vector<SweepPoint> grid;
  for (nn::DataType q : options.quantizations) {
    for (double freq : options.frequencies_mhz) {
      SweepPoint point;
      point.quantization = q;
      point.freq_mhz = freq;
      grid.push_back(point);
    }
  }

  struct Outcome {
    bool ok = false;
    Status error;
    SearchResult result;
  };
  util::ThreadPool& pool = util::ThreadPool::shared(options.search.threads);
  std::vector<Outcome> outcomes = pool.parallel_map<Outcome>(
      static_cast<std::int64_t>(grid.size()), [&](std::int64_t i) {
        const SweepPoint& point = grid[static_cast<std::size_t>(i)];
        DseRequest request;
        request.platform = platform;
        request.platform.freq_mhz = point.freq_mhz;
        request.customization = options.customization;
        request.customization.quantization = point.quantization;
        request.options = options.search;
        Outcome out;
        auto result = optimize(model, std::move(request));
        if (!result.is_ok()) {
          out.error = result.status();
          return out;
        }
        out.ok = true;
        out.result = std::move(result).value();
        return out;
      });

  std::vector<SweepPoint> points;
  points.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!outcomes[i].ok) return outcomes[i].error;
    SweepPoint point = std::move(grid[i]);
    point.result = std::move(outcomes[i].result);
    points.push_back(std::move(point));
  }

  // Pareto frontier: maximize min-FPS, minimize DSPs. A point is dominated
  // when another point has >= FPS with <= DSPs (and is strictly better on
  // one axis). Infeasible points never make the frontier.
  for (SweepPoint& p : points) {
    if (!p.result.feasible) continue;
    bool dominated = false;
    for (const SweepPoint& q : points) {
      if (&p == &q || !q.result.feasible) continue;
      const bool no_worse = q.result.eval.min_fps >= p.result.eval.min_fps &&
                            q.result.eval.dsps <= p.result.eval.dsps;
      const bool strictly_better =
          q.result.eval.min_fps > p.result.eval.min_fps ||
          q.result.eval.dsps < p.result.eval.dsps;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    p.pareto_optimal = !dominated;
  }
  return points;
}

}  // namespace fcad::dse
