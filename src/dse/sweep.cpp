#include "dse/sweep.hpp"

namespace fcad::dse {

StatusOr<std::vector<SweepPoint>> quantization_frequency_sweep(
    const arch::ReorganizedModel& model, const arch::Platform& platform,
    const SweepOptions& options) {
  if (options.quantizations.empty() || options.frequencies_mhz.empty()) {
    return Status::invalid_argument("sweep: empty grid");
  }
  for (double f : options.frequencies_mhz) {
    if (f <= 0) return Status::invalid_argument("sweep: bad frequency");
  }

  std::vector<SweepPoint> points;
  for (nn::DataType q : options.quantizations) {
    for (double freq : options.frequencies_mhz) {
      DseRequest request;
      request.platform = platform;
      request.platform.freq_mhz = freq;
      request.customization = options.customization;
      request.customization.quantization = q;
      request.options = options.search;
      auto result = optimize(model, std::move(request));
      if (!result.is_ok()) return result.status();

      SweepPoint point;
      point.quantization = q;
      point.freq_mhz = freq;
      point.result = std::move(result).value();
      points.push_back(std::move(point));
    }
  }

  // Pareto frontier: maximize min-FPS, minimize DSPs. A point is dominated
  // when another point has >= FPS with <= DSPs (and is strictly better on
  // one axis). Infeasible points never make the frontier.
  for (SweepPoint& p : points) {
    if (!p.result.feasible) continue;
    bool dominated = false;
    for (const SweepPoint& q : points) {
      if (&p == &q || !q.result.feasible) continue;
      const bool no_worse = q.result.eval.min_fps >= p.result.eval.min_fps &&
                            q.result.eval.dsps <= p.result.eval.dsps;
      const bool strictly_better =
          q.result.eval.min_fps > p.result.eval.min_fps ||
          q.result.eval.dsps < p.result.eval.dsps;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    p.pareto_optimal = !dominated;
  }
  return points;
}

}  // namespace fcad::dse
