// In-branch greedy optimization (Algorithm 2): given one branch's slice of
// the resource budget, derive bandwidth-normalized per-stage parallelism
// targets, then greedily shrink them (halving) until the branch's batch-size
// target fits the slice.
#pragma once

#include "arch/elastic.hpp"
#include "dse/design_space.hpp"

namespace fcad::dse {

struct InBranchResult {
  arch::BranchHardwareConfig config;
  /// True when the requested batch size fits the resource slice.
  bool met_batch_target = false;
  /// Resources consumed by the configured branch (all batch copies).
  double c_used = 0;   ///< DSPs
  double m_used = 0;   ///< BRAM18K blocks
  double bw_used = 0;  ///< GB/s at the achieved throughput
  /// Analytical bottleneck latency of one pipeline copy, in cycles.
  double bottleneck_cycles = 0;
  int halvings = 0;  ///< greedy iterations taken
};

/// Runs Algorithm 2 for `branch` of `model` under budget slice `rd` on the
/// given datapath. `batch_target` is the user's BatchSize_j. Always returns
/// a structurally valid config (parallelism >= 1 everywhere); check
/// met_batch_target and the usage fields for feasibility.
InBranchResult in_branch_optimize(const arch::ReorganizedModel& model,
                                  int branch, const ResourceBudget& rd,
                                  int batch_target, const arch::Datapath& dp,
                                  double freq_mhz);

/// Deprecated quantization-era overload (one release): a pipelined MAC at
/// the given widths.
InBranchResult in_branch_optimize(const arch::ReorganizedModel& model,
                                  int branch, const ResourceBudget& rd,
                                  int batch_target, nn::DataType dw,
                                  nn::DataType ww, double freq_mhz);

}  // namespace fcad::dse
