#include "dse/strategies.hpp"

#include <chrono>
#include <cmath>

#include "util/rng.hpp"

namespace fcad::dse {
namespace {

ResourceDistribution random_rd(Rng& rng, int branches) {
  ResourceDistribution rd;
  rd.c_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.m_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.bw_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  return rd;
}

void clamp_simplex(std::vector<double>& frac) {
  constexpr double kFloor = 0.01;
  double sum = 0;
  for (double& f : frac) {
    f = std::max(f, kFloor);
    sum += f;
  }
  for (double& f : frac) f /= sum;
}

/// Records a candidate into `result` if it improves the incumbent.
void consider(const DistributionEval& ce, const ResourceDistribution& rd,
              int iteration, SearchResult& result) {
  if (ce.fitness > result.fitness) {
    result.fitness = ce.fitness;
    result.config = ce.config;
    result.eval = ce.eval;
    result.distribution = rd;
    result.feasible = ce.feasible;
    result.trace.convergence_iteration = iteration;
  }
}

SearchResult random_search(const arch::ReorganizedModel& model,
                           const ResourceBudget& budget,
                           const Customization& cust,
                           const CrossBranchOptions& opt) {
  Rng rng(opt.seed);
  SearchResult result;
  result.fitness = -1e300;
  for (int iter = 0; iter < opt.iterations; ++iter) {
    for (int i = 0; i < opt.population; ++i) {
      const ResourceDistribution rd = random_rd(rng, model.num_branches());
      const DistributionEval ce =
          evaluate_distribution(model, budget, rd, cust, opt, result.trace);
      consider(ce, rd, iter + 1, result);
    }
    result.trace.best_fitness.push_back(result.fitness);
  }
  return result;
}

SearchResult annealing_search(const arch::ReorganizedModel& model,
                              const ResourceBudget& budget,
                              const Customization& cust,
                              const CrossBranchOptions& opt) {
  Rng rng(opt.seed);
  SearchResult result;
  result.fitness = -1e300;

  // Start from the demand-proportional point (same head start the swarm
  // enjoys) and anneal with a geometric temperature schedule.
  ResourceDistribution current = demand_proportional_distribution(model, cust);
  DistributionEval current_eval =
      evaluate_distribution(model, budget, current, cust, opt, result.trace);
  consider(current_eval, current, 1, result);

  const long total_steps =
      static_cast<long>(opt.iterations) * opt.population - 1;
  // Temperature in fitness units: start around the typical fitness scale,
  // end near zero. The scale adapts to the incumbent's magnitude.
  const double t_start = std::max(1.0, std::fabs(current_eval.fitness) * 0.1);
  const double t_end = t_start * 1e-3;
  for (long step = 0; step < total_steps; ++step) {
    const double progress =
        total_steps > 1 ? static_cast<double>(step) / (total_steps - 1) : 1.0;
    const double temperature =
        t_start * std::pow(t_end / t_start, progress);
    const double radius = 0.02 + 0.18 * (1.0 - progress);

    ResourceDistribution neighbor = current;
    for (auto* frac :
         {&neighbor.c_frac, &neighbor.m_frac, &neighbor.bw_frac}) {
      for (double& f : *frac) f += rng.next_range(-radius, radius);
      clamp_simplex(*frac);
    }
    const DistributionEval ce = evaluate_distribution(model, budget, neighbor,
                                                      cust, opt, result.trace);
    const int iteration = 1 + static_cast<int>(step / opt.population);
    consider(ce, neighbor, iteration, result);

    const double delta = ce.fitness - current_eval.fitness;
    if (delta >= 0 ||
        rng.next_double() < std::exp(delta / std::max(temperature, 1e-12))) {
      current = neighbor;
      current_eval = ce;
    }
    if ((step + 1) % opt.population == 0) {
      result.trace.best_fitness.push_back(result.fitness);
    }
  }
  while (result.trace.best_fitness.size() <
         static_cast<std::size_t>(opt.iterations)) {
    result.trace.best_fitness.push_back(result.fitness);
  }
  return result;
}

}  // namespace

const char* to_string(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kParticleSwarm: return "particle-swarm (Alg. 1)";
    case SearchStrategy::kRandom: return "random sampling";
    case SearchStrategy::kAnnealing: return "simulated annealing";
  }
  return "unknown";
}

SearchResult strategy_search(const arch::ReorganizedModel& model,
                             const ResourceBudget& budget,
                             const Customization& customization,
                             const CrossBranchOptions& options,
                             SearchStrategy strategy) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result;
  switch (strategy) {
    case SearchStrategy::kParticleSwarm:
      return cross_branch_search(model, budget, customization, options);
    case SearchStrategy::kRandom:
      result = random_search(model, budget, customization, options);
      break;
    case SearchStrategy::kAnnealing:
      result = annealing_search(model, budget, customization, options);
      break;
  }
  // Report under quantized evaluation, matching cross_branch_search.
  if (!result.config.branches.empty()) {
    result.eval =
        arch::evaluate(model, result.config, arch::EvalMode::kQuantized);
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace fcad::dse
