#include "dse/strategies.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "dse/fitness_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fcad::dse {
namespace {

/// Chains of the parallel annealing ensemble. Fixed (never derived from the
/// pool size) so results are identical for any thread count.
constexpr int kAnnealingChains = 8;

ResourceDistribution random_rd(Rng& rng, int branches) {
  ResourceDistribution rd;
  rd.c_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.m_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  rd.bw_frac = rng.next_simplex(static_cast<std::size_t>(branches));
  return rd;
}

void clamp_simplex(std::vector<double>& frac) {
  constexpr double kFloor = 0.01;
  double sum = 0;
  for (double& f : frac) {
    f = std::max(f, kFloor);
    sum += f;
  }
  for (double& f : frac) f /= sum;
}

/// Records a candidate into `result` if it improves the incumbent.
void consider(const DistributionEval& ce, const ResourceDistribution& rd,
              int iteration, SearchResult& result) {
  if (ce.fitness > result.fitness) {
    result.fitness = ce.fitness;
    result.config = ce.config;
    result.eval = ce.eval;
    result.distribution = rd;
    result.feasible = ce.feasible;
    result.trace.convergence_iteration = iteration;
  }
}

SearchResult random_search(const arch::ReorganizedModel& model,
                           const ResourceBudget& budget,
                           const Customization& cust,
                           const CrossBranchOptions& opt) {
  Rng rng(opt.seed);
  util::ThreadPool& pool = util::ThreadPool::shared(opt.threads);
  FitnessCache cache;
  SearchResult result;
  result.fitness = -1e300;

  struct Candidate {
    ResourceDistribution rd;
    DistributionEval ce;
  };
  const auto population = static_cast<std::size_t>(opt.population);
  std::vector<Rng> streams(population, Rng(0));
  std::vector<SearchTrace> local_traces(population);
  for (int iter = 0; iter < opt.iterations; ++iter) {
    // Candidate streams are forked from the master RNG *before* the parallel
    // region, so sampling order cannot depend on scheduling.
    for (std::size_t i = 0; i < population; ++i) {
      streams[i] = rng.fork(static_cast<std::uint64_t>(i));
    }
    const std::vector<Candidate> candidates = pool.parallel_map<Candidate>(
        static_cast<std::int64_t>(population), [&](std::int64_t i) {
          const auto idx = static_cast<std::size_t>(i);
          Candidate c;
          c.rd = random_rd(streams[idx], model.num_branches());
          c.ce = evaluate_distribution(model, budget, c.rd, cust, opt,
                                       local_traces[idx], &cache);
          return c;
        });
    for (const Candidate& c : candidates) {
      consider(c.ce, c.rd, iter + 1, result);
    }
    result.trace.best_fitness.push_back(result.fitness);
  }
  for (const SearchTrace& local : local_traces) {
    result.trace.evaluations += local.evaluations;
  }
  result.trace.cache_hits = cache.hits();
  result.trace.cache_misses = cache.misses();
  return result;
}

/// One simulated-annealing chain over its share of the evaluation budget.
struct ChainResult {
  SearchResult best;                 ///< chain-local incumbent
  std::vector<double> best_by_step;  ///< best-so-far after each evaluation
};

ChainResult run_annealing_chain(const arch::ReorganizedModel& model,
                                const ResourceBudget& budget,
                                const Customization& cust,
                                const CrossBranchOptions& opt, Rng rng,
                                long steps, bool demand_start,
                                FitnessCache& cache) {
  ChainResult out;
  out.best.fitness = -1e300;
  out.best_by_step.reserve(static_cast<std::size_t>(steps));

  ResourceDistribution current =
      demand_start ? demand_proportional_distribution(model, cust)
                   : random_rd(rng, model.num_branches());
  DistributionEval current_eval = evaluate_distribution(
      model, budget, current, cust, opt, out.best.trace, &cache);
  consider(current_eval, current, 1, out.best);
  out.best_by_step.push_back(out.best.fitness);

  // Geometric temperature schedule in fitness units, adapted to the start
  // point's magnitude; the move radius shrinks as the chain cools.
  const double t_start = std::max(1.0, std::fabs(current_eval.fitness) * 0.1);
  const double t_end = t_start * 1e-3;
  for (long step = 1; step < steps; ++step) {
    const double progress =
        steps > 2 ? static_cast<double>(step - 1) / static_cast<double>(steps - 2)
                  : 1.0;
    const double temperature = t_start * std::pow(t_end / t_start, progress);
    const double radius = 0.02 + 0.18 * (1.0 - progress);

    ResourceDistribution neighbor = current;
    for (auto* frac :
         {&neighbor.c_frac, &neighbor.m_frac, &neighbor.bw_frac}) {
      for (double& f : *frac) f += rng.next_range(-radius, radius);
      clamp_simplex(*frac);
    }
    const DistributionEval ce = evaluate_distribution(
        model, budget, neighbor, cust, opt, out.best.trace, &cache);
    consider(ce, neighbor, 1, out.best);
    out.best_by_step.push_back(out.best.fitness);

    const double delta = ce.fitness - current_eval.fitness;
    if (delta >= 0 ||
        rng.next_double() < std::exp(delta / std::max(temperature, 1e-12))) {
      current = neighbor;
      current_eval = ce;
    }
  }
  return out;
}

/// Parallel multi-start annealing: kAnnealingChains independent chains split
/// the iterations x population evaluation budget, each on its own RNG stream
/// forked from the seed (SplitMix64 fork, so chains are decorrelated). Chain
/// 0 starts from the demand-proportional point — the head start the single
/// chain used to enjoy — and the rest from random draws. The merge walks
/// chains in index order, so the result is independent of thread count.
SearchResult annealing_search(const arch::ReorganizedModel& model,
                              const ResourceBudget& budget,
                              const Customization& cust,
                              const CrossBranchOptions& opt) {
  Rng root(opt.seed);
  util::ThreadPool& pool = util::ThreadPool::shared(opt.threads);
  FitnessCache cache;

  const long total_steps = static_cast<long>(opt.iterations) * opt.population;
  const int chains =
      static_cast<int>(std::min<long>(kAnnealingChains, total_steps));
  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(chains));
  for (int c = 0; c < chains; ++c) {
    streams.push_back(root.fork(static_cast<std::uint64_t>(c)));
  }

  const std::vector<ChainResult> outs = pool.parallel_map<ChainResult>(
      chains, [&](std::int64_t c) {
        const long steps =
            total_steps / chains + (c < total_steps % chains ? 1 : 0);
        return run_annealing_chain(model, budget, cust, opt,
                                   streams[static_cast<std::size_t>(c)], steps,
                                   /*demand_start=*/c == 0, cache);
      });

  SearchResult result;
  result.fitness = -1e300;
  for (const ChainResult& out : outs) {
    consider(
        DistributionEval{out.best.config, out.best.eval, out.best.fitness,
                         out.best.feasible},
        out.best.distribution, 1, result);
    result.trace.evaluations += out.best.trace.evaluations;
  }

  // Rebuild the per-iteration trace from the chains' per-step curves: after
  // iteration i the ensemble has spent (i+1)/iterations of each chain's
  // budget.
  result.trace.best_fitness.assign(static_cast<std::size_t>(opt.iterations),
                                   -1e300);
  for (int it = 0; it < opt.iterations; ++it) {
    double best = -1e300;
    for (const ChainResult& out : outs) {
      const auto steps = static_cast<long>(out.best_by_step.size());
      long cutoff = (static_cast<long>(it + 1) * steps) / opt.iterations - 1;
      cutoff = std::clamp<long>(cutoff, 0, steps - 1);
      best = std::max(best, out.best_by_step[static_cast<std::size_t>(cutoff)]);
    }
    result.trace.best_fitness[static_cast<std::size_t>(it)] =
        it > 0 ? std::max(
                     best,
                     result.trace.best_fitness[static_cast<std::size_t>(it - 1)])
               : best;
  }
  for (int it = 0; it < opt.iterations; ++it) {
    if (result.trace.best_fitness[static_cast<std::size_t>(it)] ==
        result.fitness) {
      result.trace.convergence_iteration = it + 1;
      break;
    }
  }
  result.trace.cache_hits = cache.hits();
  result.trace.cache_misses = cache.misses();
  return result;
}

}  // namespace

const char* to_string(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kParticleSwarm: return "particle-swarm (Alg. 1)";
    case SearchStrategy::kRandom: return "random sampling";
    case SearchStrategy::kAnnealing: return "simulated annealing";
  }
  return "unknown";
}

SearchResult strategy_search(const arch::ReorganizedModel& model,
                             const ResourceBudget& budget,
                             const Customization& customization,
                             const CrossBranchOptions& options,
                             SearchStrategy strategy) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result;
  switch (strategy) {
    case SearchStrategy::kParticleSwarm:
      return cross_branch_search(model, budget, customization, options);
    case SearchStrategy::kRandom:
      result = random_search(model, budget, customization, options);
      break;
    case SearchStrategy::kAnnealing:
      result = annealing_search(model, budget, customization, options);
      break;
  }
  // Report under quantized evaluation, matching cross_branch_search.
  if (!result.config.branches.empty()) {
    result.eval =
        arch::evaluate(model, result.config, arch::EvalMode::kQuantized);
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace fcad::dse
