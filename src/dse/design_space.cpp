#include "dse/design_space.hpp"

#include <cmath>

namespace fcad::dse {
namespace {

int count_divisors(int n) {
  int count = 0;
  for (int d = 1; d * d <= n; ++d) {
    if (n % d == 0) count += (d == n / d) ? 1 : 2;
  }
  return count;
}

}  // namespace

Status Customization::normalize(int num_branches) {
  if (num_branches <= 0) {
    return Status::invalid_argument("customization: no branches");
  }
  if (batch_sizes.empty()) {
    batch_sizes.assign(static_cast<std::size_t>(num_branches), 1);
  }
  if (priorities.empty()) {
    priorities.assign(static_cast<std::size_t>(num_branches), 1.0);
  }
  if (batch_sizes.size() != static_cast<std::size_t>(num_branches)) {
    return Status::invalid_argument("customization: batch_sizes arity != B");
  }
  if (priorities.size() != static_cast<std::size_t>(num_branches)) {
    return Status::invalid_argument("customization: priorities arity != B");
  }
  for (int b : batch_sizes) {
    if (b < 1) return Status::invalid_argument("batch sizes must be >= 1");
  }
  for (double p : priorities) {
    if (p < 0) return Status::invalid_argument("priorities must be >= 0");
  }
  return Status::ok();
}

ResourceBudget ResourceDistribution::slice(const ResourceBudget& budget,
                                           int branch) const {
  const auto b = static_cast<std::size_t>(branch);
  FCAD_CHECK(b < c_frac.size() && b < m_frac.size() && b < bw_frac.size());
  return {budget.c * c_frac[b], budget.m * m_frac[b], budget.bw * bw_frac[b]};
}

DesignSpaceStats design_space_stats(const arch::ReorganizedModel& model,
                                    int max_batch) {
  DesignSpaceStats stats;
  stats.branches = model.num_branches();
  for (const arch::BranchPipeline& br : model.branches) {
    stats.stages += static_cast<int>(br.stages.size());
    stats.dimensions += 1;  // batchsize_j
    stats.log10_configs += std::log10(static_cast<double>(max_batch));
    for (int s : br.stages) {
      const arch::FusedStage& stage = model.stage(s);
      stats.dimensions += 3;  // cpf, kpf, h
      const double combos =
          static_cast<double>(count_divisors(stage.max_cpf())) *
          count_divisors(stage.max_kpf()) * count_divisors(stage.max_h());
      stats.log10_configs += std::log10(combos);
    }
  }
  return stats;
}

}  // namespace fcad::dse
