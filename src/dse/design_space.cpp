#include "dse/design_space.hpp"

#include <cmath>

namespace fcad::dse {
namespace {

int count_divisors(int n) {
  int count = 0;
  for (int d = 1; d * d <= n; ++d) {
    if (n % d == 0) count += (d == n / d) ? 1 : 2;
  }
  return count;
}

}  // namespace

Status Customization::normalize(int num_branches) {
  if (num_branches <= 0) {
    return Status::invalid_argument("customization: no branches");
  }
  if (batch_sizes.empty()) {
    batch_sizes.assign(static_cast<std::size_t>(num_branches), 1);
  }
  if (priorities.empty()) {
    priorities.assign(static_cast<std::size_t>(num_branches), 1.0);
  }
  if (batch_sizes.size() != static_cast<std::size_t>(num_branches)) {
    return Status::invalid_argument("customization: batch_sizes arity != B");
  }
  if (priorities.size() != static_cast<std::size_t>(num_branches)) {
    return Status::invalid_argument("customization: priorities arity != B");
  }
  for (int b : batch_sizes) {
    if (b < 1) return Status::invalid_argument("batch sizes must be >= 1");
  }
  for (std::size_t j = 0; j < priorities.size(); ++j) {
    if (priorities[j] <= 0) {
      return Status::invalid_argument(
          "customization: priority must be > 0 (branch " + std::to_string(j) +
          ")");
    }
  }
  if (datapath.empty()) {
    datapath = arch::datapath_to_string(
        arch::datapath_from_quantization(quantization));
  } else {
    auto dp = arch::datapath_from_string(datapath);
    if (!dp.is_ok()) {
      return Status::invalid_argument("customization: " +
                                      dp.status().message());
    }
  }
  return Status::ok();
}

arch::Datapath Customization::resolved_datapath() const {
  if (datapath.empty()) return arch::datapath_from_quantization(quantization);
  auto dp = arch::datapath_from_string(datapath);
  FCAD_CHECK_MSG(dp.is_ok(), dp.status().message());
  return *dp;
}

ResourceBudget ResourceDistribution::slice(const ResourceBudget& budget,
                                           int branch) const {
  const auto b = static_cast<std::size_t>(branch);
  FCAD_CHECK(b < c_frac.size() && b < m_frac.size() && b < bw_frac.size());
  // The LUT capacity rides the compute fraction (see ResourceBudget).
  return {budget.c * c_frac[b], budget.m * m_frac[b], budget.bw * bw_frac[b],
          budget.l * c_frac[b]};
}

DesignSpaceStats design_space_stats(const arch::ReorganizedModel& model,
                                    int max_batch) {
  DesignSpaceStats stats;
  stats.branches = model.num_branches();
  // The global customization axis: one datapath (precision x MAC style) per
  // design, chosen from the registry.
  stats.dimensions += 1;
  stats.log10_configs += std::log10(
      static_cast<double>(arch::registered_datapaths().size()));
  for (const arch::BranchPipeline& br : model.branches) {
    stats.stages += static_cast<int>(br.stages.size());
    stats.dimensions += 1;  // batchsize_j
    stats.log10_configs += std::log10(static_cast<double>(max_batch));
    for (int s : br.stages) {
      const arch::FusedStage& stage = model.stage(s);
      stats.dimensions += 3;  // cpf, kpf, h
      const double combos =
          static_cast<double>(count_divisors(stage.max_cpf())) *
          count_divisors(stage.max_kpf()) * count_divisors(stage.max_h());
      stats.log10_configs += std::log10(combos);
    }
  }
  return stats;
}

}  // namespace fcad::dse
