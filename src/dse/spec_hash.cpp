#include "dse/spec_hash.hpp"

#include "arch/datapath.hpp"

namespace fcad::dse {
namespace {

void absorb_customization(util::Hash128& h, const Customization& cust) {
  h.absorb(static_cast<std::uint64_t>(cust.quantization));
  // The canonical resolved datapath, so a spec saying quantization=int8 and
  // one saying datapath="pipelined-int8" hash identically — they run the
  // same search. Specs are hashed before normalization, so an unparseable
  // name hashes as its raw string (the run itself rejects it later).
  if (cust.datapath.empty()) {
    h.absorb_string(arch::datapath_to_string(
        arch::datapath_from_quantization(cust.quantization)));
  } else if (auto dp = arch::datapath_from_string(cust.datapath);
             dp.is_ok()) {
    h.absorb_string(arch::datapath_to_string(*dp));
  } else {
    h.absorb_string(cust.datapath);
  }
  h.absorb(cust.batch_sizes.size());
  for (int b : cust.batch_sizes) h.absorb(static_cast<std::uint64_t>(b));
  h.absorb(cust.priorities.size());
  for (double p : cust.priorities) h.absorb_double(p);
}

void absorb_options(util::Hash128& h, const CrossBranchOptions& opt) {
  h.absorb(static_cast<std::uint64_t>(opt.iterations));
  h.absorb(static_cast<std::uint64_t>(opt.population));
  h.absorb(opt.seed);
  h.absorb_double(opt.fitness.alpha);
  h.absorb_double(opt.fitness.infeasible_demerit);
  h.absorb_double(opt.w_local);
  h.absorb_double(opt.w_global);
  h.absorb_double(opt.jitter);
  h.absorb(static_cast<std::uint64_t>(opt.eval_mode));
  // freq_mhz and threads are resolved by the driver (platform / RunControl)
  // and never change results; progress_label is cosmetic. The objective
  // hashes by description — term names and weights.
  h.absorb_string(opt.objective.empty() ? "" : opt.objective.describe());
}

void absorb_traffic(util::Hash128& h, const TrafficSpec& traffic) {
  h.absorb(static_cast<std::uint64_t>(traffic.workload.process));
  h.absorb(static_cast<std::uint64_t>(traffic.workload.users));
  h.absorb(static_cast<std::uint64_t>(traffic.workload.branches));
  h.absorb_double(traffic.workload.frame_rate_hz);
  h.absorb_double(traffic.workload.duration_s);
  h.absorb(traffic.workload.seed);
  h.absorb_double(traffic.workload.burst_on_s);
  h.absorb_double(traffic.workload.burst_off_s);
  h.absorb_double(traffic.workload.burst_factor);
  h.absorb(traffic.workload.trace_arrivals_us.size());
  for (double t : traffic.workload.trace_arrivals_us) h.absorb_double(t);
  h.absorb(static_cast<std::uint64_t>(traffic.workload.target_requests));
  h.absorb(static_cast<std::uint64_t>(traffic.fleet.instances));
  h.absorb(static_cast<std::uint64_t>(traffic.fleet.policy));
  h.absorb_double(traffic.fleet.batch_timeout_us);
  h.absorb_double(traffic.fleet.switch_penalty_us);
  h.absorb_double(traffic.fleet.sla_bound_us);
  // The shard count is part of the serving model (it changes the stats) and
  // keep_records changes what a v3 artifact stores; threads, the checkpoint
  // path, and the progress tail percentile are execution details that never
  // affect results.
  h.absorb(static_cast<std::uint64_t>(traffic.fleet.shards));
  h.absorb(static_cast<std::uint64_t>(traffic.fleet.keep_records));
  h.absorb_double(traffic.sla.p99_bound_us);
  h.absorb_double(traffic.sla.over_bound_demerit);
  h.absorb_double(traffic.sla.violation_weight);
  h.absorb(static_cast<std::uint64_t>(traffic.max_batch));
  h.absorb(static_cast<std::uint64_t>(traffic.max_users));
  h.absorb(static_cast<std::uint64_t>(traffic.use_simulator));
}

}  // namespace

util::Hash128 spec_hash(const SearchSpec& spec) {
  util::Hash128 h;
  h.absorb_string("fcad-search-spec v1");
  h.absorb(static_cast<std::uint64_t>(spec.kind));
  h.absorb_string(spec.strategy.empty() ? kDefaultStrategy : spec.strategy);
  absorb_customization(h, spec.customization);
  absorb_options(h, spec.search);
  h.absorb_string(spec.objective.empty() ? "" : spec.objective.describe());
  switch (spec.kind) {
    case SearchKind::kOptimize:
      break;
    case SearchKind::kTraffic:
      absorb_traffic(h, spec.traffic);
      break;
    case SearchKind::kMaxBatch:
      h.absorb(static_cast<std::uint64_t>(spec.batch_branch));
      h.absorb(static_cast<std::uint64_t>(spec.batch_probe_limit));
      break;
    case SearchKind::kSweep:
      h.absorb(spec.sweep.quantizations.size());
      for (nn::DataType q : spec.sweep.quantizations) {
        h.absorb(static_cast<std::uint64_t>(q));
      }
      h.absorb(spec.sweep.frequencies_mhz.size());
      for (double f : spec.sweep.frequencies_mhz) h.absorb_double(f);
      h.absorb(spec.sweep.datapaths.size());
      for (const std::string& name : spec.sweep.datapaths) {
        h.absorb_string(name);
      }
      h.absorb(spec.sweep.batch_scales.size());
      for (int s : spec.sweep.batch_scales) {
        h.absorb(static_cast<std::uint64_t>(s));
      }
      break;
    case SearchKind::kConvergence:
      h.absorb(static_cast<std::uint64_t>(spec.convergence_runs));
      break;
  }
  return h;
}

}  // namespace fcad::dse
