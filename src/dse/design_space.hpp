// The multi-branch dynamic design space (Table III): per-branch batch size
// and per-stage 3D parallelism factors, with user customization (quantization
// Q, branch-wise target batch sizes, branch priorities) and the three global
// resource budgets {Cmax, Mmax, BWmax}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "nn/dtype.hpp"
#include "util/status.hpp"

namespace fcad::dse {

/// User customization (Table III, bottom rows, plus the datapath axis).
struct Customization {
  /// Deprecated (kept one release): the quantization shim Q, which maps to
  /// datapath "pipelined-<Q>" when `datapath` is empty. Code setting Q keeps
  /// working unchanged; new code should set `datapath` instead.
  nn::DataType quantization = nn::DataType::kInt8;
  /// Precision x MAC microarchitecture in the canonical grammar of
  /// arch/datapath.hpp ("pipelined-int8", "staged-int8x4", ...). Empty
  /// derives from `quantization`; when both are set, `datapath` wins.
  std::string datapath;
  std::vector<int> batch_sizes;     ///< BatchSize_1..B (default all 1)
  std::vector<double> priorities;   ///< P_1..B (default all 1.0)

  /// Expands defaults for a model with `num_branches` branches and
  /// canonicalizes `datapath` (filling it from the quantization shim when
  /// empty); fails when a user-supplied vector has the wrong arity or
  /// non-positive entries, or when `datapath` is not a registered name.
  Status normalize(int num_branches);

  /// The datapath this customization evaluates under: `datapath` when set,
  /// else pipelined-<quantization>. Checks that a non-empty string parses.
  arch::Datapath resolved_datapath() const;
};

/// The resource budget triple (Cmax = DSPs, Mmax = BRAM18K, BWmax = GB/s),
/// plus the fabric-LUT capacity `l` bounding LUT-multiplier datapaths
/// (arch/datapath.hpp). `l` rides the compute axis: distributions slice it
/// with the same c_frac as the DSPs, so the search space stays three
/// fractions per branch regardless of which fabric the datapath computes on.
struct ResourceBudget {
  double c = 0;
  double m = 0;
  double bw = 0;
  double l = 0;  ///< fabric LUTs for LUT-multiplier datapaths (0: none)

  static ResourceBudget from_platform(const arch::Platform& p) {
    return {static_cast<double>(p.dsps), static_cast<double>(p.brams18k),
            p.bw_gbps, static_cast<double>(p.luts)};
  }
};

/// One cross-branch resource distribution candidate (an `rd` of Algorithm
/// 1): per-branch fractions of each budget, each summing to <= 1.
struct ResourceDistribution {
  std::vector<double> c_frac;
  std::vector<double> m_frac;
  std::vector<double> bw_frac;

  /// Branch j's absolute slice of `budget`.
  ResourceBudget slice(const ResourceBudget& budget, int branch) const;
};

/// Size metrics of the dynamic design space (for reports/tests): number of
/// configurable dimensions and a log10 estimate of the discrete
/// configuration count.
struct DesignSpaceStats {
  int branches = 0;
  int stages = 0;
  /// The customization (datapath) axis, plus batch per branch, plus 3
  /// factors per stage.
  int dimensions = 0;
  double log10_configs = 0;  ///< log10 of prod over stages of |divisor triples|
};

DesignSpaceStats design_space_stats(const arch::ReorganizedModel& model,
                                    int max_batch = 8);

}  // namespace fcad::dse
