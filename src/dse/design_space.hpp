// The multi-branch dynamic design space (Table III): per-branch batch size
// and per-stage 3D parallelism factors, with user customization (quantization
// Q, branch-wise target batch sizes, branch priorities) and the three global
// resource budgets {Cmax, Mmax, BWmax}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "nn/dtype.hpp"
#include "util/status.hpp"

namespace fcad::dse {

/// User customization (Table III, bottom rows).
struct Customization {
  nn::DataType quantization = nn::DataType::kInt8;  ///< Q (sets DW and WW)
  std::vector<int> batch_sizes;     ///< BatchSize_1..B (default all 1)
  std::vector<double> priorities;   ///< P_1..B (default all 1.0)

  /// Expands defaults for a model with `num_branches` branches; fails when a
  /// user-supplied vector has the wrong arity or non-positive entries.
  Status normalize(int num_branches);
};

/// The resource budget triple (Cmax = DSPs, Mmax = BRAM18K, BWmax = GB/s).
struct ResourceBudget {
  double c = 0;
  double m = 0;
  double bw = 0;

  static ResourceBudget from_platform(const arch::Platform& p) {
    return {static_cast<double>(p.dsps), static_cast<double>(p.brams18k),
            p.bw_gbps};
  }
};

/// One cross-branch resource distribution candidate (an `rd` of Algorithm
/// 1): per-branch fractions of each budget, each summing to <= 1.
struct ResourceDistribution {
  std::vector<double> c_frac;
  std::vector<double> m_frac;
  std::vector<double> bw_frac;

  /// Branch j's absolute slice of `budget`.
  ResourceBudget slice(const ResourceBudget& budget, int branch) const;
};

/// Size metrics of the dynamic design space (for reports/tests): number of
/// configurable dimensions and a log10 estimate of the discrete
/// configuration count.
struct DesignSpaceStats {
  int branches = 0;
  int stages = 0;
  int dimensions = 0;        ///< batch + 3 factors per stage
  double log10_configs = 0;  ///< log10 of prod over stages of |divisor triples|
};

DesignSpaceStats design_space_stats(const arch::ReorganizedModel& model,
                                    int max_batch = 8);

}  // namespace fcad::dse
