#include "dse/frontier.hpp"

namespace fcad::dse {
namespace {

ObjectiveInput input_from_search(const SearchResult& result) {
  ObjectiveInput input;
  input.fps.reserve(result.eval.branches.size());
  for (const arch::BranchEval& be : result.eval.branches) {
    input.fps.push_back(be.fps);
  }
  input.priorities.assign(input.fps.size(), 1.0);
  input.unmet_targets = result.feasible ? 0 : 1;
  input.min_fps = result.eval.min_fps;
  input.dsps = result.eval.dsps;
  input.brams = result.eval.brams;
  input.bw_gbps = result.eval.bw_gbps;
  input.accuracy_proxy = result.eval.accuracy_proxy;
  return input;
}

}  // namespace

std::vector<FrontierPoint> extract_frontier(
    const std::vector<ObjectiveInput>& candidates,
    const Objective::Term& term_a, const Objective::Term& term_b) {
  FCAD_CHECK_MSG(term_a.value && term_b.value,
                 "extract_frontier: term without a value function");
  std::vector<FrontierPoint> points;
  points.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    FrontierPoint point;
    point.index = i;
    point.a = term_a.weight * term_a.value(candidates[i]);
    point.b = term_b.weight * term_b.value(candidates[i]);
    point.feasible = candidates[i].unmet_targets == 0;
    points.push_back(point);
  }
  for (FrontierPoint& p : points) {
    if (!p.feasible) continue;
    bool dominated = false;
    for (const FrontierPoint& q : points) {
      if (q.index == p.index || !q.feasible) continue;
      const bool no_worse = q.a >= p.a && q.b >= p.b;
      const bool strictly_better = q.a > p.a || q.b > p.b;
      if (no_worse && strictly_better) {
        dominated = true;
        break;
      }
    }
    p.on_frontier = !dominated;
  }
  return points;
}

std::vector<ObjectiveInput> frontier_candidates(const SearchOutcome& outcome) {
  std::vector<ObjectiveInput> candidates;
  switch (outcome.kind) {
    case SearchKind::kSweep:
      candidates.reserve(outcome.sweep.size());
      for (const SweepPoint& point : outcome.sweep) {
        candidates.push_back(input_from_search(point.result));
      }
      break;
    case SearchKind::kTraffic: {
      ObjectiveInput input = input_from_search(outcome.traffic.search);
      input.has_serving = true;
      input.users_served = outcome.traffic.users_served;
      input.p99_latency_us = outcome.traffic.stats.latency.p99;
      input.sla_violation_rate = outcome.traffic.stats.sla_violation_rate;
      candidates.push_back(input);
      break;
    }
    case SearchKind::kOptimize:
    case SearchKind::kMaxBatch:
    case SearchKind::kConvergence:
      candidates.push_back(input_from_search(outcome.search));
      break;
  }
  return candidates;
}

std::vector<FrontierPoint> extract_frontier(const SearchOutcome& outcome,
                                            const Objective::Term& term_a,
                                            const Objective::Term& term_b) {
  return extract_frontier(frontier_candidates(outcome), term_a, term_b);
}

}  // namespace fcad::dse
