// Fitness memoization for the DSE inner loop.
//
// The cross-branch searches evaluate continuous resource distributions, but
// the in-branch greedy pass (Algorithm 2) quantizes each candidate into a
// *discrete* accelerator configuration — and as a swarm converges, many
// distinct distributions collapse onto the same configuration. Caching the
// evaluation + fitness behind a hash of that discrete configuration makes
// repeated configs across generations free.
//
// Thread-safety and determinism: the cache is sharded behind mutexes so
// concurrent candidate evaluations can share it. Every entry is a pure
// function of its key (within one search context — fixed model, budget,
// customization, and fitness weights), so whichever thread inserts first,
// readers observe bit-identical values; results cannot depend on thread
// count or scheduling. Use one cache per search; never share across searches
// with different contexts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "arch/elastic.hpp"
#include "obs/metrics.hpp"

namespace fcad::dse {

class FitnessCache {
 public:
  /// 128-bit key so accidental collisions are out of the picture even for
  /// million-candidate searches.
  struct Key {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const Key& other) const {
      return lo == other.lo && hi == other.hi;
    }
  };

  struct Entry {
    arch::AcceleratorEval eval;
    double fitness = 0;
    bool feasible = false;
  };

  /// Key of a discrete accelerator configuration. `met_mask` carries the
  /// per-branch met-batch-target flags (bit b = branch b met), which are
  /// decided by the in-branch pass, not by the config itself; `mode` is the
  /// evaluation mode the entry was computed under.
  static Key config_key(const arch::AcceleratorConfig& config,
                        std::uint64_t met_mask, arch::EvalMode mode);

  /// Returns the cached entry or nullptr, bumping the hit/miss counters
  /// (this cache's own, plus the process-wide totals under
  /// `dse.fitness_cache.*` in obs::MetricsRegistry::global()).
  std::shared_ptr<const Entry> find(const Key& key);

  /// Inserts `entry` unless the key is already resident (first writer wins —
  /// both writers computed identical values) and returns the resident entry.
  std::shared_ptr<const Entry> insert(const Key& key, Entry entry);

  std::int64_t hits() const { return hits_.value(); }
  std::int64_t misses() const { return misses_.value(); }

 private:
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, std::shared_ptr<const Entry>, KeyHash> map;
  };

  Shard& shard_for(const Key& key) {
    return shards_[key.lo % kShards];
  }

  static constexpr std::size_t kShards = 16;
  std::array<Shard, kShards> shards_;
  /// Per-search counters (a cache lives for exactly one search); the global
  /// registry additionally accumulates process-wide totals.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter& global_hits_ =
      obs::MetricsRegistry::global().counter("dse.fitness_cache.hits");
  obs::Counter& global_misses_ =
      obs::MetricsRegistry::global().counter("dse.fitness_cache.misses");
};

}  // namespace fcad::dse
