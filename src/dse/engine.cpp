#include "dse/engine.hpp"

#include <algorithm>

namespace fcad::dse {

StatusOr<SearchResult> optimize(const arch::ReorganizedModel& model,
                                DseRequest request) {
  if (Status s = request.customization.normalize(model.num_branches());
      !s.is_ok()) {
    return s;
  }
  request.options.freq_mhz = request.platform.freq_mhz;
  const ResourceBudget budget =
      ResourceBudget::from_platform(request.platform);
  return cross_branch_search(model, budget, request.customization,
                             request.options);
}

ConvergenceStats convergence_study(const arch::ReorganizedModel& model,
                                   const DseRequest& request, int runs) {
  FCAD_CHECK(runs >= 1);
  ConvergenceStats stats;
  stats.runs = runs;
  double min_fitness = 0;
  double max_fitness = 0;
  stats.min_iterations = 1e18;
  for (int r = 0; r < runs; ++r) {
    DseRequest req = request;
    req.options.seed = request.options.seed + 7919ULL * (r + 1);
    auto result = optimize(model, req);
    FCAD_CHECK_MSG(result.is_ok(), result.status().message());
    const double iters = result->trace.convergence_iteration;
    stats.mean_iterations += iters;
    stats.min_iterations = std::min(stats.min_iterations, iters);
    stats.max_iterations = std::max(stats.max_iterations, iters);
    stats.mean_seconds += result->seconds;
    stats.mean_fitness += result->fitness;
    if (r == 0) {
      min_fitness = max_fitness = result->fitness;
    } else {
      min_fitness = std::min(min_fitness, result->fitness);
      max_fitness = std::max(max_fitness, result->fitness);
    }
  }
  stats.mean_iterations /= runs;
  stats.mean_seconds /= runs;
  stats.mean_fitness /= runs;
  stats.fitness_spread = max_fitness - min_fitness;
  return stats;
}

StatusOr<int> max_feasible_batch(const arch::ReorganizedModel& model,
                                 const DseRequest& request, int branch,
                                 int probe_limit) {
  if (branch < 0 || branch >= model.num_branches()) {
    return Status::invalid_argument("max_feasible_batch: bad branch index");
  }
  DseRequest probe = request;
  if (Status s = probe.customization.normalize(model.num_branches());
      !s.is_ok()) {
    return s;
  }

  auto feasible_at = [&](int batch) -> StatusOr<bool> {
    DseRequest r = probe;
    r.customization.batch_sizes[static_cast<std::size_t>(branch)] = batch;
    auto result = optimize(model, std::move(r));
    if (!result.is_ok()) return result.status();
    return result->feasible;
  };

  // Exponential probe upward, then bisect the first infeasible gap.
  auto base = feasible_at(1);
  if (!base.is_ok()) return base.status();
  if (!*base) return 0;
  int lo = 1;  // feasible
  int hi = 1;
  while (hi < probe_limit) {
    hi = std::min(probe_limit, hi * 2);
    auto ok = feasible_at(hi);
    if (!ok.is_ok()) return ok.status();
    if (*ok) {
      lo = hi;
    } else {
      break;
    }
  }
  if (lo == hi) return lo;  // feasible all the way to the probe limit
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    auto ok = feasible_at(mid);
    if (!ok.is_ok()) return ok.status();
    (*ok ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace fcad::dse
