#include "dse/engine.hpp"

#include <algorithm>
#include <utility>

#include "serving/service.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace fcad::dse {

StatusOr<SearchResult> optimize(const arch::ReorganizedModel& model,
                                DseRequest request) {
  if (Status s = request.customization.normalize(model.num_branches());
      !s.is_ok()) {
    return s;
  }
  request.options.freq_mhz = request.platform.freq_mhz;
  const ResourceBudget budget =
      ResourceBudget::from_platform(request.platform);
  return cross_branch_search(model, budget, request.customization,
                             request.options);
}

ConvergenceStats convergence_study(const arch::ReorganizedModel& model,
                                   const DseRequest& request, int runs) {
  FCAD_CHECK(runs >= 1);
  ConvergenceStats stats;
  stats.runs = runs;
  double min_fitness = 0;
  double max_fitness = 0;
  stats.min_iterations = 1e18;
  // The independent searches are the outermost (and cheapest-to-split)
  // parallelism axis: each run is pre-seeded here, executed on the pool, and
  // aggregated below in run order.
  util::ThreadPool& pool = util::ThreadPool::shared(request.options.threads);
  const std::vector<SearchResult> results = pool.parallel_map<SearchResult>(
      runs, [&](std::int64_t r) {
        DseRequest req = request;
        req.options.seed = request.options.seed + 7919ULL *
                           (static_cast<std::uint64_t>(r) + 1);
        auto result = optimize(model, req);
        FCAD_CHECK_MSG(result.is_ok(), result.status().message());
        return std::move(result).value();
      });
  for (int r = 0; r < runs; ++r) {
    const SearchResult& result = results[static_cast<std::size_t>(r)];
    const double iters = result.trace.convergence_iteration;
    stats.mean_iterations += iters;
    stats.min_iterations = std::min(stats.min_iterations, iters);
    stats.max_iterations = std::max(stats.max_iterations, iters);
    stats.mean_seconds += result.seconds;
    stats.mean_fitness += result.fitness;
    if (r == 0) {
      min_fitness = max_fitness = result.fitness;
    } else {
      min_fitness = std::min(min_fitness, result.fitness);
      max_fitness = std::max(max_fitness, result.fitness);
    }
  }
  stats.mean_iterations /= runs;
  stats.mean_seconds /= runs;
  stats.mean_fitness /= runs;
  stats.fitness_spread = max_fitness - min_fitness;
  return stats;
}

StatusOr<int> max_feasible_batch(const arch::ReorganizedModel& model,
                                 const DseRequest& request, int branch,
                                 int probe_limit) {
  if (branch < 0 || branch >= model.num_branches()) {
    return Status::invalid_argument("max_feasible_batch: bad branch index");
  }
  DseRequest probe = request;
  if (Status s = probe.customization.normalize(model.num_branches());
      !s.is_ok()) {
    return s;
  }

  auto feasible_at = [&](int batch) -> StatusOr<bool> {
    DseRequest r = probe;
    r.customization.batch_sizes[static_cast<std::size_t>(branch)] = batch;
    auto result = optimize(model, std::move(r));
    if (!result.is_ok()) return result.status();
    return result->feasible;
  };

  // Exponential probe upward, then bisect the first infeasible gap.
  auto base = feasible_at(1);
  if (!base.is_ok()) return base.status();
  if (!*base) return 0;
  int lo = 1;  // feasible
  int hi = 1;
  while (hi < probe_limit) {
    hi = std::min(probe_limit, hi * 2);
    auto ok = feasible_at(hi);
    if (!ok.is_ok()) return ok.status();
    if (*ok) {
      lo = hi;
    } else {
      break;
    }
  }
  if (lo == hi) return lo;  // feasible all the way to the probe limit
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    auto ok = feasible_at(mid);
    if (!ok.is_ok()) return ok.status();
    (*ok ? lo : hi) = mid;
  }
  return lo;
}

namespace {

/// Replays the traffic profile at `users` concurrent streams on `service`.
StatusOr<serving::ServingStats> replay_traffic(
    const serving::ServiceModel& service, const TrafficProfile& profile,
    int users) {
  serving::WorkloadOptions workload = profile.workload;
  workload.users = users;
  workload.branches = service.num_branches();
  auto requests = serving::generate_workload(workload);
  if (!requests.is_ok()) return requests.status();
  return serving::simulate_fleet(service, *requests, profile.fleet);
}

}  // namespace

StatusOr<TrafficSearchResult> optimize_for_traffic(
    const arch::ReorganizedModel& model, const DseRequest& request,
    const TrafficProfile& profile) {
  if (profile.workload.users < 1) {
    return Status::invalid_argument("optimize_for_traffic: users must be >= 1");
  }
  if (profile.max_batch < 1) {
    return Status::invalid_argument(
        "optimize_for_traffic: max_batch must be >= 1");
  }
  DseRequest base = request;
  if (Status s = base.customization.normalize(model.num_branches());
      !s.is_ok()) {
    return s;
  }
  SlaParams sla = profile.sla;
  sla.p99_bound_us = profile.fleet.sla_bound_us;

  // Probe doubling batch multipliers; each candidate gets its own hardware
  // search, then a serving replay of the traffic profile. Candidates are
  // independent, so they are scored in parallel and reduced in multiplier
  // order below — identical outcome to the sequential probe.
  std::vector<int> multipliers;
  for (int mult = 1; mult <= profile.max_batch; mult *= 2) {
    multipliers.push_back(mult);
  }

  /// Outcome of one batch-multiplier candidate, reduced in probe order.
  struct Candidate {
    bool produced = false;      ///< scored end to end
    bool hard_failed = false;   ///< replay error that aborts the whole search
    Status error;               ///< skip reason or hard error
    TrafficSearchResult result;
  };

  auto score_candidate = [&](int mult) -> Candidate {
    Candidate out;
    DseRequest req = base;
    for (int& b : req.customization.batch_sizes) b *= mult;
    auto search = optimize(model, req);
    if (!search.is_ok()) {
      out.error = search.status();
      return out;
    }

    serving::ServiceModel service;
    if (profile.use_simulator) {
      const sim::SimResult simulated =
          sim::simulate(model, search->config, request.platform);
      service = serving::service_model_from_sim(search->config, simulated);
    } else {
      service = serving::service_model_from_eval(search->config, search->eval);
    }

    auto stats_at = [&](int users) {
      return replay_traffic(service, profile, users);
    };
    auto first = stats_at(profile.workload.users);
    if (!first.is_ok()) {
      out.error = first.status();
      return out;
    }
    serving::ServingStats stats = std::move(*first);
    int users_served = stats.sla_met ? profile.workload.users : 0;

    // Trace-driven workloads ignore the user count (the offered load IS the
    // trace; the count only relabels requests), so scaling it would inflate
    // users_served without changing anything the SLA sees.
    const bool scalable =
        profile.workload.process != serving::ArrivalProcess::kTrace;

    // Bisects (lo meets the SLA, hi does not) to the largest SLA-meeting
    // user count, leaving that count's replay in `best`.
    auto bisect_users = [&](int lo, int hi,
                            serving::ServingStats& best) -> StatusOr<int> {
      while (hi - lo > 1) {
        const int mid = lo + (hi - lo) / 2;
        auto probe = stats_at(mid);
        if (!probe.is_ok()) return probe.status();
        if (probe->sla_met) {
          lo = mid;
          best = std::move(*probe);
        } else {
          hi = mid;
        }
      }
      return lo;
    };

    auto hard_fail = [&](Status status) {
      out.hard_failed = true;
      out.error = std::move(status);
    };
    if (scalable && stats.sla_met &&
        profile.max_users > profile.workload.users) {
      // Maximize the served user count: double to the first SLA miss, then
      // bisect the gap.
      int lo = profile.workload.users;
      int hi = lo;
      while (hi < profile.max_users) {
        hi = std::min(profile.max_users, hi * 2);
        auto probe = stats_at(hi);
        if (!probe.is_ok()) {
          hard_fail(probe.status());
          return out;
        }
        if (probe->sla_met) {
          lo = hi;
          stats = std::move(*probe);
        } else {
          break;
        }
      }
      auto served = bisect_users(lo, hi, stats);
      if (!served.is_ok()) {
        hard_fail(served.status());
        return out;
      }
      users_served = *served;
    } else if (scalable && !stats.sla_met && profile.workload.users > 1) {
      // Over capacity at the requested count: find the largest user count
      // this candidate can still serve within the bound.
      int hi = profile.workload.users;
      int lo = 0;
      serving::ServingStats lo_stats;
      for (int probe_users = hi / 2; probe_users >= 1; probe_users /= 2) {
        auto probe = stats_at(probe_users);
        if (!probe.is_ok()) {
          hard_fail(probe.status());
          return out;
        }
        if (probe->sla_met) {
          lo = probe_users;
          lo_stats = std::move(*probe);
          break;
        }
        hi = probe_users;
      }
      if (lo >= 1) {
        auto served = bisect_users(lo, hi, lo_stats);
        if (!served.is_ok()) {
          hard_fail(served.status());
          return out;
        }
        users_served = *served;
        stats = std::move(lo_stats);
      }
      // lo == 0: not even one user fits; keep the diagnostic stats at the
      // requested count.
    }

    out.result.sla_fitness = sla_fitness_score(
        users_served, stats.latency.p99, stats.sla_violation_rate, sla);
    out.result.search = std::move(*search);
    out.result.batch_sizes = req.customization.batch_sizes;
    out.result.users_served = users_served;
    out.result.sla_met = stats.sla_met;
    out.result.stats = std::move(stats);
    out.produced = true;
    return out;
  };

  util::ThreadPool& pool = util::ThreadPool::shared(request.options.threads);
  std::vector<Candidate> candidates = pool.parallel_map<Candidate>(
      static_cast<std::int64_t>(multipliers.size()), [&](std::int64_t i) {
        return score_candidate(multipliers[static_cast<std::size_t>(i)]);
      });

  bool have_best = false;
  TrafficSearchResult best;
  Status last_error =
      Status::infeasible("optimize_for_traffic: no candidate produced a design");
  for (Candidate& candidate : candidates) {
    if (candidate.hard_failed) return candidate.error;
    if (!candidate.produced) {
      last_error = candidate.error;
      continue;
    }
    if (!have_best || candidate.result.sla_fitness > best.sla_fitness) {
      best = std::move(candidate.result);
      have_best = true;
    }
  }
  if (!have_best) return last_error;
  return best;
}

}  // namespace fcad::dse
