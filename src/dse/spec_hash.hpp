// 128-bit fingerprint of a SearchSpec, for spec-keyed artifact caching
// (core::Pipeline): two runs with the same spec hash against the same model
// and platform produce bit-identical SearchOutcomes, so a cached
// SearchArtifact can stand in for re-running the search.
//
// The hash covers every field that influences results — kind, strategy
// name, customization, swarm options (including the seed and fitness
// weights), the kind-specific payloads (traffic/sweep/batch/convergence) —
// and deliberately excludes fields that do not: RunControl (threads never
// change results; progress observers are pure observers) and the
// progress_label. Two caveats the caller owns:
//   * a RunControl deadline makes results timing-dependent — Pipeline skips
//     the artifact cache for deadline-bearing specs;
//   * a custom Objective hashes by its describe() string (term names +
//     weights); two different TermFns with identical descriptions would
//     collide, so describe custom terms distinctly.
#pragma once

#include "dse/search_driver.hpp"
#include "util/hash.hpp"

namespace fcad::dse {

util::Hash128 spec_hash(const SearchSpec& spec);

}  // namespace fcad::dse
