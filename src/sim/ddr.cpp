#include "sim/ddr.hpp"

#include <algorithm>
#include <cmath>

#include "util/status.hpp"

namespace fcad::sim {

DdrModel::DdrModel(double bytes_per_cycle, double congestion)
    : bytes_per_cycle_(bytes_per_cycle), congestion_(congestion) {
  FCAD_CHECK(bytes_per_cycle_ > 0);
  FCAD_CHECK(congestion_ >= 1.0);
}

std::int64_t DdrModel::cycles(std::int64_t bytes) const {
  if (bytes <= 0) return 0;
  return static_cast<std::int64_t>(
      std::ceil(static_cast<double>(bytes) * congestion_ / bytes_per_cycle_));
}

double DdrModel::congestion_for(double demand_bytes_per_s,
                                double capacity_bytes_per_s) {
  FCAD_CHECK(capacity_bytes_per_s > 0);
  return std::max(1.0, demand_bytes_per_s / capacity_bytes_per_s);
}

}  // namespace fcad::sim
