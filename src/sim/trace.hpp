// Rendering of simulator results: per-stage utilization charts and CSV
// export, so a user can see where a generated accelerator spends its cycles.
#pragma once

#include <string>

#include "arch/reorg.hpp"
#include "sim/simulator.hpp"
#include "util/csv.hpp"

namespace fcad::sim {

/// ASCII utilization chart: one bar per stage showing busy vs stall share of
/// the steady-state frame period, annotated with the stage name and owner.
std::string utilization_chart(const arch::ReorganizedModel& model,
                              const SimResult& result, int bar_width = 40);

/// CSV with one row per stage: branch, stage name, busy cycles, stall
/// cycles, utilization.
CsvWriter to_csv(const arch::ReorganizedModel& model, const SimResult& result);

}  // namespace fcad::sim
