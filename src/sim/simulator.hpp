// Row-level cycle simulator of the multi-pipeline elastic accelerator.
//
// This is the reproduction's substitute for the paper's board-level
// implementations: per pipeline stage it replays every output row with
// ceil-quantized tile compute, line-buffer-gated producer/consumer
// handshakes (the fine-grained pipelining adopted from DNNBuilder),
// double-buffered per-frame weight streams, per-row bias/input streams, and
// a shared DDR with congestion. The gap between arch::evaluate(kAnalytical)
// and this simulator is what Figs. 6-7 quantify as estimation error.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/elastic.hpp"
#include "arch/platform.hpp"

namespace fcad::sim {

struct SimOptions {
  int frames = 4;               ///< simulated frames (steady state by the end)
  int row_overhead_cycles = 8;  ///< control overhead per row
  /// Accumulator drain / weight-select penalty per output-channel tile per
  /// row — the dominant source of the few-percent analytical-vs-real gap.
  int tile_overhead_cycles = 12;
  /// Achievable fraction of the DDR's nominal bandwidth (burst boundaries,
  /// refresh, arbitration).
  double ddr_efficiency = 0.85;
  int ddr_passes = 2;           ///< congestion fix-point iterations
};

struct BranchSimResult {
  double fps = 0;              ///< steady-state, all batch copies
  double latency_cycles = 0;   ///< first-frame completion (pipeline fill)
  double efficiency = 0;       ///< Eq. 3 at the simulated throughput
  double gops = 0;
};

struct StageSimStats {
  int stage = -1;
  std::int64_t busy_cycles = 0;   ///< MAC-active cycles, one frame
  std::int64_t stall_cycles = 0;  ///< waiting on inputs / DDR, one frame
};

struct SimResult {
  std::vector<BranchSimResult> branches;
  double min_fps = 0;
  double efficiency = 0;       ///< whole accelerator
  double ddr_demand_gbps = 0;  ///< sustained traffic at simulated FPS
  double ddr_congestion = 1;   ///< final congestion factor applied
  std::vector<StageSimStats> stages;
};

/// Simulates `config` on `model` with the platform's bandwidth and clock.
SimResult simulate(const arch::ReorganizedModel& model,
                   const arch::AcceleratorConfig& config,
                   const arch::Platform& platform, const SimOptions& options = {});

}  // namespace fcad::sim
