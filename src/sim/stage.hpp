// Static per-stage timing model derived from a FusedStage + UnitConfig:
// everything the row-level simulator needs to replay one pipeline stage.
#pragma once

#include <cstdint>

#include "arch/reorg.hpp"
#include "arch/unit.hpp"
#include "nn/dtype.hpp"

namespace fcad::sim {

struct StageSimModel {
  int stage_idx = -1;
  int producer = -1;  ///< producing stage index, -1 = network input

  // Row geometry. The unit computes `conv_rows` output rows; the folded
  // post-op (up-sample / pool) re-maps them onto `final_rows` delivered rows.
  int conv_rows = 1;
  int final_rows = 1;
  int in_rows = 1;
  int slabs = 1;          ///< H-partition: slabs processed in parallel
  int rows_per_slab = 1;  ///< ceil(conv_rows / slabs)
  int stride = 1;
  int kernel = 1;

  enum class PostMap { kNone, kUpsample, kPool };
  PostMap post = PostMap::kNone;
  int pool_stride = 1;
  int pool_kernel = 1;

  /// Cycles of MAC work per computed conv row (ceil-quantized tiles).
  std::int64_t row_cycles = 0;
  /// Output-channel tiles per row: the accumulator bank drains once per
  /// output tile (after all input tiles accumulated), paying a pipeline
  /// penalty in the simulator.
  std::int64_t out_tile_passes = 1;
  /// Streamed bytes tied to a row's output pixels (untied bias slices).
  std::int64_t bias_bytes_per_row = 0;
  /// Streamed bytes tied to a row's external input (head stages only).
  std::int64_t input_bytes_per_row = 0;
  /// Per-frame weight stream (0 when the kernel set is BRAM-resident).
  std::int64_t weight_fetch_bytes = 0;

  /// Which of *this* stage's conv rows yields its delivered row `final_row`.
  int conv_row_for_final(int final_row) const;
  /// Last producer *delivered* row this stage must see before computing its
  /// own conv row `r` (same-padding halo included).
  int needed_input_row(int r) const;
};

/// Builds the timing model for `stage_idx` of `model` under `cfg`.
StageSimModel build_stage_sim(const arch::ReorganizedModel& model,
                              int stage_idx, const arch::UnitConfig& cfg,
                              nn::DataType dw, nn::DataType ww);

}  // namespace fcad::sim
