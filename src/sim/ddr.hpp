// Shared external-memory model for the simulator: converts byte counts to
// cycles at the platform's DDR bandwidth, with a congestion factor for
// oversubscription (all pipelines share one memory controller).
#pragma once

#include <cstdint>

namespace fcad::sim {

class DdrModel {
 public:
  /// `bytes_per_cycle` at the accelerator clock; `congestion` >= 1 scales
  /// service time when aggregate demand exceeds capacity.
  DdrModel(double bytes_per_cycle, double congestion = 1.0);

  /// Cycles to transfer `bytes` (ceil, including congestion).
  std::int64_t cycles(std::int64_t bytes) const;

  double bytes_per_cycle() const { return bytes_per_cycle_; }
  double congestion() const { return congestion_; }

  /// Congestion factor for a measured demand (bytes/s) against capacity
  /// (bytes/s): max(1, demand / capacity).
  static double congestion_for(double demand_bytes_per_s,
                               double capacity_bytes_per_s);

 private:
  double bytes_per_cycle_;
  double congestion_;
};

}  // namespace fcad::sim
