#include "sim/stage.hpp"

#include <algorithm>

#include "arch/resource_model.hpp"

namespace fcad::sim {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

int StageSimModel::conv_row_for_final(int final_row) const {
  switch (post) {
    case PostMap::kNone:
      return std::min(final_row, conv_rows - 1);
    case PostMap::kUpsample:
      return std::min(final_row / 2, conv_rows - 1);
    case PostMap::kPool:
      return std::min(final_row * pool_stride + pool_kernel - 1,
                      conv_rows - 1);
  }
  return conv_rows - 1;
}

int StageSimModel::needed_input_row(int r) const {
  // Same padding: output row r reads input rows [r*stride - pad_top,
  // r*stride - pad_top + K - 1]; the last of them gates the computation.
  const int pad_top = (kernel - stride) / 2;
  const int last = r * stride - pad_top + kernel - 1;
  return std::clamp(last, 0, in_rows - 1);
}

StageSimModel build_stage_sim(const arch::ReorganizedModel& model,
                              int stage_idx, const arch::UnitConfig& cfg,
                              nn::DataType dw, nn::DataType ww) {
  const arch::FusedStage& st = model.stage(stage_idx);
  FCAD_CHECK_MSG(arch::fits_stage(cfg, st), "sim: config does not fit stage");

  StageSimModel m;
  m.stage_idx = stage_idx;
  const auto& ins = model.fused.stage_inputs[static_cast<std::size_t>(stage_idx)];
  m.producer = ins.empty() ? -1 : ins[0];

  m.conv_rows = st.out_h;
  m.final_rows = st.final_h;
  m.in_rows = st.in_h;
  m.slabs = cfg.h;
  m.rows_per_slab = static_cast<int>(ceil_div(st.out_h, cfg.h));
  m.stride = st.stride;
  m.kernel = st.kernel;

  if (st.has_upsample) {
    m.post = StageSimModel::PostMap::kUpsample;
  } else if (st.has_pool) {
    m.post = StageSimModel::PostMap::kPool;
    // The folded pool's params are not kept on FusedStage; recover the
    // stride from the row ratio (kernel ~= stride for the nets we model).
    m.pool_stride = std::max(1, st.out_h / std::max(1, st.final_h));
    m.pool_kernel = m.pool_stride;
  }

  // Per-conv-row compute: input tiles x output tiles x W x K^2 cycles.
  const std::int64_t in_tiles = ceil_div(st.in_ch, cfg.cpf);
  const std::int64_t out_tiles = ceil_div(st.out_ch, cfg.kpf);
  m.row_cycles = in_tiles * out_tiles * st.out_w *
                 static_cast<std::int64_t>(st.kernel) * st.kernel;
  m.out_tile_passes = out_tiles;

  // DDR streams.
  if (st.has_bias) {
    const std::int64_t bias_bytes = st.bias_params * nn::bytes(ww);
    m.bias_bytes_per_row = ceil_div(bias_bytes, st.out_h);
  }
  if (m.producer == -1) {
    const std::int64_t in_bytes = static_cast<std::int64_t>(st.in_ch) *
                                  st.in_h * st.in_w * nn::bytes(dw);
    m.input_bytes_per_row = ceil_div(in_bytes, st.out_h);
  }
  if (!arch::weights_resident(st, ww)) {
    m.weight_fetch_bytes = st.weight_params * nn::bytes(ww);
  }
  return m;
}

}  // namespace fcad::sim
