#include "sim/simulator.hpp"

#include <algorithm>

#include "sim/ddr.hpp"
#include "sim/stage.hpp"

namespace fcad::sim {
namespace {

struct StageState {
  StageSimModel model;
  int owner_branch = -1;
  /// Conv-row completion times for the previous and current frame.
  std::vector<std::int64_t> prev_rows;
  std::vector<std::int64_t> rows;
  std::int64_t fetch_done_prev = 0;
  std::int64_t busy = 0;
  std::int64_t stall = 0;
};

/// One full multi-pipeline simulation at a fixed DDR congestion factor.
/// Returns per-branch frame completion times (frames x branches).
std::vector<std::vector<std::int64_t>> run_pass(
    const arch::ReorganizedModel& model, const arch::AcceleratorConfig& config,
    const DdrModel& ddr, const SimOptions& opt,
    std::vector<StageState>& states) {
  const int num_stages = static_cast<int>(model.fused.stages.size());

  // Build stage timing models, indexed by stage id.
  states.assign(static_cast<std::size_t>(num_stages), {});
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    const arch::BranchPipeline& br = model.branches[b];
    const arch::BranchHardwareConfig& hw = config.branches[b];
    for (std::size_t i = 0; i < br.stages.size(); ++i) {
      StageState& st = states[static_cast<std::size_t>(br.stages[i])];
      st.model = build_stage_sim(model, br.stages[i], hw.units[i],
                                 config.datapath.dw, config.datapath.ww);
      st.owner_branch = static_cast<int>(b);
    }
  }

  std::vector<std::vector<std::int64_t>> completions(
      static_cast<std::size_t>(opt.frames),
      std::vector<std::int64_t>(model.branches.size(), 0));

  for (int frame = 0; frame < opt.frames; ++frame) {
    for (int s = 0; s < num_stages; ++s) {
      StageState& st = states[static_cast<std::size_t>(s)];
      const StageSimModel& m = st.model;
      FCAD_CHECK_MSG(st.owner_branch >= 0, "stage not owned by any branch");

      st.rows.assign(static_cast<std::size_t>(m.conv_rows), 0);

      // Double-buffered weight prefetch: fetch for frame n pipelines behind
      // fetch n-1; frame n cannot begin before its fetch lands.
      const std::int64_t fetch_cycles = ddr.cycles(m.weight_fetch_bytes);
      const std::int64_t fetch_done =
          (frame == 0 ? 0 : st.fetch_done_prev) + fetch_cycles;
      st.fetch_done_prev = fetch_done;

      const std::int64_t row_ddr =
          ddr.cycles(m.bias_bytes_per_row + m.input_bytes_per_row);
      const std::int64_t step =
          std::max(m.row_cycles +
                       m.out_tile_passes * opt.tile_overhead_cycles,
                   row_ddr) +
          opt.row_overhead_cycles;

      const StageState* prod =
          m.producer >= 0 ? &states[static_cast<std::size_t>(m.producer)]
                          : nullptr;

      for (int slab = 0; slab < m.slabs; ++slab) {
        const int row_begin = slab * m.rows_per_slab;
        const int row_end = std::min(m.conv_rows, row_begin + m.rows_per_slab);
        // The slab's engines are busy with the previous frame until its last
        // row completed there.
        std::int64_t prev_end = 0;
        if (frame > 0 && row_end > row_begin) {
          prev_end = st.prev_rows[static_cast<std::size_t>(row_end - 1)];
        }
        std::int64_t t = std::max(prev_end, fetch_done);
        for (int r = row_begin; r < row_end; ++r) {
          std::int64_t avail = 0;
          if (prod != nullptr) {
            const int in_row = m.needed_input_row(r);
            const int prod_row = prod->model.conv_row_for_final(in_row);
            avail = prod->rows[static_cast<std::size_t>(prod_row)];
          }
          const std::int64_t start = std::max(t, avail);
          st.stall += start - t;
          t = start + step;
          st.busy += m.row_cycles;
          st.rows[static_cast<std::size_t>(r)] = t;
        }
      }
      st.prev_rows = st.rows;
    }

    for (std::size_t b = 0; b < model.branches.size(); ++b) {
      const int out_stage =
          model.fused.output_stages[static_cast<std::size_t>(b)];
      const StageState& st = states[static_cast<std::size_t>(out_stage)];
      completions[static_cast<std::size_t>(frame)][b] = st.rows.back();
    }
  }
  return completions;
}

}  // namespace

SimResult simulate(const arch::ReorganizedModel& model,
                   const arch::AcceleratorConfig& config,
                   const arch::Platform& platform, const SimOptions& options) {
  FCAD_CHECK(options.frames >= 2);
  FCAD_CHECK_MSG(config.branches.size() == model.branches.size(),
                 "sim: config arity mismatch");
  const double freq_hz = config.freq_mhz * 1e6;
  const double bytes_per_cycle =
      platform.bw_gbps * 1e9 * options.ddr_efficiency / freq_hz;

  // Static resource view (DSP counts for efficiency, stream totals for the
  // congestion fix-point).
  const arch::AcceleratorEval res_eval =
      arch::evaluate(model, config, arch::EvalMode::kQuantized);

  double congestion = 1.0;
  SimResult result;
  std::vector<StageState> states;
  for (int pass = 0; pass < std::max(1, options.ddr_passes); ++pass) {
    const DdrModel ddr(bytes_per_cycle, congestion);
    const auto completions = run_pass(model, config, ddr, options, states);

    result.branches.assign(model.branches.size(), {});
    const double beta = config.datapath.beta_ops_per_dsp();
    double total_gops = 0;
    double demand_bytes_per_s = 0;
    for (std::size_t b = 0; b < model.branches.size(); ++b) {
      const arch::BranchPipeline& br = model.branches[b];
      const int batch = config.branches[b].batch;
      const std::int64_t last =
          completions[static_cast<std::size_t>(options.frames - 1)][b];
      const std::int64_t prev =
          completions[static_cast<std::size_t>(options.frames - 2)][b];
      const double period = static_cast<double>(last - prev);
      BranchSimResult& bs = result.branches[b];
      bs.latency_cycles = static_cast<double>(completions[0][b]);
      bs.fps = period > 0 ? batch * freq_hz / period : 0.0;
      bs.gops = 2.0 * static_cast<double>(br.macs_owned) * bs.fps * 1e-9;
      const int dsps = res_eval.branches[b].dsps;
      bs.efficiency =
          dsps > 0 ? bs.gops * 1e9 / (beta * dsps * freq_hz) : 0.0;
      total_gops += bs.gops;

      // Sustained DDR demand at the simulated rate.
      double param_bytes = 0;
      double feature_bytes = 0;
      for (const arch::StageEval& se : res_eval.branches[b].stages) {
        param_bytes += static_cast<double>(se.res.param_stream_bytes);
        feature_bytes += static_cast<double>(se.res.feature_stream_bytes);
      }
      demand_bytes_per_s +=
          param_bytes * (bs.fps / batch) + feature_bytes * bs.fps;
    }
    result.min_fps = result.branches.empty() ? 0 : result.branches[0].fps;
    for (const BranchSimResult& bs : result.branches) {
      result.min_fps = std::min(result.min_fps, bs.fps);
    }
    result.efficiency =
        res_eval.dsps > 0
            ? total_gops * 1e9 / (beta * res_eval.dsps * freq_hz)
            : 0.0;
    result.ddr_demand_gbps = demand_bytes_per_s * 1e-9;
    result.ddr_congestion = congestion;

    const double next_congestion =
        DdrModel::congestion_for(demand_bytes_per_s, platform.bw_gbps * 1e9);
    if (next_congestion <= congestion + 1e-9) break;  // fix-point reached
    congestion = next_congestion;
  }

  result.stages.clear();
  for (const StageState& st : states) {
    if (st.owner_branch < 0) continue;
    StageSimStats ss;
    ss.stage = st.model.stage_idx;
    // busy/stall accumulated over all frames; report per-frame averages.
    ss.busy_cycles = st.busy / options.frames;
    ss.stall_cycles = st.stall / options.frames;
    result.stages.push_back(ss);
  }
  return result;
}

}  // namespace fcad::sim
