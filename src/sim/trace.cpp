#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace fcad::sim {
namespace {

double stage_utilization(const StageSimStats& ss) {
  const double total =
      static_cast<double>(ss.busy_cycles) + static_cast<double>(ss.stall_cycles);
  return total > 0 ? static_cast<double>(ss.busy_cycles) / total : 0.0;
}

}  // namespace

std::string utilization_chart(const arch::ReorganizedModel& model,
                              const SimResult& result, int bar_width) {
  FCAD_CHECK(bar_width >= 4);
  std::size_t name_width = 0;
  for (const StageSimStats& ss : result.stages) {
    name_width = std::max(
        name_width,
        model.stage(ss.stage).name.size());
  }

  std::ostringstream os;
  os << "stage utilization (#=busy, .=stall share of active time)\n";
  for (const StageSimStats& ss : result.stages) {
    const arch::FusedStage& st = model.stage(ss.stage);
    const double util = stage_utilization(ss);
    const int busy_cells =
        static_cast<int>(util * bar_width + 0.5);
    os << "  Br." << model.owner[static_cast<std::size_t>(ss.stage)] + 1 << ' '
       << st.name << std::string(name_width - st.name.size(), ' ') << " |"
       << std::string(static_cast<std::size_t>(busy_cells), '#')
       << std::string(static_cast<std::size_t>(bar_width - busy_cells), '.')
       << "| " << format_percent(util, 1) << '\n';
  }
  return os.str();
}

CsvWriter to_csv(const arch::ReorganizedModel& model,
                 const SimResult& result) {
  CsvWriter csv({"branch", "stage", "busy_cycles", "stall_cycles",
                 "utilization"});
  for (const StageSimStats& ss : result.stages) {
    const arch::FusedStage& st = model.stage(ss.stage);
    csv.add_row({std::to_string(model.owner[static_cast<std::size_t>(ss.stage)] + 1),
                 st.name, std::to_string(ss.busy_cycles),
                 std::to_string(ss.stall_cycles),
                 format_fixed(stage_utilization(ss), 4)});
  }
  return csv;
}

}  // namespace fcad::sim
