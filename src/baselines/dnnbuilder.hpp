// Reimplementation of DNNBuilder's accelerator generation (Zhang et al.,
// ICCAD'18) at the fidelity the F-CAD paper analyzes it (Sec. III):
//  * unfolded architecture — one dedicated unit per pipeline stage;
//  * two-level parallelism only (cpf x kpf), maximum parallel factor
//    InCh * OutCh per layer — no H-partition;
//  * resource allocation proportional to per-layer computation, so scaling
//    the budget past a capped bottleneck layer inflates utilization without
//    improving throughput (the Fig. 3 plateau).
#pragma once

#include <vector>

#include "arch/elastic.hpp"
#include "arch/platform.hpp"

namespace fcad::baselines {

struct DnnBuilderLayer {
  int stage = -1;
  arch::UnitConfig cfg;         ///< h always 1
  std::int64_t pf = 1;          ///< cpf * kpf
  bool capped = false;          ///< pf reached InCh * OutCh
  int dsps = 0;
  int brams = 0;
  double cycles = 0;            ///< quantized stage latency
  double latency_ms = 0;
};

struct DnnBuilderResult {
  std::vector<DnnBuilderLayer> layers;  ///< one per fused stage
  int dsps = 0;
  int brams = 0;
  double fps = 0;
  double gops = 0;
  double efficiency = 0;
  double bottleneck_cycles = 0;
};

/// Generates and evaluates a DNNBuilder-style accelerator for the whole
/// network (all branches laid out as dedicated stage pipelines, shared
/// stages instantiated once) under `platform`'s budgets.
DnnBuilderResult run_dnnbuilder(const arch::ReorganizedModel& model,
                                const arch::Platform& platform,
                                nn::DataType dtype);

}  // namespace fcad::baselines
