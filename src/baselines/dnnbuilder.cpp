#include "baselines/dnnbuilder.hpp"

#include <algorithm>
#include <cmath>

#include "arch/resource_model.hpp"

namespace fcad::baselines {
namespace {

struct Allocation {
  std::vector<DnnBuilderLayer> layers;
  int dsps = 0;
  int brams = 0;
};

/// Ops-proportional allocation at scale `lambda` (parallel lanes per MAC of
/// the heaviest layer), quantized through get_pf_2d and capped per layer.
Allocation allocate(const arch::ReorganizedModel& model, double lambda,
                    nn::DataType dtype) {
  Allocation alloc;
  std::int64_t max_macs = 1;
  for (const arch::FusedStage& st : model.fused.stages) {
    max_macs = std::max(max_macs, st.macs);
  }
  for (std::size_t s = 0; s < model.fused.stages.size(); ++s) {
    const arch::FusedStage& st = model.fused.stages[s];
    DnnBuilderLayer layer;
    layer.stage = static_cast<int>(s);
    const double share =
        lambda * static_cast<double>(st.macs) / static_cast<double>(max_macs);
    const std::int64_t target =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(std::ceil(share)));
    layer.cfg = arch::get_pf_2d(target, st);
    layer.pf = layer.cfg.lanes();
    layer.capped =
        layer.pf >= static_cast<std::int64_t>(st.max_cpf()) * st.max_kpf();

    arch::UnitStreamContext ctx;
    ctx.reads_external_input =
        model.fused.stage_inputs[s].empty();
    ctx.writes_external_output = !model.fused.stage_outputs[s].empty();
    const arch::UnitResources res =
        arch::unit_resources(st, layer.cfg, dtype, dtype, ctx);
    layer.dsps = res.dsps;
    layer.brams = res.brams;
    layer.cycles =
        static_cast<double>(arch::cycles_quantized(st, layer.cfg));
    alloc.dsps += layer.dsps;
    alloc.brams += layer.brams;
    alloc.layers.push_back(layer);
  }
  return alloc;
}

}  // namespace

DnnBuilderResult run_dnnbuilder(const arch::ReorganizedModel& model,
                                const arch::Platform& platform,
                                nn::DataType dtype) {
  // Largest ops-proportional scale that fits both DSP and BRAM budgets.
  // lambda is lanes on the heaviest layer; it is bounded by that layer's cap
  // times a slack factor, so the bisection range is finite.
  double lo = 0.0;
  double hi = 1.0;
  std::int64_t max_cap = 1;
  for (const arch::FusedStage& st : model.fused.stages) {
    max_cap = std::max(max_cap,
                       static_cast<std::int64_t>(st.max_cpf()) * st.max_kpf());
  }
  hi = static_cast<double>(max_cap);
  auto fits = [&](double lambda) {
    const Allocation a = allocate(model, lambda, dtype);
    return a.dsps <= platform.dsps && a.brams <= platform.brams18k;
  };
  if (!fits(1.0)) {
    // Even unit parallelism everywhere is over budget; report it anyway.
    hi = 1.0;
  } else {
    while (fits(hi) && hi < 4.0 * static_cast<double>(max_cap)) hi *= 2;
    for (int i = 0; i < 48; ++i) {
      const double mid = 0.5 * (lo + hi);
      (fits(mid) ? lo : hi) = mid;
    }
  }
  const Allocation a = allocate(model, std::max(lo, 1.0), dtype);

  DnnBuilderResult result;
  result.layers = a.layers;
  result.dsps = a.dsps;
  result.brams = a.brams;
  const double freq_hz = platform.freq_mhz * 1e6;
  std::int64_t total_mac_ops = 0;  // 2 ops per MAC, matching Eq. 3's peak
  for (std::size_t s = 0; s < model.fused.stages.size(); ++s) {
    total_mac_ops += 2 * model.fused.stages[s].macs;
  }
  for (DnnBuilderLayer& layer : result.layers) {
    layer.latency_ms = layer.cycles / freq_hz * 1e3;
    result.bottleneck_cycles = std::max(result.bottleneck_cycles, layer.cycles);
  }
  result.fps =
      result.bottleneck_cycles > 0 ? freq_hz / result.bottleneck_cycles : 0.0;
  result.gops = static_cast<double>(total_mac_ops) * result.fps * 1e-9;
  const double beta = nn::beta_ops_per_dsp(dtype);
  result.efficiency =
      result.dsps > 0 ? result.gops * 1e9 / (beta * result.dsps * freq_hz)
                      : 0.0;
  return result;
}

}  // namespace fcad::baselines
