#include "baselines/soc865.hpp"

#include <algorithm>
#include <cmath>

namespace fcad::baselines {

Soc865Result run_soc865(const arch::ReorganizedModel& model,
                        const Soc865Params& params) {
  Soc865Result result;
  const double peak_macs_per_s =
      static_cast<double>(params.macs_per_cycle) * params.freq_ghz * 1e9;
  const double cache_bytes = params.cache_mib * 1024.0 * 1024.0;
  const double bw_bytes_per_s = params.ddr_gbps * 1e9;
  const int elem_bytes = nn::bytes(params.dtype);

  double total_s = 0;
  std::int64_t total_ops = 0;
  for (std::size_t s = 0; s < model.fused.stages.size(); ++s) {
    const arch::FusedStage& st = model.fused.stages[s];
    SocLayerTime lt;
    lt.stage = static_cast<int>(s);

    const double compute_s = static_cast<double>(st.macs) / peak_macs_per_s;

    const double in_bytes = static_cast<double>(st.in_ch) * st.in_h * st.in_w *
                            elem_bytes;
    const double out_bytes = static_cast<double>(st.final_ch) * st.final_h *
                             st.final_w * elem_bytes;
    const double weight_bytes =
        static_cast<double>(st.weight_params + st.bias_params) * elem_bytes;
    const double working_set = in_bytes + out_bytes + weight_bytes;

    double traffic = weight_bytes;  // weights always come from DRAM once
    if (working_set > cache_bytes) {
      // Tiled execution re-fetches activations; the re-fetch multiplier
      // grows with how badly the working set overflows the cache.
      lt.overfetch = std::min(params.max_overfetch,
                              std::ceil(working_set / cache_bytes));
      traffic += lt.overfetch * (in_bytes + out_bytes);
    } else {
      traffic += in_bytes + out_bytes;  // first touch still misses
    }
    const double memory_s = traffic / bw_bytes_per_s;

    lt.compute_ms = compute_s * 1e3;
    lt.memory_ms = memory_s * 1e3;
    lt.memory_bound = memory_s > compute_s;
    total_s += std::max(compute_s, memory_s);
    total_ops += 2 * st.macs;
    result.compute_ms += lt.compute_ms;
    result.memory_ms += lt.memory_ms;
    result.layers.push_back(lt);
  }

  result.fps = total_s > 0 ? 1.0 / total_s : 0.0;
  result.gops = static_cast<double>(total_ops) * result.fps * 1e-9;
  // Peak ops = 2 ops per MAC at the full MAC array rate (equivalently Eq. 3
  // with beta = 4 and half the MACs counted as "multipliers").
  const double peak_gops = 2.0 * peak_macs_per_s * 1e-9;
  result.efficiency = result.gops / peak_gops;
  return result;
}

}  // namespace fcad::baselines
