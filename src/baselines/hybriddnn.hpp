// Reimplementation of HybridDNN's folded accelerator (Ye et al., DAC'20) at
// the fidelity the F-CAD paper analyzes it:
//  * one shared compute engine executes all layers sequentially;
//  * the engine scales coarsely — lane counts are powers of two, so the next
//    step up doubles the instance (Sec. III: "requires double-sized
//    accelerator instance to continue scaling");
//  * on-chip buffering grows with the engine, which is what blocks the
//    2048-lane step on ZU9CG's BRAM budget in the paper's Scheme 3.
#pragma once

#include <vector>

#include "arch/reorg.hpp"
#include "arch/platform.hpp"
#include "nn/dtype.hpp"

namespace fcad::baselines {

struct HybridDnnParams {
  /// BRAM blocks per MAC lane (16-bit operands) and fixed overhead,
  /// calibrated against the paper's 512-lane -> 576 BRAM and 1024-lane ->
  /// 1120 BRAM points.
  double brams_per_lane_16 = 1.0625;
  double brams_fixed = 32.0;
  int max_lanes_log2 = 14;
  /// The engine's spatial tiling (Winograd-style output tiles) exposes only
  /// a bounded number of pixels in parallel.
  int max_spf = 16;
  /// Instruction decode / engine reconfiguration between layers.
  double reconfig_cycles = 2000;
  /// Fraction of the engine's BRAM usable as feature ping-pong storage;
  /// feature maps that exceed it spill to DDR between layers.
  double feature_buffer_fraction = 0.5;
  /// Sustained MAC issue rate of the shared engine relative to peak: the
  /// on-the-fly im2col / Winograd transforms and line turnarounds steal
  /// slots. Calibrated so the engine lands in the paper's 70-78%
  /// efficiency band.
  double datapath_efficiency = 0.78;
};

struct HybridDnnLayerExec {
  int stage = -1;
  int cpf = 1, kpf = 1, spf = 1;  ///< chosen engine split for this layer
  double compute_cycles = 0;
  double ddr_cycles = 0;   ///< feature spills + weight stream
  double cycles = 0;       ///< max(compute, ddr) + reconfig
  bool memory_bound = false;
  double utilization = 0;  ///< useful MACs / (lanes * cycles)
};

struct HybridDnnResult {
  int lanes = 0;  ///< MAC lanes of the selected engine
  int dsps = 0;
  int brams = 0;
  double fps = 0;
  double gops = 0;
  double efficiency = 0;
  /// True when the next (doubled) engine fit the DSP budget but not the
  /// BRAM budget — the paper's scaling-stop condition.
  bool bram_blocked_scaling = false;
  std::vector<HybridDnnLayerExec> layers;
};

/// Selects the largest engine that fits `platform` and executes the whole
/// network on it, layer by layer.
HybridDnnResult run_hybriddnn(const arch::ReorganizedModel& model,
                              const arch::Platform& platform,
                              nn::DataType dtype,
                              const HybridDnnParams& params = {});

}  // namespace fcad::baselines
