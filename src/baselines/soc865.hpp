// Analytical model of a Snapdragon-865-class mobile SoC running the decoder
// (Table II, first row). The paper attributes the SoC's poor efficiency to
// its limited cache: HD intermediate feature maps do not fit, forcing
// repeated DDR round-trips. We model each layer as
//   time = max(compute at peak MACs, over-fetched DDR traffic / bandwidth)
// with the over-fetch factor growing with working-set-to-cache ratio.
#pragma once

#include <vector>

#include "arch/reorg.hpp"
#include "nn/dtype.hpp"

namespace fcad::baselines {

struct Soc865Params {
  int macs_per_cycle = 1024;   ///< 8-bit MAC array of the AI engine
  double freq_ghz = 1.45;
  double cache_mib = 2.0;      ///< effectively usable last-level cache
  double ddr_gbps = 12.0;      ///< sustainable (not peak) LPDDR bandwidth
  double max_overfetch = 8.0;  ///< cap on the re-fetch multiplier
  nn::DataType dtype = nn::DataType::kInt8;
};

struct SocLayerTime {
  int stage = -1;
  double compute_ms = 0;
  double memory_ms = 0;
  bool memory_bound = false;
  double overfetch = 1.0;
};

struct Soc865Result {
  double fps = 0;
  double gops = 0;
  double efficiency = 0;    ///< vs the engine's theoretical peak
  double compute_ms = 0;    ///< sum over layers
  double memory_ms = 0;
  std::vector<SocLayerTime> layers;
};

Soc865Result run_soc865(const arch::ReorganizedModel& model,
                        const Soc865Params& params = {});

}  // namespace fcad::baselines
