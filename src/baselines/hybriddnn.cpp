#include "baselines/hybriddnn.hpp"

#include <algorithm>
#include <cmath>

namespace fcad::baselines {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

int engine_dsps(int lanes, nn::DataType dtype) {
  return static_cast<int>(
      ceil_div(lanes, nn::multipliers_per_dsp(dtype)));
}

int engine_brams(int lanes, nn::DataType dtype,
                 const HybridDnnParams& params) {
  // Buffer capacity scales with data width; the calibration points are
  // 16-bit, so 8-bit engines need half the per-lane storage.
  const double per_lane = params.brams_per_lane_16 *
                          (nn::bits(dtype) / 16.0);
  return static_cast<int>(
      std::ceil(params.brams_fixed + per_lane * lanes));
}

/// Best power-of-two split (cpf, kpf, spf) of `lanes` for one layer, with
/// the spatial dimension bounded by the engine's output-tile width.
HybridDnnLayerExec best_split(const arch::FusedStage& st, int lanes,
                              const HybridDnnParams& params) {
  HybridDnnLayerExec best;
  best.compute_cycles = 1e300;
  int log2_lanes = 0;
  while ((1 << (log2_lanes + 1)) <= lanes) ++log2_lanes;
  const std::int64_t k2 =
      static_cast<std::int64_t>(st.kernel) * st.kernel;
  for (int ci = 0; ci <= log2_lanes; ++ci) {
    for (int ki = 0; ki + ci <= log2_lanes; ++ki) {
      const int si = log2_lanes - ci - ki;
      const int cpf = 1 << ci;
      const int kpf = 1 << ki;
      const int spf = 1 << si;
      if (spf > params.max_spf) continue;
      const double cycles = static_cast<double>(
          ceil_div(st.in_ch, cpf) * ceil_div(st.out_ch, kpf) *
          ceil_div(st.out_h, spf) * st.out_w * k2);
      if (cycles < best.compute_cycles) {
        best.compute_cycles = cycles;
        best.cpf = cpf;
        best.kpf = kpf;
        best.spf = spf;
      }
    }
  }
  best.compute_cycles /= params.datapath_efficiency;
  return best;
}

}  // namespace

HybridDnnResult run_hybriddnn(const arch::ReorganizedModel& model,
                              const arch::Platform& platform,
                              nn::DataType dtype,
                              const HybridDnnParams& params) {
  HybridDnnResult result;

  // Coarse-grained engine selection: largest power-of-two lane count that
  // fits both budgets.
  int lanes = 0;
  for (int l = 0; l <= params.max_lanes_log2; ++l) {
    const int candidate = 1 << l;
    if (engine_dsps(candidate, dtype) <= platform.dsps &&
        engine_brams(candidate, dtype, params) <= platform.brams18k) {
      lanes = candidate;
    }
  }
  if (lanes == 0) return result;  // nothing fits
  const int next = lanes * 2;
  result.bram_blocked_scaling =
      engine_dsps(next, dtype) <= platform.dsps &&
      engine_brams(next, dtype, params) > platform.brams18k;

  result.lanes = lanes;
  result.dsps = engine_dsps(lanes, dtype);
  result.brams = engine_brams(lanes, dtype, params);

  // Sequential execution of every stage on the shared engine. Feature maps
  // that overflow the engine's ping-pong buffers spill to DDR; weights
  // always stream (the folded engine reloads kernels per layer).
  const double feature_capacity_bytes =
      params.feature_buffer_fraction * result.brams * 2304.0;  // 18 Kbit
  const double bytes_per_cycle =
      platform.bw_gbps * 1e9 / (platform.freq_mhz * 1e6);
  const int elem_bytes = nn::bytes(dtype);
  double total_cycles = 0;
  std::int64_t total_mac_ops = 0;
  for (std::size_t s = 0; s < model.fused.stages.size(); ++s) {
    const arch::FusedStage& st = model.fused.stages[s];
    HybridDnnLayerExec exec = best_split(st, lanes, params);
    exec.stage = static_cast<int>(s);

    const double in_bytes =
        static_cast<double>(st.in_ch) * st.in_h * st.in_w * elem_bytes;
    const double out_bytes = static_cast<double>(st.final_ch) * st.final_h *
                             st.final_w * elem_bytes;
    const double weight_bytes =
        static_cast<double>(st.weight_params + st.bias_params) * elem_bytes;
    double ddr_bytes = weight_bytes;
    if (in_bytes > feature_capacity_bytes) ddr_bytes += in_bytes;
    if (out_bytes > feature_capacity_bytes) ddr_bytes += out_bytes;
    exec.ddr_cycles = ddr_bytes / bytes_per_cycle;

    exec.memory_bound = exec.ddr_cycles > exec.compute_cycles;
    exec.cycles = std::max(exec.compute_cycles, exec.ddr_cycles) +
                  params.reconfig_cycles;
    exec.utilization =
        static_cast<double>(st.macs) / (exec.cycles * lanes);
    total_cycles += exec.cycles;
    total_mac_ops += 2 * st.macs;
    result.layers.push_back(exec);
  }
  const double freq_hz = platform.freq_mhz * 1e6;
  result.fps = total_cycles > 0 ? freq_hz / total_cycles : 0.0;
  result.gops = static_cast<double>(total_mac_ops) * result.fps * 1e-9;
  const double beta = nn::beta_ops_per_dsp(dtype);
  result.efficiency =
      result.dsps > 0 ? result.gops * 1e9 / (beta * result.dsps * freq_hz)
                      : 0.0;
  return result;
}

}  // namespace fcad::baselines
