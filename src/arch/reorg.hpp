// Branch separation and layer reorganization (Construction step): branches
// with shared stages are split into individual dataflows, and each shared
// stage is assigned to the sharing branch with the highest computation
// demand, so no hardware is duplicated and the critical flow is explicit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/fusion.hpp"
#include "util/status.hpp"

namespace fcad::arch {

/// One pipeline (row of the elastic architecture) after reorganization.
struct BranchPipeline {
  int index = 0;      ///< Br. number, 0-based
  std::string role;   ///< output role of the branch
  /// Stages *owned* by this branch (hardware instantiated in this pipeline),
  /// in execution order. For a branch whose shared prefix was assigned to
  /// another branch this excludes the shared stages.
  std::vector<int> stages;
  /// Full dataflow path of this branch, in execution order, including stages
  /// owned by other branches (the shared prefix).
  std::vector<int> path;
  std::int64_t ops_owned = 0;   ///< total ops over owned stages
  std::int64_t macs_owned = 0;  ///< total MACs over owned stages
  std::int64_t ops_path = 0;    ///< total ops over the full path
};

/// The reorganized model: the stage graph plus its partition into pipelines.
struct ReorganizedModel {
  FusedGraph fused;
  std::vector<BranchPipeline> branches;
  /// For each stage: owning branch index.
  std::vector<int> owner;
  /// Stage indices shared by more than one branch, in execution order.
  std::vector<int> shared_stages;

  int num_branches() const { return static_cast<int>(branches.size()); }
  const FusedStage& stage(int idx) const {
    return fused.stages[static_cast<std::size_t>(idx)];
  }
};

/// Partitions the fused graph into branch pipelines. Requires every branch's
/// path to be a chain (each stage has at most one producing stage) — the
/// layer-based multi-pipeline paradigm of Sec. V-A — and sharing to be a
/// prefix (a shared stage's consumers are the stage itself continuing each
/// branch), which holds for decoder-style trees.
StatusOr<ReorganizedModel> reorganize(FusedGraph fused);

/// Convenience: profile + fuse + reorganize a network graph.
StatusOr<ReorganizedModel> reorganize(const nn::Graph& graph);

}  // namespace fcad::arch
