// FPGA resource model of one basic architecture unit.
//
// Four resources per Table III (and the datapath extension):
//   * compute (DSP slices): lanes / multipliers-per-DSP for DSP-mapped
//     weight widths; 0 for LUT-fabric datapaths (4-bit weights), which
//     instead pay `luts` = lanes * luts-per-multiplier;
//   * on-chip memory (BRAM18K blocks): weight buffer + input line buffer,
//     with banking minima implied by the parallel access pattern — bank
//     words are width-dependent (cpf * bits / bram_max_width);
//   * external bandwidth (bytes per frame): streamed untied biases, streamed
//     weights for stages whose kernels are too large to keep resident, and
//     the first/last stage feature streams — byte counts are bit-packed, so
//     sub-byte widths (int4, int8x4) halve their stream traffic.
//
// Every constant lives in ResourceModelParams so the calibration against the
// paper's Table II / IV magnitudes is in one place (see bench_ablation).
#pragma once

#include <cstdint>

#include "arch/datapath.hpp"
#include "arch/fusion.hpp"
#include "arch/unit.hpp"
#include "nn/dtype.hpp"

namespace fcad::arch {

struct ResourceModelParams {
  int bram_kbits = 18;          ///< one BRAM18K block
  /// Widest access per block: 36-bit port, doubled by true-dual-port reads.
  int bram_max_width = 72;
  /// Rows beyond K kept in the input line buffer. 0 = K-row rotating buffer
  /// with a register window (new rows overwrite the oldest in place).
  int extra_linebuf_rows = 0;
  /// Kernels larger than this many BRAM18K-equivalents of storage are
  /// streamed from DDR each frame instead of held resident.
  int resident_weight_limit_brams = 64;
  /// Control/FIFO overhead blocks per unit (bias FIFO, AXI skid buffers).
  int overhead_brams = 2;
};

/// Whether this stage's weights stay in BRAM or stream from DDR per frame.
bool weights_resident(const FusedStage& stage, nn::DataType ww,
                      const ResourceModelParams& params = {});

struct UnitResources {
  int dsps = 0;
  /// LUT-fabric multiplier cost; nonzero only for lut_multipliers()
  /// datapaths (4-bit weights), whose compute array consumes no DSPs.
  int luts = 0;
  int brams = 0;
  /// Parameter bytes (streamed weights + biases) fetched per frame *wave*.
  /// Batch copies run in lockstep on consecutive frames, so one fetch is
  /// broadcast to all copies.
  std::int64_t param_stream_bytes = 0;
  /// Feature bytes moved per individual frame (external input / output);
  /// scales with the number of batch copies.
  std::int64_t feature_stream_bytes = 0;

  std::int64_t total_stream_bytes() const {
    return param_stream_bytes + feature_stream_bytes;
  }
};

/// Context flags that change a unit's DDR traffic.
struct UnitStreamContext {
  bool reads_external_input = false;  ///< first stage of a pipeline
  bool writes_external_output = false;///< feeds a graph output
};

/// Full resource estimate of one configured unit on `dp`.
UnitResources unit_resources(const FusedStage& stage, const UnitConfig& cfg,
                             const Datapath& dp,
                             const UnitStreamContext& ctx = {},
                             const ResourceModelParams& params = {});

/// Deprecated quantization-era overload (one release): prices a pipelined
/// MAC at the given widths. Identical to the Datapath overload with
/// {kPipelined, dw, ww}.
UnitResources unit_resources(const FusedStage& stage, const UnitConfig& cfg,
                             nn::DataType dw, nn::DataType ww,
                             const UnitStreamContext& ctx = {},
                             const ResourceModelParams& params = {});

}  // namespace fcad::arch
