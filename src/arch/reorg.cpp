#include "arch/reorg.hpp"

#include <algorithm>

namespace fcad::arch {

StatusOr<ReorganizedModel> reorganize(FusedGraph fused) {
  const int num_stages = static_cast<int>(fused.stages.size());
  if (fused.output_stages.empty()) {
    return Status::invalid_argument("reorganize: no output stages");
  }
  // The multi-pipeline paradigm requires chains: one producer per stage.
  for (int s = 0; s < num_stages; ++s) {
    if (fused.stage_inputs[static_cast<std::size_t>(s)].size() > 1) {
      return Status::invalid_argument(
          "reorganize: stage '" + fused.stages[static_cast<std::size_t>(s)].name +
          "' has multiple producing stages; pipelines must be chains");
    }
  }

  ReorganizedModel model;
  model.fused = std::move(fused);
  const FusedGraph& fg = model.fused;

  // Path of each branch: walk back from the output stage through the chain.
  std::vector<std::vector<int>> paths;
  for (std::size_t o = 0; o < fg.output_stages.size(); ++o) {
    std::vector<int> path;
    int s = fg.output_stages[o];
    while (true) {
      path.push_back(s);
      const auto& ins = fg.stage_inputs[static_cast<std::size_t>(s)];
      if (ins.empty()) break;
      s = ins[0];
    }
    std::reverse(path.begin(), path.end());
    paths.push_back(std::move(path));
  }

  // Ops along each path (branch computation demand, shared included).
  std::vector<std::int64_t> path_ops(paths.size(), 0);
  for (std::size_t b = 0; b < paths.size(); ++b) {
    for (int s : paths[b]) {
      path_ops[b] += fg.stages[static_cast<std::size_t>(s)].ops;
    }
  }

  // Ownership: every stage goes to the branch with the highest total demand
  // among the branches whose path contains it.
  model.owner.assign(static_cast<std::size_t>(num_stages), -1);
  std::vector<int> share_count(static_cast<std::size_t>(num_stages), 0);
  for (std::size_t b = 0; b < paths.size(); ++b) {
    for (int s : paths[b]) {
      ++share_count[static_cast<std::size_t>(s)];
      int& owner = model.owner[static_cast<std::size_t>(s)];
      if (owner == -1 || path_ops[static_cast<std::size_t>(b)] >
                             path_ops[static_cast<std::size_t>(owner)]) {
        owner = static_cast<int>(b);
      }
    }
  }
  for (int s = 0; s < num_stages; ++s) {
    if (model.owner[static_cast<std::size_t>(s)] == -1) {
      return Status::invalid_argument(
          "reorganize: stage '" + fg.stages[static_cast<std::size_t>(s)].name +
          "' is on no branch path (dead stage)");
    }
    if (share_count[static_cast<std::size_t>(s)] > 1) {
      model.shared_stages.push_back(s);
    }
  }

  for (std::size_t b = 0; b < paths.size(); ++b) {
    BranchPipeline br;
    br.index = static_cast<int>(b);
    br.role = "";  // filled by callers that know the graph's output roles
    br.path = paths[b];
    br.ops_path = path_ops[b];
    for (int s : paths[b]) {
      if (model.owner[static_cast<std::size_t>(s)] == br.index) {
        br.stages.push_back(s);
        br.ops_owned += fg.stages[static_cast<std::size_t>(s)].ops;
        br.macs_owned += fg.stages[static_cast<std::size_t>(s)].macs;
      }
    }
    model.branches.push_back(std::move(br));
  }
  return model;
}

StatusOr<ReorganizedModel> reorganize(const nn::Graph& graph) {
  analysis::GraphProfile profile = analysis::profile_graph(graph);
  auto fused = fuse(graph, profile);
  if (!fused.is_ok()) return fused.status();
  auto model = reorganize(std::move(fused).value());
  if (!model.is_ok()) return model.status();
  // Attach output roles now that the graph is known.
  for (std::size_t b = 0; b < model->branches.size(); ++b) {
    const nn::LayerId out = graph.output_ids()[b];
    model->branches[b].role = graph.layer(out).output().role;
  }
  return model;
}

}  // namespace fcad::arch
