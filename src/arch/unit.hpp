// The basic architecture unit (Sec. V-C): one pipeline stage's hardware, with
// 3D parallelism — channel parallelism cpf (input channels), kernel
// parallelism kpf (output channels), and H-partition h (input feature map
// split along its height into h independently processed slabs).
#pragma once

#include <cstdint>
#include <string>

#include "arch/datapath.hpp"
#include "arch/fusion.hpp"

namespace fcad::arch {

/// 3D parallelism configuration of one basic architecture unit.
struct UnitConfig {
  int cpf = 1;  ///< input-channel parallel factor (MACs per PE)
  int kpf = 1;  ///< output-channel parallel factor (PEs per engine)
  int h = 1;    ///< H-partition (engines per unit)

  std::int64_t lanes() const {
    return static_cast<std::int64_t>(cpf) * kpf * h;
  }
  bool operator==(const UnitConfig&) const = default;
  std::string to_string() const;
};

/// True when the factors respect the stage's dimensions (cpf <= InCh,
/// kpf <= OutCh, h <= out height) and are all positive.
bool fits_stage(const UnitConfig& cfg, const FusedStage& stage);

/// Largest parallelism a stage can absorb.
std::int64_t max_lanes(const FusedStage& stage);

/// GetPF (Algorithm 2, line 15): factorizes a scalar parallelism target into
/// (cpf, kpf, h) for this stage. Searches divisor triples of the stage
/// dimensions and returns the feasible config with the smallest lane count
/// >= `pf_target`; when the target exceeds the stage's maximum parallelism,
/// returns the largest feasible config. Divisor triples keep every tile
/// full, so quantized latency equals the analytical Eq. 4 latency at the
/// chosen factors.
UnitConfig get_pf(std::int64_t pf_target, const FusedStage& stage);

/// As get_pf, but with the H-partition forced to 1 (the two-level parallelism
/// of DNNBuilder-style units, used by the baseline model and ablations).
UnitConfig get_pf_2d(std::int64_t pf_target, const FusedStage& stage);

/// Analytical stage latency in cycles (paper Eq. 4): macs / lanes. Equivalent
/// to the Datapath overload at the default pipelined MAC (fill == 0).
double cycles_analytical(const FusedStage& stage, const UnitConfig& cfg);

/// Quantized latency in cycles, as the unit actually executes: tile counts
/// are rounded up per dimension, so non-divisor factors waste slots.
std::int64_t cycles_quantized(const FusedStage& stage, const UnitConfig& cfg);

/// Datapath-aware Eq. 4: macs / lanes, plus — for staged MACs — the chain's
/// fill_cycles() once per output tile-row pass ((OutCh/kpf) * (OutH/h)
/// passes; smooth, like the base term). Bit-identical to the 2-arg overload
/// when dp.fill_cycles() == 0 (every pipelined datapath).
double cycles_analytical(const FusedStage& stage, const UnitConfig& cfg,
                         const Datapath& dp);

/// Datapath-aware quantized latency: the 2-arg tile schedule, plus the fill
/// overhead once per (output tile, row tile) group — exactly what the
/// cycle-exact enumeration in tests/datapath_test.cpp counts.
std::int64_t cycles_quantized(const FusedStage& stage, const UnitConfig& cfg,
                              const Datapath& dp);

}  // namespace fcad::arch
