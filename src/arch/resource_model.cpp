#include "arch/resource_model.hpp"

#include <algorithm>

namespace fcad::arch {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t bram_bits(const ResourceModelParams& p) {
  return static_cast<std::int64_t>(p.bram_kbits) * 1024;
}

/// Blocks needed to hold `bits` with at least `min_banks` independently
/// addressable banks (the banking minimum from the parallel access pattern).
int brams_for(std::int64_t bits, std::int64_t min_banks,
              const ResourceModelParams& p) {
  const std::int64_t capacity_blocks = ceil_div(bits, bram_bits(p));
  return static_cast<int>(std::max(capacity_blocks, min_banks));
}

}  // namespace

bool weights_resident(const FusedStage& stage, nn::DataType ww,
                      const ResourceModelParams& params) {
  const std::int64_t weight_bits = stage.weight_params * nn::bits(ww);
  return ceil_div(weight_bits, bram_bits(params)) <=
         params.resident_weight_limit_brams;
}

UnitResources unit_resources(const FusedStage& stage, const UnitConfig& cfg,
                             nn::DataType dw, nn::DataType ww,
                             const UnitStreamContext& ctx,
                             const ResourceModelParams& params) {
  UnitResources r;

  // --- compute ---------------------------------------------------------
  r.dsps = static_cast<int>(
      ceil_div(cfg.lanes(), nn::multipliers_per_dsp(ww)));

  // --- on-chip memory ----------------------------------------------------
  // Weight buffer. Resident kernels are banked by kpf (each PE column reads
  // its own output-channel kernels through a cpf-wide word). Streamed
  // kernels only need the in-flight tile, which lives in the PE array
  // (LUTRAM/FF) plus a small double-buffered staging FIFO.
  const bool resident = weights_resident(stage, ww, params);
  if (resident) {
    const std::int64_t weight_bits = stage.weight_params * nn::bits(ww);
    const std::int64_t weight_word_banks =
        static_cast<std::int64_t>(cfg.kpf) *
        ceil_div(static_cast<std::int64_t>(cfg.cpf) * nn::bits(ww),
                 params.bram_max_width);
    r.brams += brams_for(weight_bits, weight_word_banks, params);
  } else {
    const std::int64_t tile_bits = 2LL * cfg.lanes() * stage.kernel *
                                   stage.kernel * nn::bits(ww);
    r.brams += brams_for(tile_bits, /*min_banks=*/2, params);
    r.param_stream_bytes += stage.weight_params * nn::bytes(ww);
  }

  // Input line buffer: K + extra rows of the input feature map, banked per
  // H-partition slab with cpf-channel-wide words.
  const std::int64_t rows = stage.kernel + params.extra_linebuf_rows;
  const std::int64_t line_bits = rows * stage.in_w * stage.in_ch *
                                 static_cast<std::int64_t>(nn::bits(dw));
  const std::int64_t line_banks =
      static_cast<std::int64_t>(cfg.h) *
      ceil_div(static_cast<std::int64_t>(cfg.cpf) * nn::bits(dw),
               params.bram_max_width);
  r.brams += brams_for(line_bits, line_banks, params);

  r.brams += params.overhead_brams;

  // --- external bandwidth -----------------------------------------------
  if (stage.has_bias) {
    // Untied biases are far too large to keep resident at HD resolutions;
    // they stream each frame. Tied biases are tiny but counted uniformly.
    r.param_stream_bytes += stage.bias_params * nn::bytes(ww);
  }
  if (ctx.reads_external_input) {
    r.feature_stream_bytes += static_cast<std::int64_t>(stage.in_ch) *
                              stage.in_h * stage.in_w * nn::bytes(dw);
  }
  if (ctx.writes_external_output) {
    r.feature_stream_bytes += static_cast<std::int64_t>(stage.final_ch) *
                              stage.final_h * stage.final_w * nn::bytes(dw);
  }
  return r;
}

}  // namespace fcad::arch
