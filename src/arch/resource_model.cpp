#include "arch/resource_model.hpp"

#include <algorithm>

namespace fcad::arch {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::int64_t bram_bits(const ResourceModelParams& p) {
  return static_cast<std::int64_t>(p.bram_kbits) * 1024;
}

/// Bit-packed stream size: elements of `bits` width each, rounded up to
/// whole bytes once per stream (so int4 streams really move half the bytes
/// of int8, instead of rounding every element up to a byte).
std::int64_t stream_bytes(std::int64_t elements, int bits) {
  return ceil_div(elements * bits, 8);
}

/// Blocks needed to hold `bits` with at least `min_banks` independently
/// addressable banks (the banking minimum from the parallel access pattern).
int brams_for(std::int64_t bits, std::int64_t min_banks,
              const ResourceModelParams& p) {
  const std::int64_t capacity_blocks = ceil_div(bits, bram_bits(p));
  return static_cast<int>(std::max(capacity_blocks, min_banks));
}

}  // namespace

bool weights_resident(const FusedStage& stage, nn::DataType ww,
                      const ResourceModelParams& params) {
  const std::int64_t weight_bits = stage.weight_params * nn::bits(ww);
  return ceil_div(weight_bits, bram_bits(params)) <=
         params.resident_weight_limit_brams;
}

UnitResources unit_resources(const FusedStage& stage, const UnitConfig& cfg,
                             const Datapath& dp,
                             const UnitStreamContext& ctx,
                             const ResourceModelParams& params) {
  UnitResources r;
  const int dw_bits = nn::bits(dp.dw);
  const int ww_bits = nn::bits(dp.ww);

  // --- compute ---------------------------------------------------------
  // DSP-mapped widths pack multipliers_per_dsp() lanes per slice; 4-bit
  // weights build every multiplier from LUTs instead.
  if (dp.lut_multipliers()) {
    r.luts = static_cast<int>(cfg.lanes() * dp.luts_per_multiplier());
  } else {
    r.dsps =
        static_cast<int>(ceil_div(cfg.lanes(), dp.multipliers_per_dsp()));
  }

  // --- on-chip memory ----------------------------------------------------
  // Weight buffer. Resident kernels are banked by kpf (each PE column reads
  // its own output-channel kernels through a cpf-wide word). Streamed
  // kernels only need the in-flight tile, which lives in the PE array
  // (LUTRAM/FF) plus a small double-buffered staging FIFO.
  const bool resident = weights_resident(stage, dp.ww, params);
  if (resident) {
    const std::int64_t weight_bits = stage.weight_params * ww_bits;
    const std::int64_t weight_word_banks =
        static_cast<std::int64_t>(cfg.kpf) *
        ceil_div(static_cast<std::int64_t>(cfg.cpf) * ww_bits,
                 params.bram_max_width);
    r.brams += brams_for(weight_bits, weight_word_banks, params);
  } else {
    const std::int64_t tile_bits =
        2LL * cfg.lanes() * stage.kernel * stage.kernel * ww_bits;
    r.brams += brams_for(tile_bits, /*min_banks=*/2, params);
    r.param_stream_bytes += stream_bytes(stage.weight_params, ww_bits);
  }

  // Input line buffer: K + extra rows of the input feature map, banked per
  // H-partition slab with cpf-channel-wide words.
  const std::int64_t rows = stage.kernel + params.extra_linebuf_rows;
  const std::int64_t line_bits =
      rows * stage.in_w * stage.in_ch * static_cast<std::int64_t>(dw_bits);
  const std::int64_t line_banks =
      static_cast<std::int64_t>(cfg.h) *
      ceil_div(static_cast<std::int64_t>(cfg.cpf) * dw_bits,
               params.bram_max_width);
  r.brams += brams_for(line_bits, line_banks, params);

  r.brams += params.overhead_brams;

  // --- external bandwidth -----------------------------------------------
  if (stage.has_bias) {
    // Untied biases are far too large to keep resident at HD resolutions;
    // they stream each frame. Tied biases are tiny but counted uniformly.
    r.param_stream_bytes += stream_bytes(stage.bias_params, ww_bits);
  }
  if (ctx.reads_external_input) {
    r.feature_stream_bytes += stream_bytes(
        static_cast<std::int64_t>(stage.in_ch) * stage.in_h * stage.in_w,
        dw_bits);
  }
  if (ctx.writes_external_output) {
    r.feature_stream_bytes += stream_bytes(
        static_cast<std::int64_t>(stage.final_ch) * stage.final_h *
            stage.final_w,
        dw_bits);
  }
  return r;
}

UnitResources unit_resources(const FusedStage& stage, const UnitConfig& cfg,
                             nn::DataType dw, nn::DataType ww,
                             const UnitStreamContext& ctx,
                             const ResourceModelParams& params) {
  return unit_resources(stage, cfg, Datapath{MacStyle::kPipelined, dw, ww},
                        ctx, params);
}

}  // namespace fcad::arch
