#include "arch/unit.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <tuple>
#include <vector>

namespace fcad::arch {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

std::vector<int> divisors(int n) {
  std::vector<int> out;
  for (int d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      out.push_back(d);
      if (d != n / d) out.push_back(n / d);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct LaneEntry {
  std::int64_t lanes;
  UnitConfig cfg;
};

/// All divisor-triple configs of a (InCh, OutCh, Hmax) stage signature,
/// deduplicated per lane count, sorted ascending by lanes. get_pf is called
/// hundreds of thousands of times by the DSE, so the tables are memoized.
const std::vector<LaneEntry>& lane_table(int in_ch, int out_ch, int h_max) {
  using Key = std::tuple<int, int, int>;
  static std::mutex mutex;
  static std::map<Key, std::vector<LaneEntry>> cache;

  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.try_emplace(Key{in_ch, out_ch, h_max});
  if (!inserted) return it->second;

  std::vector<LaneEntry> all;
  for (int h : divisors(h_max)) {
    for (int kpf : divisors(out_ch)) {
      for (int cpf : divisors(in_ch)) {
        all.push_back({static_cast<std::int64_t>(cpf) * kpf * h,
                       UnitConfig{cpf, kpf, h}});
      }
    }
  }
  // Prefer low h, then low kpf (fewer line-buffer slabs / weight banks) among
  // configs with equal lane count, then keep one entry per lane count.
  std::sort(all.begin(), all.end(), [](const LaneEntry& a, const LaneEntry& b) {
    return std::tie(a.lanes, a.cfg.h, a.cfg.kpf, a.cfg.cpf) <
           std::tie(b.lanes, b.cfg.h, b.cfg.kpf, b.cfg.cpf);
  });
  std::vector<LaneEntry>& table = it->second;
  for (const LaneEntry& e : all) {
    if (table.empty() || table.back().lanes != e.lanes) table.push_back(e);
  }
  return table;
}

UnitConfig search_pf(std::int64_t pf_target, const FusedStage& stage,
                     int h_limit) {
  FCAD_CHECK(pf_target >= 1);
  const auto& table = lane_table(stage.max_cpf(), stage.max_kpf(),
                                 std::min(stage.max_h(), h_limit));
  FCAD_CHECK(!table.empty());
  auto it = std::lower_bound(
      table.begin(), table.end(), pf_target,
      [](const LaneEntry& e, std::int64_t t) { return e.lanes < t; });
  if (it == table.end()) return table.back().cfg;  // target beyond max: clamp
  return it->cfg;
}

}  // namespace

std::string UnitConfig::to_string() const {
  std::ostringstream os;
  os << "(cpf=" << cpf << ",kpf=" << kpf << ",h=" << h << ')';
  return os.str();
}

bool fits_stage(const UnitConfig& cfg, const FusedStage& stage) {
  return cfg.cpf >= 1 && cfg.kpf >= 1 && cfg.h >= 1 &&
         cfg.cpf <= stage.max_cpf() && cfg.kpf <= stage.max_kpf() &&
         cfg.h <= stage.max_h();
}

std::int64_t max_lanes(const FusedStage& stage) {
  return static_cast<std::int64_t>(stage.max_cpf()) * stage.max_kpf() *
         stage.max_h();
}

UnitConfig get_pf(std::int64_t pf_target, const FusedStage& stage) {
  return search_pf(pf_target, stage, stage.max_h());
}

UnitConfig get_pf_2d(std::int64_t pf_target, const FusedStage& stage) {
  return search_pf(pf_target, stage, /*h_limit=*/1);
}

double cycles_analytical(const FusedStage& stage, const UnitConfig& cfg) {
  return static_cast<double>(stage.macs) / static_cast<double>(cfg.lanes());
}

std::int64_t cycles_quantized(const FusedStage& stage, const UnitConfig& cfg) {
  const std::int64_t in_tiles = ceil_div(stage.in_ch, cfg.cpf);
  const std::int64_t out_tiles = ceil_div(stage.out_ch, cfg.kpf);
  const std::int64_t row_tiles = ceil_div(stage.out_h, cfg.h);
  const std::int64_t k2 =
      static_cast<std::int64_t>(stage.kernel) * stage.kernel;
  return in_tiles * out_tiles * row_tiles * stage.out_w * k2;
}

double cycles_analytical(const FusedStage& stage, const UnitConfig& cfg,
                         const Datapath& dp) {
  const double base = cycles_analytical(stage, cfg);
  const double fill = dp.fill_cycles();
  if (fill == 0) return base;  // pipelined: bit-identical to the 2-arg form
  const double passes = static_cast<double>(stage.out_ch) / cfg.kpf *
                        (static_cast<double>(stage.out_h) / cfg.h);
  return base + fill * passes;
}

std::int64_t cycles_quantized(const FusedStage& stage, const UnitConfig& cfg,
                              const Datapath& dp) {
  const std::int64_t base = cycles_quantized(stage, cfg);
  const double fill = dp.fill_cycles();
  if (fill == 0) return base;
  const std::int64_t passes =
      ceil_div(stage.out_ch, cfg.kpf) * ceil_div(stage.out_h, cfg.h);
  return base + static_cast<std::int64_t>(fill) * passes;
}

}  // namespace fcad::arch
