#include "arch/datapath.hpp"

namespace fcad::arch {
namespace {

/// One 4x4 signed multiplier packs into ~11 LUT6s (partial products plus the
/// carry chain); the constant is the fabric price per lane of lut_multipliers
/// datapaths.
constexpr int kLutsPerInt4Multiplier = 11;

/// Depth of the staged multiply/accumulate chain: two multiplier stages plus
/// one accumulate stage per operand nibble. Wider weights mean a deeper
/// chain, so the fill penalty grows with precision.
double staged_fill_depth(nn::DataType ww) {
  return 2.0 + static_cast<double>(nn::bits(ww)) / 4.0;
}

/// Precision token of the canonical grammar: "intN" when DW == WW, "int8x4"
/// for the one supported mixed pair.
std::string precision_token(const Datapath& dp) {
  if (dp.dw == dp.ww) return nn::to_string(dp.dw);
  return nn::to_string(dp.dw) + "x" + std::to_string(nn::bits(dp.ww));
}

}  // namespace

int Datapath::multipliers_per_dsp() const {
  return nn::multipliers_per_dsp(ww);
}

int Datapath::beta_ops_per_dsp() const { return nn::beta_ops_per_dsp(ww); }

bool Datapath::lut_multipliers() const { return ww == nn::DataType::kInt4; }

int Datapath::luts_per_multiplier() const {
  return lut_multipliers() ? kLutsPerInt4Multiplier : 0;
}

double Datapath::fill_cycles() const {
  return mac == MacStyle::kStaged ? staged_fill_depth(ww) : 0.0;
}

double Datapath::accuracy_proxy() const {
  // Top-1-style degradation proxy per precision point, anchored at int16 = 0
  // (the paper's full-precision deployment). The mixed point keeps 8-bit
  // activations, so it sits between int8 and int4.
  if (ww == nn::DataType::kInt16) return 0.0;
  if (ww == nn::DataType::kInt8) return 0.01;
  return dw == nn::DataType::kInt8 ? 0.025 : 0.05;  // int8x4 : int4
}

std::string datapath_to_string(const Datapath& dp) {
  const char* mac = dp.mac == MacStyle::kPipelined ? "pipelined" : "staged";
  return std::string(mac) + "-" + precision_token(dp);
}

StatusOr<Datapath> datapath_from_string(const std::string& name) {
  for (const Datapath& dp : registered_datapaths()) {
    if (name == datapath_to_string(dp)) return dp;
  }
  return Status::invalid_argument(
      "unknown datapath '" + name +
      "' (expected <pipelined|staged>-<int4|int8|int16|int8x4>)");
}

const std::vector<Datapath>& registered_datapaths() {
  static const std::vector<Datapath> kRegistry = [] {
    std::vector<Datapath> all;
    const nn::DataType kInt8 = nn::DataType::kInt8;
    const nn::DataType kInt16 = nn::DataType::kInt16;
    const nn::DataType kInt4 = nn::DataType::kInt4;
    for (MacStyle mac : {MacStyle::kPipelined, MacStyle::kStaged}) {
      all.push_back({mac, kInt16, kInt16});
      all.push_back({mac, kInt8, kInt8});
      all.push_back({mac, kInt8, kInt4});  // mixed int8x4
      all.push_back({mac, kInt4, kInt4});
    }
    return all;
  }();
  return kRegistry;
}

std::vector<std::string> registered_datapath_names() {
  std::vector<std::string> names;
  names.reserve(registered_datapaths().size());
  for (const Datapath& dp : registered_datapaths()) {
    names.push_back(datapath_to_string(dp));
  }
  return names;
}

Datapath datapath_from_quantization(nn::DataType q) {
  return Datapath{MacStyle::kPipelined, q, q};
}

}  // namespace fcad::arch
