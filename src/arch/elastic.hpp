// The elastic architecture (Sec. V-B): basic architecture units arranged on
// a 2D plane — X expansion = pipeline stages within a branch, Y expansion =
// branches — plus batch replication of whole pipelines. This header defines
// the full hardware configuration and the analytical evaluator the DSE uses.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/datapath.hpp"
#include "arch/reorg.hpp"
#include "arch/resource_model.hpp"
#include "arch/unit.hpp"
#include "nn/dtype.hpp"

namespace fcad::arch {

/// Hardware configuration of one branch pipeline (a config_j of Table III).
struct BranchHardwareConfig {
  int batch = 1;                  ///< replicated pipeline copies
  std::vector<UnitConfig> units;  ///< parallel to BranchPipeline::stages
};

/// Full accelerator configuration (the Config of Algorithm 1).
struct AcceleratorConfig {
  std::vector<BranchHardwareConfig> branches;
  /// Precision x MAC microarchitecture (DW/WW widths ride inside). The
  /// default pipelined-int8 reproduces the pre-datapath model exactly.
  Datapath datapath;
  double freq_mhz = 200.0;
};

enum class EvalMode {
  kAnalytical,  ///< smooth Eq. 4 latency (what the DSE optimizes)
  kQuantized,   ///< ceil-quantized tile counts (closer to the real datapath)
};

struct StageEval {
  int stage = -1;
  UnitConfig cfg;
  double cycles = 0;      ///< latency of this stage, one frame
  UnitResources res;      ///< per pipeline copy
};

struct BranchEval {
  std::vector<StageEval> stages;  ///< owned stages only
  int batch = 1;
  int dsps = 0;                   ///< all copies
  int luts = 0;                   ///< fabric multipliers (LUT datapaths)
  int brams = 0;
  double bottleneck_cycles = 0;   ///< max stage latency (own stages)
  double fps = 0;                 ///< Eq. 5, cross-branch caps applied
  double gops = 0;                ///< delivered GOP/s at `fps`
  double efficiency = 0;          ///< Eq. 3
  double bw_gbps = 0;             ///< sustained DDR traffic
};

struct AcceleratorEval {
  std::vector<BranchEval> branches;
  int dsps = 0;
  int luts = 0;              ///< fabric-multiplier LUTs (LUT datapaths)
  int brams = 0;
  double bw_gbps = 0;
  double min_fps = 0;        ///< slowest branch
  double efficiency = 0;     ///< whole-accelerator Eq. 3
  /// The evaluated datapath's precision penalty (Datapath::accuracy_proxy),
  /// so objectives and frontiers can trade throughput against precision.
  double accuracy_proxy = 0;

  /// `max_luts` defaults to 0: without an explicit LUT budget, any
  /// LUT-fabric compute is over budget (DSP datapaths use no LUTs).
  bool within(int max_dsps, int max_brams, double max_bw_gbps,
              int max_luts = 0) const {
    return dsps <= max_dsps && luts <= max_luts && brams <= max_brams &&
           bw_gbps <= max_bw_gbps;
  }
};

/// Evaluates `config` against `model`. The config must supply one
/// BranchHardwareConfig per branch with one UnitConfig per owned stage.
///
/// FPS per branch follows Eq. 5 (batch / max stage latency), then is capped
/// by the production rate of any shared stage the branch consumes but does
/// not own (a branch cannot outrun its shared prefix).
AcceleratorEval evaluate(const ReorganizedModel& model,
                         const AcceleratorConfig& config, EvalMode mode);

}  // namespace fcad::arch
