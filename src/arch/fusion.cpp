#include "arch/fusion.hpp"

#include <map>

namespace fcad::arch {

std::vector<int> FusedGraph::consumers(int s) const {
  std::vector<int> out;
  for (std::size_t t = 0; t < stage_inputs.size(); ++t) {
    for (int in : stage_inputs[t]) {
      if (in == s) {
        out.push_back(static_cast<int>(t));
        break;
      }
    }
  }
  return out;
}

namespace {

bool is_major(const nn::Layer& layer) {
  return layer.kind == nn::LayerKind::kConv2d ||
         layer.kind == nn::LayerKind::kDense;
}

bool is_foldable_postop(const nn::Layer& layer) {
  return layer.kind == nn::LayerKind::kActivation ||
         layer.kind == nn::LayerKind::kUpsample2x ||
         layer.kind == nn::LayerKind::kMaxPool;
}

bool is_structural(const nn::Layer& layer) {
  return layer.kind == nn::LayerKind::kInput ||
         layer.kind == nn::LayerKind::kReshape ||
         layer.kind == nn::LayerKind::kConcat ||
         layer.kind == nn::LayerKind::kOutput;
}

}  // namespace

StatusOr<FusedGraph> fuse(const nn::Graph& graph,
                          const analysis::GraphProfile& profile) {
  FCAD_CHECK(profile.layers.size() == graph.size());
  FusedGraph fg;

  // layer id -> stage index currently producing that layer's value.
  // Structural layers map to the stage of their (first) input, or -1 when the
  // value comes straight from network inputs.
  std::map<nn::LayerId, int> producer;

  for (const nn::Layer& layer : graph.layers()) {
    const analysis::LayerProfile& lp =
        profile.layers[static_cast<std::size_t>(layer.id)];

    if (is_structural(layer)) {
      if (layer.kind == nn::LayerKind::kInput) {
        producer[layer.id] = -1;
      } else if (layer.kind == nn::LayerKind::kConcat) {
        // All concat inputs must come from network inputs (concatenating two
        // intermediate streams would need a join unit the elastic
        // architecture does not define).
        int p = -1;
        for (nn::LayerId in : layer.inputs) {
          auto it = producer.find(in);
          FCAD_CHECK(it != producer.end());
          if (it->second != -1) {
            if (p != -1 && p != it->second) {
              return Status::invalid_argument(
                  "fuse: concat '" + layer.name +
                  "' joins two intermediate streams; unsupported");
            }
            p = it->second;
          }
        }
        producer[layer.id] = p;
      } else {
        // Reshape / Output inherit their input's producer.
        producer[layer.id] = producer.at(layer.inputs[0]);
      }
      continue;
    }

    if (is_major(layer)) {
      FusedStage st;
      st.major = layer.id;
      st.name = layer.name;
      st.source_layers = {layer.id};
      const nn::Layer& in = graph.layer(layer.inputs[0]);
      if (layer.kind == nn::LayerKind::kConv2d) {
        const auto& a = layer.conv();
        st.kind = FusedStage::Kind::kConv;
        st.in_ch = in.out_shape.ch;
        st.out_ch = a.out_ch;
        st.kernel = a.kernel;
        st.stride = a.stride;
        st.in_h = in.out_shape.h;
        st.in_w = in.out_shape.w;
        st.untied_bias = a.untied_bias;
        st.has_bias = a.bias;
      } else {
        const auto& a = layer.dense();
        st.kind = FusedStage::Kind::kDense;
        st.in_ch = static_cast<int>(in.out_shape.elems());
        st.out_ch = a.out_features;
        st.kernel = 1;
        st.stride = 1;
        st.in_h = st.in_w = 1;
        st.has_bias = a.bias;
      }
      st.out_h = layer.out_shape.h;
      st.out_w = layer.out_shape.w;
      st.final_ch = layer.out_shape.ch;
      st.final_h = st.out_h;
      st.final_w = st.out_w;
      st.macs = lp.macs;
      st.ops = lp.ops;
      st.weight_params = lp.weight_params;
      st.bias_params = lp.bias_params;

      const int idx = static_cast<int>(fg.stages.size());
      fg.stages.push_back(std::move(st));
      fg.stage_inputs.emplace_back();
      const int p = producer.at(layer.inputs[0]);
      if (p != -1) fg.stage_inputs.back().push_back(p);
      producer[layer.id] = idx;
      continue;
    }

    FCAD_CHECK(is_foldable_postop(layer));
    const nn::LayerId in_id = layer.inputs[0];
    const int p = producer.at(in_id);
    if (p == -1) {
      return Status::invalid_argument(
          "fuse: post-op '" + layer.name +
          "' has no major layer to fold into (applied to a network input)");
    }
    // The folded-over intermediate must have no other consumer; otherwise
    // fusing would change the other consumer's view of the value.
    if (graph.consumers(in_id).size() != 1) {
      return Status::invalid_argument(
          "fuse: cannot fold '" + layer.name +
          "': its input fans out to other consumers");
    }
    FusedStage& st = fg.stages[static_cast<std::size_t>(p)];
    st.source_layers.push_back(layer.id);
    st.ops += lp.ops;
    st.macs += lp.macs;
    switch (layer.kind) {
      case nn::LayerKind::kActivation:
        st.has_activation = true;
        break;
      case nn::LayerKind::kUpsample2x:
        st.has_upsample = true;
        break;
      case nn::LayerKind::kMaxPool:
        st.has_pool = true;
        break;
      default:
        break;
    }
    st.final_ch = layer.out_shape.ch;
    st.final_h = layer.out_shape.h;
    st.final_w = layer.out_shape.w;
    producer[layer.id] = p;
  }

  // Map graph outputs to stages.
  for (nn::LayerId out : graph.output_ids()) {
    const int p = producer.at(out);
    if (p == -1) {
      return Status::invalid_argument(
          "fuse: output '" + graph.layer(out).name +
          "' is fed directly by a network input; nothing to accelerate");
    }
    fg.output_stages.push_back(p);
  }
  fg.stage_outputs.assign(fg.stages.size(), {});
  for (std::size_t o = 0; o < fg.output_stages.size(); ++o) {
    fg.stage_outputs[static_cast<std::size_t>(fg.output_stages[o])].push_back(
        static_cast<int>(o));
  }
  return fg;
}

}  // namespace fcad::arch
