// The datapath layer: precision x MAC microarchitecture as one first-class
// value type, so every model that prices or times a multiply-accumulate array
// (arch/unit, arch/resource_model, perf/*, the DSE stack) asks one oracle
// instead of re-deriving packing constants from nn::DataType.
//
// Two MAC styles:
//   * kPipelined — fully pipelined MAC array, initiation interval 1. The
//     paper's Table I/II datapath; Eq. 4 latency holds exactly.
//   * kStaged   — multi-stage multiply/accumulate chain without internal
//     forwarding. Same steady-state rate, but each output tile-row group must
//     fill and drain the chain, adding fill_cycles() per (kpf, h) tile pass.
//
// Four precision points (feature width DW x weight width WW):
//   int4 (4x4), int8 (8x8), int16 (16x16), and mixed int8x4 (8-bit features,
//   4-bit weights). 8/16-bit weights map multipliers onto DSP slices (2/1 per
//   DSP48); 4-bit weights fall back to LUT-fabric multipliers (0 DSPs,
//   luts_per_multiplier() LUTs per lane) — the packing the registry exposes.
//
// This file and src/nn/dtype.cpp are the only two allowed to branch on
// nn::DataType (enforced by a CI grep gate).
#pragma once

#include <string>
#include <vector>

#include "nn/dtype.hpp"
#include "util/status.hpp"

namespace fcad::arch {

/// MAC microarchitecture of the basic unit's compute array.
enum class MacStyle {
  kPipelined,  ///< II=1 pipelined array (the paper's datapath)
  kStaged,     ///< staged chain: adds a pipeline fill per output tile pass
};

/// One precision x microarchitecture point. Plain value type; equality and
/// ordering are structural so it can key caches and hashes.
struct Datapath {
  MacStyle mac = MacStyle::kPipelined;
  nn::DataType dw = nn::DataType::kInt8;  ///< feature width (DW)
  nn::DataType ww = nn::DataType::kInt8;  ///< weight width (WW)

  bool operator==(const Datapath&) const = default;

  /// Multipliers one DSP slice implements at this weight width; 0 when the
  /// multipliers live in the LUT fabric instead (lut_multipliers()).
  int multipliers_per_dsp() const;

  /// Paper Eq. 3 beta: ops (1 MAC = 2 ops) per DSP per cycle. 0 for
  /// LUT-fabric datapaths, whose efficiency is DSP-free by construction.
  int beta_ops_per_dsp() const;

  /// True when multipliers are built from LUTs (4-bit weights): the compute
  /// array consumes 0 DSPs and lanes * luts_per_multiplier() LUTs.
  bool lut_multipliers() const;

  /// Fabric cost of one 4-bit multiplier lane (0 for DSP-mapped widths).
  int luts_per_multiplier() const;

  /// Staged-MAC pipeline-fill overhead in cycles, paid once per output
  /// tile-row pass (see arch/unit.hpp cycles_* with a Datapath). 0 for
  /// pipelined MACs — which keeps the default datapath's Eq. 4 latency
  /// bit-identical to the pre-datapath model.
  double fill_cycles() const;

  /// Accuracy-degradation proxy of this precision (Top-1-style penalty,
  /// >= 0, higher is worse): 0 for int16, growing as widths shrink. Lets
  /// objectives/frontiers trade throughput against precision.
  double accuracy_proxy() const;
};

/// Canonical grammar: "<mac>-<precision>" with mac in {pipelined, staged}
/// and precision in {int4, int8, int16, int8x4} (int8x4 = 8-bit features,
/// 4-bit weights). Examples: "pipelined-int8" (the default), "staged-int16".
std::string datapath_to_string(const Datapath& dp);

/// Parses the canonical grammar; rejects anything not in the registry.
StatusOr<Datapath> datapath_from_string(const std::string& name);

/// All supported datapaths (2 MAC styles x 4 precisions), in canonical
/// order: pipelined before staged, widest precision first.
const std::vector<Datapath>& registered_datapaths();

/// Canonical names of registered_datapaths(), same order.
std::vector<std::string> registered_datapath_names();

/// The legacy quantization shim: Q sets DW = WW on a pipelined MAC. This is
/// what `Customization::quantization` (deprecated) maps through.
Datapath datapath_from_quantization(nn::DataType q);

}  // namespace fcad::arch
