// Layer fusion (Construction step, Fig. 4): lightweight layers (activation,
// up-sampling, pooling) are aggregated into their neighbouring major layer
// (Conv-like or Dense), and pure data-movement layers (reshape, concat,
// input, output) are dissolved into edges. The result is a graph of
// *pipeline stages*, each of which maps onto one basic architecture unit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/profile.hpp"
#include "nn/graph.hpp"
#include "util/status.hpp"

namespace fcad::arch {

/// One pipeline stage after fusion: a major layer plus its folded post-ops.
struct FusedStage {
  enum class Kind { kConv, kDense };

  Kind kind = Kind::kConv;
  std::string name;                       ///< major layer's name
  nn::LayerId major = nn::kInvalidLayer;  ///< the Conv/Dense layer id
  std::vector<nn::LayerId> source_layers; ///< major + everything folded in

  // Geometry, conv view (Dense is mapped to a 1x1 spatial problem).
  int in_ch = 0, out_ch = 0;
  int kernel = 1, stride = 1;
  int in_h = 1, in_w = 1;    ///< conv input feature map
  int out_h = 1, out_w = 1;  ///< conv output (pre post-op)
  int final_ch = 0, final_h = 1, final_w = 1;  ///< after folded post-ops

  bool untied_bias = false;
  bool has_bias = false;
  bool has_activation = false;
  bool has_upsample = false;
  bool has_pool = false;

  // Demand, aggregated over all source layers.
  std::int64_t macs = 0;
  std::int64_t ops = 0;
  std::int64_t weight_params = 0;
  std::int64_t bias_params = 0;

  std::int64_t params() const { return weight_params + bias_params; }

  /// Upper bounds of the 3D parallelism factors for this stage.
  int max_cpf() const { return in_ch; }
  int max_kpf() const { return out_ch; }
  int max_h() const { return out_h; }
};

/// The stage graph. Stages are stored in topological order.
struct FusedGraph {
  std::vector<FusedStage> stages;
  /// For each stage: producing stage indices (empty = fed by network inputs).
  std::vector<std::vector<int>> stage_inputs;
  /// For each graph output (same order as graph.output_ids()): producing
  /// stage index.
  std::vector<int> output_stages;
  /// For each stage: indices of graph outputs it feeds directly (usually
  /// empty except for last stages).
  std::vector<std::vector<int>> stage_outputs;

  /// Stage indices consuming stage `s`'s result.
  std::vector<int> consumers(int s) const;
};

/// Fuses `graph` into pipeline stages. Fails if an activation / up-sample /
/// pool layer cannot be folded (its producer is not a major layer, or the
/// pre-fold intermediate value fans out to another consumer).
StatusOr<FusedGraph> fuse(const nn::Graph& graph,
                          const analysis::GraphProfile& profile);

}  // namespace fcad::arch
