#include "arch/config_io.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace fcad::arch {
namespace {

Status parse_error(int line_no, const std::string& why) {
  return Status::invalid_argument("config: line " + std::to_string(line_no) +
                                  ": " + why);
}

/// Parses "key=value" into (key, value).
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

StatusOr<int> parse_int(const std::string& value, int line_no) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) return parse_error(line_no, "bad integer");
    return v;
  } catch (const std::exception&) {
    return parse_error(line_no, "bad integer '" + value + "'");
  }
}

}  // namespace

std::string config_to_text(const ReorganizedModel& model,
                           const AcceleratorConfig& config) {
  FCAD_CHECK_MSG(config.branches.size() == model.branches.size(),
                 "config/model arity mismatch");
  std::ostringstream os;
  os << "accelerator datapath=" << datapath_to_string(config.datapath)
     << " freq_mhz=" << config.freq_mhz << '\n';
  for (std::size_t b = 0; b < config.branches.size(); ++b) {
    const BranchHardwareConfig& hw = config.branches[b];
    const BranchPipeline& br = model.branches[b];
    FCAD_CHECK_MSG(hw.units.size() == br.stages.size(),
                   "unit arity mismatch on branch");
    os << "branch " << b << " batch=" << hw.batch << '\n';
    for (std::size_t i = 0; i < hw.units.size(); ++i) {
      const UnitConfig& u = hw.units[i];
      os << "unit " << model.stage(br.stages[i]).name << " cpf=" << u.cpf
         << " kpf=" << u.kpf << " h=" << u.h << '\n';
    }
  }
  return os.str();
}

StatusOr<AcceleratorConfig> config_from_text(const ReorganizedModel& model,
                                             const std::string& text) {
  // Stage-name -> (branch, position) lookup.
  std::map<std::string, std::pair<int, int>> stage_pos;
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    const BranchPipeline& br = model.branches[b];
    for (std::size_t i = 0; i < br.stages.size(); ++i) {
      stage_pos[model.stage(br.stages[i]).name] = {static_cast<int>(b),
                                                   static_cast<int>(i)};
    }
  }

  AcceleratorConfig config;
  config.branches.resize(model.branches.size());
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    config.branches[b].units.resize(model.branches[b].stages.size());
  }
  std::vector<std::vector<bool>> seen(model.branches.size());
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    seen[b].assign(model.branches[b].stages.size(), false);
  }

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool header_seen = false;
  int current_branch = -1;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;

    if (kind == "accelerator") {
      header_seen = true;
      std::string token, key, value;
      while (ls >> token) {
        if (!split_kv(token, key, value)) {
          return parse_error(line_no, "expected key=value, got '" + token + "'");
        }
        if (key == "datapath") {
          auto dp = datapath_from_string(value);
          if (!dp.is_ok()) {
            return parse_error(line_no, "unknown datapath '" + value + "'");
          }
          config.datapath = *dp;
        } else if (key == "dw" || key == "ww") {
          // Deprecated quantization-era keys (one release): widths on the
          // default pipelined MAC.
          auto dtype = nn::data_type_from_string(value);
          if (!dtype.is_ok()) {
            return parse_error(line_no, "unknown dtype '" + value + "'");
          }
          (key == "dw" ? config.datapath.dw : config.datapath.ww) = *dtype;
        } else if (key == "freq_mhz") {
          try {
            config.freq_mhz = std::stod(value);
          } catch (const std::exception&) {
            return parse_error(line_no, "bad freq_mhz");
          }
          if (config.freq_mhz <= 0) {
            return parse_error(line_no, "freq_mhz must be positive");
          }
        } else {
          return parse_error(line_no, "unknown header key '" + key + "'");
        }
      }
      continue;
    }
    if (!header_seen) {
      return parse_error(line_no, "missing 'accelerator' header");
    }

    if (kind == "branch") {
      int index = -1;
      if (!(ls >> index) || index < 0 ||
          index >= static_cast<int>(model.branches.size())) {
        return parse_error(line_no, "bad branch index");
      }
      current_branch = index;
      std::string token, key, value;
      while (ls >> token) {
        if (!split_kv(token, key, value) || key != "batch") {
          return parse_error(line_no, "expected batch=<n>");
        }
        auto batch = parse_int(value, line_no);
        if (!batch.is_ok()) return batch.status();
        if (*batch < 1) return parse_error(line_no, "batch must be >= 1");
        config.branches[static_cast<std::size_t>(index)].batch = *batch;
      }
      continue;
    }

    if (kind == "unit") {
      if (current_branch < 0) {
        return parse_error(line_no, "unit before any branch line");
      }
      std::string name;
      if (!(ls >> name)) return parse_error(line_no, "missing stage name");
      auto it = stage_pos.find(name);
      if (it == stage_pos.end()) {
        return parse_error(line_no, "unknown stage '" + name + "'");
      }
      const auto [branch, pos] = it->second;
      if (branch != current_branch) {
        return parse_error(line_no, "stage '" + name +
                                        "' belongs to branch " +
                                        std::to_string(branch));
      }
      UnitConfig cfg;
      std::string token, key, value;
      while (ls >> token) {
        if (!split_kv(token, key, value)) {
          return parse_error(line_no, "expected key=value");
        }
        auto v = parse_int(value, line_no);
        if (!v.is_ok()) return v.status();
        if (key == "cpf") {
          cfg.cpf = *v;
        } else if (key == "kpf") {
          cfg.kpf = *v;
        } else if (key == "h") {
          cfg.h = *v;
        } else {
          return parse_error(line_no, "unknown unit key '" + key + "'");
        }
      }
      const FusedStage& stage = model.stage(
          model.branches[static_cast<std::size_t>(branch)]
              .stages[static_cast<std::size_t>(pos)]);
      if (!fits_stage(cfg, stage)) {
        return parse_error(line_no, "factors " + cfg.to_string() +
                                        " do not fit stage '" + name + "'");
      }
      config.branches[static_cast<std::size_t>(branch)]
          .units[static_cast<std::size_t>(pos)] = cfg;
      seen[static_cast<std::size_t>(branch)][static_cast<std::size_t>(pos)] =
          true;
      continue;
    }
    return parse_error(line_no, "unknown directive '" + kind + "'");
  }
  if (!header_seen) {
    return Status::invalid_argument("config: missing 'accelerator' header");
  }
  for (std::size_t b = 0; b < seen.size(); ++b) {
    for (std::size_t i = 0; i < seen[b].size(); ++i) {
      if (!seen[b][i]) {
        return Status::invalid_argument(
            "config: missing unit line for stage '" +
            model.stage(model.branches[b].stages[i]).name + "'");
      }
    }
  }
  return config;
}

}  // namespace fcad::arch
