#include "arch/platform.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace fcad::arch {

Platform platform_z7045() {
  return {.name = "Z7045", .dsps = 900, .brams18k = 1090, .luts = 218600,
          .bw_gbps = 12.8, .freq_mhz = 200, .is_asic = false};
}

Platform platform_zu17eg() {
  return {.name = "ZU17EG", .dsps = 1590, .brams18k = 1592, .luts = 380000,
          .bw_gbps = 12.8, .freq_mhz = 200, .is_asic = false};
}

Platform platform_zu9cg() {
  return {.name = "ZU9CG", .dsps = 2520, .brams18k = 1824, .luts = 274080,
          .bw_gbps = 12.8, .freq_mhz = 200, .is_asic = false};
}

Platform platform_ku115() {
  return {.name = "KU115", .dsps = 5520, .brams18k = 4320, .luts = 663360,
          .bw_gbps = 19.2, .freq_mhz = 200, .is_asic = false};
}

Platform make_asic(const std::string& name, int mac_units, double buffer_mib,
                   double bw_gbps, double freq_mhz) {
  Platform p;
  p.name = name;
  p.dsps = mac_units;
  p.brams18k =
      static_cast<int>(std::ceil(buffer_mib * 1024.0 * 1024.0 * 8.0 / 18432.0));
  p.bw_gbps = bw_gbps;
  p.freq_mhz = freq_mhz;
  p.is_asic = true;
  return p;
}

StatusOr<Platform> platform_by_name(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const Platform& p : all_platforms()) {
    std::string pl = p.name;
    std::transform(pl.begin(), pl.end(), pl.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (pl == lower) return p;
  }
  return Status::not_found("unknown platform '" + name + "'");
}

std::vector<Platform> all_platforms() {
  return {platform_z7045(), platform_zu17eg(), platform_zu9cg(),
          platform_ku115()};
}

}  // namespace fcad::arch
