#include "arch/elastic.hpp"

#include <algorithm>
#include <limits>

namespace fcad::arch {
namespace {

double stage_cycles(const FusedStage& stage, const UnitConfig& cfg,
                    EvalMode mode, const Datapath& dp) {
  return mode == EvalMode::kAnalytical
             ? cycles_analytical(stage, cfg, dp)
             : static_cast<double>(cycles_quantized(stage, cfg, dp));
}

}  // namespace

AcceleratorEval evaluate(const ReorganizedModel& model,
                         const AcceleratorConfig& config, EvalMode mode) {
  FCAD_CHECK_MSG(config.branches.size() == model.branches.size(),
                 "config/branch arity mismatch");
  const double freq_hz = config.freq_mhz * 1e6;

  AcceleratorEval eval;
  eval.branches.resize(model.branches.size());

  // Pass 1: per-stage latency and resources for owned stages.
  // stage index -> its latency (for cross-branch caps) and owner batch.
  std::vector<double> stage_lat(model.fused.stages.size(), 0.0);
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    const BranchPipeline& br = model.branches[b];
    const BranchHardwareConfig& hw = config.branches[b];
    FCAD_CHECK_MSG(hw.units.size() == br.stages.size(),
                   "unit config arity mismatch on branch");
    FCAD_CHECK_MSG(hw.batch >= 1, "batch must be >= 1");
    BranchEval& be = eval.branches[b];
    be.batch = hw.batch;

    std::int64_t param_bytes = 0;
    std::int64_t feature_bytes = 0;
    for (std::size_t i = 0; i < br.stages.size(); ++i) {
      const int s = br.stages[i];
      const FusedStage& stage = model.stage(s);
      const UnitConfig& cfg = hw.units[i];
      FCAD_CHECK_MSG(fits_stage(cfg, stage),
                     "unit config exceeds stage dims: " + stage.name);

      UnitStreamContext ctx;
      ctx.reads_external_input =
          model.fused.stage_inputs[static_cast<std::size_t>(s)].empty();
      ctx.writes_external_output =
          !model.fused.stage_outputs[static_cast<std::size_t>(s)].empty();

      StageEval se;
      se.stage = s;
      se.cfg = cfg;
      se.cycles = stage_cycles(stage, cfg, mode, config.datapath);
      se.res = unit_resources(stage, cfg, config.datapath, ctx);
      stage_lat[static_cast<std::size_t>(s)] = se.cycles;

      be.dsps += se.res.dsps * hw.batch;
      be.luts += se.res.luts * hw.batch;
      be.brams += se.res.brams * hw.batch;
      param_bytes += se.res.param_stream_bytes;
      feature_bytes += se.res.feature_stream_bytes;
      be.bottleneck_cycles = std::max(be.bottleneck_cycles, se.cycles);
      be.stages.push_back(std::move(se));
    }

    // Eq. 5: FPS = batch / max latency. A branch owning no stages (fully
    // shared into another branch) is only limited by its producers, handled
    // by the cross-branch caps below.
    be.fps = be.bottleneck_cycles > 0
                 ? hw.batch * freq_hz / be.bottleneck_cycles
                 : std::numeric_limits<double>::infinity();
    // Stash stream byte totals in bw_gbps temporarily; finalized below once
    // the capped FPS is known (traffic scales with delivered frames).
    be.bw_gbps = static_cast<double>(param_bytes) +
                 static_cast<double>(feature_bytes) * hw.batch;
  }

  // Pass 2: cross-branch caps. A branch consuming a stage owned by another
  // branch cannot exceed that stage's production rate (owner batch copies,
  // each finishing a frame per stage latency).
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    const BranchPipeline& br = model.branches[b];
    BranchEval& be = eval.branches[b];
    for (int s : br.path) {
      const int owner = model.owner[static_cast<std::size_t>(s)];
      if (owner == static_cast<int>(b)) continue;
      const double lat = stage_lat[static_cast<std::size_t>(s)];
      if (lat <= 0) continue;
      const double producer_fps =
          config.branches[static_cast<std::size_t>(owner)].batch * freq_hz /
          lat;
      be.fps = std::min(be.fps, producer_fps);
    }
  }

  // Pass 3: delivered GOP/s, efficiency, bandwidth, accelerator totals.
  const double beta = config.datapath.beta_ops_per_dsp();
  double total_gops = 0;
  for (std::size_t b = 0; b < model.branches.size(); ++b) {
    const BranchPipeline& br = model.branches[b];
    BranchEval& be = eval.branches[b];
    // Delivered MAC work only (2 ops per MAC), matching Eq. 3's peak, so a
    // perfectly balanced pipeline tops out at 100%.
    be.gops = 2.0 * static_cast<double>(br.macs_owned) * be.fps * 1e-9;
    be.efficiency =
        be.dsps > 0 ? be.gops * 1e9 / (beta * be.dsps * freq_hz) : 0.0;
    // Traffic: parameters fetched once per frame wave (fps / batch waves per
    // second, broadcast to copies), features per delivered frame.
    const double waves_per_s = be.batch > 0 ? be.fps / be.batch : 0.0;
    double param_bytes = 0;
    double feature_bytes = 0;
    for (const StageEval& se : be.stages) {
      param_bytes += static_cast<double>(se.res.param_stream_bytes);
      feature_bytes += static_cast<double>(se.res.feature_stream_bytes);
    }
    be.bw_gbps =
        (param_bytes * waves_per_s + feature_bytes * be.fps) * 1e-9;

    eval.dsps += be.dsps;
    eval.luts += be.luts;
    eval.brams += be.brams;
    eval.bw_gbps += be.bw_gbps;
    total_gops += be.gops;
  }
  eval.min_fps = eval.branches.empty() ? 0.0 : eval.branches[0].fps;
  for (const BranchEval& be : eval.branches) {
    eval.min_fps = std::min(eval.min_fps, be.fps);
  }
  eval.efficiency = eval.dsps > 0
                        ? total_gops * 1e9 / (beta * eval.dsps * freq_hz)
                        : 0.0;
  eval.accuracy_proxy = config.datapath.accuracy_proxy();
  return eval;
}

}  // namespace fcad::arch
