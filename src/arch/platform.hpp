// Target platform catalog: the FPGA devices the paper evaluates, expressed
// as the three resource budgets of Table III — compute (Cmax = DSPs),
// on-chip memory (Mmax = BRAM18K blocks), and external memory bandwidth
// (BWmax). An ASIC target is the same triple with MAC-array / buffer /
// DRAM-channel semantics.
#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace fcad::arch {

struct Platform {
  std::string name;
  int dsps = 0;          ///< Cmax
  int brams18k = 0;      ///< Mmax
  /// Fabric LUTs available to LUT-multiplier datapaths (arch/datapath.hpp);
  /// 0 means no LUT fabric (ASICs), making those datapaths infeasible.
  int luts = 0;
  double bw_gbps = 12.8; ///< BWmax, GB/s (DDR3 per the paper's setup)
  double freq_mhz = 200; ///< accelerator clock
  bool is_asic = false;

  double bw_bytes_per_cycle() const {
    return bw_gbps * 1e9 / (freq_mhz * 1e6);
  }
};

/// Xilinx Zynq-7045 — Scheme/Case 1 (budget 900 DSPs, 1090 BRAM18K).
Platform platform_z7045();
/// Xilinx ZU17EG — Scheme/Case 2-3 (budget 1590 DSPs, 1592 BRAM18K).
Platform platform_zu17eg();
/// Xilinx ZU9CG — Scheme/Case 4-5 (budget 2520 DSPs, 1824 BRAM18K).
Platform platform_zu9cg();
/// Xilinx KU115 — the Figs. 6-7 calibration board (5520 DSPs, 4320 BRAM18K).
Platform platform_ku115();

/// An ASIC budget: MAC units (as DSP-equivalents), on-chip buffer expressed
/// in BRAM18K-equivalents (18 Kbit blocks), and DRAM bandwidth.
Platform make_asic(const std::string& name, int mac_units, double buffer_mib,
                   double bw_gbps, double freq_mhz);

/// Lookup by name ("z7045", "zu17eg", "zu9cg", "ku115"); case-insensitive.
StatusOr<Platform> platform_by_name(const std::string& name);

/// All built-in FPGA platforms.
std::vector<Platform> all_platforms();

}  // namespace fcad::arch
