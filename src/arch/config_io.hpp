// Text serialization of generated accelerator configurations, so a design
// found by the DSE can be saved, diffed, and re-evaluated later (the
// artifact a downstream RTL generator would consume).
//
// Format:
//   accelerator dw=<int8|int16> ww=<int8|int16> freq_mhz=<f>
//   branch <index> batch=<n>
//   unit <stage-name> cpf=<n> kpf=<n> h=<n>
//   ...
#pragma once

#include <string>

#include "arch/elastic.hpp"
#include "arch/reorg.hpp"
#include "util/status.hpp"

namespace fcad::arch {

/// Renders `config` against `model` (stage names come from the model).
std::string config_to_text(const ReorganizedModel& model,
                           const AcceleratorConfig& config);

/// Parses a config for `model`. Fails on unknown stage names, arity
/// mismatches with the model's branch structure, or factors that do not fit
/// the named stage.
StatusOr<AcceleratorConfig> config_from_text(const ReorganizedModel& model,
                                             const std::string& text);

}  // namespace fcad::arch
