// DEPRECATED facade — core::Flow, the original one-call flow wrapper, kept
// one release as an inline shim over core::Pipeline so out-of-tree callers
// keep compiling. New code constructs a Pipeline (staged, cached,
// serializable artifacts) and a dse::SearchSpec.
#pragma once

#include <utility>

#include "core/pipeline.hpp"

namespace fcad::core {

/// Legacy options bundle. Superseded by PipelineOptions, whose SearchSpec
/// additionally carries the objective and the RunControl.
struct FlowOptions {
  dse::Customization customization;
  dse::CrossBranchOptions search;
  bool run_simulation = false;  ///< cycle-level validation of the winner
  sim::SimOptions sim;
};

/// The result shape is unchanged; FlowResult is the PipelineResult.
using FlowResult = PipelineResult;

class [[deprecated("use core::Pipeline")]] Flow {
 public:
  Flow(nn::Graph graph, arch::Platform platform)
      : graph_(std::move(graph)), platform_(std::move(platform)) {}

  /// Runs the three steps (plus optional simulation) through a fresh
  /// Pipeline.
  StatusOr<FlowResult> run(const FlowOptions& options) const {
    Pipeline pipeline(graph_, platform_);
    PipelineOptions pipeline_options;
    pipeline_options.spec.customization = options.customization;
    pipeline_options.spec.search = options.search;
    pipeline_options.run_simulation = options.run_simulation;
    pipeline_options.sim = options.sim;
    return pipeline.run(pipeline_options);
  }

  const nn::Graph& graph() const { return graph_; }
  const arch::Platform& platform() const { return platform_; }

 private:
  nn::Graph graph_;
  arch::Platform platform_;
};

}  // namespace fcad::core
