// fcad::Flow — the whole automation design flow of Fig. 4 behind one call:
//   Step 1 (Analysis):     profile the network, extract branch structure;
//   Step 2 (Construction): fuse layers, separate/reorganize branches, expand
//                          the elastic architecture;
//   Step 3 (Optimization): multi-branch DSE under the platform budgets.
// Optionally validates the winning design on the cycle-level simulator.
#pragma once

#include <optional>

#include "analysis/branches.hpp"
#include "arch/reorg.hpp"
#include "dse/engine.hpp"
#include "nn/graph.hpp"
#include "sim/simulator.hpp"

namespace fcad::core {

struct FlowOptions {
  dse::Customization customization;
  dse::CrossBranchOptions search;
  bool run_simulation = false;  ///< cycle-level validation of the winner
  sim::SimOptions sim;
};

struct FlowResult {
  analysis::GraphProfile profile;
  analysis::BranchDecomposition decomposition;
  arch::ReorganizedModel model;
  dse::SearchResult search;
  std::optional<sim::SimResult> simulation;
};

class Flow {
 public:
  Flow(nn::Graph graph, arch::Platform platform)
      : graph_(std::move(graph)), platform_(std::move(platform)) {}

  /// Runs the three steps. Fails on malformed networks, arity-mismatched
  /// customization, or graphs the pipeline paradigm cannot map.
  StatusOr<FlowResult> run(const FlowOptions& options) const;

  const nn::Graph& graph() const { return graph_; }
  const arch::Platform& platform() const { return platform_; }

 private:
  nn::Graph graph_;
  arch::Platform platform_;
};

}  // namespace fcad::core
