#include "core/calibration.hpp"

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/classic_nets.hpp"
#include "sim/simulator.hpp"

namespace fcad::core {

std::vector<CalibrationPoint> run_calibration() {
  std::vector<CalibrationPoint> points;
  const arch::Platform ku115 = arch::platform_ku115();
  const nn::DataType dtypes[] = {nn::DataType::kInt16, nn::DataType::kInt8};

  int index = 1;
  for (nn::DataType dtype : dtypes) {
    for (nn::Graph& net : nn::zoo::calibration_benchmarks()) {
      auto model = arch::reorganize(net);
      FCAD_CHECK_MSG(model.is_ok(), model.status().message());

      dse::SearchSpec spec;
      spec.customization.quantization = dtype;
      spec.search.population = 40;  // single branch: small swarm suffices
      spec.search.iterations = 8;
      spec.search.seed = 1234 + index;
      auto outcome = dse::SearchDriver(*model, ku115).run(spec);
      FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
      const dse::SearchResult* search = &outcome->search;

      const sim::SimResult simulated =
          sim::simulate(*model, search->config, ku115);

      CalibrationPoint p;
      p.name = std::to_string(index) + ": " + net.name() + " (" +
               nn::to_string(dtype) + ")";
      // Analytical estimate: smooth Eq. 4/5 + Eq. 3 on the winning config.
      const arch::AcceleratorEval analytical = arch::evaluate(
          *model, search->config, arch::EvalMode::kAnalytical);
      p.est_fps = analytical.min_fps;
      p.est_eff = analytical.efficiency;
      p.real_fps = simulated.min_fps;
      p.real_eff = simulated.efficiency;
      points.push_back(p);
      ++index;
    }
  }
  return points;
}

}  // namespace fcad::core
