// Shared calibration harness for Figs. 6-7: configure each calibration
// backbone (AlexNet, ZFNet, VGG16, Tiny-YOLO; 16-bit = benchmarks 1-4,
// 8-bit = 5-8) on the KU115 with the F-CAD flow, then compare the
// analytical estimate (Eqs. 3-5) against the cycle-level simulator standing
// in for the paper's board-level implementation.
//
// Lives in the library (not under bench/) so every bench binary — and any
// embedding tool — consumes one copy of the harness.
#pragma once

#include <cmath>
#include <string>
#include <vector>

namespace fcad::core {

struct CalibrationPoint {
  std::string name;    ///< "1: AlexNet (16-bit)" ...
  double est_fps = 0;  ///< analytical estimate
  double real_fps = 0; ///< simulated ("board") value
  double est_eff = 0;
  double real_eff = 0;

  double fps_error() const {
    return real_fps > 0 ? std::abs(est_fps - real_fps) / real_fps : 0.0;
  }
  double eff_error() const {
    return real_eff > 0 ? std::abs(est_eff - real_eff) / real_eff : 0.0;
  }
};

/// Runs the eight-benchmark calibration sweep on the KU115.
std::vector<CalibrationPoint> run_calibration();

}  // namespace fcad::core
