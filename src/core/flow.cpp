#include "core/flow.hpp"

namespace fcad::core {

StatusOr<FlowResult> Flow::run(const FlowOptions& options) const {
  FlowResult result;

  // Step 1 — Analysis.
  result.profile = analysis::profile_graph(graph_);
  auto decomposition = analysis::decompose(graph_, result.profile);
  if (!decomposition.is_ok()) return decomposition.status();
  result.decomposition = std::move(decomposition).value();

  // Step 2 — Construction.
  auto model = arch::reorganize(graph_);
  if (!model.is_ok()) return model.status();
  result.model = std::move(model).value();

  // Step 3 — Optimization.
  dse::DseRequest request;
  request.platform = platform_;
  request.customization = options.customization;
  request.options = options.search;
  auto search = dse::optimize(result.model, std::move(request));
  if (!search.is_ok()) return search.status();
  result.search = std::move(search).value();

  if (options.run_simulation) {
    result.simulation = sim::simulate(result.model, result.search.config,
                                      platform_, options.sim);
  }
  return result;
}

}  // namespace fcad::core
