// Rendering of pipeline results as paper-style tables (Table IV rows).
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace fcad::core {

/// Table-IV style case report: per-branch DSP/BRAM usage, FPS, efficiency,
/// totals against the budget, and DSE runtime.
std::string case_report(const std::string& case_name,
                        const PipelineResult& result,
                        const arch::Platform& platform);

/// One-line summary: "FPS {a, b, c} eff {..} DSP n/m BRAM n/m in s seconds".
std::string summary_line(const PipelineResult& result,
                         const arch::Platform& platform);

}  // namespace fcad::core
