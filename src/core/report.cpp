#include "core/report.hpp"

#include <sstream>

#include "util/format.hpp"
#include "util/table.hpp"

namespace fcad::core {

std::string case_report(const std::string& case_name,
                        const PipelineResult& result,
                        const arch::Platform& platform) {
  const arch::AcceleratorEval& eval = result.search.eval;
  std::ostringstream os;
  os << case_name << " — platform " << platform.name << " (budget "
     << platform.dsps << " DSPs, " << platform.brams18k << " BRAMs, "
     << format_fixed(platform.bw_gbps, 1) << " GB/s)\n";

  TablePrinter t({"Br.", "role", "batch", "DSP", "BRAM", "BW (GB/s)", "FPS",
                  "Efficiency"});
  for (std::size_t b = 0; b < eval.branches.size(); ++b) {
    const arch::BranchEval& be = eval.branches[b];
    t.add_row({std::to_string(b + 1), result.model.branches[b].role,
               std::to_string(be.batch), std::to_string(be.dsps),
               std::to_string(be.brams), format_fixed(be.bw_gbps, 2),
               format_fixed(be.fps, 1), format_percent(be.efficiency, 1)});
  }
  os << t.to_string();
  os << "totals: " << eval.dsps << " DSPs ("
     << format_percent(static_cast<double>(eval.dsps) / platform.dsps, 1)
     << "), " << eval.brams << " BRAMs ("
     << format_percent(static_cast<double>(eval.brams) / platform.brams18k, 1)
     << "), " << format_fixed(eval.bw_gbps, 2) << " GB/s; overall efficiency "
     << format_percent(eval.efficiency, 1) << "; DSE time "
     << format_fixed(result.search.seconds, 1) << " s ("
     << result.search.trace.evaluations << " in-branch evaluations, converged"
     << " at iteration " << result.search.trace.convergence_iteration << ")\n";
  const dse::SearchTrace& trace = result.search.trace;
  if (const std::int64_t lookups = trace.cache_hits + trace.cache_misses;
      lookups > 0) {
    os << "fitness cache: " << trace.cache_hits << "/" << lookups
       << " lookups hit ("
       << format_percent(
              static_cast<double>(trace.cache_hits) /
                  static_cast<double>(lookups),
              1)
       << ")\n";
  }
  if (result.simulation.has_value()) {
    os << "simulator check: min FPS "
       << format_fixed(result.simulation->min_fps, 1) << ", efficiency "
       << format_percent(result.simulation->efficiency, 1) << ", DDR "
       << format_fixed(result.simulation->ddr_demand_gbps, 2) << " GB/s\n";
  }
  return os.str();
}

std::string summary_line(const PipelineResult& result,
                         const arch::Platform& platform) {
  const arch::AcceleratorEval& eval = result.search.eval;
  std::ostringstream os;
  os << "FPS {";
  for (std::size_t b = 0; b < eval.branches.size(); ++b) {
    if (b) os << ", ";
    os << format_fixed(eval.branches[b].fps, 1);
  }
  os << "} eff " << format_percent(eval.efficiency, 1) << " DSP " << eval.dsps
     << "/" << platform.dsps << " BRAM " << eval.brams << "/"
     << platform.brams18k << " in " << format_fixed(result.search.seconds, 1)
     << "s";
  return os.str();
}

}  // namespace fcad::core
