// fcad::core::Pipeline — the staged, resumable Fig. 4 flow behind the
// public API:
//   Stage 1 (Analysis):     analyze()   -> ProfileArtifact
//   Stage 2 (Construction): construct() -> ReorgArtifact
//   Stage 3 (Optimization): optimize(SearchSpec) -> SearchArtifact
//   Stage 4 (Validation):   simulate()  -> SimArtifact
//
// Each stage is produced once and cached, so repeated optimize() calls (a
// serving sweep, a spec ladder) reuse the analysis/construction artifacts
// instead of re-profiling the graph per configuration. The search artifact
// serializes (reusing arch/config_io for the winning configuration) and
// re-enters via load_search(), so a design found yesterday can be
// re-evaluated, simulated, or reported today without re-searching.
//
// run() is the one-shot convenience covering the legacy core::Flow::run.
#pragma once

#include <optional>
#include <string>

#include "analysis/branches.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/graph.hpp"
#include "sim/simulator.hpp"

namespace fcad::core {

/// Stage-1 artifact: per-layer compute/memory profile + branch structure.
struct ProfileArtifact {
  analysis::GraphProfile profile;
  analysis::BranchDecomposition decomposition;
};

/// Stage-2 artifact: the fused, branch-reorganized hardware model.
struct ReorgArtifact {
  arch::ReorganizedModel model;
};

/// Stage-3 artifact: the outcome of one SearchDriver run.
struct SearchArtifact {
  dse::SearchOutcome outcome;

  /// The winning hardware search of the outcome (kTraffic's winner lives in
  /// outcome.traffic.search; every other kind fills outcome.search).
  const dse::SearchResult& best() const;
};

/// Stage-4 artifact: cycle-level validation of the winning configuration.
struct SimArtifact {
  sim::SimResult result;
};

/// Text serialization of a search artifact: a small stats header plus the
/// winning configuration in the arch/config_io format. Stable across runs;
/// doubles round-trip bit-exactly.
std::string search_artifact_to_text(const ReorgArtifact& reorg,
                                    const SearchArtifact& artifact);

/// Parses a serialized search artifact against `reorg` (stage names must
/// match the model) and re-evaluates the configuration, so the artifact
/// re-enters the pipeline exactly where the search left off.
StatusOr<SearchArtifact> search_artifact_from_text(const ReorgArtifact& reorg,
                                                   const std::string& text);

struct PipelineOptions {
  /// The optimization stage's request (defaults to SearchKind::kOptimize).
  dse::SearchSpec spec;
  bool run_simulation = false;  ///< cycle-level validation of the winner
  sim::SimOptions sim;
};

/// Flat result of a full pipeline pass (the legacy FlowResult shape).
struct PipelineResult {
  analysis::GraphProfile profile;
  analysis::BranchDecomposition decomposition;
  arch::ReorganizedModel model;
  dse::SearchResult search;
  std::optional<sim::SimResult> simulation;
};

class Pipeline {
 public:
  Pipeline(nn::Graph graph, arch::Platform platform)
      : graph_(std::move(graph)), platform_(std::move(platform)) {}

  // ---- staged execution --------------------------------------------------
  // Stages cache their artifact: a second call is free. optimize() is the
  // exception — every call runs the given spec and replaces the cached
  // search artifact (clearing any stale simulation). Later stages pull in
  // their prerequisites automatically.

  Status analyze();
  Status construct();
  Status optimize(const dse::SearchSpec& spec);
  Status simulate(const sim::SimOptions& options = {});

  /// Cached artifacts; null until the stage has run.
  const ProfileArtifact* profile() const {
    return profile_ ? &*profile_ : nullptr;
  }
  const ReorgArtifact* reorg() const { return reorg_ ? &*reorg_ : nullptr; }
  const SearchArtifact* search() const {
    return search_ ? &*search_ : nullptr;
  }
  const SimArtifact* sim() const { return sim_ ? &*sim_ : nullptr; }

  // ---- artifact re-entry -------------------------------------------------

  /// Serialized search artifact, "" when the search stage has not run.
  std::string save_search() const;
  /// Installs a previously serialized search artifact as the stage-3 result
  /// (running analysis/construction first when needed).
  Status load_search(const std::string& text);

  // ---- one-shot convenience ----------------------------------------------

  /// Flattens the cached stages into the legacy result shape. Fails unless
  /// analyze/construct and a search (run or loaded) have completed.
  StatusOr<PipelineResult> result() const;

  /// analyze + construct + optimize(options.spec) [+ simulate], then
  /// result(). Re-runs the optimization stage even when one is cached.
  StatusOr<PipelineResult> run(const PipelineOptions& options);

  const nn::Graph& graph() const { return graph_; }
  const arch::Platform& platform() const { return platform_; }

 private:
  nn::Graph graph_;
  arch::Platform platform_;
  std::optional<ProfileArtifact> profile_;
  std::optional<ReorgArtifact> reorg_;
  std::optional<SearchArtifact> search_;
  std::optional<SimArtifact> sim_;
};

}  // namespace fcad::core
