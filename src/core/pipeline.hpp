// fcad::core::Pipeline — the staged, resumable Fig. 4 flow behind the
// public API:
//   Stage 1 (Analysis):     analyze()   -> ProfileArtifact
//   Stage 2 (Construction): construct() -> ReorgArtifact
//   Stage 3 (Optimization): optimize(SearchSpec) -> SearchArtifact
//   Stage 4 (Validation):   simulate()  -> SimArtifact
//
// Each stage is produced once and cached, so repeated optimize() calls (a
// serving sweep, a spec ladder) reuse the analysis/construction artifacts
// instead of re-profiling the graph per configuration. The search artifact
// serializes (reusing arch/config_io for the configurations) and re-enters
// via load_search(), so a design found yesterday can be re-evaluated,
// simulated, or reported today without re-searching.
//
// On top of the explicit save/load round trip, optimize() can consult a
// spec-hash-keyed artifact cache (set_artifact_cache_dir): each cacheable
// spec maps to a 128-bit key over the spec, the model text, and the
// platform, and a key hit reloads the previous run's bit-identical
// SearchArtifact from disk instead of re-searching — so sweeps, convergence
// studies, and (since artifact v3 serializes the serving stats) traffic
// searches all resume across process restarts.
//
// run() is the one-shot convenience covering the whole flow.
#pragma once

#include <optional>
#include <string>

#include "analysis/branches.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/graph.hpp"
#include "sim/simulator.hpp"

namespace fcad::core {

/// Stage-1 artifact: per-layer compute/memory profile + branch structure.
struct ProfileArtifact {
  analysis::GraphProfile profile;
  analysis::BranchDecomposition decomposition;
};

/// Stage-2 artifact: the fused, branch-reorganized hardware model.
struct ReorgArtifact {
  arch::ReorganizedModel model;
};

/// Stage-3 artifact: the outcome of one SearchDriver run.
struct SearchArtifact {
  dse::SearchOutcome outcome;

  /// The winning hardware search of the outcome (kTraffic's winner lives in
  /// outcome.traffic.search; every other kind fills outcome.search).
  const dse::SearchResult& best() const;
};

/// Stage-4 artifact: cycle-level validation of the winning configuration.
struct SimArtifact {
  sim::SimResult result;
};

/// Text serialization of a search artifact (format v3): the outcome header,
/// the winning search (stats, convergence curve, winning distribution,
/// configuration in the arch/config_io format), every kSweep grid point /
/// the kConvergence aggregate statistics, and the whole kTraffic result
/// (batch targets, users served, SLA verdict, and the serving stats via
/// serving_stats_to_text) — so every outcome kind re-enters whole. Stable
/// across runs; doubles round-trip bit-exactly. Not round-tripped: the
/// fitness-cache hit/miss counters (pure diagnostics of the producing run —
/// they reload as zero).
std::string search_artifact_to_text(const ReorgArtifact& reorg,
                                    const SearchArtifact& artifact);

/// Parses a serialized search artifact against `reorg` (stage names must
/// match the model) and re-evaluates the configurations, so the artifact
/// re-enters the pipeline exactly where the search left off.
StatusOr<SearchArtifact> search_artifact_from_text(const ReorgArtifact& reorg,
                                                   const std::string& text);

struct PipelineOptions {
  /// The optimization stage's request (defaults to SearchKind::kOptimize).
  dse::SearchSpec spec;
  bool run_simulation = false;  ///< cycle-level validation of the winner
  sim::SimOptions sim;
};

/// Flat result of a full pipeline pass.
struct PipelineResult {
  analysis::GraphProfile profile;
  analysis::BranchDecomposition decomposition;
  arch::ReorganizedModel model;
  dse::SearchResult search;
  std::optional<sim::SimResult> simulation;
};

class Pipeline {
 public:
  Pipeline(nn::Graph graph, arch::Platform platform)
      : graph_(std::move(graph)), platform_(std::move(platform)) {}

  // ---- staged execution --------------------------------------------------
  // Stages cache their artifact: a second call is free. optimize() is the
  // exception — every call runs the given spec (or reloads it from the
  // artifact cache) and replaces the cached search artifact (clearing any
  // stale simulation). Later stages pull in their prerequisites
  // automatically.

  Status analyze();
  Status construct();
  Status optimize(const dse::SearchSpec& spec);
  Status simulate(const sim::SimOptions& options = {});

  /// Cached artifacts; null until the stage has run.
  const ProfileArtifact* profile() const {
    return profile_ ? &*profile_ : nullptr;
  }
  const ReorgArtifact* reorg() const { return reorg_ ? &*reorg_ : nullptr; }
  const SearchArtifact* search() const {
    return search_ ? &*search_ : nullptr;
  }
  const SimArtifact* sim() const { return sim_ ? &*sim_ : nullptr; }

  // ---- artifact re-entry -------------------------------------------------

  /// Serialized search artifact, "" when the search stage has not run.
  std::string save_search() const;
  /// Installs a previously serialized search artifact as the stage-3 result
  /// (running analysis/construction first when needed).
  Status load_search(const std::string& text);

  // ---- spec-hash artifact cache ------------------------------------------

  /// Enables the on-disk artifact cache under `dir` ("" disables, the
  /// default). With a cache dir set, optimize() computes the spec's cache
  /// key, reloads `<dir>/<key>.artifact` on a hit (no search runs), and
  /// writes the artifact there after a cache-miss search — so repeated
  /// sweeps and convergence studies resume across process restarts. Entries
  /// invalidate themselves: any spec/model/platform change changes the key.
  void set_artifact_cache_dir(std::string dir) {
    artifact_cache_dir_ = std::move(dir);
  }
  const std::string& artifact_cache_dir() const {
    return artifact_cache_dir_;
  }

  /// The cache key optimize() would use for `spec`: 32 hex digits over the
  /// spec hash, the model text, and the platform. "" when the spec is not
  /// cacheable — only a RunControl deadline disqualifies a spec (it makes
  /// results timing-dependent); kTraffic caches like every other kind now
  /// that artifact v3 serializes the serving stats.
  std::string artifact_cache_key(const dse::SearchSpec& spec) const;

  /// Cache traffic of this pipeline's optimize() calls (only counted while
  /// a cache dir is set and the spec is cacheable).
  int artifact_cache_hits() const { return artifact_cache_hits_; }
  int artifact_cache_misses() const { return artifact_cache_misses_; }

  // ---- one-shot convenience ----------------------------------------------

  /// Flattens the cached stages into the flat result shape. Fails unless
  /// analyze/construct and a search (run or loaded) have completed.
  StatusOr<PipelineResult> result() const;

  /// analyze + construct + optimize(options.spec) [+ simulate], then
  /// result(). Re-runs the optimization stage even when one is cached.
  StatusOr<PipelineResult> run(const PipelineOptions& options);

  const nn::Graph& graph() const { return graph_; }
  const arch::Platform& platform() const { return platform_; }

 private:
  nn::Graph graph_;
  arch::Platform platform_;
  std::optional<ProfileArtifact> profile_;
  std::optional<ReorgArtifact> reorg_;
  std::optional<SearchArtifact> search_;
  std::optional<SimArtifact> sim_;
  std::string artifact_cache_dir_;
  /// Lazily computed graph+platform digest feeding artifact_cache_key()
  /// (both are fixed for the pipeline's lifetime).
  mutable std::string model_digest_;
  int artifact_cache_hits_ = 0;
  int artifact_cache_misses_ = 0;
};

}  // namespace fcad::core
