#include "core/pipeline.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "analysis/profile.hpp"
#include "arch/config_io.hpp"

namespace fcad::core {
namespace {

constexpr const char* kArtifactMagic = "fcad-search-artifact v1";

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

StatusOr<dse::SearchKind> search_kind_by_name(const std::string& name) {
  for (dse::SearchKind kind :
       {dse::SearchKind::kOptimize, dse::SearchKind::kTraffic,
        dse::SearchKind::kMaxBatch, dse::SearchKind::kSweep,
        dse::SearchKind::kConvergence}) {
    if (name == dse::to_string(kind)) return kind;
  }
  return Status::invalid_argument("search artifact: unknown kind '" + name +
                                  "'");
}

}  // namespace

const dse::SearchResult& SearchArtifact::best() const {
  return outcome.kind == dse::SearchKind::kTraffic ? outcome.traffic.search
                                                   : outcome.search;
}

std::string search_artifact_to_text(const ReorgArtifact& reorg,
                                    const SearchArtifact& artifact) {
  const dse::SearchResult& best = artifact.best();
  std::ostringstream os;
  os << kArtifactMagic << "\n";
  os << "kind " << dse::to_string(artifact.outcome.kind) << "\n";
  os << "fitness " << format_double(best.fitness) << "\n";
  os << "feasible " << (best.feasible ? 1 : 0) << "\n";
  os << "seconds " << format_double(best.seconds) << "\n";
  os << "evaluations " << best.trace.evaluations << "\n";
  os << "convergence_iteration " << best.trace.convergence_iteration << "\n";
  os << "config\n";
  os << arch::config_to_text(reorg.model, best.config);
  return os.str();
}

StatusOr<SearchArtifact> search_artifact_from_text(const ReorgArtifact& reorg,
                                                   const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kArtifactMagic) {
    return Status::invalid_argument(
        "search artifact: missing '" + std::string(kArtifactMagic) +
        "' header");
  }

  SearchArtifact artifact;
  dse::SearchResult best;
  bool saw_config = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "config") {
      saw_config = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    std::string value;
    fields >> value;
    if (key == "kind") {
      auto kind = search_kind_by_name(value);
      if (!kind.is_ok()) return kind.status();
      artifact.outcome.kind = *kind;
    } else if (key == "fitness") {
      best.fitness = std::strtod(value.c_str(), nullptr);
    } else if (key == "feasible") {
      best.feasible = value == "1";
    } else if (key == "seconds") {
      best.seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "evaluations") {
      best.trace.evaluations = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "convergence_iteration") {
      best.trace.convergence_iteration =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else {
      return Status::invalid_argument("search artifact: unknown field '" +
                                      key + "'");
    }
  }
  if (!saw_config) {
    return Status::invalid_argument("search artifact: missing config section");
  }
  std::ostringstream config_text;
  config_text << in.rdbuf();
  auto config = arch::config_from_text(reorg.model, config_text.str());
  if (!config.is_ok()) return config.status();
  best.config = std::move(config).value();
  // Re-evaluate under the quantized model — the same view cross_branch_search
  // reports its winner with — so a loaded artifact is immediately usable for
  // reports, serving models, and simulation.
  best.eval =
      arch::evaluate(reorg.model, best.config, arch::EvalMode::kQuantized);
  if (artifact.outcome.kind == dse::SearchKind::kTraffic) {
    artifact.outcome.traffic.search = std::move(best);
  } else {
    artifact.outcome.search = std::move(best);
  }
  return artifact;
}

Status Pipeline::analyze() {
  if (profile_) return Status::ok();
  ProfileArtifact artifact;
  artifact.profile = analysis::profile_graph(graph_);
  auto decomposition = analysis::decompose(graph_, artifact.profile);
  if (!decomposition.is_ok()) return decomposition.status();
  artifact.decomposition = std::move(decomposition).value();
  profile_ = std::move(artifact);
  return Status::ok();
}

Status Pipeline::construct() {
  if (reorg_) return Status::ok();
  if (Status s = analyze(); !s.is_ok()) return s;
  auto model = arch::reorganize(graph_);
  if (!model.is_ok()) return model.status();
  reorg_ = ReorgArtifact{std::move(model).value()};
  return Status::ok();
}

Status Pipeline::optimize(const dse::SearchSpec& spec) {
  if (Status s = construct(); !s.is_ok()) return s;
  const dse::SearchDriver driver(reorg_->model, platform_);
  auto outcome = driver.run(spec);
  if (!outcome.is_ok()) return outcome.status();
  search_ = SearchArtifact{std::move(outcome).value()};
  sim_.reset();  // stale: simulated a previous search stage
  return Status::ok();
}

Status Pipeline::simulate(const sim::SimOptions& options) {
  if (sim_) return Status::ok();
  if (!search_) {
    return Status::invalid_argument(
        "Pipeline::simulate: run or load a search first");
  }
  const dse::SearchResult& best = search_->best();
  if (best.config.branches.empty()) {
    return Status::invalid_argument(
        "Pipeline::simulate: the search artifact has no winning "
        "configuration");
  }
  sim_ = SimArtifact{
      sim::simulate(reorg_->model, best.config, platform_, options)};
  return Status::ok();
}

std::string Pipeline::save_search() const {
  if (!search_ || !reorg_) return "";
  return search_artifact_to_text(*reorg_, *search_);
}

Status Pipeline::load_search(const std::string& text) {
  if (Status s = construct(); !s.is_ok()) return s;
  auto artifact = search_artifact_from_text(*reorg_, text);
  if (!artifact.is_ok()) return artifact.status();
  search_ = std::move(artifact).value();
  sim_.reset();
  return Status::ok();
}

StatusOr<PipelineResult> Pipeline::result() const {
  if (!profile_ || !reorg_ || !search_) {
    return Status::invalid_argument(
        "Pipeline::result: analysis/construction/optimization stages have "
        "not all completed");
  }
  PipelineResult result;
  result.profile = profile_->profile;
  result.decomposition = profile_->decomposition;
  result.model = reorg_->model;
  result.search = search_->best();
  if (sim_) result.simulation = sim_->result;
  return result;
}

StatusOr<PipelineResult> Pipeline::run(const PipelineOptions& options) {
  if (Status s = analyze(); !s.is_ok()) return s;
  if (Status s = construct(); !s.is_ok()) return s;
  if (Status s = optimize(options.spec); !s.is_ok()) return s;
  if (options.run_simulation) {
    if (Status s = simulate(options.sim); !s.is_ok()) return s;
  }
  return result();
}

}  // namespace fcad::core
