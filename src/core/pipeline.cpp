#include "core/pipeline.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "analysis/profile.hpp"
#include "arch/config_io.hpp"
#include "arch/datapath.hpp"
#include "dse/spec_hash.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serving/stats.hpp"
#include "util/format.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace fcad::core {
namespace {

/// Wall-clock lane for pipeline-stage spans; shares the DSE process row so
/// stages nest visually around the strategy rounds they drive.
obs::LaneId pipeline_lane(obs::Tracer* tracer) {
  const int worker = util::ThreadPool::current_worker();
  const obs::LaneId lane{obs::kDsePid, worker};
  if (tracer != nullptr) {
    tracer->name_lane(lane, "dse (wall clock)",
                      worker == 0 ? "driver"
                                  : "worker " + std::to_string(worker));
  }
  return lane;
}

// v3 embedded the kTraffic serving stats (serving_stats_to_text) so traffic
// outcomes round-trip whole and qualify for the spec-hash artifact cache.
// v4 keys sweep_point lines by canonical datapath name and adds the point's
// batch scale (joint precision x microarchitecture x batch sweeps); v3 files
// are rejected like any other stale magic and simply re-searched.
constexpr const char* kArtifactMagic = "fcad-search-artifact v4";

std::string format_double(double value) { return format_exact(value); }

StatusOr<dse::SearchKind> search_kind_by_name(const std::string& name) {
  for (dse::SearchKind kind :
       {dse::SearchKind::kOptimize, dse::SearchKind::kTraffic,
        dse::SearchKind::kMaxBatch, dse::SearchKind::kSweep,
        dse::SearchKind::kConvergence}) {
    if (name == dse::to_string(kind)) return kind;
  }
  return Status::invalid_argument("search artifact: unknown kind '" + name +
                                  "'");
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

void write_doubles(std::ostringstream& os, const char* key,
                   const std::vector<double>& values) {
  os << key << " " << values.size();
  for (double v : values) os << " " << format_double(v);
  os << "\n";
}

/// One search result as key/value stats plus the line-counted config block
/// (arch/config_io format). Shared by the winner and every sweep point. A
/// result truncated before its first evaluation (cancelled run) has no
/// configuration and serializes `config 0`. The fitness-cache hit/miss
/// counters are diagnostics of the producing run and are not round-tripped.
void write_search_block(std::ostringstream& os, const ReorgArtifact& reorg,
                        const dse::SearchResult& result) {
  os << "fitness " << format_double(result.fitness) << "\n";
  os << "feasible " << (result.feasible ? 1 : 0) << "\n";
  os << "stopped_early " << (result.stopped_early ? 1 : 0) << "\n";
  os << "seconds " << format_double(result.seconds) << "\n";
  os << "evaluations " << result.trace.evaluations << "\n";
  os << "convergence_iteration " << result.trace.convergence_iteration
     << "\n";
  write_doubles(os, "best_fitness", result.trace.best_fitness);
  write_doubles(os, "c_frac", result.distribution.c_frac);
  write_doubles(os, "m_frac", result.distribution.m_frac);
  write_doubles(os, "bw_frac", result.distribution.bw_frac);
  const std::string config =
      result.config.branches.empty()
          ? std::string()
          : arch::config_to_text(reorg.model, result.config);
  os << "config " << count_lines(config) << "\n";
  os << config;
}

/// Parses the block written by write_search_block. The configuration is
/// re-evaluated under the quantized model — the same view the search reports
/// its winner with — so a loaded result is immediately usable for reports,
/// serving models, and simulation.
StatusOr<dse::SearchResult> parse_search_block(const ReorgArtifact& reorg,
                                               std::istream& in) {
  dse::SearchResult result;
  std::string line;
  auto read_doubles = [](std::istringstream& fields, const std::string& count,
                         std::vector<double>& out) {
    const long n = std::strtol(count.c_str(), nullptr, 10);
    out.clear();
    for (long i = 0; i < n; ++i) {
      double v = 0;
      fields >> v;
      if (fields.fail()) return false;
      out.push_back(v);
    }
    return true;
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    std::string value;
    fields >> value;
    if (fields.fail()) {
      return Status::invalid_argument(
          "search artifact: result field '" + key + "' has no value");
    }
    if (key == "best_fitness" || key == "c_frac" || key == "m_frac" ||
        key == "bw_frac") {
      std::vector<double>& target =
          key == "best_fitness" ? result.trace.best_fitness
          : key == "c_frac"     ? result.distribution.c_frac
          : key == "m_frac"     ? result.distribution.m_frac
                                : result.distribution.bw_frac;
      if (!read_doubles(fields, value, target)) {
        return Status::invalid_argument("search artifact: malformed " + key +
                                        " line");
      }
    } else if (key == "fitness") {
      result.fitness = std::strtod(value.c_str(), nullptr);
    } else if (key == "feasible") {
      result.feasible = value == "1";
    } else if (key == "stopped_early") {
      result.stopped_early = value == "1";
    } else if (key == "seconds") {
      result.seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "evaluations") {
      result.trace.evaluations = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "convergence_iteration") {
      result.trace.convergence_iteration =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "config") {
      const long lines = std::strtol(value.c_str(), nullptr, 10);
      if (lines < 0) {
        return Status::invalid_argument(
            "search artifact: bad config line count");
      }
      if (lines == 0) return result;  // no winning config (cancelled run)
      std::ostringstream config_text;
      for (long i = 0; i < lines; ++i) {
        if (!std::getline(in, line)) {
          return Status::invalid_argument(
              "search artifact: truncated config block");
        }
        config_text << line << "\n";
      }
      auto config = arch::config_from_text(reorg.model, config_text.str());
      if (!config.is_ok()) return config.status();
      result.config = std::move(config).value();
      result.eval = arch::evaluate(reorg.model, result.config,
                                   arch::EvalMode::kQuantized);
      return result;
    } else {
      return Status::invalid_argument(
          "search artifact: unknown result field '" + key + "'");
    }
  }
  return Status::invalid_argument("search artifact: missing config section");
}

}  // namespace

const dse::SearchResult& SearchArtifact::best() const {
  return outcome.kind == dse::SearchKind::kTraffic ? outcome.traffic.search
                                                   : outcome.search;
}

std::string search_artifact_to_text(const ReorgArtifact& reorg,
                                    const SearchArtifact& artifact) {
  const dse::SearchOutcome& outcome = artifact.outcome;
  std::ostringstream os;
  os << kArtifactMagic << "\n";
  os << "kind " << dse::to_string(outcome.kind) << "\n";
  os << "cancelled " << (outcome.cancelled ? 1 : 0) << "\n";
  if (outcome.kind == dse::SearchKind::kMaxBatch) {
    os << "max_batch " << outcome.max_batch << "\n";
  }
  if (outcome.kind == dse::SearchKind::kConvergence) {
    const dse::ConvergenceStats& stats = outcome.convergence;
    os << "convergence " << stats.runs << " "
       << format_double(stats.mean_iterations) << " "
       << format_double(stats.min_iterations) << " "
       << format_double(stats.max_iterations) << " "
       << format_double(stats.mean_seconds) << " "
       << format_double(stats.mean_fitness) << " "
       << format_double(stats.fitness_spread) << "\n";
  }
  // kSweep/kConvergence outcomes have no winner slot of their own; every
  // other kind writes its winning search (possibly config-less when the run
  // was cancelled before the first evaluation).
  if (outcome.kind != dse::SearchKind::kSweep &&
      outcome.kind != dse::SearchKind::kConvergence) {
    os << "result\n";
    write_search_block(os, reorg, artifact.best());
  }
  if (outcome.kind == dse::SearchKind::kTraffic) {
    const dse::TrafficSearchResult& traffic = outcome.traffic;
    os << "traffic_users_served " << traffic.users_served << "\n";
    os << "traffic_sla_met " << (traffic.sla_met ? 1 : 0) << "\n";
    os << "traffic_sla_fitness " << format_double(traffic.sla_fitness)
       << "\n";
    os << "batch_sizes " << traffic.batch_sizes.size();
    for (int b : traffic.batch_sizes) os << " " << b;
    os << "\n";
    serving::serving_stats_to_text(os, traffic.stats);
  }
  for (const dse::SweepPoint& point : outcome.sweep) {
    os << "sweep_point " << point.datapath << " "
       << format_double(point.freq_mhz) << " " << point.batch_scale << " "
       << (point.pareto_optimal ? 1 : 0) << "\n";
    write_search_block(os, reorg, point.result);
  }
  // Terminal marker: a torn or short-written file (crashed writer, full
  // disk) must parse as truncated, never as a shorter-but-valid artifact.
  os << "end\n";
  return os.str();
}

StatusOr<SearchArtifact> search_artifact_from_text(const ReorgArtifact& reorg,
                                                   const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kArtifactMagic) {
    return Status::invalid_argument(
        "search artifact: missing '" + std::string(kArtifactMagic) +
        "' header");
  }

  SearchArtifact artifact;
  bool saw_kind = false;
  bool saw_result = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "kind") {
      std::string value;
      fields >> value;
      auto kind = search_kind_by_name(value);
      if (!kind.is_ok()) return kind.status();
      artifact.outcome.kind = *kind;
      saw_kind = true;
    } else if (key == "cancelled") {
      std::string value;
      fields >> value;
      if (fields.fail()) {
        return Status::invalid_argument(
            "search artifact: malformed cancelled line");
      }
      artifact.outcome.cancelled = value == "1";
    } else if (key == "max_batch") {
      fields >> artifact.outcome.max_batch;
      if (fields.fail()) {
        return Status::invalid_argument(
            "search artifact: malformed max_batch line");
      }
    } else if (key == "convergence") {
      dse::ConvergenceStats& stats = artifact.outcome.convergence;
      fields >> stats.runs >> stats.mean_iterations >> stats.min_iterations >>
          stats.max_iterations >> stats.mean_seconds >> stats.mean_fitness >>
          stats.fitness_spread;
      if (fields.fail()) {
        return Status::invalid_argument(
            "search artifact: malformed convergence line");
      }
    } else if (key == "result") {
      auto result = parse_search_block(reorg, in);
      if (!result.is_ok()) return result.status();
      if (artifact.outcome.kind == dse::SearchKind::kTraffic) {
        artifact.outcome.traffic.search = std::move(result).value();
      } else {
        artifact.outcome.search = std::move(result).value();
      }
      saw_result = true;
    } else if (key == "traffic_users_served") {
      fields >> artifact.outcome.traffic.users_served;
      if (fields.fail()) {
        return Status::invalid_argument(
            "search artifact: malformed traffic_users_served line");
      }
    } else if (key == "traffic_sla_met") {
      std::string value;
      fields >> value;
      if (fields.fail()) {
        return Status::invalid_argument(
            "search artifact: malformed traffic_sla_met line");
      }
      artifact.outcome.traffic.sla_met = value == "1";
    } else if (key == "traffic_sla_fitness") {
      fields >> artifact.outcome.traffic.sla_fitness;
      if (fields.fail()) {
        return Status::invalid_argument(
            "search artifact: malformed traffic_sla_fitness line");
      }
    } else if (key == "batch_sizes") {
      std::size_t n = 0;
      fields >> n;
      std::vector<int>& sizes = artifact.outcome.traffic.batch_sizes;
      sizes.clear();
      for (std::size_t i = 0; i < n && !fields.fail(); ++i) {
        int b = 0;
        fields >> b;
        sizes.push_back(b);
      }
      if (fields.fail()) {
        return Status::invalid_argument(
            "search artifact: malformed batch_sizes line");
      }
    } else if (key == "serving_stats") {
      auto stats =
          serving::serving_stats_from_text(in, /*header_consumed=*/true);
      if (!stats.is_ok()) return stats.status();
      artifact.outcome.traffic.stats = std::move(stats).value();
    } else if (key == "sweep_point") {
      dse::SweepPoint point;
      std::string pareto;
      fields >> point.datapath >> point.freq_mhz >> point.batch_scale >>
          pareto;
      if (fields.fail() || point.batch_scale < 1) {
        return Status::invalid_argument(
            "search artifact: malformed sweep_point line");
      }
      auto dp = arch::datapath_from_string(point.datapath);
      if (!dp.is_ok()) {
        return Status::invalid_argument("search artifact: " +
                                        dp.status().message());
      }
      point.quantization = dp->ww;
      point.pareto_optimal = pareto == "1";
      auto result = parse_search_block(reorg, in);
      if (!result.is_ok()) return result.status();
      point.result = std::move(result).value();
      artifact.outcome.sweep.push_back(std::move(point));
    } else {
      return Status::invalid_argument("search artifact: unknown field '" +
                                      key + "'");
    }
  }
  if (!saw_kind) {
    return Status::invalid_argument("search artifact: missing kind");
  }
  if (!saw_end) {
    return Status::invalid_argument(
        "search artifact: truncated (missing end marker)");
  }
  const bool needs_winner =
      artifact.outcome.kind != dse::SearchKind::kConvergence &&
      artifact.outcome.kind != dse::SearchKind::kSweep;
  if (needs_winner && !saw_result) {
    return Status::invalid_argument("search artifact: missing result block");
  }
  return artifact;
}

Status Pipeline::analyze() {
  if (profile_) return Status::ok();
  obs::Tracer* const tracer = obs::tracer();
  const obs::WallSpan span(tracer, pipeline_lane(tracer), "pipeline.analyze",
                           "pipeline");
  ProfileArtifact artifact;
  artifact.profile = analysis::profile_graph(graph_);
  auto decomposition = analysis::decompose(graph_, artifact.profile);
  if (!decomposition.is_ok()) return decomposition.status();
  artifact.decomposition = std::move(decomposition).value();
  profile_ = std::move(artifact);
  return Status::ok();
}

Status Pipeline::construct() {
  if (reorg_) return Status::ok();
  if (Status s = analyze(); !s.is_ok()) return s;
  obs::Tracer* const tracer = obs::tracer();
  const obs::WallSpan span(tracer, pipeline_lane(tracer),
                           "pipeline.construct", "pipeline");
  auto model = arch::reorganize(graph_);
  if (!model.is_ok()) return model.status();
  reorg_ = ReorgArtifact{std::move(model).value()};
  return Status::ok();
}

std::string Pipeline::artifact_cache_key(const dse::SearchSpec& spec) const {
  // A deadline makes results timing-dependent and must not be cached.
  // kTraffic qualifies since artifact v3: the serving stats serialize with
  // the outcome, so a traffic run reloads whole.
  if (spec.control.deadline_s > 0) return "";
  // The graph and platform are fixed for the pipeline's lifetime; their
  // digest (which serializes the whole graph) is computed once.
  if (model_digest_.empty()) {
    util::Hash128 model;
    model.absorb_string(nn::to_text(graph_));
    model.absorb_string(platform_.name);
    model.absorb(static_cast<std::uint64_t>(platform_.dsps));
    model.absorb(static_cast<std::uint64_t>(platform_.brams18k));
    model.absorb_double(platform_.bw_gbps);
    model.absorb_double(platform_.freq_mhz);
    model.absorb(static_cast<std::uint64_t>(platform_.is_asic));
    model_digest_ = model.hex();
  }
  util::Hash128 h = dse::spec_hash(spec);
  h.absorb_string(model_digest_);
  return h.hex();
}

Status Pipeline::optimize(const dse::SearchSpec& spec) {
  if (Status s = construct(); !s.is_ok()) return s;
  obs::Tracer* const tracer = obs::tracer();
  const obs::LaneId lane = pipeline_lane(tracer);
  const obs::WallSpan span(tracer, lane, "pipeline.optimize", "pipeline");

  const std::string key =
      artifact_cache_dir_.empty() ? "" : artifact_cache_key(spec);
  const std::filesystem::path cache_path =
      key.empty() ? std::filesystem::path{}
                  : std::filesystem::path(artifact_cache_dir_) /
                        (key + ".artifact");
  if (!key.empty()) {
    const obs::WallSpan probe_span(tracer, lane, "artifact cache probe",
                                   "pipeline");
    std::ifstream in(cache_path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      auto artifact = search_artifact_from_text(*reorg_, buffer.str());
      if (artifact.is_ok() && artifact->outcome.kind == spec.kind) {
        ++artifact_cache_hits_;
        obs::MetricsRegistry::global()
            .counter("core.pipeline.artifact_cache.hits")
            .add(1);
        FCAD_LOG(kInfo) << "artifact cache hit: " << cache_path.string();
        search_ = std::move(artifact).value();
        sim_.reset();
        return Status::ok();
      }
      // A stale or corrupt entry falls through to a fresh search (and is
      // overwritten below).
      FCAD_LOG(kWarn) << "artifact cache entry unreadable, re-searching: "
                      << cache_path.string();
    }
    ++artifact_cache_misses_;
    obs::MetricsRegistry::global()
        .counter("core.pipeline.artifact_cache.misses")
        .add(1);
  }

  const dse::SearchDriver driver(reorg_->model, platform_);
  auto outcome = driver.run(spec);
  if (!outcome.is_ok()) return outcome.status();
  search_ = SearchArtifact{std::move(outcome).value()};
  sim_.reset();  // stale: simulated a previous search stage

  // A cancelled run is partial — never cache it. The write goes through a
  // process-unique temp file + atomic rename so a crashed writer (or two
  // runs sharing a cache dir) can never leave a torn entry behind; readers
  // additionally require the artifact's terminal "end" marker.
  if (!key.empty() && !search_->outcome.cancelled) {
    std::error_code ec;
    std::filesystem::create_directories(artifact_cache_dir_, ec);
    const std::filesystem::path tmp_path =
        cache_path.string() + ".tmp." + std::to_string(::getpid());
    bool written = false;
    {
      std::ofstream out(tmp_path);
      if (out) {
        out << search_artifact_to_text(*reorg_, *search_);
        written = out.good();
      }
    }
    if (written) {
      std::filesystem::rename(tmp_path, cache_path, ec);
      written = !ec;
    }
    if (!written) {
      std::filesystem::remove(tmp_path, ec);
      FCAD_LOG(kWarn) << "artifact cache not writable: "
                      << cache_path.string();
    }
  }
  return Status::ok();
}

Status Pipeline::simulate(const sim::SimOptions& options) {
  if (sim_) return Status::ok();
  if (!search_) {
    return Status::invalid_argument(
        "Pipeline::simulate: run or load a search first");
  }
  const dse::SearchResult& best = search_->best();
  if (best.config.branches.empty()) {
    return Status::invalid_argument(
        "Pipeline::simulate: the search artifact has no winning "
        "configuration");
  }
  obs::Tracer* const tracer = obs::tracer();
  const obs::WallSpan span(tracer, pipeline_lane(tracer), "pipeline.simulate",
                           "pipeline");
  sim_ = SimArtifact{
      sim::simulate(reorg_->model, best.config, platform_, options)};
  return Status::ok();
}

std::string Pipeline::save_search() const {
  if (!search_ || !reorg_) return "";
  return search_artifact_to_text(*reorg_, *search_);
}

Status Pipeline::load_search(const std::string& text) {
  if (Status s = construct(); !s.is_ok()) return s;
  auto artifact = search_artifact_from_text(*reorg_, text);
  if (!artifact.is_ok()) return artifact.status();
  search_ = std::move(artifact).value();
  sim_.reset();
  return Status::ok();
}

StatusOr<PipelineResult> Pipeline::result() const {
  if (!profile_ || !reorg_ || !search_) {
    return Status::invalid_argument(
        "Pipeline::result: analysis/construction/optimization stages have "
        "not all completed");
  }
  PipelineResult result;
  result.profile = profile_->profile;
  result.decomposition = profile_->decomposition;
  result.model = reorg_->model;
  result.search = search_->best();
  if (sim_) result.simulation = sim_->result;
  return result;
}

StatusOr<PipelineResult> Pipeline::run(const PipelineOptions& options) {
  if (Status s = analyze(); !s.is_ok()) return s;
  if (Status s = construct(); !s.is_ok()) return s;
  if (Status s = optimize(options.spec); !s.is_ok()) return s;
  if (options.run_simulation) {
    if (Status s = simulate(options.sim); !s.is_ok()) return s;
  }
  return result();
}

}  // namespace fcad::core
