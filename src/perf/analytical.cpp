#include "perf/analytical.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace fcad::perf {

double latency_eq4_cycles(int out_ch, int in_ch, int height, int width,
                          int kernel, int cpf, int kpf, int h) {
  FCAD_CHECK(out_ch > 0 && in_ch > 0 && height > 0 && width > 0 && kernel > 0);
  FCAD_CHECK(cpf > 0 && kpf > 0 && h > 0);
  const double macs = static_cast<double>(out_ch) * in_ch * height * width *
                      kernel * kernel;
  return macs / (static_cast<double>(cpf) * kpf * h);
}

double latency_eq4_cycles_filled(int out_ch, int in_ch, int height, int width,
                                 int kernel, int cpf, int kpf, int h,
                                 double fill_cycles) {
  FCAD_CHECK(fill_cycles >= 0);
  const double base =
      latency_eq4_cycles(out_ch, in_ch, height, width, kernel, cpf, kpf, h);
  if (fill_cycles == 0) return base;  // pipelined: exactly Eq. 4
  const double passes = static_cast<double>(out_ch) / kpf *
                        (static_cast<double>(height) / h);
  return base + fill_cycles * passes;
}

double latency_eq4_seconds(int out_ch, int in_ch, int height, int width,
                           int kernel, int cpf, int kpf, int h,
                           double freq_mhz) {
  FCAD_CHECK(freq_mhz > 0);
  return latency_eq4_cycles(out_ch, in_ch, height, width, kernel, cpf, kpf,
                            h) /
         (freq_mhz * 1e6);
}

double fps_eq5(int batch_size, const std::vector<double>& stage_cycles,
               double freq_mhz) {
  FCAD_CHECK(batch_size > 0);
  FCAD_CHECK(!stage_cycles.empty());
  const double bottleneck =
      *std::max_element(stage_cycles.begin(), stage_cycles.end());
  FCAD_CHECK(bottleneck > 0);
  return batch_size * freq_mhz * 1e6 / bottleneck;
}

}  // namespace fcad::perf
