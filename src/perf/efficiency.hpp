// Eq. 3: hardware efficiency = delivered GOP/s over theoretical peak.
#pragma once

#include "nn/dtype.hpp"

namespace fcad::perf {

/// Eq. 3: EFFI = GOPS / (beta * multipliers * FREQ), with `multipliers`
/// counted as DSP slices and beta = ops per DSP per cycle (4 at 8-bit, 2 at
/// 16-bit; see nn::beta_ops_per_dsp).
double efficiency_eq3(double gops, nn::DataType operand_type, int dsps,
                      double freq_mhz);

/// Eq. 3 generalized over any datapath: pass the datapath's own beta
/// (arch::Datapath::beta_ops_per_dsp()) instead of deriving it from a
/// uniform operand type.
double efficiency_eq3(double gops, int beta_ops_per_dsp, int dsps,
                      double freq_mhz);

/// Theoretical peak GOP/s of `dsps` DSP slices at `freq_mhz`.
double peak_gops(nn::DataType operand_type, int dsps, double freq_mhz);

/// Peak GOP/s at an explicit beta (ops per DSP per cycle) — the
/// datapath-aware form of the above.
double peak_gops(int beta_ops_per_dsp, int dsps, double freq_mhz);

}  // namespace fcad::perf
