#include "perf/efficiency.hpp"

#include "util/status.hpp"

namespace fcad::perf {

double peak_gops(int beta_ops_per_dsp, int dsps, double freq_mhz) {
  FCAD_CHECK(beta_ops_per_dsp >= 0 && dsps >= 0 && freq_mhz > 0);
  return static_cast<double>(beta_ops_per_dsp) * dsps * freq_mhz *
         1e-3;  // 1e6 Hz * 1e-9 GOP = 1e-3
}

double peak_gops(nn::DataType operand_type, int dsps, double freq_mhz) {
  return peak_gops(nn::beta_ops_per_dsp(operand_type), dsps, freq_mhz);
}

double efficiency_eq3(double gops, int beta_ops_per_dsp, int dsps,
                      double freq_mhz) {
  const double peak = peak_gops(beta_ops_per_dsp, dsps, freq_mhz);
  return peak > 0 ? gops / peak : 0.0;
}

double efficiency_eq3(double gops, nn::DataType operand_type, int dsps,
                      double freq_mhz) {
  return efficiency_eq3(gops, nn::beta_ops_per_dsp(operand_type), dsps,
                        freq_mhz);
}

}  // namespace fcad::perf
