// The paper's analytical performance model, Eqs. 4-5, as standalone
// formulas. arch::evaluate() composes these over a whole accelerator; they
// are exposed here for direct use (and for the unit tests that pin the
// formulas to hand-computed values).
#pragma once

#include <cstdint>
#include <vector>

namespace fcad::perf {

/// Eq. 4: latency (cycles) of a Conv-like layer with input feature map
/// InCh x H x W, kernel OutCh x InCh x K x K, under 3D parallelism
/// (cpf, kpf, h). Stride-1 same-padding assumed (H, W are both the input and
/// output spatial dims).
double latency_eq4_cycles(int out_ch, int in_ch, int height, int width,
                          int kernel, int cpf, int kpf, int h);

/// Fill-aware Eq. 4: a staged (non-pipelined) MAC tree drains `fill_cycles`
/// extra cycles per output tile pass, of which the layer runs
/// (out_ch/kpf) * (height/h). `fill_cycles == 0` (a fully pipelined
/// datapath, arch::MacStyle::kPipelined) reduces bit-exactly to
/// latency_eq4_cycles. Mirrors arch::cycles_analytical(stage, cfg, datapath)
/// with `fill_cycles = datapath.fill_cycles()`.
double latency_eq4_cycles_filled(int out_ch, int in_ch, int height, int width,
                                 int kernel, int cpf, int kpf, int h,
                                 double fill_cycles);

/// Eq. 4 expressed in seconds at frequency `freq_mhz`.
double latency_eq4_seconds(int out_ch, int in_ch, int height, int width,
                           int kernel, int cpf, int kpf, int h,
                           double freq_mhz);

/// Eq. 5: branch throughput = batch size over the slowest pipeline stage.
double fps_eq5(int batch_size, const std::vector<double>& stage_cycles,
               double freq_mhz);

}  // namespace fcad::perf
