#include "nn/dtype.hpp"

#include "util/status.hpp"

namespace fcad::nn {

int bits(DataType dtype) {
  switch (dtype) {
    case DataType::kInt8: return 8;
    case DataType::kInt16: return 16;
  }
  FCAD_CHECK_MSG(false, "unknown dtype");
  return 0;
}

int bytes(DataType dtype) { return (bits(dtype) + 7) / 8; }

int multipliers_per_dsp(DataType dtype) {
  return dtype == DataType::kInt8 ? 2 : 1;
}

int beta_ops_per_dsp(DataType dtype) {
  // 2 ops per MAC times packed multipliers per DSP.
  return 2 * multipliers_per_dsp(dtype);
}

std::string to_string(DataType dtype) {
  return dtype == DataType::kInt8 ? "int8" : "int16";
}

}  // namespace fcad::nn
