#include "nn/dtype.hpp"

#include "util/status.hpp"

namespace fcad::nn {

int bits(DataType dtype) {
  switch (dtype) {
    case DataType::kInt8: return 8;
    case DataType::kInt16: return 16;
    case DataType::kInt4: return 4;
  }
  FCAD_CHECK_MSG(false, "unknown dtype");
  return 0;
}

int bytes(DataType dtype) { return (bits(dtype) + 7) / 8; }

int multipliers_per_dsp(DataType dtype) {
  switch (dtype) {
    case DataType::kInt8: return 2;
    case DataType::kInt16: return 1;
    case DataType::kInt4: return 0;  // LUT fabric (arch::Datapath prices it)
  }
  FCAD_CHECK_MSG(false, "unknown dtype");
  return 0;
}

int beta_ops_per_dsp(DataType dtype) {
  // 2 ops per MAC times packed multipliers per DSP.
  return 2 * multipliers_per_dsp(dtype);
}

std::string to_string(DataType dtype) {
  switch (dtype) {
    case DataType::kInt8: return "int8";
    case DataType::kInt16: return "int16";
    case DataType::kInt4: return "int4";
  }
  FCAD_CHECK_MSG(false, "unknown dtype");
  return "";
}

StatusOr<DataType> data_type_from_string(const std::string& name) {
  for (DataType dtype :
       {DataType::kInt8, DataType::kInt16, DataType::kInt4}) {
    if (name == to_string(dtype)) return dtype;
  }
  return Status::invalid_argument("unknown dtype '" + name + "'");
}

}  // namespace fcad::nn
