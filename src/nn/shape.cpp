#include "nn/shape.hpp"

#include <sstream>

namespace fcad::nn {

std::string TensorShape::to_string() const {
  std::ostringstream os;
  os << '[' << ch << ',' << h << ',' << w << ']';
  return os.str();
}

}  // namespace fcad::nn
