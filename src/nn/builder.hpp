// Fluent construction of multi-branch network graphs with eager shape
// inference. Mirrors how a decoder is described in an ML framework:
//
//   GraphBuilder b("decoder");
//   auto z = b.input("latent", {4, 8, 8});
//   auto x = b.conv2d(z, "br1_c1", {.out_ch = 256, .kernel = 4,
//                                   .untied_bias = true});
//   x = b.leaky_relu(x, "br1_a1");
//   x = b.upsample2x(x, "br1_u1");
//   ...
//   b.output(x, "geometry");
//   Graph g = std::move(b).build();
#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"
#include "util/status.hpp"

namespace fcad::nn {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string name);

  /// Declares a network input of the given shape.
  LayerId input(const std::string& name, TensorShape shape);

  /// Same-padded 2D convolution (the `untied_bias` flag selects the
  /// customized Conv of the avatar decoder).
  LayerId conv2d(LayerId in, const std::string& name, Conv2dAttrs attrs);

  LayerId relu(LayerId in, const std::string& name);
  LayerId leaky_relu(LayerId in, const std::string& name);
  LayerId tanh(LayerId in, const std::string& name);

  LayerId upsample2x(LayerId in, const std::string& name,
                     Upsample2xAttrs::Mode mode = Upsample2xAttrs::Mode::kNearest);

  LayerId max_pool(LayerId in, const std::string& name, MaxPoolAttrs attrs);

  /// Dense layer; the input is implicitly flattened.
  LayerId dense(LayerId in, const std::string& name, DenseAttrs attrs);

  /// Reinterprets the element stream as `out` (element count must match).
  LayerId reshape(LayerId in, const std::string& name, TensorShape out);

  /// Channel-wise concatenation; all inputs must share spatial dims.
  LayerId concat(const std::vector<LayerId>& ins, const std::string& name);

  /// Marks `in` as a network output with a semantic role label.
  LayerId output(LayerId in, const std::string& role);

  /// Finalizes the graph. Runs full structural validation (validate.hpp);
  /// fails on empty graphs, missing outputs, or dangling non-output leaves.
  StatusOr<Graph> build() &&;

 private:
  LayerId add(LayerKind kind, const std::string& name, LayerAttrs attrs,
              std::vector<LayerId> inputs);
  const Layer& at(LayerId id) const;

  Graph graph_;
};

}  // namespace fcad::nn
