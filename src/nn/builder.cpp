#include "nn/builder.hpp"

#include <utility>

#include "nn/validate.hpp"

namespace fcad::nn {
namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

TensorShape infer_shape(const Layer& layer,
                        const std::vector<const Layer*>& ins) {
  switch (layer.kind) {
    case LayerKind::kInput:
      return layer.input().shape;
    case LayerKind::kConv2d: {
      const auto& a = layer.conv();
      const TensorShape& s = ins[0]->out_shape;
      return {a.out_ch, ceil_div(s.h, a.stride), ceil_div(s.w, a.stride)};
    }
    case LayerKind::kActivation:
      return ins[0]->out_shape;
    case LayerKind::kUpsample2x: {
      const TensorShape& s = ins[0]->out_shape;
      return {s.ch, s.h * 2, s.w * 2};
    }
    case LayerKind::kMaxPool: {
      const auto& a = layer.max_pool();
      const TensorShape& s = ins[0]->out_shape;
      return {s.ch, ceil_div(s.h, a.stride), ceil_div(s.w, a.stride)};
    }
    case LayerKind::kDense:
      return {layer.dense().out_features, 1, 1};
    case LayerKind::kReshape:
      return layer.reshape().out;
    case LayerKind::kConcat: {
      TensorShape s = ins[0]->out_shape;
      for (std::size_t i = 1; i < ins.size(); ++i) s.ch += ins[i]->out_shape.ch;
      return s;
    }
    case LayerKind::kOutput:
      return ins[0]->out_shape;
  }
  FCAD_CHECK_MSG(false, "unreachable layer kind");
  return {};
}

}  // namespace

GraphBuilder::GraphBuilder(std::string name) { graph_.name_ = std::move(name); }

const Layer& GraphBuilder::at(LayerId id) const {
  FCAD_CHECK_MSG(
      id >= 0 && static_cast<std::size_t>(id) < graph_.layers_.size(),
      "builder: reference to unknown layer id");
  return graph_.layers_[static_cast<std::size_t>(id)];
}

LayerId GraphBuilder::add(LayerKind kind, const std::string& name,
                          LayerAttrs attrs, std::vector<LayerId> inputs) {
  Layer layer;
  layer.id = static_cast<LayerId>(graph_.layers_.size());
  layer.kind = kind;
  layer.name = name;
  layer.attrs = std::move(attrs);
  layer.inputs = std::move(inputs);

  std::vector<const Layer*> ins;
  ins.reserve(layer.inputs.size());
  for (LayerId in : layer.inputs) ins.push_back(&at(in));
  layer.out_shape = infer_shape(layer, ins);

  for (LayerId in : layer.inputs) {
    graph_.consumers_[static_cast<std::size_t>(in)].push_back(layer.id);
  }
  graph_.consumers_.emplace_back();
  if (kind == LayerKind::kInput) graph_.inputs_.push_back(layer.id);
  if (kind == LayerKind::kOutput) graph_.outputs_.push_back(layer.id);
  graph_.layers_.push_back(std::move(layer));
  return graph_.layers_.back().id;
}

LayerId GraphBuilder::input(const std::string& name, TensorShape shape) {
  return add(LayerKind::kInput, name, InputAttrs{shape}, {});
}

LayerId GraphBuilder::conv2d(LayerId in, const std::string& name,
                             Conv2dAttrs attrs) {
  return add(LayerKind::kConv2d, name, attrs, {in});
}

LayerId GraphBuilder::relu(LayerId in, const std::string& name) {
  return add(LayerKind::kActivation, name,
             ActivationAttrs{ActivationAttrs::Kind::kRelu}, {in});
}

LayerId GraphBuilder::leaky_relu(LayerId in, const std::string& name) {
  return add(LayerKind::kActivation, name,
             ActivationAttrs{ActivationAttrs::Kind::kLeakyRelu}, {in});
}

LayerId GraphBuilder::tanh(LayerId in, const std::string& name) {
  return add(LayerKind::kActivation, name,
             ActivationAttrs{ActivationAttrs::Kind::kTanh}, {in});
}

LayerId GraphBuilder::upsample2x(LayerId in, const std::string& name,
                                 Upsample2xAttrs::Mode mode) {
  return add(LayerKind::kUpsample2x, name, Upsample2xAttrs{mode}, {in});
}

LayerId GraphBuilder::max_pool(LayerId in, const std::string& name,
                               MaxPoolAttrs attrs) {
  return add(LayerKind::kMaxPool, name, attrs, {in});
}

LayerId GraphBuilder::dense(LayerId in, const std::string& name,
                            DenseAttrs attrs) {
  return add(LayerKind::kDense, name, attrs, {in});
}

LayerId GraphBuilder::reshape(LayerId in, const std::string& name,
                              TensorShape out) {
  return add(LayerKind::kReshape, name, ReshapeAttrs{out}, {in});
}

LayerId GraphBuilder::concat(const std::vector<LayerId>& ins,
                             const std::string& name) {
  FCAD_CHECK_MSG(!ins.empty(), "concat needs at least one input");
  return add(LayerKind::kConcat, name, ConcatAttrs{}, ins);
}

LayerId GraphBuilder::output(LayerId in, const std::string& role) {
  return add(LayerKind::kOutput, "out_" + role, OutputAttrs{role}, {in});
}

StatusOr<Graph> GraphBuilder::build() && {
  Status status = validate(graph_);
  if (!status.is_ok()) return status;
  return std::move(graph_);
}

}  // namespace fcad::nn
