#include "nn/layer.hpp"

#include "util/status.hpp"

namespace fcad::nn {

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "input";
    case LayerKind::kConv2d: return "conv2d";
    case LayerKind::kActivation: return "activation";
    case LayerKind::kUpsample2x: return "upsample2x";
    case LayerKind::kMaxPool: return "max_pool";
    case LayerKind::kDense: return "dense";
    case LayerKind::kReshape: return "reshape";
    case LayerKind::kConcat: return "concat";
    case LayerKind::kOutput: return "output";
  }
  return "unknown";
}

std::string to_string(ActivationAttrs::Kind kind) {
  switch (kind) {
    case ActivationAttrs::Kind::kRelu: return "relu";
    case ActivationAttrs::Kind::kLeakyRelu: return "leaky_relu";
    case ActivationAttrs::Kind::kTanh: return "tanh";
  }
  return "unknown";
}

namespace {
template <typename T>
const T& get_attrs(const Layer& layer, const char* what) {
  const T* attrs = std::get_if<T>(&layer.attrs);
  FCAD_CHECK_MSG(attrs != nullptr,
                 std::string("layer '") + layer.name + "' is not a " + what);
  return *attrs;
}
}  // namespace

const Conv2dAttrs& Layer::conv() const {
  return get_attrs<Conv2dAttrs>(*this, "conv2d");
}
const DenseAttrs& Layer::dense() const {
  return get_attrs<DenseAttrs>(*this, "dense");
}
const InputAttrs& Layer::input() const {
  return get_attrs<InputAttrs>(*this, "input");
}
const OutputAttrs& Layer::output() const {
  return get_attrs<OutputAttrs>(*this, "output");
}
const ActivationAttrs& Layer::activation() const {
  return get_attrs<ActivationAttrs>(*this, "activation");
}
const MaxPoolAttrs& Layer::max_pool() const {
  return get_attrs<MaxPoolAttrs>(*this, "max_pool");
}
const ReshapeAttrs& Layer::reshape() const {
  return get_attrs<ReshapeAttrs>(*this, "reshape");
}
const Upsample2xAttrs& Layer::upsample() const {
  return get_attrs<Upsample2xAttrs>(*this, "upsample2x");
}

}  // namespace fcad::nn
