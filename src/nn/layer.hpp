// Layer descriptors of the multi-branch DNN IR.
//
// F-CAD consumes networks as structure-only metadata (shapes, kernel sizes,
// parameter counts) — weight values never matter to the DSE — so a layer is a
// kind tag plus an attribute struct. The customized Conv from the codec
// avatar decoder is Conv2d with `untied_bias = true`: one bias per output
// *pixel* (OutCh*H*W extra parameters) instead of one per output channel.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "nn/shape.hpp"

namespace fcad::nn {

using LayerId = std::int32_t;
inline constexpr LayerId kInvalidLayer = -1;

enum class LayerKind {
  kInput,
  kConv2d,
  kActivation,
  kUpsample2x,
  kMaxPool,
  kDense,
  kReshape,
  kConcat,
  kOutput,
};

/// "conv2d", "activation", ...
std::string to_string(LayerKind kind);

struct InputAttrs {
  TensorShape shape;
};

struct Conv2dAttrs {
  int out_ch = 0;
  int kernel = 3;
  int stride = 1;
  /// Same-padding is assumed (output spatial = ceil(input / stride)), which
  /// covers the decoder (stride 1) and the classic backbones we model.
  bool untied_bias = false;  ///< per-pixel bias (customized Conv)
  bool bias = true;          ///< any bias at all
};

struct ActivationAttrs {
  enum class Kind { kRelu, kLeakyRelu, kTanh };
  Kind kind = Kind::kLeakyRelu;
};

std::string to_string(ActivationAttrs::Kind kind);

struct Upsample2xAttrs {
  enum class Mode { kNearest, kBilinear };
  Mode mode = Mode::kNearest;
};

struct MaxPoolAttrs {
  int kernel = 2;
  int stride = 2;
};

struct DenseAttrs {
  int out_features = 0;
  bool bias = true;
};

struct ReshapeAttrs {
  TensorShape out;
};

struct ConcatAttrs {};  // channel-wise concat of all inputs

struct OutputAttrs {
  std::string role;  ///< e.g. "geometry", "texture", "warp_field"
};

using LayerAttrs =
    std::variant<InputAttrs, Conv2dAttrs, ActivationAttrs, Upsample2xAttrs,
                 MaxPoolAttrs, DenseAttrs, ReshapeAttrs, ConcatAttrs,
                 OutputAttrs>;

/// One node of the network DAG. `out_shape` is filled in by validation.
struct Layer {
  LayerId id = kInvalidLayer;
  LayerKind kind = LayerKind::kInput;
  std::string name;
  LayerAttrs attrs = InputAttrs{};
  std::vector<LayerId> inputs;
  TensorShape out_shape;

  const Conv2dAttrs& conv() const;
  const DenseAttrs& dense() const;
  const InputAttrs& input() const;
  const OutputAttrs& output() const;
  const ActivationAttrs& activation() const;
  const MaxPoolAttrs& max_pool() const;
  const ReshapeAttrs& reshape() const;
  const Upsample2xAttrs& upsample() const;
};

}  // namespace fcad::nn
