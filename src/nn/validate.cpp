#include "nn/validate.hpp"

#include <sstream>

namespace fcad::nn {
namespace {

Status fail(const Layer& layer, const std::string& why) {
  std::ostringstream os;
  os << "layer '" << layer.name << "' (id " << layer.id << ", "
     << to_string(layer.kind) << "): " << why;
  return Status::invalid_argument(os.str());
}

Status check_arity(const Layer& layer) {
  const std::size_t n = layer.inputs.size();
  switch (layer.kind) {
    case LayerKind::kInput:
      if (n != 0) return fail(layer, "input layer cannot have predecessors");
      return Status::ok();
    case LayerKind::kConcat:
      if (n < 1) return fail(layer, "concat needs at least one input");
      return Status::ok();
    default:
      if (n != 1) return fail(layer, "expected exactly one input");
      return Status::ok();
  }
}

Status check_shapes(const Graph& graph, const Layer& layer) {
  switch (layer.kind) {
    case LayerKind::kInput: {
      const TensorShape& s = layer.input().shape;
      if (s.ch <= 0 || s.h <= 0 || s.w <= 0) {
        return fail(layer, "input shape must be positive, got " + s.to_string());
      }
      return Status::ok();
    }
    case LayerKind::kConv2d: {
      const auto& a = layer.conv();
      if (a.out_ch <= 0 || a.kernel <= 0 || a.stride <= 0) {
        return fail(layer, "conv attributes must be positive");
      }
      if (a.untied_bias && !a.bias) {
        return fail(layer, "untied_bias requires bias");
      }
      return Status::ok();
    }
    case LayerKind::kMaxPool: {
      const auto& a = layer.max_pool();
      if (a.kernel <= 0 || a.stride <= 0) {
        return fail(layer, "pool attributes must be positive");
      }
      return Status::ok();
    }
    case LayerKind::kDense: {
      if (layer.dense().out_features <= 0) {
        return fail(layer, "dense out_features must be positive");
      }
      return Status::ok();
    }
    case LayerKind::kReshape: {
      const Layer& in = graph.layer(layer.inputs[0]);
      if (layer.reshape().out.elems() != in.out_shape.elems()) {
        return fail(layer, "reshape changes element count: " +
                               in.out_shape.to_string() + " -> " +
                               layer.reshape().out.to_string());
      }
      return Status::ok();
    }
    case LayerKind::kConcat: {
      const Layer& first = graph.layer(layer.inputs[0]);
      for (LayerId id : layer.inputs) {
        const Layer& in = graph.layer(id);
        if (in.out_shape.h != first.out_shape.h ||
            in.out_shape.w != first.out_shape.w) {
          return fail(layer, "concat inputs disagree on spatial dims");
        }
      }
      return Status::ok();
    }
    case LayerKind::kActivation:
    case LayerKind::kUpsample2x:
    case LayerKind::kOutput:
      return Status::ok();
  }
  return Status::internal("unhandled layer kind in validation");
}

}  // namespace

Status validate(const Graph& graph) {
  if (graph.input_ids().empty()) {
    return Status::invalid_argument("graph '" + graph.name() +
                                    "' has no input layer");
  }
  if (graph.output_ids().empty()) {
    return Status::invalid_argument("graph '" + graph.name() +
                                    "' has no output layer");
  }
  for (const Layer& layer : graph.layers()) {
    for (LayerId in : layer.inputs) {
      if (in < 0 || in >= layer.id) {
        return fail(layer, "edge does not point to an earlier layer");
      }
    }
    if (Status s = check_arity(layer); !s.is_ok()) return s;
    if (Status s = check_shapes(graph, layer); !s.is_ok()) return s;
  }
  // Dead code detection: every layer without consumers must be an output.
  for (const Layer& layer : graph.layers()) {
    if (graph.consumers(layer.id).empty() &&
        layer.kind != LayerKind::kOutput) {
      return fail(layer, "dangling layer (no consumer and not an output)");
    }
  }
  return Status::ok();
}

}  // namespace fcad::nn
