// Tensor shapes. The IR is 2D-feature-map centric (channels x height x
// width) because every layer the decoder and the calibration backbones use is
// either an image op or a dense layer viewed as a 1x1 feature map.
#pragma once

#include <cstdint>
#include <string>

namespace fcad::nn {

/// Channels-height-width shape of one activation tensor (batch excluded; the
/// accelerator handles batch by pipeline replication).
struct TensorShape {
  int ch = 0;
  int h = 0;
  int w = 0;

  std::int64_t elems() const {
    return static_cast<std::int64_t>(ch) * h * w;
  }

  bool operator==(const TensorShape&) const = default;

  /// "[ch,h,w]".
  std::string to_string() const;
};

}  // namespace fcad::nn
