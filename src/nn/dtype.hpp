// Quantized data types supported by the accelerator templates.
//
// F-CAD configures bitwidths for features (DW), weights (WW), and the
// external memory bus (MW); the paper evaluates 8-bit and 16-bit fixed-point
// models, and the datapath layer (arch/datapath.hpp) extends the set with a
// 4-bit LUT-fabric variant. The key hardware consequence is DSP packing: one
// Xilinx DSP48 implements two 8-bit multipliers but only one 16-bit
// multiplier, which is where the paper's beta factor (ops per multiplier per
// cycle) comes from; 4-bit multipliers skip the DSP column entirely and are
// built from LUTs (priced by arch::Datapath, not here).
//
// This file and src/arch/datapath.cpp are the only two places allowed to
// branch on DataType (CI greps for violations): every packing constant is
// exposed through the helpers below so consumers cannot fork them.
#pragma once

#include <string>

#include "util/status.hpp"

namespace fcad::nn {

enum class DataType {
  kInt8,
  kInt16,
  kInt4,
};

/// Bit width of one element.
int bits(DataType dtype);

/// Bytes of one element (rounded up).
int bytes(DataType dtype);

/// Multipliers packed into one DSP slice for this operand width
/// (2 for 8-bit, 1 for 16-bit, 0 for 4-bit — those live in the LUT fabric).
int multipliers_per_dsp(DataType dtype);

/// Paper Eq. 3 beta: operations (1 MAC = 2 ops) sustained per DSP per cycle.
/// 4 for 8-bit (two packed MACs), 2 for 16-bit (one MAC), 0 for 4-bit.
int beta_ops_per_dsp(DataType dtype);

/// "int8" / "int16" / "int4".
std::string to_string(DataType dtype);

/// Inverse of to_string; rejects anything else.
StatusOr<DataType> data_type_from_string(const std::string& name);

}  // namespace fcad::nn
