// Quantized data types supported by the accelerator templates.
//
// F-CAD configures bitwidths for features (DW), weights (WW), and the
// external memory bus (MW); the paper evaluates 8-bit and 16-bit fixed-point
// models. The key hardware consequence is DSP packing: one Xilinx DSP48
// implements two 8-bit multipliers but only one 16-bit multiplier, which is
// where the paper's beta factor (ops per multiplier per cycle) comes from.
#pragma once

#include <string>

namespace fcad::nn {

enum class DataType {
  kInt8,
  kInt16,
};

/// Bit width of one element.
int bits(DataType dtype);

/// Bytes of one element (rounded up).
int bytes(DataType dtype);

/// Multipliers packed into one DSP slice for this operand width
/// (2 for 8-bit, 1 for 16-bit).
int multipliers_per_dsp(DataType dtype);

/// Paper Eq. 3 beta: operations (1 MAC = 2 ops) sustained per DSP per cycle.
/// 4 for 8-bit (two packed MACs), 2 for 16-bit (one MAC).
int beta_ops_per_dsp(DataType dtype);

/// "int8" / "int16".
std::string to_string(DataType dtype);

}  // namespace fcad::nn
