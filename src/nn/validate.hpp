// Structural validation of network graphs.
#pragma once

#include "nn/graph.hpp"
#include "util/status.hpp"

namespace fcad::nn {

/// Checks the invariants documented on Graph:
///  * at least one input and one output layer;
///  * every edge points to an earlier layer (acyclic by construction);
///  * arity rules (inputs have no predecessor, concat >= 1, others exactly 1);
///  * shape rules (concat spatial match, reshape element count, conv/pool
///    positive dims, dense on flattenable input);
///  * every non-output leaf is unreachable dead code -> rejected.
Status validate(const Graph& graph);

}  // namespace fcad::nn
