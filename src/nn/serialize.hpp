// Text serialization of graphs — one layer per line — so decoder models can
// be exported from ML frameworks and re-imported by the F-CAD flow, and so
// tests can round-trip graphs.
//
// Format (whitespace-separated fields; '#' starts a comment):
//   graph <name>
//   <id> input <name> ch h w
//   <id> conv2d <name> in=<id> out_ch k stride untied bias
//   <id> activation <name> in=<id> relu|leaky_relu|tanh
//   <id> upsample2x <name> in=<id> nearest|bilinear
//   <id> max_pool <name> in=<id> k stride
//   <id> dense <name> in=<id> out_features bias
//   <id> reshape <name> in=<id> ch h w
//   <id> concat <name> in=<id,id,...>
//   <id> output <role> in=<id>
#pragma once

#include <string>

#include "nn/graph.hpp"
#include "util/status.hpp"

namespace fcad::nn {

/// Renders `graph` in the line format above.
std::string to_text(const Graph& graph);

/// Parses the line format; returns a validated Graph or the first error.
StatusOr<Graph> from_text(const std::string& text);

}  // namespace fcad::nn
