// The codec avatar decoder of Table I, plus the tied-bias "mimic" variant
// used to evaluate DNNBuilder / HybridDNN (Sec. III).
//
// The paper publishes only the branch grammar ([CAU]xN + C), the input/output
// shapes, and the per-branch GOP / parameter totals; the concrete channel
// widths are proprietary. The widths below were calibrated so that the
// reproduction matches the published distribution:
//
//   branch   paper GOP (share)   ours    paper params (share)   ours
//   Br.1     1.9  (10.5%)        ~1.8    1.1M (12.1%)           ~0.9M
//   Br.2     11.3 (62.4%)        ~11.8   6.1M (67.0%)           ~5.5M
//   Br.3     4.9  (27.1%)        ~4.4    1.9M (20.9%)           ~1.4M
//
// and so that the seventh Conv of Br.2 has 16 input / 16 output channels —
// the layer Sec. III singles out as DNNBuilder's parallelism bottleneck.
//
// Structure (all convs are the customized Conv: kernel 4, same padding,
// untied bias, fused LeakyReLU; U = 2x nearest up-sampling):
//   Br.1: latent[256] -> reshape[4,8,8] -> [CAU]x5 + C -> [3,256,256]
//   shared: concat(latent[4,8,8], view[3,8,8]) -> [CAU]x2   (stages S1, S2)
//   Br.2: shared -> [CAU]x5 + C -> [3,1024,1024]  (7 CAU + C total)
//   Br.3: shared -> [CAU]x3 + C -> [2,256,256]    (5 CAU + C total)
#pragma once

#include "nn/graph.hpp"

namespace fcad::nn::zoo {

/// Branch output roles, in Table-I order.
inline constexpr const char* kGeometryRole = "geometry";
inline constexpr const char* kTextureRole = "texture";
inline constexpr const char* kWarpFieldRole = "warp_field";

/// The targeted decoder (customized Conv with untied bias).
Graph avatar_decoder();

/// The mimic decoder: identical topology with conventional (tied-bias) Conv,
/// used for baselines that do not support the customized layer.
Graph mimic_decoder();

}  // namespace fcad::nn::zoo
