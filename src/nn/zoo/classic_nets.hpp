// The four single-branch backbones the paper uses to validate its analytical
// performance model against board-level implementations (Figs. 6-7):
// AlexNet, ZFNet, VGG16, and Tiny-YOLO.
#pragma once

#include "nn/graph.hpp"

namespace fcad::nn::zoo {

Graph alexnet();
Graph zfnet();
Graph vgg16();
Graph tiny_yolo();

/// All four, in the order benchmarks 1..4 of Figs. 6-7 use them.
std::vector<Graph> calibration_benchmarks();

}  // namespace fcad::nn::zoo
