#include "nn/zoo/avatar_decoder.hpp"

#include <string>
#include <vector>

#include "nn/builder.hpp"

namespace fcad::nn::zoo {
namespace {

constexpr int kKernel = 4;

/// Appends one [CAU] block (customized Conv + LeakyReLU + 2x up-sample).
LayerId cau(GraphBuilder& b, LayerId x, const std::string& prefix, int out_ch,
            bool untied) {
  x = b.conv2d(x, prefix + "_conv",
               {.out_ch = out_ch, .kernel = kKernel, .stride = 1,
                .untied_bias = untied, .bias = true});
  x = b.leaky_relu(x, prefix + "_act");
  return b.upsample2x(x, prefix + "_up");
}

/// Final plain C (no activation / up-sample behind it in Table I).
LayerId final_conv(GraphBuilder& b, LayerId x, const std::string& name,
                   int out_ch, bool untied) {
  return b.conv2d(x, name,
                  {.out_ch = out_ch, .kernel = kKernel, .stride = 1,
                   .untied_bias = untied, .bias = true});
}

Graph build(bool untied) {
  GraphBuilder b(untied ? "avatar_decoder" : "mimic_decoder");

  // TX latent code (256-d) and RX view code (192-d), reshaped onto 8x8 grids
  // exactly as Sec. II describes.
  LayerId latent = b.input("latent_code", {256, 1, 1});
  LayerId view = b.input("view_code", {192, 1, 1});
  LayerId latent_map = b.reshape(latent, "latent_map", {4, 8, 8});
  LayerId view_map = b.reshape(view, "view_map", {3, 8, 8});

  // Br.1 — facial geometry: [4,8,8] -> [CAU]x5 + C -> [3,256,256].
  {
    const std::vector<int> ch = {256, 128, 96, 48, 16};
    LayerId x = latent_map;
    for (std::size_t i = 0; i < ch.size(); ++i) {
      x = cau(b, x, "br1_l" + std::to_string(i + 1), ch[i], untied);
    }
    x = final_conv(b, x, "br1_l6_conv", 3, untied);
    b.output(x, kGeometryRole);
  }

  // Shared front of Br.2 / Br.3: concat(latent, view) -> [CAU]x2.
  LayerId shared = b.concat({latent_map, view_map}, "latent_view");
  shared = cau(b, shared, "sh_l1", 256, untied);
  shared = cau(b, shared, "sh_l2", 768, untied);

  // Br.2 — view-dependent texture: 5 more CAU + C -> [3,1024,1024].
  {
    const std::vector<int> ch = {64, 64, 64, 16, 16};
    LayerId x = shared;
    for (std::size_t i = 0; i < ch.size(); ++i) {
      // br2_l3 .. br2_l7; br2_l7 is the 16-in/16-out Conv7 of Fig. 3.
      x = cau(b, x, "br2_l" + std::to_string(i + 3), ch[i], untied);
    }
    x = final_conv(b, x, "br2_l8_conv", 3, untied);
    b.output(x, kTextureRole);
  }

  // Br.3 — warp field: 3 more CAU + C -> [2,256,256].
  {
    const std::vector<int> ch = {96, 64, 32};
    LayerId x = shared;
    for (std::size_t i = 0; i < ch.size(); ++i) {
      x = cau(b, x, "br3_l" + std::to_string(i + 3), ch[i], untied);
    }
    x = final_conv(b, x, "br3_l6_conv", 2, untied);
    b.output(x, kWarpFieldRole);
  }

  auto graph = std::move(b).build();
  FCAD_CHECK_MSG(graph.is_ok(), graph.status().message());
  return std::move(graph).value();
}

}  // namespace

Graph avatar_decoder() { return build(/*untied=*/true); }
Graph mimic_decoder() { return build(/*untied=*/false); }

}  // namespace fcad::nn::zoo
