// Parameterizable decoder generator: synthesizes codec-avatar-style decoders
// with a configurable branch count and channel width so that design-space
// growth (Sec. VI-A: "the more branches in the decoder ... the higher
// dimensional design space") and DSE scalability can be measured, and so the
// framework is exercised beyond the single published topology.
#pragma once

#include "nn/graph.hpp"

namespace fcad::nn::zoo {

struct ScaledDecoderSpec {
  /// Total branch count (>= 1). Branch 0 is a geometry-style branch from the
  /// latent code alone; branches 1.. share a texture-style front-end.
  int branches = 3;
  /// Channel width multiplier applied to every conv (>= 0.125).
  double width = 1.0;
  /// Up-sampling steps of the texture branches (output = 8 * 2^steps).
  int texture_steps = 5;
  bool untied_bias = true;
};

/// Builds the synthetic decoder; FCAD_CHECKs on nonsensical specs.
Graph scaled_decoder(const ScaledDecoderSpec& spec);

}  // namespace fcad::nn::zoo
