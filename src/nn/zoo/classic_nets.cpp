#include "nn/zoo/classic_nets.hpp"

#include <string>

#include "nn/builder.hpp"

namespace fcad::nn::zoo {
namespace {

LayerId conv_relu(GraphBuilder& b, LayerId x, const std::string& name,
                  int out_ch, int kernel, int stride = 1) {
  x = b.conv2d(x, name,
               {.out_ch = out_ch, .kernel = kernel, .stride = stride,
                .untied_bias = false, .bias = true});
  return b.relu(x, name + "_relu");
}

LayerId fc_relu(GraphBuilder& b, LayerId x, const std::string& name, int out) {
  x = b.dense(x, name, {.out_features = out, .bias = true});
  return b.relu(x, name + "_relu");
}

Graph finish(GraphBuilder&& b, LayerId logits) {
  b.output(logits, "logits");
  auto graph = std::move(b).build();
  FCAD_CHECK_MSG(graph.is_ok(), graph.status().message());
  return std::move(graph).value();
}

}  // namespace

Graph alexnet() {
  GraphBuilder b("alexnet");
  LayerId x = b.input("image", {3, 224, 224});
  x = conv_relu(b, x, "conv1", 64, 11, 4);
  x = b.max_pool(x, "pool1", {.kernel = 3, .stride = 2});
  x = conv_relu(b, x, "conv2", 192, 5);
  x = b.max_pool(x, "pool2", {.kernel = 3, .stride = 2});
  x = conv_relu(b, x, "conv3", 384, 3);
  x = conv_relu(b, x, "conv4", 256, 3);
  x = conv_relu(b, x, "conv5", 256, 3);
  x = b.max_pool(x, "pool5", {.kernel = 3, .stride = 2});
  x = fc_relu(b, x, "fc6", 4096);
  x = fc_relu(b, x, "fc7", 4096);
  x = b.dense(x, "fc8", {.out_features = 1000, .bias = true});
  return finish(std::move(b), x);
}

Graph zfnet() {
  GraphBuilder b("zfnet");
  LayerId x = b.input("image", {3, 224, 224});
  x = conv_relu(b, x, "conv1", 96, 7, 2);
  x = b.max_pool(x, "pool1", {.kernel = 3, .stride = 2});
  x = conv_relu(b, x, "conv2", 256, 5, 2);
  x = b.max_pool(x, "pool2", {.kernel = 3, .stride = 2});
  x = conv_relu(b, x, "conv3", 384, 3);
  x = conv_relu(b, x, "conv4", 384, 3);
  x = conv_relu(b, x, "conv5", 256, 3);
  x = b.max_pool(x, "pool5", {.kernel = 3, .stride = 2});
  x = fc_relu(b, x, "fc6", 4096);
  x = fc_relu(b, x, "fc7", 4096);
  x = b.dense(x, "fc8", {.out_features = 1000, .bias = true});
  return finish(std::move(b), x);
}

Graph vgg16() {
  GraphBuilder b("vgg16");
  LayerId x = b.input("image", {3, 224, 224});
  const struct {
    int convs;
    int ch;
  } blocks[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}};
  int idx = 1;
  for (int blk = 0; blk < 5; ++blk) {
    for (int c = 0; c < blocks[blk].convs; ++c) {
      x = conv_relu(b, x, "conv" + std::to_string(idx++), blocks[blk].ch, 3);
    }
    x = b.max_pool(x, "pool" + std::to_string(blk + 1),
                   {.kernel = 2, .stride = 2});
  }
  x = fc_relu(b, x, "fc6", 4096);
  x = fc_relu(b, x, "fc7", 4096);
  x = b.dense(x, "fc8", {.out_features = 1000, .bias = true});
  return finish(std::move(b), x);
}

Graph tiny_yolo() {
  GraphBuilder b("tiny_yolo");
  LayerId x = b.input("image", {3, 416, 416});
  const int ch[] = {16, 32, 64, 128, 256, 512};
  for (int i = 0; i < 6; ++i) {
    x = conv_relu(b, x, "conv" + std::to_string(i + 1), ch[i], 3);
    // The 6th pool of Tiny-YOLO is stride 1 in the original; stride 2 for the
    // first five.
    x = b.max_pool(x, "pool" + std::to_string(i + 1),
                   {.kernel = 2, .stride = i < 5 ? 2 : 1});
  }
  x = conv_relu(b, x, "conv7", 1024, 3);
  x = conv_relu(b, x, "conv8", 1024, 3);
  x = b.conv2d(x, "conv9",
               {.out_ch = 125, .kernel = 1, .stride = 1, .untied_bias = false,
                .bias = true});
  return finish(std::move(b), x);
}

std::vector<Graph> calibration_benchmarks() {
  std::vector<Graph> nets;
  nets.push_back(alexnet());
  nets.push_back(zfnet());
  nets.push_back(vgg16());
  nets.push_back(tiny_yolo());
  return nets;
}

}  // namespace fcad::nn::zoo
