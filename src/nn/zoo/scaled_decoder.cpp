#include "nn/zoo/scaled_decoder.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "nn/builder.hpp"

namespace fcad::nn::zoo {
namespace {

int scaled(int base, double width) {
  return std::max(1, static_cast<int>(std::lround(base * width)));
}

LayerId cau(GraphBuilder& b, LayerId x, const std::string& prefix, int out_ch,
            bool untied) {
  x = b.conv2d(x, prefix + "_conv",
               {.out_ch = out_ch, .kernel = 4, .stride = 1,
                .untied_bias = untied, .bias = true});
  x = b.leaky_relu(x, prefix + "_act");
  return b.upsample2x(x, prefix + "_up");
}

}  // namespace

Graph scaled_decoder(const ScaledDecoderSpec& spec) {
  FCAD_CHECK_MSG(spec.branches >= 1, "scaled_decoder: need >= 1 branch");
  FCAD_CHECK_MSG(spec.width >= 0.125, "scaled_decoder: width too small");
  FCAD_CHECK_MSG(spec.texture_steps >= 1 && spec.texture_steps <= 7,
                 "scaled_decoder: texture_steps out of range");

  GraphBuilder b("scaled_decoder_b" + std::to_string(spec.branches) + "_w" +
                 std::to_string(scaled(100, spec.width)));
  LayerId latent = b.input("latent_code", {256, 1, 1});
  LayerId latent_map = b.reshape(latent, "latent_map", {4, 8, 8});

  // Branch 0 — geometry-style: [CAU]x5 + C -> [3,256,256].
  {
    const int base[] = {192, 128, 96, 48, 16};
    LayerId x = latent_map;
    for (int i = 0; i < 5; ++i) {
      x = cau(b, x, "geo_l" + std::to_string(i), scaled(base[i], spec.width),
              spec.untied_bias);
    }
    b.output(b.conv2d(x, "geo_out",
                      {.out_ch = 3, .kernel = 4,
                       .untied_bias = spec.untied_bias, .bias = true}),
             "geometry");
  }

  if (spec.branches == 1) {
    auto g = std::move(b).build();
    FCAD_CHECK_MSG(g.is_ok(), g.status().message());
    return std::move(g).value();
  }

  // Shared texture front-end for branches 1..B-1.
  LayerId view = b.input("view_code", {192, 1, 1});
  LayerId view_map = b.reshape(view, "view_map", {3, 8, 8});
  LayerId shared = b.concat({latent_map, view_map}, "latent_view");
  shared = cau(b, shared, "sh_l1", scaled(256, spec.width), spec.untied_bias);
  shared = cau(b, shared, "sh_l2", scaled(512, spec.width), spec.untied_bias);
  // shared is at 32x32 after two up-samplings.

  for (int br = 1; br < spec.branches; ++br) {
    // Alternate branch depth so the decoder stays heterogeneous: odd
    // branches run the full texture_steps, even ones stop two steps early.
    const int extra_steps =
        std::max(1, spec.texture_steps - 2 + (br % 2 ? 0 : -2) + 2) - 2;
    const int steps = std::clamp(extra_steps + 2, 1, spec.texture_steps) - 2;
    const int own_steps = std::max(1, steps);
    LayerId x = shared;
    int ch = scaled(128, spec.width);
    for (int i = 0; i < own_steps; ++i) {
      x = cau(b, x, "br" + std::to_string(br) + "_l" + std::to_string(i), ch,
              spec.untied_bias);
      ch = std::max(8, ch / 2);
    }
    b.output(b.conv2d(x, "br" + std::to_string(br) + "_out",
                      {.out_ch = br % 2 ? 3 : 2, .kernel = 4,
                       .untied_bias = spec.untied_bias, .bias = true}),
             "texture_" + std::to_string(br));
  }

  auto g = std::move(b).build();
  FCAD_CHECK_MSG(g.is_ok(), g.status().message());
  return std::move(g).value();
}

}  // namespace fcad::nn::zoo
