// The multi-branch network graph.
//
// A Graph is an immutable validated DAG of Layers. Construction goes through
// GraphBuilder (builder.hpp) which runs shape inference and structural
// validation, so any Graph in hand satisfies:
//   * ids are dense [0, size),
//   * every edge references an earlier-validated node,
//   * layers are stored in a topological order,
//   * every non-input layer has >= 1 input; only Concat has > 1,
//   * out_shape is consistent with the layer semantics.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "util/status.hpp"

namespace fcad::nn {

class GraphBuilder;

class Graph {
 public:
  const std::string& name() const { return name_; }
  const std::vector<Layer>& layers() const { return layers_; }
  std::size_t size() const { return layers_.size(); }

  const Layer& layer(LayerId id) const;

  /// Ids of all kInput / kOutput layers, in creation order.
  const std::vector<LayerId>& input_ids() const { return inputs_; }
  const std::vector<LayerId>& output_ids() const { return outputs_; }

  /// Layers that consume `id`'s output (graph fan-out).
  const std::vector<LayerId>& consumers(LayerId id) const;

  /// Layer ids in topological order (== storage order by construction).
  std::vector<LayerId> topo_order() const;

 private:
  friend class GraphBuilder;
  Graph() = default;

  std::string name_;
  std::vector<Layer> layers_;
  std::vector<LayerId> inputs_;
  std::vector<LayerId> outputs_;
  std::vector<std::vector<LayerId>> consumers_;
};

}  // namespace fcad::nn
