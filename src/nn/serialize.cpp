#include "nn/serialize.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "nn/builder.hpp"

namespace fcad::nn {
namespace {

std::string inputs_field(const Layer& layer) {
  std::ostringstream os;
  os << "in=";
  for (std::size_t i = 0; i < layer.inputs.size(); ++i) {
    if (i) os << ',';
    os << layer.inputs[i];
  }
  return os.str();
}

void render_layer(std::ostringstream& os, const Layer& layer) {
  os << layer.id << ' ' << to_string(layer.kind) << ' ';
  switch (layer.kind) {
    case LayerKind::kInput: {
      const TensorShape& s = layer.input().shape;
      os << layer.name << ' ' << s.ch << ' ' << s.h << ' ' << s.w;
      break;
    }
    case LayerKind::kConv2d: {
      const auto& a = layer.conv();
      os << layer.name << ' ' << inputs_field(layer) << ' ' << a.out_ch << ' '
         << a.kernel << ' ' << a.stride << ' ' << (a.untied_bias ? 1 : 0)
         << ' ' << (a.bias ? 1 : 0);
      break;
    }
    case LayerKind::kActivation:
      os << layer.name << ' ' << inputs_field(layer) << ' '
         << to_string(layer.activation().kind);
      break;
    case LayerKind::kUpsample2x:
      os << layer.name << ' ' << inputs_field(layer) << ' '
         << (layer.upsample().mode == Upsample2xAttrs::Mode::kNearest
                 ? "nearest"
                 : "bilinear");
      break;
    case LayerKind::kMaxPool: {
      const auto& a = layer.max_pool();
      os << layer.name << ' ' << inputs_field(layer) << ' ' << a.kernel << ' '
         << a.stride;
      break;
    }
    case LayerKind::kDense: {
      const auto& a = layer.dense();
      os << layer.name << ' ' << inputs_field(layer) << ' ' << a.out_features
         << ' ' << (a.bias ? 1 : 0);
      break;
    }
    case LayerKind::kReshape: {
      const TensorShape& s = layer.reshape().out;
      os << layer.name << ' ' << inputs_field(layer) << ' ' << s.ch << ' '
         << s.h << ' ' << s.w;
      break;
    }
    case LayerKind::kConcat:
      os << layer.name << ' ' << inputs_field(layer);
      break;
    case LayerKind::kOutput:
      os << layer.output().role << ' ' << inputs_field(layer);
      break;
  }
  os << '\n';
}

/// Splits a whitespace-separated line into tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : stream_(text) {}

  StatusOr<Graph> run() {
    std::string line;
    std::optional<GraphBuilder> builder;
    int line_no = 0;
    while (std::getline(stream_, line)) {
      ++line_no;
      std::vector<std::string> tok = tokenize(line);
      if (tok.empty()) continue;
      if (tok[0] == "graph") {
        if (builder.has_value()) return error(line_no, "duplicate graph line");
        if (tok.size() != 2) return error(line_no, "graph line needs a name");
        builder.emplace(tok[1]);
        continue;
      }
      if (!builder.has_value()) {
        return error(line_no, "layer before 'graph' header");
      }
      if (Status s = parse_layer(*builder, tok, line_no); !s.is_ok()) return s;
    }
    if (!builder.has_value()) {
      return Status::invalid_argument("serialize: missing 'graph' header");
    }
    return std::move(*builder).build();
  }

 private:
  static Status error(int line_no, const std::string& why) {
    return Status::invalid_argument("serialize: line " +
                                    std::to_string(line_no) + ": " + why);
  }

  StatusOr<int> to_int(const std::string& tok, int line_no) {
    try {
      std::size_t pos = 0;
      int v = std::stoi(tok, &pos);
      if (pos != tok.size()) return error(line_no, "bad integer '" + tok + "'");
      return v;
    } catch (const std::exception&) {
      return error(line_no, "bad integer '" + tok + "'");
    }
  }

  /// Parses "in=3,5" into builder-space layer ids.
  StatusOr<std::vector<LayerId>> parse_inputs(const std::string& tok,
                                              int line_no) {
    if (tok.rfind("in=", 0) != 0) return error(line_no, "expected in=<ids>");
    std::vector<LayerId> ids;
    std::istringstream is(tok.substr(3));
    std::string part;
    while (std::getline(is, part, ',')) {
      auto v = to_int(part, line_no);
      if (!v.is_ok()) return v.status();
      auto it = id_map_.find(*v);
      if (it == id_map_.end()) {
        return error(line_no, "unknown input id " + part);
      }
      ids.push_back(it->second);
    }
    if (ids.empty()) return error(line_no, "empty input list");
    return ids;
  }

  Status parse_layer(GraphBuilder& builder,
                     const std::vector<std::string>& tok, int line_no) {
    if (tok.size() < 3) return error(line_no, "truncated layer line");
    auto file_id = to_int(tok[0], line_no);
    if (!file_id.is_ok()) return file_id.status();
    const std::string& kind = tok[1];
    const std::string& name = tok[2];

    auto ints = [&](std::size_t from, std::size_t n,
                    std::vector<int>& out) -> Status {
      if (tok.size() < from + n) return error(line_no, "missing fields");
      for (std::size_t i = 0; i < n; ++i) {
        auto v = to_int(tok[from + i], line_no);
        if (!v.is_ok()) return v.status();
        out.push_back(*v);
      }
      return Status::ok();
    };

    LayerId id = kInvalidLayer;
    if (kind == "input") {
      std::vector<int> v;
      if (Status s = ints(3, 3, v); !s.is_ok()) return s;
      id = builder.input(name, {v[0], v[1], v[2]});
    } else {
      if (tok.size() < 4) return error(line_no, "missing in= field");
      auto ins = parse_inputs(tok[3], line_no);
      if (!ins.is_ok()) return ins.status();
      if (kind == "conv2d") {
        std::vector<int> v;
        if (Status s = ints(4, 5, v); !s.is_ok()) return s;
        id = builder.conv2d((*ins)[0], name,
                            {.out_ch = v[0],
                             .kernel = v[1],
                             .stride = v[2],
                             .untied_bias = v[3] != 0,
                             .bias = v[4] != 0});
      } else if (kind == "activation") {
        if (tok.size() < 5) return error(line_no, "missing activation kind");
        if (tok[4] == "relu") {
          id = builder.relu((*ins)[0], name);
        } else if (tok[4] == "leaky_relu") {
          id = builder.leaky_relu((*ins)[0], name);
        } else if (tok[4] == "tanh") {
          id = builder.tanh((*ins)[0], name);
        } else {
          return error(line_no, "unknown activation '" + tok[4] + "'");
        }
      } else if (kind == "upsample2x") {
        if (tok.size() < 5) return error(line_no, "missing upsample mode");
        Upsample2xAttrs::Mode mode;
        if (tok[4] == "nearest") {
          mode = Upsample2xAttrs::Mode::kNearest;
        } else if (tok[4] == "bilinear") {
          mode = Upsample2xAttrs::Mode::kBilinear;
        } else {
          return error(line_no, "unknown upsample mode '" + tok[4] + "'");
        }
        id = builder.upsample2x((*ins)[0], name, mode);
      } else if (kind == "max_pool") {
        std::vector<int> v;
        if (Status s = ints(4, 2, v); !s.is_ok()) return s;
        id = builder.max_pool((*ins)[0], name, {.kernel = v[0], .stride = v[1]});
      } else if (kind == "dense") {
        std::vector<int> v;
        if (Status s = ints(4, 2, v); !s.is_ok()) return s;
        id = builder.dense((*ins)[0], name,
                           {.out_features = v[0], .bias = v[1] != 0});
      } else if (kind == "reshape") {
        std::vector<int> v;
        if (Status s = ints(4, 3, v); !s.is_ok()) return s;
        id = builder.reshape((*ins)[0], name, {v[0], v[1], v[2]});
      } else if (kind == "concat") {
        id = builder.concat(*ins, name);
      } else if (kind == "output") {
        id = builder.output((*ins)[0], name);
      } else {
        return error(line_no, "unknown layer kind '" + kind + "'");
      }
    }
    id_map_[*file_id] = id;
    return Status::ok();
  }

  std::istringstream stream_;
  std::map<int, LayerId> id_map_;
};

}  // namespace

std::string to_text(const Graph& graph) {
  std::ostringstream os;
  os << "graph " << graph.name() << '\n';
  for (const Layer& layer : graph.layers()) render_layer(os, layer);
  return os.str();
}

StatusOr<Graph> from_text(const std::string& text) {
  return Parser(text).run();
}

}  // namespace fcad::nn
