#include "nn/graph.hpp"

#include <numeric>

namespace fcad::nn {

const Layer& Graph::layer(LayerId id) const {
  FCAD_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < layers_.size(),
                 "layer id out of range");
  return layers_[static_cast<std::size_t>(id)];
}

const std::vector<LayerId>& Graph::consumers(LayerId id) const {
  FCAD_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < consumers_.size(),
                 "layer id out of range");
  return consumers_[static_cast<std::size_t>(id)];
}

std::vector<LayerId> Graph::topo_order() const {
  // Layers are appended in dependency order by the builder; ids are already
  // topologically sorted.
  std::vector<LayerId> order(layers_.size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace fcad::nn
