#include "obs/export.hpp"

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace fcad::obs {

ObservationScope::ObservationScope(std::string metrics_path,
                                   std::string trace_path)
    : metrics_path_(std::move(metrics_path)),
      trace_path_(std::move(trace_path)) {
  if (!metrics_path_.empty()) {
    set_metrics_collection(true);
    active_ = true;
  }
  if (!trace_path_.empty()) {
    tracer_ = std::make_unique<Tracer>();
    install_tracer(tracer_.get());
    active_ = true;
  }
}

ObservationScope::~ObservationScope() { teardown(); }

void ObservationScope::teardown() {
  if (tracer_ != nullptr && tracer() == tracer_.get()) {
    install_tracer(nullptr);
  }
  if (!metrics_path_.empty()) set_metrics_collection(false);
}

bool ObservationScope::finish() {
  bool ok = true;
  if (!metrics_path_.empty() &&
      !write_metrics_json(metrics_path_,
                          MetricsRegistry::global().snapshot())) {
    FCAD_LOG(kError).field("path", metrics_path_)
        << "obs: cannot write metrics";
    ok = false;
  }
  if (tracer_ != nullptr && !trace_path_.empty() &&
      !tracer_->write_file(trace_path_)) {
    FCAD_LOG(kError).field("path", trace_path_) << "obs: cannot write trace";
    ok = false;
  }
  teardown();
  return ok;
}

}  // namespace fcad::obs
