// obs::Tracer — span timelines in the Chrome/Perfetto `trace_event` JSON
// format (load the file at https://ui.perfetto.dev or chrome://tracing).
//
// Two time domains share one file, separated by process id:
//  - Serving lanes (kServingPid) carry *virtual simulation time*: the
//    fleet's event loops already advance an exact microsecond clock, which
//    maps 1:1 onto trace_event's µs `ts`. Because each shard/instance lane
//    is appended by exactly one event-loop and timestamps are simulated,
//    the serving timeline is identical for any thread count.
//  - DSE lanes (kDsePid / kPoolPid) carry wall-clock µs since tracer
//    construction: pipeline stages, strategy rounds, fitness evaluations,
//    artifact-cache probes, and thread-pool task execution.
//
// Determinism contract: tracing is write-only — no engine control flow ever
// reads the tracer, so results are bit-identical with tracing on or off
// (pinned by parallel_determinism_test). Zero-overhead-when-disabled: the
// ambient tracer is a single atomic pointer, nullptr by default; every
// instrumentation site loads it once and skips all work on null.
//
// Bounded memory: each lane keeps at most `lane_capacity` events; later
// events are counted as dropped (deterministically, in append order) and
// the export annotates the lane. A million-request replay therefore
// produces a Perfetto-loadable file of bounded size.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fcad::obs {

/// Process rows grouping related lanes in the trace viewer.
inline constexpr int kServingPid = 1;  ///< virtual simulation time
inline constexpr int kDsePid = 2;      ///< wall clock: pipeline + search
inline constexpr int kPoolPid = 3;     ///< wall clock: thread-pool tasks

/// One horizontal track: `pid` selects the process row, `tid` orders lanes
/// inside it. Lane identity is structural (shard index, global instance id,
/// pool worker index), never a runtime thread id — so traces are comparable
/// across runs and thread counts.
struct LaneId {
  int pid = 0;
  int tid = 0;
  bool operator<(const LaneId& other) const {
    return pid != other.pid ? pid < other.pid : tid < other.tid;
  }
};

struct TraceEvent {
  enum class Phase { kComplete, kInstant, kCounter };
  Phase phase = Phase::kComplete;
  std::string name;
  std::string cat;
  double ts_us = 0;
  double dur_us = 0;  ///< kComplete only
  double value = 0;   ///< kCounter only
  /// Small numeric payload rendered as the event's `args` object.
  std::vector<std::pair<std::string, double>> args;
};

struct TracerOptions {
  /// Events kept per lane before deterministic dropping kicks in.
  std::int64_t lane_capacity = 20000;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Names a lane's process/thread rows (idempotent; first caller wins).
  void name_lane(LaneId lane, const std::string& process,
                 const std::string& thread);

  void complete(LaneId lane, std::string name, std::string cat, double ts_us,
                double dur_us,
                std::vector<std::pair<std::string, double>> args = {});
  void instant(LaneId lane, std::string name, std::string cat, double ts_us);
  void counter(LaneId lane, std::string name, double ts_us, double value);

  /// Wall-clock µs since tracer construction — the `ts` base for kWall
  /// lanes.
  double wall_now_us() const;

  std::int64_t events() const;
  std::int64_t dropped() const;

  /// Chrome trace JSON: lanes in LaneId order, events in append order, so
  /// output bytes are a pure function of what was recorded. `pid_filter`
  /// restricts the export to one process row (e.g. kServingPid, whose
  /// virtual-time lanes are byte-identical across thread counts); -1 keeps
  /// every lane.
  std::string to_json(int pid_filter = -1) const;
  bool write_file(const std::string& path) const;

 private:
  struct Lane {
    std::string process;
    std::string thread;
    std::vector<TraceEvent> events;
    std::int64_t dropped = 0;
    std::mutex mutex;
  };

  Lane& lane_ref(LaneId id);
  void append(LaneId id, TraceEvent event);

  TracerOptions options_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;  ///< guards the lane map's shape
  std::map<LaneId, std::unique_ptr<Lane>> lanes_;
};

/// Ambient tracer for instrumentation sites that sit too deep for explicit
/// plumbing (thread pool, fleet event loops). nullptr = tracing disabled.
void install_tracer(Tracer* tracer);
Tracer* tracer();

/// RAII wall-clock span; safe on a null tracer (no-op).
class WallSpan {
 public:
  WallSpan(Tracer* tracer, LaneId lane, std::string name, std::string cat)
      : tracer_(tracer),
        lane_(lane),
        name_(std::move(name)),
        cat_(std::move(cat)),
        start_us_(tracer != nullptr ? tracer->wall_now_us() : 0) {}
  ~WallSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(lane_, std::move(name_), std::move(cat_), start_us_,
                        tracer_->wall_now_us() - start_us_);
    }
  }
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

 private:
  Tracer* tracer_;
  LaneId lane_;
  std::string name_;
  std::string cat_;
  double start_us_;
};

}  // namespace fcad::obs
