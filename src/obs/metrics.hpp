// obs::MetricsRegistry — named counters, gauges, and fixed-bucket histograms
// for the DSE engine and the serving fleet.
//
// Design rules that keep the engine's bit-reproducibility intact:
//  - Recording a metric never influences control flow anywhere in the
//    engine; instrumentation is write-only from the instrumented code's
//    point of view.
//  - Counters are atomic and commutative, so totals are deterministic no
//    matter which thread bumps them (per-thread *splits* of a total may
//    still be timing-dependent — e.g. cache hit vs miss — exactly as the
//    pre-existing ad-hoc counters were).
//  - Histograms hold integer bucket counts behind fixed bounds chosen at
//    creation; cross-thread accumulation is commutative. Call sites that
//    need byte-identical exports for any thread count (the fleet replay)
//    fill them from the single-threaded shard-index-ordered merge loop.
//  - snapshot() renders name-sorted, so exports never depend on metric
//    registration order.
//
// Cheap-when-idle: counter/gauge updates are single relaxed atomics and are
// always on (several existing accessors are backed by them). Bulk recording
// (per-request histogram fills, per-round gauge refreshes) is gated behind
// the process-wide collection flag, which --metrics-out flips on; with the
// flag off those code paths skip the work entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace fcad::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written scalar (utilization, best fitness, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Point-in-time view of one histogram: `counts[i]` samples fell in
/// (bounds[i-1], bounds[i]]; the trailing slot counts overflow beyond the
/// last bound. Merging is bucket-wise addition — associative and
/// commutative, pinned by obs_test.
struct HistogramSnapshot {
  std::vector<double> bounds;        ///< ascending upper bucket bounds
  std::vector<std::int64_t> counts;  ///< bounds.size() + 1 slots
  std::int64_t total = 0;
  double sum = 0;
};

/// Bucket-wise sum of two snapshots over identical bounds (FCAD_CHECKed).
HistogramSnapshot merge(const HistogramSnapshot& a,
                        const HistogramSnapshot& b);

/// Fixed-bucket histogram. Samples beyond the last bound land in the
/// overflow slot; the first such sample logs one kWarn through util::log.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void observe(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  HistogramSnapshot snapshot() const;

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;  ///< bounds + overflow
  std::atomic<std::int64_t> total_{0};
  std::atomic<double> sum_{0};
  std::atomic<bool> overflow_warned_{false};
};

/// Name-sorted point-in-time view of a whole registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Named metric store. Lookup interns the metric on first use and returns a
/// stable reference — hot paths resolve once and bump the reference.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First use fixes the bucket bounds; later calls return the existing
  /// histogram (a bounds mismatch logs kWarn and keeps the original).
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds);

  MetricsSnapshot snapshot() const;
  /// Drops every metric (tests and CLI reruns); outstanding references from
  /// earlier lookups become dangling, so only reset between runs.
  void reset();

  /// Process-wide registry — the single home for engine counters
  /// (fitness-cache and artifact-cache hits, resumed shards, ...).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide bulk-collection switch (default off). Guards only the
/// *expensive* recording paths (per-request histogram fills); the always-on
/// counters ignore it.
void set_metrics_collection(bool enabled);
bool metrics_collection();

/// Renders `snapshot` into `json` as one object:
/// {"counters":{...},"gauges":{...},"histograms":{name:{bounds,counts,
/// total,sum}}}.
void metrics_json(JsonWriter& json, const MetricsSnapshot& snapshot);

/// Flat export: one (kind, name, key, value) row per scalar / bucket.
CsvWriter metrics_csv(const MetricsSnapshot& snapshot);

/// Writes {"schema_version":1, "counters":..., ...} to `path`; false on I/O
/// error.
bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot);

}  // namespace fcad::obs
