// CLI plumbing shared by fcad_cli, serving_cli, and the benches for the
// --metrics-out / --trace-out flags: constructing an ObservationScope turns
// on bulk metrics collection and installs an ambient Tracer as requested;
// finish() writes the output files and tears both back down. Empty paths
// leave everything disabled — the zero-overhead default.
#pragma once

#include <memory>
#include <string>

#include "obs/trace.hpp"

namespace fcad::obs {

class ObservationScope {
 public:
  ObservationScope(std::string metrics_path, std::string trace_path);
  ~ObservationScope();  ///< uninstalls without writing if finish() not called
  ObservationScope(const ObservationScope&) = delete;
  ObservationScope& operator=(const ObservationScope&) = delete;

  /// Writes the requested metrics/trace files from the global registry and
  /// the scope's tracer; false (with a kError log) on any I/O failure.
  bool finish();

 private:
  void teardown();

  std::string metrics_path_;
  std::string trace_path_;
  std::unique_ptr<Tracer> tracer_;
  bool active_ = false;
};

}  // namespace fcad::obs
