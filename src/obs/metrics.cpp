#include "obs/metrics.hpp"

#include <algorithm>

#include "util/log.hpp"
#include "util/status.hpp"

namespace fcad::obs {
namespace {

std::atomic<bool> g_collection{false};

std::string bucket_label(const std::vector<double>& bounds, std::size_t i) {
  return i < bounds.size() ? "le_" + std::to_string(bounds[i]) : "overflow";
}

}  // namespace

HistogramSnapshot merge(const HistogramSnapshot& a,
                        const HistogramSnapshot& b) {
  FCAD_CHECK_MSG(a.bounds == b.bounds,
                 "obs: merging histograms with different bucket bounds");
  FCAD_CHECK(a.counts.size() == b.counts.size());
  HistogramSnapshot out = a;
  for (std::size_t i = 0; i < out.counts.size(); ++i) {
    out.counts[i] += b.counts[i];
  }
  out.total += b.total;
  out.sum += b.sum;
  return out;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1) {
  FCAD_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "obs: histogram bounds must be ascending");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto slot = static_cast<std::size_t>(it - bounds_.begin());
  if (slot == bounds_.size() &&
      !overflow_warned_.exchange(true, std::memory_order_relaxed)) {
    FCAD_LOG(kWarn).field("histogram", name_).field("value", v)
        << "obs: sample beyond the last bucket bound; counting as overflow";
  }
  counts_[slot].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // Relaxed CAS add: the sum is diagnostic (mean estimation); bucket counts
  // are the deterministic payload.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    out.counts.push_back(c.load(std::memory_order_relaxed));
  }
  out.total = total_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(name, bounds);
  } else if (slot->bounds() != bounds) {
    FCAD_LOG(kWarn).field("histogram", name)
        << "obs: histogram re-registered with different bounds; keeping "
           "the original buckets";
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->snapshot());
  }
  return out;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void set_metrics_collection(bool enabled) {
  g_collection.store(enabled, std::memory_order_relaxed);
}

bool metrics_collection() {
  return g_collection.load(std::memory_order_relaxed);
}

void metrics_json(JsonWriter& json, const MetricsSnapshot& snapshot) {
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) {
    json.key(name).value(value);
  }
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) {
    json.key(name).value(value);
  }
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    json.key(name).begin_object();
    json.key("bounds").begin_array();
    for (double b : h.bounds) json.value(b);
    json.end_array();
    json.key("counts").begin_array();
    for (std::int64_t c : h.counts) json.value(c);
    json.end_array();
    json.key("total").value(h.total);
    json.key("sum").value(h.sum);
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

CsvWriter metrics_csv(const MetricsSnapshot& snapshot) {
  CsvWriter csv({"kind", "name", "key", "value"});
  for (const auto& [name, value] : snapshot.counters) {
    csv.add_row({"counter", name, "value", std::to_string(value)});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    csv.add_row({"gauge", name, "value", std::to_string(value)});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      csv.add_row({"histogram", name, bucket_label(h.bounds, i),
                   std::to_string(h.counts[i])});
    }
    csv.add_row({"histogram", name, "total", std::to_string(h.total)});
  }
  return csv;
}

bool write_metrics_json(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(1);
  json.key("metrics");
  metrics_json(json, snapshot);
  json.end_object();
  return json.write_file(path);
}

}  // namespace fcad::obs
