#include "obs/trace.hpp"

#include <cstdio>

#include "util/json.hpp"
#include "util/log.hpp"

namespace fcad::obs {
namespace {

std::atomic<Tracer*> g_tracer{nullptr};

const char* phase_tag(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::kComplete: return "X";
    case TraceEvent::Phase::kInstant: return "i";
    case TraceEvent::Phase::kCounter: return "C";
  }
  return "?";
}

void event_json(JsonWriter& json, const LaneId& lane,
                const TraceEvent& event) {
  json.begin_object();
  json.key("name").value(event.name);
  if (!event.cat.empty()) json.key("cat").value(event.cat);
  json.key("ph").value(phase_tag(event.phase));
  json.key("ts").value(event.ts_us);
  if (event.phase == TraceEvent::Phase::kComplete) {
    json.key("dur").value(event.dur_us);
  }
  if (event.phase == TraceEvent::Phase::kInstant) {
    json.key("s").value("t");
  }
  json.key("pid").value(lane.pid);
  json.key("tid").value(lane.tid);
  if (event.phase == TraceEvent::Phase::kCounter) {
    json.key("args").begin_object();
    json.key("value").value(event.value);
    json.end_object();
  } else if (!event.args.empty()) {
    json.key("args").begin_object();
    for (const auto& [key, value] : event.args) {
      json.key(key).value(value);
    }
    json.end_object();
  }
  json.end_object();
}

void metadata_json(JsonWriter& json, const LaneId& lane, const char* name,
                   const std::string& value) {
  json.begin_object();
  json.key("name").value(name);
  json.key("ph").value("M");
  json.key("pid").value(lane.pid);
  json.key("tid").value(lane.tid);
  json.key("args").begin_object();
  json.key("name").value(value);
  json.end_object();
  json.end_object();
}

}  // namespace

Tracer::Tracer(TracerOptions options)
    : options_(options), start_(std::chrono::steady_clock::now()) {}

Tracer::Lane& Tracer::lane_ref(LaneId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = lanes_[id];
  if (!slot) slot = std::make_unique<Lane>();
  return *slot;
}

void Tracer::name_lane(LaneId lane, const std::string& process,
                       const std::string& thread) {
  Lane& l = lane_ref(lane);
  const std::lock_guard<std::mutex> lock(l.mutex);
  if (l.process.empty()) l.process = process;
  if (l.thread.empty()) l.thread = thread;
}

void Tracer::append(LaneId id, TraceEvent event) {
  Lane& lane = lane_ref(id);
  const std::lock_guard<std::mutex> lock(lane.mutex);
  if (static_cast<std::int64_t>(lane.events.size()) >=
      options_.lane_capacity) {
    if (lane.dropped == 0) {
      FCAD_LOG(kWarn)
              .field("pid", id.pid)
              .field("tid", id.tid)
              .field("capacity", options_.lane_capacity)
          << "obs: trace lane full; dropping further events";
    }
    ++lane.dropped;
    return;
  }
  lane.events.push_back(std::move(event));
}

void Tracer::complete(LaneId lane, std::string name, std::string cat,
                      double ts_us, double dur_us,
                      std::vector<std::pair<std::string, double>> args) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args = std::move(args);
  append(lane, std::move(event));
}

void Tracer::instant(LaneId lane, std::string name, std::string cat,
                     double ts_us) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.cat = std::move(cat);
  event.ts_us = ts_us;
  append(lane, std::move(event));
}

void Tracer::counter(LaneId lane, std::string name, double ts_us,
                     double value) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kCounter;
  event.name = std::move(name);
  event.ts_us = ts_us;
  event.value = value;
  append(lane, std::move(event));
}

double Tracer::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

std::int64_t Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t n = 0;
  for (const auto& [id, lane] : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    n += static_cast<std::int64_t>(lane->events.size());
  }
  return n;
}

std::int64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t n = 0;
  for (const auto& [id, lane] : lanes_) {
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    n += lane->dropped;
  }
  return n;
}

std::string Tracer::to_json(int pid_filter) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (const auto& [id, lane] : lanes_) {
    if (pid_filter >= 0 && id.pid != pid_filter) continue;
    const std::lock_guard<std::mutex> lane_lock(lane->mutex);
    if (!lane->process.empty()) {
      metadata_json(json, id, "process_name", lane->process);
    }
    if (!lane->thread.empty()) {
      metadata_json(json, id, "thread_name", lane->thread);
    }
    for (const TraceEvent& event : lane->events) {
      event_json(json, id, event);
    }
    if (lane->dropped > 0) {
      TraceEvent note;
      note.phase = TraceEvent::Phase::kInstant;
      note.name = "dropped " + std::to_string(lane->dropped) +
                  " event(s) beyond lane capacity";
      note.cat = "obs";
      note.ts_us =
          lane->events.empty() ? 0 : lane->events.back().ts_us;
      event_json(json, id, note);
    }
  }
  json.end_array();
  json.end_object();
  return json.str();
}

bool Tracer::write_file(const std::string& path) const {
  const std::string text = to_json();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), out) == text.size() &&
      std::fputc('\n', out) != EOF;
  return std::fclose(out) == 0 && ok;
}

void install_tracer(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

Tracer* tracer() { return g_tracer.load(std::memory_order_acquire); }

}  // namespace fcad::obs
