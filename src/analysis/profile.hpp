// Layer- and graph-level compute/memory profiling (the "profiler" of the
// Analysis step, Fig. 4).
//
// Conventions (documented in DESIGN.md):
//   * 1 MAC = 2 ops. Bias adds, activations, pooling compares and up-sample
//     selects count 1 op per produced element.
//   * Conv MACs use the *output* spatial dims (identical to the paper's
//     Eq. 4 input-dims formula at stride 1, and the physically correct count
//     for strided layers in the classic backbones).
//   * The customized Conv's untied bias carries one parameter per output
//     pixel (H*W), shared across output channels; a tied bias carries one per
//     output channel.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"

namespace fcad::analysis {

struct LayerProfile {
  nn::LayerId id = nn::kInvalidLayer;
  std::int64_t macs = 0;    ///< multiply-accumulates
  std::int64_t ops = 0;     ///< total operations (2*macs + pointwise work)
  std::int64_t params = 0;  ///< weights + biases
  std::int64_t weight_params = 0;
  std::int64_t bias_params = 0;
  std::int64_t in_elems = 0;   ///< sum over all inputs
  std::int64_t out_elems = 0;
};

struct GraphProfile {
  std::vector<LayerProfile> layers;  ///< indexed by layer id
  std::int64_t total_macs = 0;
  std::int64_t total_ops = 0;
  std::int64_t total_params = 0;
  /// Largest intermediate feature map, in elements (memory-footprint
  /// headline of Sec. III).
  std::int64_t peak_feature_elems = 0;
};

/// Profiles a single layer (inputs resolved through `graph`).
LayerProfile profile_layer(const nn::Graph& graph, const nn::Layer& layer);

/// Profiles every layer and aggregates totals.
GraphProfile profile_graph(const nn::Graph& graph);

}  // namespace fcad::analysis
