// Human-readable analysis summaries (Table-I style network reports).
#pragma once

#include <string>

#include "analysis/branches.hpp"
#include "nn/graph.hpp"

namespace fcad::analysis {

/// Renders a Table-I style summary: one row per branch with its structure
/// string ("[CAU]x5+C"), in/out shapes, GOP and parameter shares.
std::string branch_summary(const nn::Graph& graph,
                           const GraphProfile& profile,
                           const BranchDecomposition& branches);

/// Per-layer listing (name, type, output shape, MACs, params).
std::string layer_listing(const nn::Graph& graph, const GraphProfile& profile);

}  // namespace fcad::analysis
