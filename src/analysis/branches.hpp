// Branch-wise structural analysis (the second half of the Analysis step):
// how many branches the decoder has, which layers each branch touches, and
// which layers are shared between branches.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/profile.hpp"
#include "nn/graph.hpp"
#include "util/status.hpp"

namespace fcad::analysis {

/// One branch = everything on a path from the network inputs to one output.
struct BranchInfo {
  int index = 0;                     ///< Br. index, 0-based, output order
  nn::LayerId output = nn::kInvalidLayer;
  std::string role;                  ///< output role label
  std::vector<nn::LayerId> layers;   ///< all ancestors, topological order
  std::int64_t ops = 0;              ///< ops over `layers` (shared included)
  std::int64_t macs = 0;
  std::int64_t params = 0;
  /// Demand attributed to this branch after the reorganization rule (each
  /// shared layer counted once, on the sharing branch with the highest total
  /// demand) — the convention Table I uses, so shares sum to 100%.
  std::int64_t ops_attributed = 0;
  std::int64_t macs_attributed = 0;
  std::int64_t params_attributed = 0;
};

struct BranchDecomposition {
  std::vector<BranchInfo> branches;
  /// Layers used by more than one branch ("shared part"), topological order.
  std::vector<nn::LayerId> shared;
  /// For each layer id: indices of branches whose path contains it.
  std::vector<std::vector<int>> users;
};

/// Decomposes `graph` into branches. Requires at least one output; any DAG is
/// accepted (sharing need not be a pure prefix at this level — the pipeline
/// mapping in arch/reorg.hpp imposes the chain restrictions).
StatusOr<BranchDecomposition> decompose(const nn::Graph& graph,
                                        const GraphProfile& profile);

}  // namespace fcad::analysis
