#include "analysis/branches.hpp"

#include <vector>

namespace fcad::analysis {

StatusOr<BranchDecomposition> decompose(const nn::Graph& graph,
                                        const GraphProfile& profile) {
  if (graph.output_ids().empty()) {
    return Status::invalid_argument("decompose: graph has no outputs");
  }
  FCAD_CHECK(profile.layers.size() == graph.size());

  BranchDecomposition d;
  d.users.assign(graph.size(), {});

  int index = 0;
  for (nn::LayerId out : graph.output_ids()) {
    BranchInfo br;
    br.index = index;
    br.output = out;
    br.role = graph.layer(out).output().role;

    // Collect all ancestors of the output (depth-first), then emit them in
    // topological order, which for this IR is ascending id order.
    std::vector<bool> visited(graph.size(), false);
    std::vector<nn::LayerId> stack = {out};
    while (!stack.empty()) {
      nn::LayerId id = stack.back();
      stack.pop_back();
      if (visited[static_cast<std::size_t>(id)]) continue;
      visited[static_cast<std::size_t>(id)] = true;
      for (nn::LayerId in : graph.layer(id).inputs) stack.push_back(in);
    }
    for (std::size_t id = 0; id < graph.size(); ++id) {
      if (!visited[id]) continue;
      br.layers.push_back(static_cast<nn::LayerId>(id));
      d.users[id].push_back(index);
      const LayerProfile& lp = profile.layers[id];
      br.ops += lp.ops;
      br.macs += lp.macs;
      br.params += lp.params;
    }
    d.branches.push_back(std::move(br));
    ++index;
  }

  for (std::size_t id = 0; id < graph.size(); ++id) {
    if (d.users[id].size() > 1) {
      d.shared.push_back(static_cast<nn::LayerId>(id));
    }
  }

  // Attribution: each layer counted once, on its highest-demand user.
  for (std::size_t id = 0; id < graph.size(); ++id) {
    if (d.users[id].empty()) continue;
    int owner = d.users[id][0];
    for (int b : d.users[id]) {
      if (d.branches[static_cast<std::size_t>(b)].ops >
          d.branches[static_cast<std::size_t>(owner)].ops) {
        owner = b;
      }
    }
    BranchInfo& br = d.branches[static_cast<std::size_t>(owner)];
    const LayerProfile& lp = profile.layers[id];
    br.ops_attributed += lp.ops;
    br.macs_attributed += lp.macs;
    br.params_attributed += lp.params;
  }
  return d;
}

}  // namespace fcad::analysis
