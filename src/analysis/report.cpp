#include "analysis/report.hpp"

#include <sstream>

#include "util/format.hpp"
#include "util/table.hpp"

namespace fcad::analysis {
namespace {

/// Compresses a branch's layer sequence into a grammar string like
/// "[CAU]x5+C" (Conv / Activation / Upsample runs).
std::string structure_string(const nn::Graph& graph, const BranchInfo& br) {
  std::string letters;
  for (nn::LayerId id : br.layers) {
    switch (graph.layer(id).kind) {
      case nn::LayerKind::kConv2d: letters += 'C'; break;
      case nn::LayerKind::kActivation: letters += 'A'; break;
      case nn::LayerKind::kUpsample2x: letters += 'U'; break;
      case nn::LayerKind::kMaxPool: letters += 'P'; break;
      case nn::LayerKind::kDense: letters += 'D'; break;
      default: break;  // structural layers don't appear in the grammar
    }
  }
  // Run-length encode "CAU" repetitions, then append the tail verbatim.
  std::ostringstream os;
  std::size_t i = 0;
  while (i < letters.size()) {
    if (letters.compare(i, 3, "CAU") == 0) {
      int reps = 0;
      while (letters.compare(i, 3, "CAU") == 0) {
        ++reps;
        i += 3;
      }
      os << "[CAU]x" << reps;
      if (i < letters.size()) os << '+';
    } else {
      os << letters[i];
      ++i;
      if (i < letters.size() && letters.compare(i, 3, "CAU") == 0) os << '+';
    }
  }
  return os.str();
}

nn::TensorShape branch_input_shape(const nn::Graph& graph,
                                   const BranchInfo& br) {
  // First non-structural layer's input shape: walk the branch layers in
  // order and return the input of the first compute layer.
  for (nn::LayerId id : br.layers) {
    const nn::Layer& layer = graph.layer(id);
    if (layer.kind == nn::LayerKind::kConv2d ||
        layer.kind == nn::LayerKind::kDense) {
      return graph.layer(layer.inputs[0]).out_shape;
    }
  }
  return graph.layer(br.layers.front()).out_shape;
}

}  // namespace

std::string branch_summary(const nn::Graph& graph,
                           const GraphProfile& profile,
                           const BranchDecomposition& branches) {
  std::int64_t sum_ops = 0;
  std::int64_t sum_params = 0;
  for (const BranchInfo& br : branches.branches) {
    sum_ops += br.ops_attributed;
    sum_params += br.params_attributed;
  }

  TablePrinter t({"Br.", "[In] -> structure -> [Out]", "GOP", "Share",
                  "Params", "Share"});
  for (const BranchInfo& br : branches.branches) {
    const nn::Layer& out = graph.layer(br.output);
    std::ostringstream desc;
    desc << branch_input_shape(graph, br).to_string() << " -> "
         << structure_string(graph, br) << " -> "
         << out.out_shape.to_string() << " (" << br.role << ")";
    t.add_row(
        {std::to_string(br.index + 1), desc.str(),
         format_fixed(static_cast<double>(br.ops_attributed) * 1e-9, 2),
         format_percent(static_cast<double>(br.ops_attributed) / sum_ops, 1),
         format_count(static_cast<double>(br.params_attributed), 2),
         format_percent(
             static_cast<double>(br.params_attributed) / sum_params, 1)});
  }
  std::ostringstream os;
  os << t.to_string();
  os << "total (shared counted once): "
     << format_fixed(static_cast<double>(profile.total_ops) * 1e-9, 2)
     << " GOP, " << format_count(static_cast<double>(profile.total_params), 2)
     << " parameters; peak feature map "
     << format_count(static_cast<double>(profile.peak_feature_elems), 1)
     << " elements\n";
  return os.str();
}

std::string layer_listing(const nn::Graph& graph,
                          const GraphProfile& profile) {
  TablePrinter t({"id", "name", "type", "out shape", "MACs", "params"});
  for (const nn::Layer& layer : graph.layers()) {
    const LayerProfile& lp = profile.layers[static_cast<std::size_t>(layer.id)];
    t.add_row({std::to_string(layer.id), layer.name, to_string(layer.kind),
               layer.out_shape.to_string(),
               format_count(static_cast<double>(lp.macs), 1),
               format_count(static_cast<double>(lp.params), 1)});
  }
  return t.to_string();
}

}  // namespace fcad::analysis
