#include "analysis/profile.hpp"

#include <algorithm>

namespace fcad::analysis {
namespace {

std::int64_t conv_macs(const nn::Layer& layer, const nn::Layer& in) {
  const auto& a = layer.conv();
  const auto k2 = static_cast<std::int64_t>(a.kernel) * a.kernel;
  return static_cast<std::int64_t>(layer.out_shape.h) * layer.out_shape.w *
         a.out_ch * in.out_shape.ch * k2;
}

}  // namespace

LayerProfile profile_layer(const nn::Graph& graph, const nn::Layer& layer) {
  LayerProfile p;
  p.id = layer.id;
  p.out_elems = layer.out_shape.elems();
  for (nn::LayerId in : layer.inputs) {
    p.in_elems += graph.layer(in).out_shape.elems();
  }

  switch (layer.kind) {
    case nn::LayerKind::kConv2d: {
      const auto& a = layer.conv();
      const nn::Layer& in = graph.layer(layer.inputs[0]);
      p.macs = conv_macs(layer, in);
      p.weight_params = static_cast<std::int64_t>(a.out_ch) * in.out_shape.ch *
                        a.kernel * a.kernel;
      if (a.bias) {
        p.bias_params = a.untied_bias
                            ? static_cast<std::int64_t>(layer.out_shape.h) *
                                  layer.out_shape.w
                            : a.out_ch;
      }
      p.ops = 2 * p.macs + (a.bias ? p.out_elems : 0);
      break;
    }
    case nn::LayerKind::kDense: {
      const auto& a = layer.dense();
      p.macs = p.in_elems * a.out_features;
      p.weight_params = p.in_elems * a.out_features;
      if (a.bias) p.bias_params = a.out_features;
      p.ops = 2 * p.macs + (a.bias ? p.out_elems : 0);
      break;
    }
    case nn::LayerKind::kActivation:
      p.ops = p.out_elems;
      break;
    case nn::LayerKind::kUpsample2x:
      // Nearest: one select per produced element; bilinear: 4 MACs each.
      if (layer.upsample().mode == nn::Upsample2xAttrs::Mode::kBilinear) {
        p.macs = 4 * p.out_elems;
        p.ops = 2 * p.macs;
      } else {
        p.ops = p.out_elems;
      }
      break;
    case nn::LayerKind::kMaxPool: {
      const auto& a = layer.max_pool();
      p.ops = static_cast<std::int64_t>(a.kernel) * a.kernel * p.out_elems;
      break;
    }
    case nn::LayerKind::kInput:
    case nn::LayerKind::kReshape:
    case nn::LayerKind::kConcat:
    case nn::LayerKind::kOutput:
      break;  // data movement only
  }
  p.params = p.weight_params + p.bias_params;
  return p;
}

GraphProfile profile_graph(const nn::Graph& graph) {
  GraphProfile gp;
  gp.layers.reserve(graph.size());
  for (const nn::Layer& layer : graph.layers()) {
    LayerProfile p = profile_layer(graph, layer);
    gp.total_macs += p.macs;
    gp.total_ops += p.ops;
    gp.total_params += p.params;
    if (layer.kind != nn::LayerKind::kInput &&
        layer.kind != nn::LayerKind::kOutput) {
      gp.peak_feature_elems = std::max(gp.peak_feature_elems, p.out_elems);
    }
    gp.layers.push_back(std::move(p));
  }
  return gp;
}

}  // namespace fcad::analysis
