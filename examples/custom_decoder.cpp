// Example: bring your own decoder.
//
// F-CAD consumes models as structure-only metadata, so a new avatar decoder
// is just a graph built with GraphBuilder (or imported from the text format
// of nn/serialize.hpp). This example builds a hypothetical next-generation
// decoder with FOUR branches — geometry, stereo texture, warp field, and an
// audio-driven mouth-region branch (Sec. VIII cites audio-driven codec
// avatars as emerging work) — then explores accelerators for it with
// different branch priorities.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nn/builder.hpp"
#include "nn/serialize.hpp"

namespace {

using namespace fcad;

nn::LayerId cau(nn::GraphBuilder& b, nn::LayerId x, const std::string& prefix,
                int out_ch) {
  x = b.conv2d(x, prefix + "_conv",
               {.out_ch = out_ch, .kernel = 4, .untied_bias = true});
  x = b.leaky_relu(x, prefix + "_act");
  return b.upsample2x(x, prefix + "_up");
}

nn::Graph next_gen_decoder() {
  nn::GraphBuilder b("next_gen_decoder");
  auto latent = b.input("latent_code", {256, 1, 1});
  auto view = b.input("view_code", {192, 1, 1});
  auto audio = b.input("audio_code", {64, 1, 1});
  auto latent_map = b.reshape(latent, "latent_map", {4, 8, 8});
  auto view_map = b.reshape(view, "view_map", {3, 8, 8});
  auto audio_map = b.reshape(audio, "audio_map", {1, 8, 8});

  // Br.1 — geometry.
  {
    auto x = latent_map;
    const int ch[] = {192, 128, 64, 32, 16};
    for (int i = 0; i < 5; ++i) x = cau(b, x, "geo_l" + std::to_string(i), ch[i]);
    b.output(b.conv2d(x, "geo_out",
                      {.out_ch = 3, .kernel = 4, .untied_bias = true}),
             "geometry");
  }

  // Shared texture front-end (latent + view), feeding Br.2 and Br.3.
  auto shared = b.concat({latent_map, view_map}, "latent_view");
  shared = cau(b, shared, "sh_l1", 256);
  shared = cau(b, shared, "sh_l2", 512);

  // Br.2 — HD texture.
  {
    auto x = shared;
    const int ch[] = {64, 64, 48, 16, 16};
    for (int i = 0; i < 5; ++i) x = cau(b, x, "tex_l" + std::to_string(i), ch[i]);
    b.output(b.conv2d(x, "tex_out",
                      {.out_ch = 3, .kernel = 4, .untied_bias = true}),
             "texture");
  }

  // Br.3 — warp field.
  {
    auto x = shared;
    const int ch[] = {96, 48, 24};
    for (int i = 0; i < 3; ++i) x = cau(b, x, "warp_l" + std::to_string(i), ch[i]);
    b.output(b.conv2d(x, "warp_out",
                      {.out_ch = 2, .kernel = 4, .untied_bias = true}),
             "warp_field");
  }

  // Br.4 — audio-driven mouth region (small, latency-critical).
  {
    auto x = b.concat({latent_map, audio_map}, "latent_audio");
    const int ch[] = {96, 64, 32, 16};
    for (int i = 0; i < 4; ++i) {
      x = cau(b, x, "mouth_l" + std::to_string(i), ch[i]);
    }
    b.output(b.conv2d(x, "mouth_out",
                      {.out_ch = 3, .kernel = 4, .untied_bias = true}),
             "mouth_region");
  }

  auto g = std::move(b).build();
  FCAD_CHECK_MSG(g.is_ok(), g.status().message());
  return std::move(g).value();
}

void explore(core::Pipeline& pipeline, const char* label,
             std::vector<double> priorities) {
  // The pipeline caches its analysis/construction artifacts, so each
  // priority scenario re-runs only the optimization stage.
  dse::SearchSpec spec;
  spec.customization.quantization = nn::DataType::kInt8;
  spec.customization.batch_sizes = {1, 2, 2, 1};
  spec.customization.priorities = std::move(priorities);
  spec.search.population = 100;
  spec.search.iterations = 12;
  spec.search.seed = 7;

  if (Status s = pipeline.optimize(spec); !s.is_ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label, s.to_string().c_str());
    return;
  }
  auto result = pipeline.result();
  if (!result.is_ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().to_string().c_str());
    return;
  }
  std::printf("%s\n",
              core::case_report(label, *result, pipeline.platform()).c_str());
}

}  // namespace

int main() {
  const nn::Graph decoder = next_gen_decoder();

  // The text serialization is the interchange format for ML frameworks;
  // print the first lines so users see what an exported model looks like.
  const std::string text = nn::to_text(decoder);
  std::size_t cut = 0;
  for (int line = 0; line < 6 && cut != std::string::npos; ++line) {
    cut = text.find('\n', cut + 1);
  }
  std::printf("--- serialized model (first 6 lines) ---\n%s...\n\n",
              text.substr(0, cut).c_str());

  core::Pipeline pipeline(decoder, arch::platform_zu9cg());
  explore(pipeline, "equal priorities", {1, 1, 1, 1});
  explore(pipeline, "mouth-region prioritized (lip sync)", {1, 1, 1, 6});
  return 0;
}
