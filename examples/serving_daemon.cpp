// serving_daemon — the avatar-decoder serving pipeline run as a system, not
// a simulation: search the accelerator once, then serve requests online
// through serving::Daemon (batching, dispatch, tail accounting, admission
// control), in one of three modes:
//
//   serving_daemon --replay 10000 --decisions d.csv --json out.json
//     Virtual-clock trace replay through the daemon's online submit path.
//     Bit-identical artifacts to `serving_cli --replay` on the same flags —
//     the replay/live parity contract (CI diffs the decision CSVs).
//
//   serving_daemon --replay 10000 --parity-check
//     Runs the trace through BOTH the daemon and simulate_fleet in-process
//     and compares every per-request decision and latency. Exit 0 on
//     parity, 1 on any divergence.
//
//   serving_daemon --live --socket /tmp/fcad.sock [--self-drive 200]
//     Live serving on a SteadyClock behind an AF_UNIX socket speaking
//       "req <user> <branch>\n"  ->  "ok <id> <branch> <instance> <us>\n"
//     SIGINT/SIGTERM (or a client "shutdown" line) drains gracefully and
//     prints the session report. --self-drive N runs a built-in client
//     that fires N requests and shuts the daemon down — the CI smoke path.
//
// --admission enables shedding when the rolling p99 over the last
// --admission-window completions exceeds --admission-headroom x the SLA
// bound; shed requests are answered "shed <id>" and never enter a batch.
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "obs/export.hpp"
#include "serving/clock.hpp"
#include "serving/daemon.hpp"
#include "serving/replay.hpp"
#include "serving/workload.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace {

using namespace fcad;

serving::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_shutdown();
}

void usage() {
  std::printf(
      "usage: serving_daemon [options]\n"
      "modes:\n"
      "  --replay <n>           replay an n-request trace through the online\n"
      "                         daemon path under a virtual clock (default)\n"
      "  --parity-check         with --replay: also run simulate_fleet and\n"
      "                         compare every decision (exit 1 on mismatch)\n"
      "  --live                 serve an AF_UNIX socket on a steady clock\n"
      "traffic/fleet (replay modes share serving_cli --replay's flags):\n"
      "  --users --frame-rate --seed --instances --shards --threads\n"
      "  --policy --timeout-us --switch-penalty-us --sla-ms --tail-pct\n"
      "scenario / elastic policy:\n"
      "  --scenario <spec>      shape the generated trace and schedule\n"
      "                         instance faults: diurnal:period=..,amp=..;\n"
      "                         flash:start=..,end=..,rate=..,users=..;\n"
      "                         churn:user=..,join=..,leave=..;\n"
      "                         fault:instance=..,fail=..,recover=..\n"
      "                         (faults also apply in --live, in seconds\n"
      "                         since startup)\n"
      "  --elastic <spec>       autoscale/reshard policy:\n"
      "                         scale:max=..,high=..,low=..,window_us=..;\n"
      "                         reshard:frac=..,window=..,cells=..\n"
      "admission control:\n"
      "  --admission            shed load when the rolling p99 drifts toward\n"
      "                         the SLA bound (with --elastic the daemon\n"
      "                         scales up first and sheds only once the\n"
      "                         provisioned pool is exhausted)\n"
      "  --admission-window <n> completions in the rolling window (256)\n"
      "  --admission-headroom <f> shed above f x sla bound (0.9)\n"
      "live mode:\n"
      "  --socket <path>        AF_UNIX socket path (serving_daemon.sock)\n"
      "  --self-drive <n>       built-in client: fire n requests, then shut\n"
      "                         down gracefully\n"
      "output:\n"
      "  --decisions <file>     per-request decision CSV (parity artifact)\n"
      "  --csv <file> --json <file> --metrics-out <file> --trace-out <file>\n");
}

/// Unwraps a parsed flag or exits with a clean error message.
template <typename T>
T flag_value(StatusOr<T> value) {
  if (!value.is_ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(*value);
}

/// One hardware search -> service model (identical parameters to
/// serving_cli --replay / bench_serving --replay, so all three binaries
/// serve the same fleet).
serving::ServiceModel searched_service(int threads) {
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  if (!model.is_ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().to_string().c_str());
    std::exit(1);
  }
  dse::SearchSpec spec;
  spec.search.population = 100;
  spec.search.iterations = 12;
  spec.search.seed = 42;
  spec.control.threads = threads;
  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  if (!outcome.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 outcome.status().to_string().c_str());
    std::exit(1);
  }
  return serving::service_model_from_eval(outcome->search.config,
                                          outcome->search.eval);
}

serving::DaemonOptions daemon_options_from_args(const ArgParser& args) {
  serving::DaemonOptions options;
  options.admission_enabled = args.has("admission");
  options.admission_window =
      static_cast<int>(flag_value(args.get_int("admission-window", 256)));
  options.admission_headroom =
      flag_value(args.get_double("admission-headroom", 0.9));
  options.socket_path = args.get("socket", "serving_daemon.sock");
  return options;
}

/// --parity-check: the same trace through the daemon's online loop and
/// through simulate_fleet must produce identical per-request decisions and
/// latencies. This is the headline acceptance gate, runnable as one command.
int run_parity_check(const serving::ServiceModel& service,
                     serving::ReplayJob job) {
  job.spec.fleet.keep_records = true;
  const serving::WorkloadOptions workload_defaults;
  if (job.spec.workload.branches == workload_defaults.branches) {
    job.spec.workload.branches = service.num_branches();
  }
  auto trace =
      serving::generate_scenario_workload(job.spec.workload, job.spec.scenario);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "error: %s\n", trace.status().to_string().c_str());
    return 1;
  }

  auto replay = serving::simulate_fleet(service, *trace, job.spec);
  if (!replay.is_ok()) {
    std::fprintf(stderr, "error: %s\n", replay.status().to_string().c_str());
    return 1;
  }
  const serving::Daemon daemon(service, job.spec, {});
  auto live = daemon.run_trace(*trace);
  if (!live.is_ok()) {
    std::fprintf(stderr, "error: %s\n", live.status().to_string().c_str());
    return 1;
  }
  const serving::ServingStats& a = *replay;
  const serving::ServingStats& b = live->stats;

  std::int64_t mismatches = 0;
  if (a.records.size() != b.records.size()) {
    std::fprintf(stderr, "parity: record count %zu vs %zu\n",
                 a.records.size(), b.records.size());
    ++mismatches;
  } else {
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      const serving::RequestRecord& ra = a.records[i];
      const serving::RequestRecord& rb = b.records[i];
      if (ra.id != rb.id || ra.user != rb.user || ra.branch != rb.branch ||
          ra.instance != rb.instance || ra.arrival_us != rb.arrival_us ||
          ra.start_us != rb.start_us || ra.finish_us != rb.finish_us) {
        if (mismatches < 5) {
          std::fprintf(stderr,
                       "parity: record %zu diverges (id %lld vs %lld, "
                       "instance %d vs %d, finish %.6f vs %.6f)\n",
                       i, static_cast<long long>(ra.id),
                       static_cast<long long>(rb.id), ra.instance,
                       rb.instance, ra.finish_us, rb.finish_us);
        }
        ++mismatches;
      }
    }
  }
  if (a.latency.p50 != b.latency.p50 || a.latency.p99 != b.latency.p99 ||
      a.latency.max != b.latency.max || a.completed != b.completed ||
      a.batches != b.batches || a.sla_violations != b.sla_violations) {
    std::fprintf(stderr, "parity: summary stats diverge (p99 %.6f vs %.6f)\n",
                 a.latency.p99, b.latency.p99);
    ++mismatches;
  }
  if (mismatches > 0) {
    std::printf("PARITY FAIL: %lld mismatch(es) over %lld requests\n",
                static_cast<long long>(mismatches),
                static_cast<long long>(a.completed));
    return 1;
  }
  std::printf(
      "PARITY OK: %lld requests, %lld batches — daemon online path and "
      "simulate_fleet agree on every decision and latency (p99 %.1f us)\n",
      static_cast<long long>(a.completed),
      static_cast<long long>(a.batches), a.latency.p99);
  return 0;
}

/// The built-in --self-drive client: fires `n` requests round-robin over
/// users/branches, counts replies, then asks for a graceful shutdown.
void self_drive(const std::string& socket_path, int n, int users,
                int branches) {
  serving::SteadyClock clock;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  // The daemon binds after it finishes the hardware search; retry for ~5 s.
  bool connected = false;
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      connected = true;
      break;
    }
    clock.sleep_until_us(clock.now_us() + 10000);
  }
  if (!connected) {
    std::fprintf(stderr, "self-drive: cannot connect to %s\n",
                 socket_path.c_str());
    ::close(fd);
    return;
  }
  for (int i = 0; i < n; ++i) {
    const std::string line = "req " + std::to_string(i % users) + " " +
                             std::to_string(i % branches) + "\n";
    if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) < 0) break;
  }
  // Count newline-terminated replies until every request was answered (the
  // batching timeout guarantees eventual dispatch, so this terminates).
  std::int64_t replies = 0, ok = 0, shed = 0;
  std::string buffer;
  char buf[4096];
  while (replies < n) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got <= 0) break;
    buffer.append(buf, static_cast<std::size_t>(got));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n'); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      ++replies;
      if (line.rfind("ok ", 0) == 0) ++ok;
      if (line.rfind("shed ", 0) == 0) ++shed;
    }
    buffer.erase(0, start);
  }
  std::printf("self-drive: %lld replies (%lld ok, %lld shed)\n",
              static_cast<long long>(replies), static_cast<long long>(ok),
              static_cast<long long>(shed));
  const char* bye = "shutdown\n";
  (void)::send(fd, bye, 9, MSG_NOSIGNAL);
  ::close(fd);
}

int run_live(const ArgParser& args) {
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  serving::ReplayJob job = flag_value(serving::replay_job_from_args(args));
  job.spec.clock = serving::ClockKind::kSteady;
  job.spec.fleet.shards = 1;  // serve() is one shard per process
  const serving::DaemonOptions options = daemon_options_from_args(args);
  const auto self_requests =
      static_cast<int>(flag_value(args.get_int("self-drive", 0)));

  const serving::ServiceModel service =
      searched_service(job.spec.fleet.threads);
  serving::Daemon daemon(service, job.spec, options);
  g_daemon = &daemon;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("serving_daemon: listening on %s (%d instance(s), %s "
              "dispatch, admission %s, elastic %s) — SIGINT/SIGTERM or a "
              "'shutdown' line drains gracefully\n",
              options.socket_path.c_str(), job.spec.fleet.instances,
              serving::to_string(job.spec.fleet.policy),
              options.admission_enabled ? "on" : "off",
              serving::elastic_to_string(job.spec.elastic).c_str());

  std::thread driver;
  if (self_requests > 0) {
    driver = std::thread([&options, self_requests, &job, &service] {
      self_drive(options.socket_path, self_requests,
                 std::max(1, job.spec.workload.users),
                 service.num_branches());
    });
  }
  auto result = daemon.serve();
  if (driver.joinable()) driver.join();
  g_daemon = nullptr;
  if (!result.is_ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().to_string().c_str());
    return 1;
  }

  std::printf("session drained: %lld served, %lld shed\n%s\n",
              static_cast<long long>(result->stats.completed),
              static_cast<long long>(result->shed),
              serving::serving_report(result->stats).c_str());
  if (!job.json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("schema_version").value(1);
    json.key("bench").value("serving_daemon_live");
    json.key("requests").value(result->stats.completed);
    json.key("shed").value(result->shed);
    json.key("admission").value(options.admission_enabled);
    json.key("stats");
    serving::serving_stats_json(json, result->stats);
    json.end_object();
    if (!json.write_file(job.json_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   job.json_path.c_str());
      return 1;
    }
  }
  return obs_scope.finish() ? 0 : 1;
}

int run_replay_mode(const ArgParser& args) {
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  serving::ReplayJob job = flag_value(serving::replay_job_from_args(args));
  job.via_daemon = true;
  job.admission = args.has("admission");
  job.json_bench = "serving_daemon";
  const serving::ServiceModel service =
      searched_service(job.spec.fleet.threads);
  const int rc = args.has("parity-check")
                     ? run_parity_check(service, std::move(job))
                     : serving::run_replay_cli(service, job);
  if (!obs_scope.finish()) return 1;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  if (args->has("help")) {
    usage();
    return 0;
  }
  if (args->has("live")) return run_live(*args);
  if (args->has("replay")) return run_replay_mode(*args);
  usage();
  return 1;
}
