// fcad_cli — the command-line front end of the framework, driving the
// staged core::Pipeline.
//
//   fcad_cli --model decoder.fcad --platform zu9cg --quant int8
//            --batches 1,2,2 --priorities 1,1,1
//            --population 200 --iterations 20 --seed 1 --simulate --json
//
// --model takes a network in the nn/serialize.hpp text format; without it,
// the built-in Table-I avatar decoder is used. --asic-macs/--asic-buffer-mib/
// --asic-bw/--asic-freq define an ASIC budget instead of --platform.
// --save-artifact / --load-artifact serialize the optimization stage, so a
// search can be resumed for reporting/simulation without re-running it.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/config_io.hpp"
#include "arch/datapath.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nn/serialize.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "obs/export.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace {

using namespace fcad;

void usage() {
  std::printf(
      "usage: fcad_cli [options]\n"
      "  --model <file>        network in the fcad text format "
      "(default: built-in avatar decoder)\n"
      "  --platform <name>     z7045 | zu17eg | zu9cg | ku115 (default "
      "zu9cg)\n"
      "  --asic-macs <n>       target an ASIC instead: MAC units\n"
      "  --asic-buffer-mib <f> ASIC on-chip buffer (MiB)\n"
      "  --asic-bw <f>         ASIC DRAM bandwidth (GB/s)\n"
      "  --asic-freq <f>       ASIC clock (MHz)\n"
      "  --quant int8|int16    quantization Q (deprecated: sets "
      "--datapath pipelined-<Q>)\n"
      "  --datapath <name>     precision x MAC datapath, e.g. "
      "pipelined-int8 (default),\n"
      "                        staged-int8x4; overrides --quant (see "
      "--list-datapaths)\n"
      "  --list-datapaths      print the registered datapath names and "
      "exit\n"
      "  --search-datapath     joint datapath x batch-scale sweep over "
      "every registered\n"
      "                        datapath, Pareto-marked on (min FPS, "
      "accuracy proxy)\n"
      "  --batches a,b,...     per-branch batch-size targets\n"
      "  --priorities a,b,...  per-branch priorities\n"
      "  --population <n>      DSE candidates P (default 200)\n"
      "  --iterations <n>      DSE iterations N (default 20)\n"
      "  --seed <n>            DSE seed (default 1)\n"
      "  --strategy <name>     search strategy (default particle-swarm; "
      "see --list-strategies)\n"
      "  --list-strategies     print the registered strategy names and "
      "exit\n"
      "  --artifact-cache <dir> spec-hash-keyed artifact cache: a repeated "
      "run with identical\n"
      "                        flags reloads its search artifact instead of "
      "re-searching\n"
      "  --threads <n>         DSE evaluation threads (default: all cores; "
      "results are identical for any value)\n"
      "  --deadline-s <f>      wall-clock budget for the search (best-effort "
      "result when it expires)\n"
      "  --progress            stream per-iteration progress to stderr\n"
      "  --simulate            validate the winner on the cycle simulator\n"
      "  --chart               print the simulator's per-stage utilization "
      "chart (implies --simulate)\n"
      "  --json                print a machine-readable JSON report instead "
      "of the table\n"
      "  --save-config <file>  write the winning accelerator config "
      "(arch/config_io.hpp format)\n"
      "  --save-artifact <file> write the search-stage artifact "
      "(re-enterable via --load-artifact)\n"
      "  --load-artifact <file> skip the search; resume from a saved "
      "artifact\n"
      "  --metrics-out <file>  write obs metrics (counters/gauges/histograms) "
      "as JSON\n"
      "  --trace-out <file>    write a Chrome/Perfetto trace of the run\n"
      "  --dump-model          print the model text and exit\n");
}

StatusOr<nn::Graph> load_model(const ArgParser& args) {
  const std::string path = args.get("model", "");
  if (path.empty()) return nn::zoo::avatar_decoder();
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open model file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return nn::from_text(buffer.str());
}

StatusOr<arch::Platform> load_platform(const ArgParser& args) {
  if (args.has("asic-macs")) {
    auto macs = args.get_int("asic-macs", 0);
    if (!macs.is_ok()) return macs.status();
    auto buffer = args.get_double("asic-buffer-mib", 4.0);
    if (!buffer.is_ok()) return buffer.status();
    auto bw = args.get_double("asic-bw", 12.8);
    if (!bw.is_ok()) return bw.status();
    auto freq = args.get_double("asic-freq", 600.0);
    if (!freq.is_ok()) return freq.status();
    return arch::make_asic("asic", static_cast<int>(*macs), *buffer, *bw,
                           *freq);
  }
  return arch::platform_by_name(args.get("platform", "zu9cg"));
}

void emit_platform(JsonWriter& json, const arch::Platform& platform) {
  json.key("platform").begin_object();
  json.key("name").value(platform.name);
  json.key("dsps").value(platform.dsps);
  json.key("brams18k").value(platform.brams18k);
  json.key("bw_gbps").value(platform.bw_gbps);
  json.key("freq_mhz").value(platform.freq_mhz);
  json.end_object();
}

/// The machine-readable twin of core::case_report: platform + search stats
/// + per-branch evaluation + structured winner config + the re-enterable
/// artifact text.
std::string json_report(const core::Pipeline& pipeline,
                        const core::PipelineResult& result) {
  const dse::SearchResult& search = result.search;
  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(1);
  json.key("model").value(pipeline.graph().name());
  emit_platform(json, pipeline.platform());

  json.key("search").begin_object();
  json.key("fitness").value(search.fitness);
  json.key("feasible").value(search.feasible);
  json.key("stopped_early").value(search.stopped_early);
  json.key("seconds").value(search.seconds);
  json.key("evaluations").value(search.trace.evaluations);
  json.key("convergence_iteration").value(search.trace.convergence_iteration);
  json.key("cache_hits").value(search.trace.cache_hits);
  json.key("cache_misses").value(search.trace.cache_misses);
  json.end_object();

  const arch::AcceleratorEval& eval = search.eval;
  json.key("eval").begin_object();
  json.key("datapath")
      .value(arch::datapath_to_string(search.config.datapath));
  json.key("accuracy_proxy").value(eval.accuracy_proxy);
  json.key("min_fps").value(eval.min_fps);
  json.key("efficiency").value(eval.efficiency);
  json.key("dsps").value(eval.dsps);
  json.key("luts").value(eval.luts);
  json.key("brams").value(eval.brams);
  json.key("bw_gbps").value(eval.bw_gbps);
  json.key("branches").begin_array();
  for (std::size_t b = 0; b < eval.branches.size(); ++b) {
    const arch::BranchEval& be = eval.branches[b];
    json.begin_object();
    json.key("role").value(result.model.branches[b].role);
    json.key("batch").value(be.batch);
    json.key("fps").value(be.fps);
    json.key("dsps").value(be.dsps);
    json.key("brams").value(be.brams);
    json.key("bw_gbps").value(be.bw_gbps);
    json.key("efficiency").value(be.efficiency);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (result.simulation.has_value()) {
    json.key("simulation").begin_object();
    json.key("min_fps").value(result.simulation->min_fps);
    json.key("efficiency").value(result.simulation->efficiency);
    json.key("ddr_demand_gbps").value(result.simulation->ddr_demand_gbps);
    json.end_object();
  }

  json.key("artifact").value(pipeline.save_search());
  json.end_object();
  return json.str();
}

/// Distinct datapath names on the sweep's Pareto frontier, grid order.
std::vector<std::string> frontier_datapaths(
    const std::vector<dse::SweepPoint>& sweep) {
  std::vector<std::string> names;
  for (const dse::SweepPoint& point : sweep) {
    if (!point.pareto_optimal) continue;
    if (std::find(names.begin(), names.end(), point.datapath) != names.end())
      continue;
    names.push_back(point.datapath);
  }
  return names;
}

/// The machine-readable shape of a --search-datapath (kSweep) run: every
/// grid point with its evaluation, plus the distinct frontier datapaths.
std::string sweep_json_report(const core::Pipeline& pipeline,
                              const dse::SearchOutcome& outcome) {
  JsonWriter json;
  json.begin_object();
  json.key("schema_version").value(1);
  json.key("model").value(pipeline.graph().name());
  emit_platform(json, pipeline.platform());
  json.key("sweep").begin_object();
  json.key("points").begin_array();
  for (const dse::SweepPoint& point : outcome.sweep) {
    const arch::AcceleratorEval& eval = point.result.eval;
    json.begin_object();
    json.key("datapath").value(point.datapath);
    json.key("freq_mhz").value(point.freq_mhz);
    json.key("batch_scale").value(point.batch_scale);
    json.key("pareto").value(point.pareto_optimal);
    json.key("feasible").value(point.result.feasible);
    json.key("fitness").value(point.result.fitness);
    json.key("accuracy_proxy").value(eval.accuracy_proxy);
    json.key("min_fps").value(eval.min_fps);
    json.key("dsps").value(eval.dsps);
    json.key("luts").value(eval.luts);
    json.key("brams").value(eval.brams);
    json.key("bw_gbps").value(eval.bw_gbps);
    json.end_object();
  }
  json.end_array();
  json.key("frontier_datapaths").begin_array();
  for (const std::string& name : frontier_datapaths(outcome.sweep)) {
    json.value(name);
  }
  json.end_array();
  json.end_object();
  json.key("artifact").value(pipeline.save_search());
  json.end_object();
  return json.str();
}

/// Human-readable twin of sweep_json_report.
void print_sweep_table(const dse::SearchOutcome& outcome) {
  std::printf("datapath x batch-scale sweep (%zu points)\n",
              outcome.sweep.size());
  std::printf("  %-18s %8s %6s %7s %9s %6s %7s %9s %7s\n", "datapath", "MHz",
              "scale", "pareto", "min_fps", "dsps", "luts", "acc_proxy",
              "feas");
  for (const dse::SweepPoint& point : outcome.sweep) {
    std::printf("  %-18s %8.0f %6d %7s %9.2f %6d %7d %9.3f %7s\n",
                point.datapath.c_str(), point.freq_mhz, point.batch_scale,
                point.pareto_optimal ? "*" : "", point.result.eval.min_fps,
                point.result.eval.dsps, point.result.eval.luts,
                point.result.eval.accuracy_proxy,
                point.result.feasible ? "yes" : "no");
  }
  std::printf("frontier:");
  for (const std::string& name : frontier_datapaths(outcome.sweep)) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
}

int run(const ArgParser& args) {
  // Installed before any pipeline stage so spans cover the whole run; torn
  // down without writing on the error paths (dtor), written via finish() on
  // the reporting paths.
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  auto graph = load_model(args);
  if (!graph.is_ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().to_string().c_str());
    return 1;
  }
  if (args.has("dump-model")) {
    std::printf("%s", nn::to_text(*graph).c_str());
    return 0;
  }
  auto platform = load_platform(args);
  if (!platform.is_ok()) {
    std::fprintf(stderr, "error: %s\n", platform.status().to_string().c_str());
    return 1;
  }

  dse::SearchSpec spec;
  const std::string quant = args.get("quant", "int8");
  if (quant == "int8") {
    spec.customization.quantization = nn::DataType::kInt8;
  } else if (quant == "int16") {
    spec.customization.quantization = nn::DataType::kInt16;
  } else {
    std::fprintf(stderr, "error: --quant must be int8 or int16\n");
    return 1;
  }
  if (args.has("datapath")) {
    auto dp = arch::datapath_from_string(args.get("datapath", ""));
    if (!dp.is_ok()) {
      std::fprintf(stderr, "error: %s\n", dp.status().to_string().c_str());
      return 1;
    }
    spec.customization.datapath = arch::datapath_to_string(*dp);
  }
  auto batches = args.get_int_list("batches");
  if (!batches.is_ok()) {
    std::fprintf(stderr, "error: %s\n", batches.status().to_string().c_str());
    return 1;
  }
  spec.customization.batch_sizes = *batches;
  auto priorities = args.get_double_list("priorities");
  if (!priorities.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 priorities.status().to_string().c_str());
    return 1;
  }
  spec.customization.priorities = *priorities;

  auto population = args.get_int("population", 200);
  auto iterations = args.get_int("iterations", 20);
  auto seed = args.get_int("seed", 1);
  auto threads = args.get_int("threads", 0);
  auto deadline = args.get_double("deadline-s", 0.0);
  if (!population.is_ok() || !iterations.is_ok() || !seed.is_ok() ||
      !threads.is_ok() || !deadline.is_ok()) {
    std::fprintf(stderr, "error: bad numeric flag\n");
    return 1;
  }
  spec.search.population = static_cast<int>(*population);
  spec.search.iterations = static_cast<int>(*iterations);
  spec.search.seed = static_cast<std::uint64_t>(*seed);
  spec.strategy = args.get("strategy", "particle-swarm");
  if (auto strategy = dse::strategy_factory(spec.strategy);
      !strategy.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 strategy.status().to_string().c_str());
    return 1;
  }
  spec.control.threads = static_cast<int>(*threads);
  spec.control.deadline_s = *deadline;
  if (args.has("progress")) {
    spec.control.on_progress = [](const dse::ProgressEvent& event) {
      std::fprintf(stderr, "[%s] %d/%d best fitness %.1f\n",
                   event.stage.c_str(), event.step, event.total_steps,
                   event.best_fitness);
    };
  }
  if (args.has("search-datapath")) {
    if (args.has("simulate") || args.has("chart") ||
        args.has("save-config")) {
      std::fprintf(stderr,
                   "error: --search-datapath produces a sweep, not a single "
                   "winner; --simulate/--chart/--save-config do not apply\n");
      return 1;
    }
    spec.kind = dse::SearchKind::kSweep;
    spec.sweep.datapaths = arch::registered_datapath_names();
    spec.sweep.frequencies_mhz = {platform->freq_mhz};
    spec.sweep.batch_scales = {1, 2};
  }

  // Staged execution: analysis + construction always run; the optimization
  // stage either runs the search or re-enters a saved artifact.
  core::Pipeline pipeline(std::move(*graph), *platform);
  pipeline.set_artifact_cache_dir(args.get("artifact-cache", ""));
  Status status = pipeline.construct();
  if (status.is_ok()) {
    if (args.has("load-artifact")) {
      const std::string path = args.get("load-artifact", "");
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "error: cannot open artifact '%s'\n",
                     path.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      status = pipeline.load_search(buffer.str());
    } else {
      status = pipeline.optimize(spec);
    }
  }
  if (status.is_ok() && (args.has("simulate") || args.has("chart"))) {
    status = pipeline.simulate({});
  }
  auto result = status.is_ok()
                    ? pipeline.result()
                    : StatusOr<core::PipelineResult>(status);
  if (!result.is_ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().to_string().c_str());
    return 1;
  }

  if (!pipeline.artifact_cache_dir().empty() && !args.has("json")) {
    std::printf("artifact cache: %d hit(s), %d miss(es)\n",
                pipeline.artifact_cache_hits(),
                pipeline.artifact_cache_misses());
  }
  // A sweep outcome (from --search-datapath or a loaded sweep artifact) has
  // no single winner; report the grid instead of the case report.
  const core::SearchArtifact* artifact = pipeline.search();
  const bool sweep_outcome =
      artifact != nullptr &&
      artifact->outcome.kind == dse::SearchKind::kSweep;
  if (args.has("json")) {
    std::printf("%s\n",
                (sweep_outcome
                     ? sweep_json_report(pipeline, artifact->outcome)
                     : json_report(pipeline, *result))
                    .c_str());
  } else if (sweep_outcome) {
    print_sweep_table(artifact->outcome);
  } else {
    std::printf("%s",
                core::case_report(pipeline.graph().name(), *result, *platform)
                    .c_str());
    if (args.has("chart") && result->simulation.has_value()) {
      std::printf("\n%s",
                  sim::utilization_chart(result->model, *result->simulation)
                      .c_str());
    }
  }
  if (args.has("save-config")) {
    const std::string path = args.get("save-config", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 1;
    }
    out << arch::config_to_text(result->model, result->search.config);
    if (!args.has("json")) std::printf("config written to %s\n", path.c_str());
  }
  if (args.has("save-artifact")) {
    const std::string path = args.get("save-artifact", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 1;
    }
    out << pipeline.save_search();
    if (!args.has("json")) {
      std::printf("artifact written to %s\n", path.c_str());
    }
  }
  if (!obs_scope.finish()) return 1;
  const bool feasible =
      sweep_outcome
          ? std::any_of(artifact->outcome.sweep.begin(),
                        artifact->outcome.sweep.end(),
                        [](const dse::SweepPoint& point) {
                          return point.result.feasible;
                        })
          : result->search.feasible;
  if (!feasible) {
    std::fprintf(stderr,
                 "warning: no configuration met every batch-size target "
                 "within the budget; best effort shown.\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  if (args->has("help")) {
    usage();
    return 0;
  }
  if (args->has("list-strategies")) {
    for (const std::string& name : fcad::dse::registered_strategy_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (args->has("list-datapaths")) {
    for (const std::string& name : fcad::arch::registered_datapath_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  return run(*args);
}
