// fcad_cli — the command-line front end of the framework.
//
//   fcad_cli --model decoder.fcad --platform zu9cg --quant int8
//            --batches 1,2,2 --priorities 1,1,1
//            --population 200 --iterations 20 --seed 1 --simulate
//
// --model takes a network in the nn/serialize.hpp text format; without it,
// the built-in Table-I avatar decoder is used. --asic-macs/--asic-buffer-mib/
// --asic-bw/--asic-freq define an ASIC budget instead of --platform.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "arch/config_io.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "nn/serialize.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"

namespace {

using namespace fcad;

void usage() {
  std::printf(
      "usage: fcad_cli [options]\n"
      "  --model <file>        network in the fcad text format "
      "(default: built-in avatar decoder)\n"
      "  --platform <name>     z7045 | zu17eg | zu9cg | ku115 (default "
      "zu9cg)\n"
      "  --asic-macs <n>       target an ASIC instead: MAC units\n"
      "  --asic-buffer-mib <f> ASIC on-chip buffer (MiB)\n"
      "  --asic-bw <f>         ASIC DRAM bandwidth (GB/s)\n"
      "  --asic-freq <f>       ASIC clock (MHz)\n"
      "  --quant int8|int16    quantization Q (default int8)\n"
      "  --batches a,b,...     per-branch batch-size targets\n"
      "  --priorities a,b,...  per-branch priorities\n"
      "  --population <n>      DSE candidates P (default 200)\n"
      "  --iterations <n>      DSE iterations N (default 20)\n"
      "  --seed <n>            DSE seed (default 1)\n"
      "  --threads <n>         DSE evaluation threads (default: all cores; "
      "results are identical for any value)\n"
      "  --simulate            validate the winner on the cycle simulator\n"
      "  --chart               print the simulator's per-stage utilization "
      "chart (implies --simulate)\n"
      "  --save-config <file>  write the winning accelerator config "
      "(arch/config_io.hpp format)\n"
      "  --dump-model          print the model text and exit\n");
}

StatusOr<nn::Graph> load_model(const ArgParser& args) {
  const std::string path = args.get("model", "");
  if (path.empty()) return nn::zoo::avatar_decoder();
  std::ifstream in(path);
  if (!in) return Status::not_found("cannot open model file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return nn::from_text(buffer.str());
}

StatusOr<arch::Platform> load_platform(const ArgParser& args) {
  if (args.has("asic-macs")) {
    auto macs = args.get_int("asic-macs", 0);
    if (!macs.is_ok()) return macs.status();
    auto buffer = args.get_double("asic-buffer-mib", 4.0);
    if (!buffer.is_ok()) return buffer.status();
    auto bw = args.get_double("asic-bw", 12.8);
    if (!bw.is_ok()) return bw.status();
    auto freq = args.get_double("asic-freq", 600.0);
    if (!freq.is_ok()) return freq.status();
    return arch::make_asic("asic", static_cast<int>(*macs), *buffer, *bw,
                           *freq);
  }
  return arch::platform_by_name(args.get("platform", "zu9cg"));
}

int run(const ArgParser& args) {
  auto graph = load_model(args);
  if (!graph.is_ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().to_string().c_str());
    return 1;
  }
  if (args.has("dump-model")) {
    std::printf("%s", nn::to_text(*graph).c_str());
    return 0;
  }
  auto platform = load_platform(args);
  if (!platform.is_ok()) {
    std::fprintf(stderr, "error: %s\n", platform.status().to_string().c_str());
    return 1;
  }

  core::FlowOptions options;
  const std::string quant = args.get("quant", "int8");
  if (quant == "int8") {
    options.customization.quantization = nn::DataType::kInt8;
  } else if (quant == "int16") {
    options.customization.quantization = nn::DataType::kInt16;
  } else {
    std::fprintf(stderr, "error: --quant must be int8 or int16\n");
    return 1;
  }
  auto batches = args.get_int_list("batches");
  if (!batches.is_ok()) {
    std::fprintf(stderr, "error: %s\n", batches.status().to_string().c_str());
    return 1;
  }
  options.customization.batch_sizes = *batches;
  auto priorities = args.get_double_list("priorities");
  if (!priorities.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 priorities.status().to_string().c_str());
    return 1;
  }
  options.customization.priorities = *priorities;

  auto population = args.get_int("population", 200);
  auto iterations = args.get_int("iterations", 20);
  auto seed = args.get_int("seed", 1);
  auto threads = args.get_int("threads", 0);
  if (!population.is_ok() || !iterations.is_ok() || !seed.is_ok() ||
      !threads.is_ok()) {
    std::fprintf(stderr, "error: bad numeric flag\n");
    return 1;
  }
  options.search.population = static_cast<int>(*population);
  options.search.iterations = static_cast<int>(*iterations);
  options.search.seed = static_cast<std::uint64_t>(*seed);
  options.search.threads = static_cast<int>(*threads);
  options.run_simulation = args.has("simulate") || args.has("chart");

  core::Flow flow(std::move(*graph), *platform);
  auto result = flow.run(options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().to_string().c_str());
    return 1;
  }
  std::printf("%s",
              core::case_report(flow.graph().name(), *result, *platform)
                  .c_str());
  if (args.has("chart") && result->simulation.has_value()) {
    std::printf("\n%s",
                sim::utilization_chart(result->model, *result->simulation)
                    .c_str());
  }
  if (args.has("save-config")) {
    const std::string path = args.get("save-config", "");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 1;
    }
    out << arch::config_to_text(result->model, result->search.config);
    std::printf("config written to %s\n", path.c_str());
  }
  if (!result->search.feasible) {
    std::fprintf(stderr,
                 "warning: no configuration met every batch-size target "
                 "within the budget; best effort shown.\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  if (args->has("help")) {
    usage();
    return 0;
  }
  return run(*args);
}
