// Example: head-to-head of every accelerator model in the repository on one
// FPGA — the Snapdragon-865-class SoC, DNNBuilder, HybridDNN, and F-CAD —
// with the cycle-level simulator double-checking the F-CAD winner.
#include <cstdio>

#include "arch/platform.hpp"
#include "baselines/dnnbuilder.hpp"
#include "baselines/hybriddnn.hpp"
#include "baselines/soc865.hpp"
#include "core/pipeline.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;
  const arch::Platform target = arch::platform_zu17eg();

  // Baselines run the mimic decoder (they lack the customized Conv).
  auto mimic = arch::reorganize(nn::zoo::mimic_decoder());
  if (!mimic.is_ok()) {
    std::fprintf(stderr, "%s\n", mimic.status().to_string().c_str());
    return 1;
  }
  const auto soc = baselines::run_soc865(*mimic);
  const auto dnnb =
      baselines::run_dnnbuilder(*mimic, target, nn::DataType::kInt8);
  const auto hybrid =
      baselines::run_hybriddnn(*mimic, target, nn::DataType::kInt16);

  // F-CAD runs the real decoder, with simulator validation.
  core::PipelineOptions options;
  options.spec.customization.quantization = nn::DataType::kInt8;
  options.spec.customization.batch_sizes = {1, 1, 1};  // match the baselines
  options.spec.search.population = 150;
  options.spec.search.iterations = 15;
  options.spec.search.seed = 2021;
  options.run_simulation = true;
  core::Pipeline pipeline(nn::zoo::avatar_decoder(), target);
  auto fcad = pipeline.run(options);
  if (!fcad.is_ok()) {
    std::fprintf(stderr, "%s\n", fcad.status().to_string().c_str());
    return 1;
  }

  TablePrinter t({"Design", "Precision", "FPS", "Efficiency", "VR-ready?"});
  auto vr = [](double fps) { return fps >= 90.0 ? "yes" : "no"; };
  t.add_row({"Snapdragon-865-class SoC", "8-bit", format_fixed(soc.fps, 1),
             format_percent(soc.efficiency, 1), vr(soc.fps)});
  t.add_row({"DNNBuilder on " + target.name, "8-bit",
             format_fixed(dnnb.fps, 1), format_percent(dnnb.efficiency, 1),
             vr(dnnb.fps)});
  t.add_row({"HybridDNN on " + target.name, "16-bit",
             format_fixed(hybrid.fps, 1),
             format_percent(hybrid.efficiency, 1), vr(hybrid.fps)});
  const auto& eval = fcad->search.eval;
  t.add_row({"F-CAD on " + target.name, "8-bit",
             format_fixed(eval.min_fps, 1),
             format_percent(eval.efficiency, 1), vr(eval.min_fps)});
  std::printf("=== who can decode a codec avatar in real time? ===\n\n%s\n",
              t.to_string().c_str());

  const auto& simulated = *fcad->simulation;
  std::printf("F-CAD winner cross-checked by the cycle simulator: %s FPS "
              "(analytical %s), DDR %s GB/s of %s available.\n",
              format_fixed(simulated.min_fps, 1).c_str(),
              format_fixed(eval.min_fps, 1).c_str(),
              format_fixed(simulated.ddr_demand_gbps, 2).c_str(),
              format_fixed(target.bw_gbps, 1).c_str());
  return 0;
}
