// Example: targeting an ASIC budget instead of an FPGA.
//
// Sec. VII notes F-CAD "can also target ASIC designs with the resource
// budgets {Cmax, Mmax, BWmax} associating to ... the available MAC units,
// the on-chip buffer size, and the external memory bandwidth". This example
// sweeps three hypothetical HMD SoC corners and reports what decoder
// performance each could sustain.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  struct Corner {
    const char* name;
    int mac_units;
    double buffer_mib;
    double bw_gbps;
    double freq_mhz;
  };
  // MAC counts are DSP-equivalents (one unit = one 16-bit MAC or two 8-bit
  // MACs per cycle), matching the FPGA accounting.
  const Corner corners[] = {
      {"hmd-low (2W)", 1024, 2.0, 8.5, 400},
      {"hmd-mid (4W)", 2048, 4.0, 17.0, 600},
      {"hmd-high (7W)", 4096, 8.0, 25.6, 800},
  };

  TablePrinter t({"ASIC corner", "MACs", "buf", "BW", "clock", "branch FPS",
                  "min FPS", "efficiency"});
  for (const Corner& c : corners) {
    const arch::Platform asic =
        arch::make_asic(c.name, c.mac_units, c.buffer_mib, c.bw_gbps,
                        c.freq_mhz);
    core::PipelineOptions options;
    options.spec.customization.quantization = nn::DataType::kInt8;
    options.spec.customization.batch_sizes = {1, 2, 2};
    options.spec.search.population = 100;
    options.spec.search.iterations = 12;
    options.spec.search.seed = 13;

    core::Pipeline pipeline(nn::zoo::avatar_decoder(), asic);
    auto result = pipeline.run(options);
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", c.name,
                   result.status().to_string().c_str());
      return 1;
    }
    const arch::AcceleratorEval& eval = result->search.eval;
    std::string fps = "{";
    for (std::size_t b = 0; b < eval.branches.size(); ++b) {
      if (b) fps += ", ";
      fps += format_fixed(eval.branches[b].fps, 1);
    }
    fps += "}";
    t.add_row({c.name, std::to_string(c.mac_units),
               format_fixed(c.buffer_mib, 1) + " MiB",
               format_fixed(c.bw_gbps, 1) + " GB/s",
               format_fixed(c.freq_mhz, 0) + " MHz", fps,
               format_fixed(eval.min_fps, 1),
               format_percent(eval.efficiency, 1)});
  }
  std::printf("=== F-CAD on ASIC budgets (codec avatar decoder, 8-bit) ===\n\n%s\n",
              t.to_string().c_str());
  std::printf("reading: the VR bar is 90+ FPS on every branch; the sweep\n"
              "shows which power corner first clears it.\n");
  return 0;
}
