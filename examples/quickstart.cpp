// Quickstart: run the whole F-CAD flow on the Table-I codec avatar decoder.
//
//   1. build (or import) the decoder network,
//   2. inspect its branch structure and compute/memory demands,
//   3. search for the optimized accelerator on a Xilinx ZU9CG budget,
//   4. validate the winning design on the cycle-level simulator.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "analysis/report.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "nn/zoo/avatar_decoder.hpp"

int main() {
  using namespace fcad;

  // 1. The decoder: three branches (geometry / texture / warp field) with a
  //    shared front-end, customized untied-bias convolutions throughout.
  nn::Graph decoder = nn::zoo::avatar_decoder();

  // 2. Analysis-step artifacts, printed Table-I style.
  analysis::GraphProfile profile = analysis::profile_graph(decoder);
  auto branches = analysis::decompose(decoder, profile);
  if (!branches.is_ok()) {
    std::fprintf(stderr, "decompose failed: %s\n",
                 branches.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n",
              analysis::branch_summary(decoder, profile, *branches).c_str());

  // 3. The optimization step: 8-bit quantization, batch {1, 2, 2} (Br.2/3
  //    render one HD texture per eye), equal priorities, ZU9CG budget.
  core::FlowOptions options;
  options.customization.quantization = nn::DataType::kInt8;
  options.customization.batch_sizes = {1, 2, 2};
  options.search.population = 100;  // lighter than the paper's 200 for a demo
  options.search.iterations = 12;
  options.search.seed = 42;
  options.run_simulation = true;  // 4. cycle-level validation

  core::Flow flow(std::move(decoder), arch::platform_zu9cg());
  auto result = flow.run(options);
  if (!result.is_ok()) {
    std::fprintf(stderr, "flow failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n",
              core::case_report("quickstart (ZU9CG, 8-bit)", *result,
                                flow.platform())
                  .c_str());
  return 0;
}
