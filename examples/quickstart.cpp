// Quickstart: run the whole F-CAD flow on the Table-I codec avatar decoder
// through the staged core::Pipeline.
//
//   1. build (or import) the decoder network,
//   2. analyze() — inspect its branch structure and compute/memory demands,
//   3. optimize() — search for the accelerator on a Xilinx ZU9CG budget,
//      watching per-iteration progress through the RunControl observer,
//   4. simulate() — validate the winning design on the cycle-level
//      simulator, then render the Table-IV style report.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "analysis/report.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nn/zoo/avatar_decoder.hpp"

int main() {
  using namespace fcad;

  // 1. The decoder: three branches (geometry / texture / warp field) with a
  //    shared front-end, customized untied-bias convolutions throughout.
  core::Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());

  // 2. Analysis stage: the artifact is cached on the pipeline, so nothing
  //    below ever re-profiles the graph.
  if (Status s = pipeline.analyze(); !s.is_ok()) {
    std::fprintf(stderr, "analysis failed: %s\n", s.to_string().c_str());
    return 1;
  }
  const core::ProfileArtifact& profile = *pipeline.profile();
  std::printf("%s\n",
              analysis::branch_summary(pipeline.graph(), profile.profile,
                                       profile.decomposition)
                  .c_str());

  // 3. The optimization stage: 8-bit quantization, batch {1, 2, 2} (Br.2/3
  //    render one HD texture per eye), equal priorities, ZU9CG budget.
  dse::SearchSpec spec;
  spec.customization.quantization = nn::DataType::kInt8;
  spec.customization.batch_sizes = {1, 2, 2};
  spec.search.population = 100;  // lighter than the paper's 200 for a demo
  spec.search.iterations = 12;
  spec.search.seed = 42;
  spec.control.on_progress = [](const dse::ProgressEvent& event) {
    std::fprintf(stderr, "  %s %d/%d: best fitness %.1f\n",
                 event.stage.c_str(), event.step, event.total_steps,
                 event.best_fitness);
  };
  if (Status s = pipeline.optimize(spec); !s.is_ok()) {
    std::fprintf(stderr, "search failed: %s\n", s.to_string().c_str());
    return 1;
  }

  // 4. Cycle-level validation + report.
  if (Status s = pipeline.simulate(); !s.is_ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", s.to_string().c_str());
    return 1;
  }
  auto result = pipeline.result();
  if (!result.is_ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n",
              core::case_report("quickstart (ZU9CG, 8-bit)", *result,
                                pipeline.platform())
                  .c_str());
  return 0;
}
