// serving_cli — multi-tenant serving simulation of the Table-I avatar
// decoder: search the accelerator once (dse::SearchDriver), then replay
// request traffic from N concurrent users across a fleet of instances and
// report tail latency and SLA compliance per arrival process x dispatch
// policy.
//
//   serving_cli --users 4 --instances 4 --sla-ms 33.3 --seed 42
//   serving_cli --optimize --max-users 64        # SLA-aware DSE
//   serving_cli --optimize --json                # machine-readable winner
//   serving_cli --replay 1000000 --trace-out replay.trace.json
//
// Results are bit-reproducible for a fixed --seed (same CSV across runs);
// --metrics-out / --trace-out export the obs:: metrics registry and a
// Chrome/Perfetto trace without changing any result.
#include <cstdio>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "obs/export.hpp"
#include "serving/fleet.hpp"
#include "serving/replay.hpp"
#include "serving/service.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"
#include "sim/simulator.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/run_control.hpp"
#include "util/table.hpp"

namespace {

using namespace fcad;

void usage() {
  std::printf(
      "usage: serving_cli [options]\n"
      "traffic:\n"
      "  --users <n>            concurrent user streams (default 2)\n"
      "  --frame-rate <f>       per-user frame rate, Hz (default 30)\n"
      "  --duration <f>         simulated seconds of traffic (default 2)\n"
      "  --arrival <name>       poisson | bursty | both (default both)\n"
      "  --seed <n>             workload + DSE seed (default 42)\n"
      "fleet:\n"
      "  --instances <n>        accelerator instances (default 4)\n"
      "  --shards <n>           static fleet shards, in [1, instances]; the\n"
      "                         replay parallelizes across them (default 1)\n"
      "  --policy <name>        rr | least | affinity | all (default all)\n"
      "  --timeout-us <f>       batching timeout (default 4000)\n"
      "  --switch-penalty-us <f> branch retarget cost per pass (default "
      "500)\n"
      "  --sla-ms <f>           p99 latency bound (default 33.333)\n"
      "  --tail-pct <f>         percentile rank streamed by progress ticks,\n"
      "                         in (0, 100] (default 99)\n"
      "hardware search:\n"
      "  --platform <name>      z7045 | zu17eg | zu9cg | ku115 (default "
      "zu9cg)\n"
      "  --batches a,b,...      per-branch batch targets (default 1,2,2)\n"
      "  --population <n>       DSE candidates (default 100)\n"
      "  --iterations <n>       DSE iterations (default 12)\n"
      "  --threads <n>          DSE evaluation threads (default: all cores; "
      "results are identical for any value)\n"
      "  --simulate             service times from the cycle simulator\n"
      "SLA-aware DSE (SearchKind::kTraffic):\n"
      "  --optimize             search batch scaling under the traffic\n"
      "  --max-batch <n>        largest batch multiplier probed (default 8)\n"
      "  --max-users <n>        also maximize served users up to n\n"
      "sharded replay (bit-identical for any --threads):\n"
      "  --replay <n>           replay an n-request Poisson trace across the\n"
      "                         fleet (defaults become users 8, instances 8,\n"
      "                         shards 8)\n"
      "  --checkpoint <file>    per-shard checkpoint; rerun with the same\n"
      "                         flags to resume\n"
      "  --cancel-at <f>        cancel after fraction f of the requests\n"
      "                         completed (exit code 3)\n"
      "  --clock <name>         virtual (instant, default) | steady (pace\n"
      "                         events at their trace timestamps)\n"
      "  --decisions <file>     per-request decision CSV (the replay/live\n"
      "                         parity artifact; exact doubles)\n"
      "  --scenario <spec>      drift scenario: diurnal rate modulation,\n"
      "                         flash crowds, user churn, instance faults\n"
      "                         (diurnal:period=..,amp=..;flash:start=..,\n"
      "                         end=..,rate=..,users=..;churn:user=..,\n"
      "                         join=..,leave=..;fault:instance=..,fail=..,\n"
      "                         recover=..; default none)\n"
      "  --elastic <spec>       elastic fleet policy (scale:max=..,high=..,\n"
      "                         low=..,window_us=..;reshard:frac=..,\n"
      "                         window=..,cells=..; default none)\n"
      "  --latency-mode <m>     exact (default) | sketch: mergeable\n"
      "                         quantile sketches, O(1) memory per shard —\n"
      "                         the billion-request mode\n"
      "  --stream               generate the workload lazily per shard\n"
      "                         (never materialized; needs --replay N)\n"
      "  --process-shard i/N    this process owns shard range i of N\n"
      "                         (implies --stream; needs --checkpoint)\n"
      "  --merge <a,b,...>      fold N --process-shard checkpoints into the\n"
      "                         final stats instead of simulating\n"
      "output:\n"
      "  --csv <file>           write the scenario matrix as CSV\n"
      "  --json                 print a machine-readable JSON report "
      "instead of the tables\n"
      "  --metrics-out <file>   write obs metrics "
      "(counters/gauges/histograms) as JSON\n"
      "  --trace-out <file>     write a Chrome/Perfetto trace (virtual time "
      "for the fleet,\n"
      "                         wall clock for the DSE)\n");
}

struct Scenario {
  serving::ArrivalProcess process;
  serving::DispatchPolicy policy;
  serving::ServingStats stats;
};

/// Unwraps a parsed flag or exits with a clean error message.
template <typename T>
T flag_value(StatusOr<T> value) {
  if (!value.is_ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(*value);
}

/// --replay: sharded large-trace fleet replay (the serving_cli twin of
/// bench_serving --replay, so operators can trace/checkpoint production-
/// scale traces without building the benches). The whole replay — flags,
/// workload, banner, artifacts, exit codes (0 ok, 1 error, 3 cancelled via
/// --cancel-at) — is serving::run_replay_cli, shared with bench_serving and
/// serving_daemon; only the hardware search lives here.
int run_replay(const ArgParser& args) {
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  serving::ReplayJob job = flag_value(serving::replay_job_from_args(args));

  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  if (!model.is_ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().to_string().c_str());
    return 1;
  }
  dse::SearchSpec spec;
  spec.search.population = 100;
  spec.search.iterations = 12;
  spec.search.seed = 42;
  spec.control.threads = job.spec.fleet.threads;
  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  if (!outcome.is_ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().to_string().c_str());
    return 1;
  }
  const dse::SearchResult& search = outcome->search;
  const serving::ServiceModel service =
      serving::service_model_from_eval(search.config, search.eval);

  const int rc = serving::run_replay_cli(service, job);
  if (!obs_scope.finish()) return 1;
  return rc;
}

int run(const ArgParser& args) {
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  const auto users = static_cast<int>(flag_value(args.get_int("users", 2)));
  const double frame_rate = flag_value(args.get_double("frame-rate", 30.0));
  const double duration = flag_value(args.get_double("duration", 2.0));
  const auto seed =
      static_cast<std::uint64_t>(flag_value(args.get_int("seed", 42)));
  const auto instances =
      static_cast<int>(flag_value(args.get_int("instances", 4)));
  const double timeout_us = flag_value(args.get_double("timeout-us", 4000.0));
  // Default retarget cost: streaming another branch's weights in before the
  // pass (order of MBs over the platform DDR => a few hundred microseconds).
  const double switch_penalty_us =
      flag_value(args.get_double("switch-penalty-us", 500.0));
  const double sla_us =
      flag_value(args.get_double("sla-ms", 100.0 / 3.0)) * 1e3;
  const auto shards = static_cast<int>(flag_value(args.get_int("shards", 1)));
  // Percentile-bearing flags are validated up front: a bad rank is a clean
  // CLI error, never a crash inside the stats layer.
  const double tail_pct = flag_value(args.get_double("tail-pct", 99.0));
  if (Status s = serving::validate_percentile(tail_pct); !s.is_ok()) {
    std::fprintf(stderr, "error: --tail-pct: %s\n", s.message().c_str());
    return 1;
  }
  const bool emit_json = args.has("json");

  auto platform = arch::platform_by_name(args.get("platform", "zu9cg"));
  if (!platform.is_ok()) {
    std::fprintf(stderr, "error: %s\n", platform.status().to_string().c_str());
    return 1;
  }

  // Arrival processes and dispatch policies to cover.
  std::vector<serving::ArrivalProcess> processes;
  const std::string arrival = args.get("arrival", "both");
  if (arrival == "both") {
    processes = {serving::ArrivalProcess::kPoisson,
                 serving::ArrivalProcess::kBursty};
  } else {
    auto p = serving::arrival_process_by_name(arrival);
    if (!p.is_ok()) {
      std::fprintf(stderr, "error: %s\n", p.status().to_string().c_str());
      return 1;
    }
    processes = {*p};
  }
  std::vector<serving::DispatchPolicy> policies;
  const std::string policy = args.get("policy", "all");
  if (policy == "all") {
    policies = {serving::DispatchPolicy::kRoundRobin,
                serving::DispatchPolicy::kLeastLoaded,
                serving::DispatchPolicy::kBranchAffinity};
  } else {
    auto p = serving::dispatch_policy_by_name(policy);
    if (!p.is_ok()) {
      std::fprintf(stderr, "error: %s\n", p.status().to_string().c_str());
      return 1;
    }
    policies = {*p};
  }

  // 1. The decoder and the shared spec of its hardware search.
  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  if (!model.is_ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().to_string().c_str());
    return 1;
  }
  const dse::SearchDriver driver(*model, *platform);

  dse::SearchSpec spec;
  auto batches = args.get_int_list("batches");
  if (!batches.is_ok()) {
    std::fprintf(stderr, "error: %s\n", batches.status().to_string().c_str());
    return 1;
  }
  spec.customization.batch_sizes =
      batches->empty() ? std::vector<int>{1, 2, 2} : *batches;
  spec.search.population =
      static_cast<int>(flag_value(args.get_int("population", 100)));
  spec.search.iterations =
      static_cast<int>(flag_value(args.get_int("iterations", 12)));
  spec.search.seed = seed;
  spec.control.threads =
      static_cast<int>(flag_value(args.get_int("threads", 0)));

  serving::WorkloadOptions workload;
  workload.users = users;
  workload.frame_rate_hz = frame_rate;
  workload.duration_s = duration;
  workload.seed = seed;

  serving::FleetOptions fleet;
  fleet.instances = instances;
  fleet.shards = shards;
  fleet.batch_timeout_us = timeout_us;
  fleet.switch_penalty_us = switch_penalty_us;
  fleet.sla_bound_us = sla_us;
  fleet.progress_tail_pct = tail_pct;

  // 2. SLA-aware DSE mode: search batch scaling under the traffic spec.
  if (args.has("optimize")) {
    if (batches->empty()) {
      // Let the multiplier search own the batch axis: base ratio all-1
      // unless the user pinned explicit per-branch targets.
      spec.customization.batch_sizes.clear();
    }
    spec.kind = dse::SearchKind::kTraffic;
    spec.traffic.workload = workload;
    spec.traffic.fleet = fleet;
    // "all" is a sweep axis, not a policy; fall back to the fleet default.
    spec.traffic.fleet.policy = policy == "all"
                                    ? serving::DispatchPolicy::kLeastLoaded
                                    : policies.front();
    spec.traffic.workload.process = processes.front();
    spec.traffic.max_batch =
        static_cast<int>(flag_value(args.get_int("max-batch", 8)));
    spec.traffic.max_users =
        static_cast<int>(flag_value(args.get_int("max-users", 0)));
    spec.traffic.use_simulator = args.has("simulate");
    auto outcome = driver.run(spec);
    if (!outcome.is_ok()) {
      std::fprintf(stderr, "error: %s\n",
                   outcome.status().to_string().c_str());
      return 1;
    }
    const dse::TrafficSearchResult& result = outcome->traffic;
    std::string batch_str;
    for (int b : result.batch_sizes) {
      if (!batch_str.empty()) batch_str += ",";
      batch_str += std::to_string(b);
    }
    if (emit_json) {
      JsonWriter json;
      json.begin_object();
      json.key("schema_version").value(1);
      json.key("mode").value("traffic");
      json.key("platform").value(platform->name);
      json.key("arrival")
          .value(serving::to_string(spec.traffic.workload.process));
      json.key("policy").value(serving::to_string(spec.traffic.fleet.policy));
      json.key("instances").value(instances);
      json.key("shards").value(shards);
      json.key("users_requested").value(users);
      json.key("users_served").value(result.users_served);
      json.key("sla_met").value(result.sla_met);
      json.key("sla_fitness").value(result.sla_fitness);
      json.key("batch_sizes").begin_array();
      for (int b : result.batch_sizes) json.value(b);
      json.end_array();
      json.key("search").begin_object();
      json.key("fitness").value(result.search.fitness);
      json.key("feasible").value(result.search.feasible);
      json.key("min_fps").value(result.search.eval.min_fps);
      json.end_object();
      json.key("stats");
      serving::serving_stats_json(json, result.stats);
      json.end_object();
      std::printf("%s\n", json.str().c_str());
    } else {
      std::printf(
          "=== SLA-aware DSE (%s arrivals, %s dispatch, %d instance(s)) ===\n"
          "winning batch targets: {%s}   users served: %d (requested %d)   "
          "SLA met: %s\n"
          "sla fitness: %s   hardware fitness: %s   feasible: %s\n\n%s\n",
          serving::to_string(spec.traffic.workload.process),
          serving::to_string(spec.traffic.fleet.policy), instances,
          batch_str.c_str(), result.users_served, users,
          result.sla_met ? "yes" : "NO",
          format_fixed(result.sla_fitness, 3).c_str(),
          format_fixed(result.search.fitness, 1).c_str(),
          result.search.feasible ? "yes" : "no",
          serving::serving_report(result.stats).c_str());
    }
    // Success means the SLA held at (at least) the requested user count —
    // a degraded-but-passing run still signals 2.
    if (!obs_scope.finish()) return 1;
    return result.sla_met && result.users_served >= users ? 0 : 2;
  }

  // 3. Fixed-config mode: search once, then sweep arrival x policy.
  auto outcome = driver.run(spec);
  if (!outcome.is_ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status().to_string().c_str());
    return 1;
  }
  const dse::SearchResult& search = outcome->search;
  serving::ServiceModel service;
  if (args.has("simulate")) {
    const sim::SimResult simulated =
        sim::simulate(*model, search.config, *platform);
    service = serving::service_model_from_sim(search.config, simulated);
  } else {
    service = serving::service_model_from_eval(search.config, search.eval);
  }
  if (!emit_json) {
    std::printf(
        "=== serving the avatar decoder on %s (%d instance(s), %d users) "
        "===\n"
        "searched config: min %s FPS, %s efficient, feasible: %s\n"
        "service model: uniform-mix saturation %s req/s per instance "
        "(%s passes)\n\n",
        platform->name.c_str(), instances, users,
        format_fixed(search.eval.min_fps, 1).c_str(),
        format_percent(search.eval.efficiency, 1).c_str(),
        search.feasible ? "yes" : "no",
        format_fixed(service.peak_rps(), 0).c_str(),
        args.has("simulate") ? "cycle-simulated" : "analytical");
  }

  workload.branches = model->num_branches();
  std::vector<Scenario> scenarios;
  for (serving::ArrivalProcess process : processes) {
    serving::WorkloadOptions wl = workload;
    wl.process = process;
    auto requests = serving::generate_workload(wl);
    if (!requests.is_ok()) {
      std::fprintf(stderr, "error: %s\n",
                   requests.status().to_string().c_str());
      return 1;
    }
    for (serving::DispatchPolicy p : policies) {
      serving::ServeSpec scenario;
      scenario.fleet = fleet;
      scenario.fleet.policy = p;
      auto stats = serving::simulate_fleet(service, *requests, scenario);
      if (!stats.is_ok()) {
        std::fprintf(stderr, "error: %s\n",
                     stats.status().to_string().c_str());
        return 1;
      }
      scenarios.push_back({process, p, std::move(*stats)});
    }
  }

  if (emit_json) {
    JsonWriter json;
    json.begin_object();
    json.key("schema_version").value(1);
    json.key("mode").value("fixed");
    json.key("platform").value(platform->name);
    json.key("instances").value(instances);
    json.key("shards").value(shards);
    json.key("users").value(users);
    json.key("search").begin_object();
    json.key("fitness").value(search.fitness);
    json.key("feasible").value(search.feasible);
    json.key("min_fps").value(search.eval.min_fps);
    json.key("peak_rps_per_instance").value(service.peak_rps());
    json.end_object();
    json.key("scenarios").begin_array();
    for (const Scenario& s : scenarios) {
      json.begin_object();
      json.key("arrival").value(serving::to_string(s.process));
      json.key("policy").value(serving::to_string(s.policy));
      json.key("stats");
      serving::serving_stats_json(json, s.stats);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    std::printf("%s\n", json.str().c_str());
  } else {
    TablePrinter table({"Arrival", "Policy", "p50", "p95", "p99", "Max",
                        "Violations", "Util", "Fill"});
    for (const Scenario& s : scenarios) {
      table.add_row({serving::to_string(s.process),
                     serving::to_string(s.policy),
                     format_fixed(s.stats.latency.p50 * 1e-3, 2) + " ms",
                     format_fixed(s.stats.latency.p95 * 1e-3, 2) + " ms",
                     format_fixed(s.stats.latency.p99 * 1e-3, 2) + " ms",
                     format_fixed(s.stats.latency.max * 1e-3, 2) + " ms",
                     format_percent(s.stats.sla_violation_rate, 2),
                     format_percent(s.stats.fleet_utilization, 1),
                     format_percent(s.stats.mean_batch_fill, 1)});
    }
    std::printf("%s\n", table.to_string().c_str());

    // Detailed report of the best scenario by p99.
    const Scenario* best = &scenarios.front();
    for (const Scenario& s : scenarios) {
      if (s.stats.latency.p99 < best->stats.latency.p99) best = &s;
    }
    std::printf("--- best scenario: %s arrivals, %s dispatch ---\n%s\n",
                serving::to_string(best->process),
                serving::to_string(best->policy),
                serving::serving_report(best->stats).c_str());
  }

  if (args.has("csv")) {
    CsvWriter csv(serving::serving_csv_header({"arrival", "policy"}));
    for (const Scenario& s : scenarios) {
      csv.add_row(serving::serving_csv_row(
          {serving::to_string(s.process), serving::to_string(s.policy)},
          s.stats));
    }
    const std::string path = args.get("csv", "");
    if (!csv.write_file(path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 1;
    }
    if (!emit_json) std::printf("csv written to %s\n", path.c_str());
  }

  if (!obs_scope.finish()) return 1;
  bool all_met = true;
  for (const Scenario& s : scenarios) all_met &= s.stats.sla_met;
  return all_met ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  if (args->has("help")) {
    usage();
    return 0;
  }
  if (args->has("replay")) return run_replay(*args);
  return run(*args);
}
