// Ablations of F-CAD's design choices (our extension; DESIGN.md Sec. 3):
//   A. 3D vs 2D parallelism — drop the H-partition and watch the texture
//      branch starve (the DNNBuilder failure mode inside F-CAD's own DSE).
//   B. Variance penalty alpha — branch-FPS balance vs raw weighted sum.
//   C. Branch priority — biasing resources toward the texture branch.
//   D. Population size — search quality at P = 10/50/200.
#include <cstdio>
#include <string>
#include <vector>

#include "arch/datapath.hpp"
#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "baselines/soc865.hpp"
#include "dse/search_driver.hpp"
#include "dse/strategy.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace fcad;

int g_threads = 0;  ///< DSE pool size from --threads (0 = all cores)

/// One strategy-ablation row, kept for the --csv/--json twins of section E.
struct StrategyRow {
  std::string strategy;
  double fitness = 0;
  double min_fps = 0;
  bool feasible = false;
  std::int64_t evaluations = 0;
};
std::vector<StrategyRow> g_strategy_rows;

/// One joint datapath x batch-scale grid point (section H), kept for the
/// --json twin.
struct DatapathRow {
  std::string datapath;
  int batch_scale = 1;
  double min_fps = 0;
  int dsps = 0;
  int luts = 0;
  double accuracy_proxy = 0;
  bool pareto = false;
  bool feasible = false;
};
std::vector<DatapathRow> g_datapath_rows;

dse::SearchSpec base_spec() {
  dse::SearchSpec spec;
  spec.customization.quantization = nn::DataType::kInt8;
  spec.customization.batch_sizes = {1, 2, 2};
  spec.search.population = 100;
  spec.search.iterations = 15;
  spec.search.seed = 99;
  spec.search.threads = g_threads;
  return spec;
}

std::string fps_cell(const arch::AcceleratorEval& eval) {
  std::string out = "{";
  for (std::size_t b = 0; b < eval.branches.size(); ++b) {
    if (b) out += ", ";
    out += format_fixed(eval.branches[b].fps, 1);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  auto threads_flag = args->get_int("threads", 0);
  if (!threads_flag.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 threads_flag.status().to_string().c_str());
    return 1;
  }
  g_threads = static_cast<int>(*threads_flag);
  const std::string csv_path = args->get("csv", "");
  const std::string json_path = args->get("json", "");

  std::printf("=== Ablations on ZU9CG (8-bit) ===\n\n");
  nn::Graph decoder = nn::zoo::avatar_decoder();
  auto model = arch::reorganize(decoder);
  FCAD_CHECK_MSG(model.is_ok(), model.status().message());
  const arch::Platform zu9cg = arch::platform_zu9cg();
  const dse::SearchDriver driver(*model, zu9cg);
  auto run_search = [&](const dse::SearchSpec& spec) {
    auto outcome = driver.run(spec);
    FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
    return std::move(outcome->search);
  };

  // --- A: 3D parallelism value ------------------------------------------
  {
    std::printf("--- A. 3D parallelism (H-partition) ---\n");
    // 2D variant: clamp every stage's H-partition to 1 by capping max_h via
    // a copy of the model with out_h-restricted stages is invasive; instead
    // exploit that the bottleneck stages' InCh*OutCh cap what 2D can do:
    // report the theoretical 2D ceiling next to the 3D search result.
    const dse::SearchResult result = run_search(base_spec());

    // 2D ceiling of the texture branch: slowest stage at pf = InCh*OutCh.
    const arch::BranchPipeline& br2 = model->branches[1];
    double worst_fps = 1e300;
    const arch::FusedStage* worst = nullptr;
    for (int s : br2.stages) {
      const arch::FusedStage& st = model->stage(s);
      const double lanes = static_cast<double>(st.max_cpf()) * st.max_kpf();
      const double fps = zu9cg.freq_mhz * 1e6 * lanes /
                         static_cast<double>(st.macs);
      if (fps < worst_fps) {
        worst_fps = fps;
        worst = &st;
      }
    }
    std::printf("3D search, Br.2 FPS: %s (batch 2)\n",
                format_fixed(result.eval.branches[1].fps, 1).c_str());
    std::printf("2D ceiling, Br.2 FPS: %s per copy — capped by %s "
                "(InCh x OutCh = %d), independent of budget\n\n",
                format_fixed(worst_fps, 1).c_str(),
                worst ? worst->name.c_str() : "?",
                worst ? worst->max_cpf() * worst->max_kpf() : 0);
  }

  // --- B: variance penalty ------------------------------------------------
  {
    std::printf("--- B. variance penalty alpha ---\n");
    TablePrinter t({"alpha", "branch FPS", "min FPS", "fitness"});
    for (double alpha : {0.0, 0.05, 0.5, 5.0}) {
      dse::SearchSpec spec = base_spec();
      spec.search.fitness.alpha = alpha;
      const dse::SearchResult result = run_search(spec);
      t.add_row({format_fixed(alpha, 2), fps_cell(result.eval),
                 format_fixed(result.eval.min_fps, 1),
                 format_fixed(result.fitness, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // --- C: branch priority --------------------------------------------------
  {
    std::printf("--- C. branch priority (texture-heavy vs equal) ---\n");
    TablePrinter t({"priorities", "branch FPS", "Br.2 DSPs"});
    const std::vector<std::vector<double>> prios = {
        {1, 1, 1}, {1, 4, 1}, {4, 1, 1}};
    for (const auto& p : prios) {
      dse::SearchSpec spec = base_spec();
      spec.customization.priorities = p;
      const dse::SearchResult result = run_search(spec);
      std::string label = "{";
      for (std::size_t j = 0; j < p.size(); ++j) {
        if (j) label += ',';
        label += format_fixed(p[j], 0);
      }
      label += '}';
      t.add_row({label, fps_cell(result.eval),
                 std::to_string(result.eval.branches[1].dsps)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // --- D: population size ---------------------------------------------------
  {
    std::printf("--- D. population size ---\n");
    TablePrinter t({"P", "fitness", "min FPS", "seconds"});
    for (int population : {10, 50, 200}) {
      dse::SearchSpec spec = base_spec();
      spec.search.population = population;
      const dse::SearchResult result = run_search(spec);
      t.add_row({std::to_string(population), format_fixed(result.fitness, 1),
                 format_fixed(result.eval.min_fps, 1),
                 format_fixed(result.seconds, 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // --- E: search strategy ---------------------------------------------------
  // Every registered strategy (built-ins plus any custom registrations)
  // through the one SearchDriver entry point, same evaluation budget.
  {
    std::printf("--- E. search strategy (equal evaluation budget) ---\n");
    TablePrinter t({"strategy", "fitness", "branch FPS", "feasible",
                    "evaluations"});
    for (const std::string& strategy : dse::registered_strategy_names()) {
      dse::SearchSpec spec = base_spec();
      spec.strategy = strategy;
      const dse::SearchResult result = run_search(spec);
      t.add_row({strategy, format_fixed(result.fitness, 1),
                 fps_cell(result.eval), result.feasible ? "yes" : "no",
                 std::to_string(result.trace.evaluations)});
      g_strategy_rows.push_back(
          {strategy, result.fitness, result.eval.min_fps, result.feasible,
           result.trace.evaluations});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // --- F: SoC cache sensitivity (the Table-II mechanism) --------------------
  {
    std::printf("--- F. 865-class SoC cache sensitivity ---\n");
    TablePrinter t({"cache (MiB)", "FPS", "efficiency", "memory-bound layers"});
    for (double cache_mib : {1.0, 2.0, 4.0, 8.0, 32.0}) {
      baselines::Soc865Params params;
      params.cache_mib = cache_mib;
      const auto r = baselines::run_soc865(*model, params);
      int bound = 0;
      for (const auto& lt : r.layers) bound += lt.memory_bound;
      t.add_row({format_fixed(cache_mib, 0), format_fixed(r.fps, 1),
                 format_percent(r.efficiency, 1), std::to_string(bound)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("shape to check: the Sec.-III claim — the SoC's FPS is gated\n"
                "by cache capacity, not MACs; a server-class cache would make\n"
                "it compute-bound.\n\n");
  }

  // --- G: maximum feasible batch (Sec. I customization) ---------------------
  {
    std::printf("--- G. maximum feasible batch per branch (ZU9CG) ---\n");
    TablePrinter t({"branch", "others pinned at", "max batch"});
    for (int branch = 0; branch < model->num_branches(); ++branch) {
      dse::SearchSpec spec = base_spec();
      spec.kind = dse::SearchKind::kMaxBatch;
      spec.search.population = 60;
      spec.search.iterations = 8;
      spec.batch_branch = branch;
      spec.batch_probe_limit = 8;
      auto outcome = driver.run(spec);
      FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
      t.add_row({model->branches[static_cast<std::size_t>(branch)].role,
                 "{1,2,2}", std::to_string(outcome->max_batch)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // --- H: joint precision x MAC microarchitecture x batch ------------------
  // Every registered arch::Datapath crossed with batch scaling, one kSweep
  // run — the datapath axis as a first-class ablation: how much throughput
  // each precision/microarchitecture point buys, and at what accuracy proxy.
  {
    std::printf("--- H. datapath (precision x MAC style) x batch scale ---\n");
    dse::SearchSpec spec = base_spec();
    spec.kind = dse::SearchKind::kSweep;
    spec.search.population = 60;
    spec.search.iterations = 8;
    spec.sweep.datapaths = arch::registered_datapath_names();
    spec.sweep.frequencies_mhz = {zu9cg.freq_mhz};
    spec.sweep.batch_scales = {1, 2};
    auto outcome = driver.run(spec);
    FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
    TablePrinter t({"datapath", "scale", "min FPS", "DSPs", "LUTs",
                    "acc proxy", "pareto", "feasible"});
    for (const dse::SweepPoint& point : outcome->sweep) {
      const arch::AcceleratorEval& eval = point.result.eval;
      t.add_row({point.datapath, std::to_string(point.batch_scale),
                 format_fixed(eval.min_fps, 1), std::to_string(eval.dsps),
                 std::to_string(eval.luts),
                 format_fixed(eval.accuracy_proxy, 3),
                 point.pareto_optimal ? "*" : "",
                 point.result.feasible ? "yes" : "no"});
      g_datapath_rows.push_back({point.datapath, point.batch_scale,
                                 eval.min_fps, eval.dsps, eval.luts,
                                 eval.accuracy_proxy, point.pareto_optimal,
                                 point.result.feasible});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  // Machine-readable twins of section E (the strategy ablation), one row
  // per registered strategy — the same schema family the CLIs ship
  // (schema_version + typed fields).
  if (!csv_path.empty()) {
    CsvWriter csv({"strategy", "fitness", "min_fps", "feasible",
                   "evaluations"});
    for (const StrategyRow& row : g_strategy_rows) {
      csv.add_row({row.strategy, format_fixed(row.fitness, 3),
                   format_fixed(row.min_fps, 3),
                   std::to_string(row.feasible ? 1 : 0),
                   std::to_string(row.evaluations)});
    }
    if (!csv.write_file(csv_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("schema_version").value(1);
    json.key("bench").value("ablation");
    json.key("strategies").begin_array();
    for (const StrategyRow& row : g_strategy_rows) {
      json.begin_object();
      json.key("strategy").value(row.strategy);
      json.key("fitness").value(row.fitness);
      json.key("min_fps").value(row.min_fps);
      json.key("feasible").value(row.feasible);
      json.key("evaluations").value(row.evaluations);
      json.end_object();
    }
    json.end_array();
    json.key("datapaths").begin_array();
    for (const DatapathRow& row : g_datapath_rows) {
      json.begin_object();
      json.key("datapath").value(row.datapath);
      json.key("batch_scale").value(row.batch_scale);
      json.key("min_fps").value(row.min_fps);
      json.key("dsps").value(row.dsps);
      json.key("luts").value(row.luts);
      json.key("accuracy_proxy").value(row.accuracy_proxy);
      json.key("pareto").value(row.pareto);
      json.key("feasible").value(row.feasible);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
