// Scalability study (our extension): Sec. VI-A observes that each extra
// branch or layer raises the dimensionality of the multi-branch dynamic
// design space. This bench sweeps synthetic decoders with 1-6 branches and
// reports space dimensionality, DSE runtime, and the result quality, showing
// the divide-and-conquer search stays tractable as decoders grow.
#include <cstdio>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/scaled_decoder.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  std::printf("=== DSE scalability vs branch count (ZU9CG, 8-bit) ===\n\n");
  TablePrinter t({"branches", "stages", "space dims", "log10 |space|",
                  "DSE s", "evals", "min FPS", "feasible"});
  for (int branches = 1; branches <= 6; ++branches) {
    nn::zoo::ScaledDecoderSpec spec;
    spec.branches = branches;
    spec.width = 0.75;
    nn::Graph graph = nn::zoo::scaled_decoder(spec);
    auto model = arch::reorganize(graph);
    FCAD_CHECK_MSG(model.is_ok(), model.status().message());

    const dse::DesignSpaceStats stats = dse::design_space_stats(*model);

    dse::SearchSpec search_spec;
    search_spec.customization.quantization = nn::DataType::kInt8;
    search_spec.search.population = 100;
    search_spec.search.iterations = 12;
    search_spec.search.seed = 31;
    auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg())
                       .run(search_spec);
    FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
    const dse::SearchResult* result = &outcome->search;

    t.add_row({std::to_string(branches), std::to_string(stats.stages),
               std::to_string(stats.dimensions),
               format_fixed(stats.log10_configs, 1),
               format_fixed(result->seconds, 2),
               std::to_string(result->trace.evaluations),
               format_fixed(result->eval.min_fps, 1),
               result->feasible ? "yes" : "no"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "shape to check: the discrete space grows by orders of magnitude per\n"
      "branch while DSE runtime grows only linearly (the cross-branch /\n"
      "in-branch decomposition is what keeps it tractable).\n");
  return 0;
}
