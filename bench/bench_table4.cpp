// Table IV — F-CAD generated accelerators for codec avatar decoding: five
// cases (Z7045 8-bit; ZU17EG 8/16-bit; ZU9CG 8/16-bit), customized batch
// {1, 2, 2} (Br.2/3 render one HD texture per eye), N=20 iterations, P=200
// candidates, as in Sec. VII.
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "nn/zoo/avatar_decoder.hpp"

int main() {
  using namespace fcad;

  std::printf("=== Table IV: F-CAD generated accelerators ===\n\n");

  struct Case {
    const char* name;
    arch::Platform platform;
    nn::DataType dtype;
  };
  const std::vector<Case> cases = {
      {"Case 1: Z7045 (8-bit)", arch::platform_z7045(), nn::DataType::kInt8},
      {"Case 2: ZU17EG (8-bit)", arch::platform_zu17eg(), nn::DataType::kInt8},
      {"Case 3: ZU17EG (16-bit)", arch::platform_zu17eg(),
       nn::DataType::kInt16},
      {"Case 4: ZU9CG (8-bit)", arch::platform_zu9cg(), nn::DataType::kInt8},
      {"Case 5: ZU9CG (16-bit)", arch::platform_zu9cg(), nn::DataType::kInt16},
  };

  for (const Case& c : cases) {
    core::PipelineOptions options;
    options.spec.customization.quantization = c.dtype;
    options.spec.customization.batch_sizes = {1, 2, 2};
    options.spec.search.population = 200;  // P
    options.spec.search.iterations = 20;   // N
    options.spec.search.seed = 20210308;   // fixed for reproducibility
    options.run_simulation = true;

    core::Pipeline pipeline(nn::zoo::avatar_decoder(), c.platform);
    auto result = pipeline.run(options);
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s failed: %s\n", c.name,
                   result.status().to_string().c_str());
      return 1;
    }
    std::printf("%s\n", core::case_report(c.name, *result, c.platform).c_str());
  }

  std::printf(
      "paper reference (per-branch FPS / overall util / DSE s):\n"
      "  Case 1: {61.0, 30.5, 61.0}  81.8%% DSP  101.8 s\n"
      "  Case 2: {122.1, 61.0, 122.1}  83.5%% DSP  77.3 s\n"
      "  Case 3: {61.0, 30.5, 15.3}  81.8%% DSP  82.8 s\n"
      "  Case 4: {122.1, 122.1, 122.1}  88.5%% DSP  56.9 s\n"
      "  Case 5: {61.0, 61.0, 61.0}  87.8%% DSP  67.6 s\n"
      "shape to check: FPS roughly doubles Z7045 -> ZU9CG, 16-bit runs at\n"
      "about half the 8-bit rate, budgets respected, high efficiency.\n");
  return 0;
}
