// Table I — network architecture of the targeted decoder: per-branch
// structure, GOP, and parameter distribution, plus the paper's headline
// demand numbers and the per-layer listing behind them.
#include <cstdio>

#include "analysis/report.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/format.hpp"

int main() {
  using namespace fcad;

  std::printf("=== Table I: network architecture of the targeted decoder ===\n\n");
  nn::Graph decoder = nn::zoo::avatar_decoder();
  analysis::GraphProfile profile = analysis::profile_graph(decoder);
  auto branches = analysis::decompose(decoder, profile);
  if (!branches.is_ok()) {
    std::fprintf(stderr, "%s\n", branches.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n",
              analysis::branch_summary(decoder, profile, *branches).c_str());
  std::printf(
      "paper reference: Br.1 1.9 GOP (10.5%%) / 1.1M (12.1%%); "
      "Br.2 11.3 GOP (62.4%%) / 6.1M (67.0%%); "
      "Br.3 4.9 GOP (27.1%%) / 1.9M (20.9%%)\n\n");

  std::printf("--- mimic decoder (tied-bias Conv, used by the baselines) ---\n");
  nn::Graph mimic = nn::zoo::mimic_decoder();
  analysis::GraphProfile mimic_profile = analysis::profile_graph(mimic);
  const double delta =
      1.0 - static_cast<double>(mimic_profile.total_ops) /
                static_cast<double>(profile.total_ops);
  std::printf("mimic: %s GOP, %s parameters (%.2f%% fewer ops than the "
              "customized decoder)\n\n",
              format_fixed(mimic_profile.total_ops * 1e-9, 2).c_str(),
              format_count(static_cast<double>(mimic_profile.total_params), 2)
                  .c_str(),
              delta * 100.0);

  std::printf("--- per-layer listing (targeted decoder) ---\n%s",
              analysis::layer_listing(decoder, profile).c_str());
  return 0;
}
