// Table V — comparison against DNNBuilder and HybridDNN on the same ZU9CG
// budget, batch uniformly 1 (the baselines do not support differentiated
// batching). Baselines run the mimic decoder, F-CAD the real one.
#include <cstdio>
#include <string>

#include "arch/platform.hpp"
#include "baselines/dnnbuilder.hpp"
#include "baselines/hybriddnn.hpp"
#include "core/pipeline.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  std::printf("=== Table V: comparison on ZU9CG @200 MHz ===\n\n");
  const arch::Platform zu9cg = arch::platform_zu9cg();

  nn::Graph mimic = nn::zoo::mimic_decoder();
  auto mimic_model = arch::reorganize(mimic);
  if (!mimic_model.is_ok()) {
    std::fprintf(stderr, "%s\n", mimic_model.status().to_string().c_str());
    return 1;
  }

  const baselines::DnnBuilderResult dnnb =
      baselines::run_dnnbuilder(*mimic_model, zu9cg, nn::DataType::kInt8);
  const baselines::HybridDnnResult hybrid =
      baselines::run_hybriddnn(*mimic_model, zu9cg, nn::DataType::kInt16);

  auto run_fcad = [&](nn::DataType dtype) {
    core::PipelineOptions options;
    options.spec.customization.quantization = dtype;
    options.spec.customization.batch_sizes = {1, 1, 1};  // fair batch
    options.spec.search.population = 200;
    options.spec.search.iterations = 20;
    options.spec.search.seed = 20210308;
    core::Pipeline pipeline(nn::zoo::avatar_decoder(), zu9cg);
    auto result = pipeline.run(options);
    FCAD_CHECK_MSG(result.is_ok(), result.status().message());
    return result.value().search.eval;
  };
  const arch::AcceleratorEval fcad8 = run_fcad(nn::DataType::kInt8);
  const arch::AcceleratorEval fcad16 = run_fcad(nn::DataType::kInt16);

  TablePrinter t(
      {"", "DNNBuilder", "HybridDNN", "F-CAD (8-bit)", "F-CAD (16-bit)"});
  t.add_row({"Precision", "8-bit", "16-bit", "8-bit", "16-bit"});
  t.add_row({"DSP", std::to_string(dnnb.dsps), std::to_string(hybrid.dsps),
             std::to_string(fcad8.dsps), std::to_string(fcad16.dsps)});
  t.add_row({"BRAM", std::to_string(dnnb.brams), std::to_string(hybrid.brams),
             std::to_string(fcad8.brams), std::to_string(fcad16.brams)});
  t.add_row({"FPS", format_fixed(dnnb.fps, 1), format_fixed(hybrid.fps, 1),
             format_fixed(fcad8.min_fps, 1), format_fixed(fcad16.min_fps, 1)});
  t.add_row({"Efficiency", format_percent(dnnb.efficiency, 1),
             format_percent(hybrid.efficiency, 1),
             format_percent(fcad8.efficiency, 1),
             format_percent(fcad16.efficiency, 1)});
  std::printf("%s\n", t.to_string().c_str());

  const double speedup8 = dnnb.fps > 0 ? fcad8.min_fps / dnnb.fps : 0;
  const double speedup16 = hybrid.fps > 0 ? fcad16.min_fps / hybrid.fps : 0;
  std::printf("F-CAD vs DNNBuilder (8-bit): %.1fx throughput, +%.1f pp "
              "efficiency\n",
              speedup8, (fcad8.efficiency - dnnb.efficiency) * 100.0);
  std::printf("F-CAD vs HybridDNN (16-bit): %.1fx throughput, +%.1f pp "
              "efficiency\n\n",
              speedup16, (fcad16.efficiency - hybrid.efficiency) * 100.0);
  std::printf(
      "paper reference: DNNBuilder 1820 DSP / 30.5 FPS / 28.8%%; HybridDNN\n"
      "1024 DSP / 22.0 FPS / 70.4%%; F-CAD 2229 DSP / 122.1 FPS / 91.3%%\n"
      "(8-bit) and 2213 DSP / 61.0 FPS / 91.6%% (16-bit) -> 4.0x and 2.8x.\n");
  return 0;
}
