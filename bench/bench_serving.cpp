// Serving-scale sweep on the Table I avatar decoder: users x fleet size x
// SLA bound, Poisson arrivals at 30 Hz per user, least-loaded dispatch.
// Emits the full matrix as CSV (bench_serving.csv, or --csv <path>) for
// plotting capacity curves; prints the 33 ms frame-budget slice as a table.
#include <cstdio>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "serving/fleet.hpp"
#include "serving/service.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fcad;

  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  const std::string csv_path = args->get("csv", "bench_serving.csv");
  auto threads_flag = args->get_int("threads", 0);
  if (!threads_flag.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 threads_flag.status().to_string().c_str());
    return 1;
  }
  const auto threads = static_cast<int>(*threads_flag);

  std::printf("=== serving sweep: users x fleet x SLA (avatar decoder) ===\n\n");

  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  FCAD_CHECK_MSG(model.is_ok(), model.status().message());

  // One hardware search (batch 1 per branch on the ZU9CG budget); the sweep
  // varies the serving layer on top of the resulting service model.
  dse::SearchSpec spec;
  spec.search.population = 100;
  spec.search.iterations = 12;
  spec.search.seed = 42;
  spec.control.threads = threads;
  auto outcome = dse::SearchDriver(*model, arch::platform_zu9cg()).run(spec);
  FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
  const dse::SearchResult* search = &outcome->search;
  const serving::ServiceModel service =
      serving::service_model_from_eval(search->config, search->eval);
  std::printf(
      "searched config: min %s FPS, uniform-mix saturation %s req/s per "
      "instance\n\n",
      format_fixed(search->eval.min_fps, 1).c_str(),
      format_fixed(service.peak_rps(), 0).c_str());

  const std::vector<int> user_counts = {1, 2, 4, 8, 16, 32};
  const std::vector<int> fleet_sizes = {1, 2, 4, 8};
  const std::vector<double> sla_bounds_us = {16666.7, 33333.3, 66666.7};

  CsvWriter csv(serving::serving_csv_header({"users", "instances"}));
  TablePrinter table({"Users", "Instances", "p99", "Violations", "Util",
                      "SLA 33ms"});
  for (int users : user_counts) {
    serving::WorkloadOptions workload;
    workload.users = users;
    workload.branches = model->num_branches();
    workload.frame_rate_hz = 30;
    workload.duration_s = 2.0;
    workload.seed = 42;
    auto requests = serving::generate_workload(workload);
    FCAD_CHECK_MSG(requests.is_ok(), requests.status().message());

    for (int instances : fleet_sizes) {
      for (double sla_us : sla_bounds_us) {
        serving::FleetOptions fleet;
        fleet.instances = instances;
        fleet.policy = serving::DispatchPolicy::kLeastLoaded;
        fleet.switch_penalty_us = 500;
        fleet.sla_bound_us = sla_us;
        auto stats = serving::simulate_fleet(service, *requests, fleet);
        FCAD_CHECK_MSG(stats.is_ok(), stats.status().message());

        csv.add_row(serving::serving_csv_row(
            {std::to_string(users), std::to_string(instances)}, *stats));
        if (sla_us > 30000 && sla_us < 40000) {
          table.add_row({std::to_string(users), std::to_string(instances),
                         format_fixed(stats->latency.p99 * 1e-3, 2) + " ms",
                         format_percent(stats->sla_violation_rate, 2),
                         format_percent(stats->fleet_utilization, 1),
                         stats->sla_met ? "met" : "MISSED"});
        }
      }
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  if (!csv.write_file(csv_path)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
    return 1;
  }
  std::printf("full matrix (%zu rows) written to %s\n",
              static_cast<std::size_t>(user_counts.size() *
                                       fleet_sizes.size() *
                                       sla_bounds_us.size()),
              csv_path.c_str());
  std::printf(
      "shape to check: p99 collapses once offered load crosses the fleet's "
      "uniform-mix saturation; doubling the fleet roughly doubles the "
      "feasible user count.\n");
  return 0;
}
