// Serving benches on the Table I avatar decoder, three modes:
//
//   bench_serving
//     Classic users x fleet x SLA sweep (Poisson arrivals at 30 Hz per
//     user, least-loaded dispatch). Emits the full matrix as CSV
//     (bench_serving.csv, or --csv <path>); prints the 33 ms frame-budget
//     slice as a table.
//
//   bench_serving --replay <requests> [--shards S] [--threads T]
//                 [--checkpoint <file>] [--cancel-at <frac>]
//                 [--scenario <spec>] [--elastic <spec>]
//     Large-trace sharded replay: searches the hardware once, then replays
//     a million-request-scale Poisson trace across a statically sharded
//     fleet. Stats are bit-identical for any --threads at a fixed shard
//     count (CSV/JSON outputs carry only deterministic fields; wall time
//     goes to stdout). --checkpoint enables per-shard checkpointing;
//     --cancel-at f cancels via RunControl once f of the requests
//     completed (exit code 3), and a rerun with the same flags resumes
//     from the checkpoint to the same final stats. --scenario shapes the
//     trace (diurnal drift, flash crowds, churn, instance faults) and
//     --elastic layers the autoscale/reshard policy on the fleet; both are
//     deterministic and fold into the checkpoint fingerprint.
//
//   bench_serving --replay <requests> --stream [--latency-mode sketch]
//                 [--process-shard i/N] / bench_serving --replay <requests>
//                 --merge <a,b,...>
//     Billion-request path: --stream generates each shard's arrivals
//     lazily (the workload vector never exists), --latency-mode sketch
//     swaps exact latency streams for mergeable quantile sketches (O(1)
//     memory per shard, quantiles within 0.1% relative error), and
//     --process-shard i/N splits the shard ranges across N independent
//     processes whose binary v2 checkpoints --merge folds into stats
//     bit-identical to the single-process run.
//
//   bench_serving --traffic-cache <dir>
//     Runs an SLA-aware kTraffic search through core::Pipeline with the
//     spec-hash artifact cache under <dir>: the first run searches and
//     writes the artifact, a second identical run must be a cache hit with
//     bit-identical stats (the --json report carries the hit/miss
//     counters for CI to assert).
#include <cstdio>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "core/pipeline.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "obs/export.hpp"
#include "serving/fleet.hpp"
#include "serving/replay.hpp"
#include "serving/service.hpp"
#include "serving/stats.hpp"
#include "serving/workload.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/run_control.hpp"
#include "util/table.hpp"

namespace {

using namespace fcad;

/// Unwraps a parsed flag or exits with a clean error message.
template <typename T>
T flag_value(StatusOr<T> value) {
  if (!value.is_ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(*value);
}

/// One small hardware search shared by every mode (batch {1,2,2} on the
/// ZU9CG budget), returning the winning search result.
dse::SearchResult search_decoder(const arch::ReorganizedModel& model,
                                 int threads, int population, int iterations,
                                 std::uint64_t seed) {
  dse::SearchSpec spec;
  spec.search.population = population;
  spec.search.iterations = iterations;
  spec.search.seed = seed;
  spec.control.threads = threads;
  auto outcome = dse::SearchDriver(model, arch::platform_zu9cg()).run(spec);
  FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
  return std::move(outcome)->search;
}

int run_replay(const ArgParser& args) {
  // --metrics-out / --trace-out export the obs registry and a Perfetto
  // trace; neither touches the CSV/JSON outputs CI diffs for bit-identity.
  // The replay itself — flags, workload, banner, artifacts, exit codes —
  // is serving::run_replay_cli, shared with serving_cli and serving_daemon;
  // only the hardware search lives here.
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  serving::ReplayJob job = flag_value(serving::replay_job_from_args(args));

  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  FCAD_CHECK_MSG(model.is_ok(), model.status().message());
  const dse::SearchResult search = search_decoder(
      *model, job.spec.fleet.threads, 100, 12, /*seed=*/42);
  const serving::ServiceModel service =
      serving::service_model_from_eval(search.config, search.eval);

  const int rc = serving::run_replay_cli(service, job);
  if (!obs_scope.finish()) return 1;
  return rc;
}

int run_traffic_cache(const ArgParser& args) {
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  const std::string cache_dir = args.get("traffic-cache", "");
  const auto threads =
      static_cast<int>(flag_value(args.get_int("threads", 0)));

  dse::SearchSpec spec;
  spec.kind = dse::SearchKind::kTraffic;
  spec.search.population = 60;
  spec.search.iterations = 8;
  spec.search.seed = 42;
  spec.control.threads = threads;
  spec.traffic.workload.users = 2;
  spec.traffic.workload.frame_rate_hz = 30;
  spec.traffic.workload.duration_s = 0.5;
  spec.traffic.workload.seed = 42;
  spec.traffic.fleet.instances = 2;
  spec.traffic.fleet.batch_timeout_us = 4000;
  spec.traffic.max_batch = 2;

  core::Pipeline pipeline(nn::zoo::avatar_decoder(), arch::platform_zu9cg());
  pipeline.set_artifact_cache_dir(cache_dir);
  std::printf("=== kTraffic search via the artifact cache (%s) ===\n",
              cache_dir.c_str());
  if (Status s = pipeline.optimize(spec); !s.is_ok()) {
    std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
    return 1;
  }
  const dse::TrafficSearchResult& result =
      pipeline.search()->outcome.traffic;
  std::printf("artifact cache: %d hit(s), %d miss(es)\n",
              pipeline.artifact_cache_hits(), pipeline.artifact_cache_misses());
  std::printf("users served: %d   SLA met: %s   sla fitness: %s\n",
              result.users_served, result.sla_met ? "yes" : "no",
              format_fixed(result.sla_fitness, 3).c_str());

  if (args.has("json")) {
    JsonWriter json;
    json.begin_object();
    json.key("schema_version").value(1);
    json.key("bench").value("serving_traffic_cache");
    json.key("cache_hits").value(pipeline.artifact_cache_hits());
    json.key("cache_misses").value(pipeline.artifact_cache_misses());
    json.key("cache_key").value(pipeline.artifact_cache_key(spec));
    json.key("users_served").value(result.users_served);
    json.key("sla_met").value(result.sla_met);
    json.key("sla_fitness").value(result.sla_fitness);
    json.key("batch_sizes").begin_array();
    for (int b : result.batch_sizes) json.value(b);
    json.end_array();
    json.key("stats");
    serving::serving_stats_json(json, result.stats);
    json.end_object();
    const std::string path = args.get("json", "");
    if (!json.write_file(path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 1;
    }
  }
  return obs_scope.finish() ? 0 : 1;
}

int run_sweep(const ArgParser& args) {
  obs::ObservationScope obs_scope(args.get("metrics-out", ""),
                                  args.get("trace-out", ""));
  const std::string csv_path = args.get("csv", "bench_serving.csv");
  const auto threads =
      static_cast<int>(flag_value(args.get_int("threads", 0)));

  std::printf("=== serving sweep: users x fleet x SLA (avatar decoder) ===\n\n");

  auto model = arch::reorganize(nn::zoo::avatar_decoder());
  FCAD_CHECK_MSG(model.is_ok(), model.status().message());

  // One hardware search (batch 1 per branch on the ZU9CG budget); the sweep
  // varies the serving layer on top of the resulting service model.
  const dse::SearchResult search = search_decoder(*model, threads, 100, 12,
                                                  /*seed=*/42);
  const serving::ServiceModel service =
      serving::service_model_from_eval(search.config, search.eval);
  std::printf(
      "searched config: min %s FPS, uniform-mix saturation %s req/s per "
      "instance\n\n",
      format_fixed(search.eval.min_fps, 1).c_str(),
      format_fixed(service.peak_rps(), 0).c_str());

  const std::vector<int> user_counts = {1, 2, 4, 8, 16, 32};
  const std::vector<int> fleet_sizes = {1, 2, 4, 8};
  const std::vector<double> sla_bounds_us = {16666.7, 33333.3, 66666.7};

  CsvWriter csv(serving::serving_csv_header({"users", "instances"}));
  TablePrinter table({"Users", "Instances", "p99", "Violations", "Util",
                      "SLA 33ms"});
  for (int users : user_counts) {
    serving::WorkloadOptions workload;
    workload.users = users;
    workload.branches = model->num_branches();
    workload.frame_rate_hz = 30;
    workload.duration_s = 2.0;
    workload.seed = 42;
    auto requests = serving::generate_workload(workload);
    FCAD_CHECK_MSG(requests.is_ok(), requests.status().message());

    for (int instances : fleet_sizes) {
      for (double sla_us : sla_bounds_us) {
        serving::ServeSpec spec;
        spec.fleet.instances = instances;
        spec.fleet.policy = serving::DispatchPolicy::kLeastLoaded;
        spec.fleet.switch_penalty_us = 500;
        spec.sla.p99_bound_us = sla_us;
        auto stats = serving::simulate_fleet(service, *requests, spec);
        FCAD_CHECK_MSG(stats.is_ok(), stats.status().message());

        csv.add_row(serving::serving_csv_row(
            {std::to_string(users), std::to_string(instances)}, *stats));
        if (sla_us > 30000 && sla_us < 40000) {
          table.add_row({std::to_string(users), std::to_string(instances),
                         format_fixed(stats->latency.p99 * 1e-3, 2) + " ms",
                         format_percent(stats->sla_violation_rate, 2),
                         format_percent(stats->fleet_utilization, 1),
                         stats->sla_met ? "met" : "MISSED"});
        }
      }
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  if (!csv.write_file(csv_path)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
    return 1;
  }
  std::printf("full matrix (%zu rows) written to %s\n",
              static_cast<std::size_t>(user_counts.size() *
                                       fleet_sizes.size() *
                                       sla_bounds_us.size()),
              csv_path.c_str());
  std::printf(
      "shape to check: p99 collapses once offered load crosses the fleet's "
      "uniform-mix saturation; doubling the fleet roughly doubles the "
      "feasible user count.\n");
  return obs_scope.finish() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  if (args->has("replay")) return run_replay(*args);
  if (args->has("traffic-cache")) return run_traffic_cache(*args);
  return run_sweep(*args);
}
