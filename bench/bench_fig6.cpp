// Fig. 6 — FPS estimation error of the analytical model against the
// cycle-level "board" for the eight calibration benchmarks on KU115.
#include <cstdio>

#include "core/calibration.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  std::printf("=== Fig. 6: FPS estimation error (8 benchmarks, KU115) ===\n\n");
  const auto points = core::run_calibration();

  TablePrinter t({"Benchmark", "Estimated FPS", "Real FPS (sim)",
                  "Normalized est.", "Error"});
  double max_err = 0;
  double sum_err = 0;
  for (const auto& p : points) {
    t.add_row({p.name, format_fixed(p.est_fps, 1), format_fixed(p.real_fps, 1),
               format_fixed(p.real_fps > 0 ? p.est_fps / p.real_fps : 0, 4),
               format_percent(p.fps_error(), 2)});
    max_err = std::max(max_err, p.fps_error());
    sum_err += p.fps_error();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("max error %s, average error %s\n",
              format_percent(max_err, 2).c_str(),
              format_percent(sum_err / points.size(), 2).c_str());
  std::printf(
      "paper reference: 2.89%% max, 2.02%% average. shape to check: "
      "single-digit errors, estimates slightly optimistic.\n");
  return 0;
}
