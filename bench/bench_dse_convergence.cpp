// Sec. VII search-speed study: 10 independent DSE runs per case with N=20,
// P=200; the paper reports convergence after 9.2 iterations on average
// (min 6.8, max 13.6) and wall times of 57-102 s on a 2.6 GHz CPU.
//
//   bench_dse_convergence [--runs 10] [--population 200] [--iterations 20]
//                         [--threads N] [--cases 5] [--strategy name]
//                         [--csv out.csv] [--json out.json]
//
// --threads sizes the DSE thread pool (0 = all cores); results are
// bit-identical for any value, so thread-count sweeps of this bench measure
// pure wall-clock scaling.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/search_driver.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "obs/export.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

/// Unwraps a parsed flag or exits with a clean error message.
template <typename T>
T flag_value(fcad::StatusOr<T> value) {
  if (!value.is_ok()) {
    std::fprintf(stderr, "error: %s\n", value.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(*value);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fcad;

  auto args = ArgParser::parse(argc, argv);
  if (!args.is_ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().to_string().c_str());
    return 1;
  }
  const auto runs = static_cast<int>(flag_value(args->get_int("runs", 10)));
  const auto population =
      static_cast<int>(flag_value(args->get_int("population", 200)));
  const auto iterations =
      static_cast<int>(flag_value(args->get_int("iterations", 20)));
  const auto threads =
      static_cast<int>(flag_value(args->get_int("threads", 0)));
  const auto case_limit =
      static_cast<int>(flag_value(args->get_int("cases", 5)));
  const std::string csv_path = args->get("csv", "");
  const std::string json_path = args->get("json", "");
  const std::string strategy = args->get("strategy", "particle-swarm");
  obs::ObservationScope obs_scope(args->get("metrics-out", ""),
                                  args->get("trace-out", ""));

  std::printf(
      "=== DSE convergence: %d independent searches per case (threads=%d) "
      "===\n\n",
      runs, threads);
  nn::Graph decoder = nn::zoo::avatar_decoder();
  auto model = arch::reorganize(decoder);
  FCAD_CHECK_MSG(model.is_ok(), model.status().message());

  struct Case {
    const char* name;
    arch::Platform platform;
    nn::DataType dtype;
  };
  std::vector<Case> cases = {
      {"Case 1: Z7045 (8-bit)", arch::platform_z7045(), nn::DataType::kInt8},
      {"Case 2: ZU17EG (8-bit)", arch::platform_zu17eg(), nn::DataType::kInt8},
      {"Case 3: ZU17EG (16-bit)", arch::platform_zu17eg(),
       nn::DataType::kInt16},
      {"Case 4: ZU9CG (8-bit)", arch::platform_zu9cg(), nn::DataType::kInt8},
      {"Case 5: ZU9CG (16-bit)", arch::platform_zu9cg(), nn::DataType::kInt16},
  };
  if (case_limit >= 1 && case_limit < static_cast<int>(cases.size())) {
    cases.resize(static_cast<std::size_t>(case_limit));
  }

  CsvWriter csv({"case", "runs", "population", "iterations", "threads",
                 "mean_iterations", "min_iterations", "max_iterations",
                 "mean_seconds", "mean_fitness", "fitness_spread",
                 "wall_seconds"});
  TablePrinter t({"Case", "mean iters", "min", "max", "mean seconds",
                  "fitness spread", "wall s"});
  double mean_of_means = 0;
  double total_wall = 0;
  struct JsonRow {
    std::string name;
    dse::ConvergenceStats stats;
    double wall = 0;
  };
  std::vector<JsonRow> json_rows;
  for (const Case& c : cases) {
    dse::SearchSpec spec;
    spec.kind = dse::SearchKind::kConvergence;
    spec.strategy = strategy;
    spec.customization.quantization = c.dtype;
    spec.customization.batch_sizes = {1, 2, 2};
    spec.search.population = population;
    spec.search.iterations = iterations;
    spec.search.seed = 77;
    spec.control.threads = threads;
    spec.convergence_runs = runs;
    const auto t0 = std::chrono::steady_clock::now();
    auto outcome = dse::SearchDriver(*model, c.platform).run(spec);
    FCAD_CHECK_MSG(outcome.is_ok(), outcome.status().message());
    const dse::ConvergenceStats& stats = outcome->convergence;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    total_wall += wall;
    t.add_row({c.name, format_fixed(stats.mean_iterations, 1),
               format_fixed(stats.min_iterations, 0),
               format_fixed(stats.max_iterations, 0),
               format_fixed(stats.mean_seconds, 1),
               format_fixed(stats.fitness_spread, 1),
               format_fixed(wall, 2)});
    csv.add_row({c.name, std::to_string(runs), std::to_string(population),
                 std::to_string(iterations), std::to_string(threads),
                 format_fixed(stats.mean_iterations, 3),
                 format_fixed(stats.min_iterations, 0),
                 format_fixed(stats.max_iterations, 0),
                 format_fixed(stats.mean_seconds, 4),
                 format_fixed(stats.mean_fitness, 3),
                 format_fixed(stats.fitness_spread, 3),
                 format_fixed(wall, 4)});
    json_rows.push_back({c.name, stats, wall});
    mean_of_means += stats.mean_iterations;
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("overall mean convergence iteration: %s (paper: 9.2, min 6.8, "
              "max 13.6); total wall %s s\n",
              format_fixed(mean_of_means / cases.size(), 1).c_str(),
              format_fixed(total_wall, 2).c_str());
  std::printf("shape to check: converges well before the 20-iteration cap; "
              "run-to-run fitness spread small relative to fitness; wall "
              "time shrinks with --threads while every fitness column stays "
              "put.\n");
  if (!csv_path.empty()) {
    if (!csv.write_file(csv_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", csv_path.c_str());
      return 1;
    }
    std::printf("csv written to %s\n", csv_path.c_str());
  }
  // The --json twin of the CSV: one object per case, same columns.
  if (!json_path.empty()) {
    JsonWriter json;
    json.begin_object();
    json.key("schema_version").value(1);
    json.key("bench").value("dse_convergence");
    json.key("strategy").value(strategy);
    json.key("runs").value(runs);
    json.key("population").value(population);
    json.key("iterations").value(iterations);
    json.key("threads").value(threads);
    json.key("cases").begin_array();
    for (const JsonRow& row : json_rows) {
      json.begin_object();
      json.key("case").value(row.name);
      json.key("mean_iterations").value(row.stats.mean_iterations);
      json.key("min_iterations").value(row.stats.min_iterations);
      json.key("max_iterations").value(row.stats.max_iterations);
      json.key("mean_seconds").value(row.stats.mean_seconds);
      json.key("mean_fitness").value(row.stats.mean_fitness);
      json.key("fitness_spread").value(row.stats.fitness_spread);
      json.key("wall_seconds").value(row.wall);
      json.end_object();
    }
    json.end_array();
    json.end_object();
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "error: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::printf("json written to %s\n", json_path.c_str());
  }
  return obs_scope.finish() ? 0 : 1;
}
