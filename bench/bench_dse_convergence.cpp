// Sec. VII search-speed study: 10 independent DSE runs per case with N=20,
// P=200; the paper reports convergence after 9.2 iterations on average
// (min 6.8, max 13.6) and wall times of 57-102 s on a 2.6 GHz CPU.
#include <cstdio>
#include <vector>

#include "arch/platform.hpp"
#include "arch/reorg.hpp"
#include "dse/engine.hpp"
#include "nn/zoo/avatar_decoder.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

int main() {
  using namespace fcad;

  std::printf("=== DSE convergence: 10 independent searches per case ===\n\n");
  nn::Graph decoder = nn::zoo::avatar_decoder();
  auto model = arch::reorganize(decoder);
  FCAD_CHECK_MSG(model.is_ok(), model.status().message());

  struct Case {
    const char* name;
    arch::Platform platform;
    nn::DataType dtype;
  };
  const std::vector<Case> cases = {
      {"Case 1: Z7045 (8-bit)", arch::platform_z7045(), nn::DataType::kInt8},
      {"Case 2: ZU17EG (8-bit)", arch::platform_zu17eg(), nn::DataType::kInt8},
      {"Case 3: ZU17EG (16-bit)", arch::platform_zu17eg(),
       nn::DataType::kInt16},
      {"Case 4: ZU9CG (8-bit)", arch::platform_zu9cg(), nn::DataType::kInt8},
      {"Case 5: ZU9CG (16-bit)", arch::platform_zu9cg(), nn::DataType::kInt16},
  };

  TablePrinter t({"Case", "mean iters", "min", "max", "mean seconds",
                  "fitness spread"});
  double mean_of_means = 0;
  for (const Case& c : cases) {
    dse::DseRequest request;
    request.platform = c.platform;
    request.customization.quantization = c.dtype;
    request.customization.batch_sizes = {1, 2, 2};
    request.options.population = 200;
    request.options.iterations = 20;
    request.options.seed = 77;
    const dse::ConvergenceStats stats =
        dse::convergence_study(*model, request, /*runs=*/10);
    t.add_row({c.name, format_fixed(stats.mean_iterations, 1),
               format_fixed(stats.min_iterations, 0),
               format_fixed(stats.max_iterations, 0),
               format_fixed(stats.mean_seconds, 1),
               format_fixed(stats.fitness_spread, 1)});
    mean_of_means += stats.mean_iterations;
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("overall mean convergence iteration: %s (paper: 9.2, min 6.8, "
              "max 13.6)\n",
              format_fixed(mean_of_means / cases.size(), 1).c_str());
  std::printf("shape to check: converges well before the 20-iteration cap; "
              "run-to-run fitness spread small relative to fitness.\n");
  return 0;
}
